#!/usr/bin/env bash
# Smoke check: tier-1 test suite + an end-to-end observability run + a
# compile check of every example.  Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests (benchmarks excluded via marker/testpaths) =="
python -m pytest -q -m "not benchmark"

echo "== end-to-end inspect run (telemetry subsystem) =="
TEL_DIR="$(mktemp -d)"
trap 'rm -rf "$TEL_DIR"' EXIT
python -m repro.cli inspect --model resnet20 --epochs 1 \
    --train-size 300 --test-size 100 --calib-batches 2 \
    --telemetry-out "$TEL_DIR"
for f in manifest.json trace.json events.jsonl metrics.json saturation.json \
         layer_report.json report.txt; do
    test -s "$TEL_DIR/$f" || { echo "missing telemetry output: $f"; exit 1; }
done

echo "== static verification (repro.lint) =="
python -m repro.cli lint --purity
python -m repro.cli lint --model vgg8 --train-size 256 --test-size 64 \
    --calib-batches 1

echo "== compiled runtime (plan vs interpreted tree) =="
python -m pytest tests/runtime -q -m runtime
python -m repro.cli bench --model resnet20 --train-size 256 --test-size 64 \
    --batch-size 16 --warmup 1 --batches 2 --tree-batches 1 \
    --out "$TEL_DIR/BENCH_runtime.json"
test -s "$TEL_DIR/BENCH_runtime.json" || { echo "missing BENCH_runtime.json"; exit 1; }

echo "== compile-check examples =="
for f in examples/*.py; do
    python -m py_compile "$f"
done

echo "smoke OK"
