#!/usr/bin/env bash
# Smoke check: tier-1 test suite + an end-to-end observability run + a
# compile check of every example.  Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests (benchmarks excluded via marker/testpaths) =="
python -m pytest -q -m "not benchmark"

echo "== end-to-end inspect run (telemetry subsystem) =="
TEL_DIR="$(mktemp -d)"
trap 'rm -rf "$TEL_DIR"' EXIT
python -m repro.cli inspect --model resnet20 --epochs 1 \
    --train-size 300 --test-size 100 --calib-batches 2 \
    --telemetry-out "$TEL_DIR"
for f in manifest.json trace.json events.jsonl metrics.json saturation.json \
         layer_report.json report.txt; do
    test -s "$TEL_DIR/$f" || { echo "missing telemetry output: $f"; exit 1; }
done

echo "== static verification (repro.lint) =="
python -m repro.cli lint --purity
python -m repro.cli lint --model vgg8 --train-size 256 --test-size 64 \
    --calib-batches 1

echo "== compiled runtime (plan vs interpreted tree) =="
python -m pytest tests/runtime -q -m runtime
python -m repro.cli bench --model resnet20 --train-size 256 --test-size 64 \
    --batch-size 16 --warmup 1 --batches 2 --tree-batches 1 \
    --out "$TEL_DIR/BENCH_runtime.json"
test -s "$TEL_DIR/BENCH_runtime.json" || { echo "missing BENCH_runtime.json"; exit 1; }

echo "== online serving gateway (repro.server) =="
python -m pytest tests/server -q -m server
python -m repro.cli serve-bench --model resnet20 --train-size 256 \
    --test-size 64 --requests 200 --max-batch 8 --deadline-ms 500 \
    --out "$TEL_DIR/BENCH_server.json" --telemetry-out "$TEL_DIR/serve_tel"
python - "$TEL_DIR" <<'EOF'
import json, sys, os
tel = sys.argv[1]
gw = json.load(open(os.path.join(tel, "BENCH_server.json")))["gateway"]
assert gw["bit_exact"] is True, "gateway responses diverged from tree"
assert gw["shed"] == 0 and gw["failed"] == 0, (
    f"dropped requests in smoke run: shed={gw['shed']} failed={gw['failed']}")
warnings = [json.loads(l) for l in open(os.path.join(tel, "serve_tel", "events.jsonl"))
            if '"level"' in l]
warnings = [e for e in warnings if e.get("level") in ("warning", "error")]
assert not warnings, f"telemetry warnings during smoke serve: {warnings}"
print(f"serve smoke OK: {gw['ok']} ok, p99 {gw['latency_ms']['p99']} ms")
EOF

echo "== artifact integrity + chaos harness (repro.export / repro.chaos) =="
python -m pytest tests/chaos -q -m chaos
python - "$TEL_DIR" <<'EOF'
# fresh all-formats export through the deploy pipeline (verified on write)
import sys, os, numpy as np
from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import build_model
rng = np.random.default_rng(0)
qm = quantize_model(build_model("resnet20", num_classes=10, width=8),
                    QConfig(8, 8))
calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32)).astype(np.float32)])
d = deploy(qm, DeploySpec(export_dir=os.path.join(sys.argv[1], "artifacts"),
                          formats=("dec", "hex", "bin", "qint"),
                          runtime="none"))
assert d.integrity is not None and d.integrity.ok
EOF
python -m repro.cli verify-artifacts "$TEL_DIR/artifacts"
python -m repro.cli chaos --dir "$TEL_DIR/artifacts" --seed 2024 --json \
    > "$TEL_DIR/chaos.json"
python - "$TEL_DIR" <<'EOF'
import json, sys, os
rep = json.load(open(os.path.join(sys.argv[1], "chaos.json")))
s = rep["summary"]
assert s["missed"] == 0, f"undetected faults in chaos run: {rep}"
assert s["detected"] == s["injected"] >= 4
print(f"chaos smoke OK: {s['injected']} injected, {s['detected']} detected, "
      f"0 missed")
EOF

echo "== compile-check examples =="
for f in examples/*.py; do
    python -m py_compile "$f"
done

echo "smoke OK"
