#!/usr/bin/env bash
# Smoke check: tier-1 test suite + an end-to-end observability run + a
# compile check of every example.  Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests (benchmarks excluded via marker/testpaths) =="
python -m pytest -q -m "not benchmark"

echo "== end-to-end inspect run (telemetry subsystem) =="
TEL_DIR="$(mktemp -d)"
trap 'rm -rf "$TEL_DIR"' EXIT
python -m repro.cli inspect --model resnet20 --epochs 1 \
    --train-size 300 --test-size 100 --calib-batches 2 \
    --telemetry-out "$TEL_DIR"
for f in manifest.json trace.json events.jsonl metrics.json saturation.json \
         layer_report.json report.txt; do
    test -s "$TEL_DIR/$f" || { echo "missing telemetry output: $f"; exit 1; }
done

echo "== static verification (repro.lint) =="
python -m repro.cli lint --purity
python -m repro.cli lint --model vgg8 --train-size 256 --test-size 64 \
    --calib-batches 1

echo "== plan-IR verification (liveness / aliasing / overflow proofs) =="
python -m repro.cli lint --model resnet20 --plan --repacked \
    --train-size 256 --test-size 64 --calib-batches 1
python - <<'EOF'
# every model in the registry must compile to a plan that proves clean:
# dataflow liveness, no-alias, overflow safety, shift certificates
import numpy as np
from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import MODELS, build_model

KWARGS = {"resnet20": dict(width=8), "resnet18": dict(width=8),
          "resnet50": dict(width=8), "mobilenet-v1": dict(width_mult=0.5),
          "vgg8": dict(width_mult=0.5), "vit-7": dict(embed_dim=64)}
for name in MODELS:
    rng = np.random.default_rng(0)
    qm = quantize_model(build_model(name, num_classes=10, **KWARGS[name]),
                        QConfig(8, 8))
    calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32))
                         .astype(np.float32) for _ in range(2)])
    d = deploy(qm, DeploySpec(runtime="auto"))
    rep = d.plan.verify(input_shape=(3, 32, 32))
    assert rep.ok, f"{name}: plan verification failed\n{rep.render()}"
    print(f"plan verify OK: {name:<12} {rep.num_ops:>3} ops, "
          f"{len(rep.rows):>2} accumulator rows, "
          f"max {rep.min_accum_bits() and max(rep.min_accum_bits().values())}"
          f"-bit accumulators")
EOF

echo "== compiled runtime (plan vs interpreted tree) =="
python -m pytest tests/runtime -q -m runtime
python -m repro.cli bench --model resnet20 --train-size 256 --test-size 64 \
    --batch-size 16 --warmup 1 --batches 2 --tree-batches 1 \
    --fusion-level full --threads 4 \
    --out "$TEL_DIR/BENCH_runtime.json"
test -s "$TEL_DIR/BENCH_runtime.json" || { echo "missing BENCH_runtime.json"; exit 1; }

echo "== plan fusion (fused multi-thread vs unfused single-thread) =="
python - <<'EOF'
# every registry model: the full-fusion 4-thread plan must be bitwise the
# unfused single-thread plan, and must still prove clean in the verifier
import numpy as np
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import MODELS, build_model
from repro.runtime import CompileSpec, Plan

KWARGS = {"resnet20": dict(width=8), "resnet18": dict(width=8),
          "resnet50": dict(width=8), "mobilenet-v1": dict(width_mult=0.5),
          "vgg8": dict(width_mult=0.5), "vit-7": dict(embed_dim=64)}
for name in MODELS:
    rng = np.random.default_rng(0)
    qm = quantize_model(build_model(name, num_classes=10, **KWARGS[name]),
                        QConfig(8, 8))
    calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32))
                         .astype(np.float32) for _ in range(2)])
    from repro.core import DeploySpec, deploy
    d = deploy(qm, DeploySpec(runtime="none"))
    x = rng.standard_normal((3, 3, 32, 32)).astype(np.float32)
    fused = Plan.compile(d.qnn, CompileSpec(fusion="full", threads=4))
    unfused = Plan.compile(d.qnn, CompileSpec(fusion="requant", threads=1))
    assert np.array_equal(fused(x), unfused(x)), (
        f"{name}: fused 4-thread plan diverges from unfused single-thread")
    rep = fused.verify(input_shape=(3, 32, 32))
    assert rep.ok, f"{name}: fused plan verification failed\n{rep.render()}"
    print(f"fusion OK: {name:<12} {fused.fusion_stats['fused']:>2} chain(s) "
          f"fused ({fused.fusion_stats['folded_smq']} shortcut requants "
          f"folded), bit-exact at 4 threads, verify clean")
EOF

echo "== online serving gateway (repro.server) =="
python -m pytest tests/server -q -m server
python -m repro.cli serve-bench --model resnet20 --train-size 256 \
    --test-size 64 --requests 200 --max-batch 8 --deadline-ms 500 \
    --out "$TEL_DIR/BENCH_server.json" --telemetry-out "$TEL_DIR/serve_tel" \
    --obs-dir "$TEL_DIR/obs"
python - "$TEL_DIR" <<'EOF'
import json, sys, os
tel = sys.argv[1]
gw = json.load(open(os.path.join(tel, "BENCH_server.json")))["gateway"]
assert gw["bit_exact"] is True, "gateway responses diverged from tree"
assert gw["shed"] == 0 and gw["failed"] == 0, (
    f"dropped requests in smoke run: shed={gw['shed']} failed={gw['failed']}")
warnings = [json.loads(l) for l in open(os.path.join(tel, "serve_tel", "events.jsonl"))
            if '"level"' in l]
warnings = [e for e in warnings if e.get("level") in ("warning", "error")]
assert not warnings, f"telemetry warnings during smoke serve: {warnings}"
print(f"serve smoke OK: {gw['ok']} ok, p99 {gw['latency_ms']['p99']} ms")
EOF

echo "== live observability (tracing / SLO surface / flight recorder) =="
python - "$TEL_DIR" <<'EOF'
# the --obs-dir run above left the full observability surface on disk:
# status snapshot, Prometheus exposition, span records, profile report.
import json, sys, os
from repro.telemetry import live, obs
d = os.path.join(sys.argv[1], "obs")
status = json.load(open(os.path.join(d, "status.json")))
m = status["models"]["resnet20"]
assert status["tracing"] is True
assert m["cumulative"]["ok"] == 200, m["cumulative"]
assert m["window"]["slo"]["target"] == 0.99
parsed = obs.parse_prometheus(open(os.path.join(d, "metrics.prom")).read())
ok = {lab["model"]: v for lab, v in parsed["server_window_ok"]}
assert ok.get("resnet20", 0.0) > 0, parsed.keys()
records = live.load_jsonl(os.path.join(d, "traces.jsonl"))
assert records, "no span records from traced serve run"
tid = records[0]["trace_id"]
roots, orphans = live.build_tree([r for r in records
                                  if r["trace_id"] == tid])
assert len(roots) == 1 and not orphans, "span tree disconnected"
prof = json.load(open(os.path.join(d, "profile.json")))
assert prof["sampled_batches"] > 0
assert prof["attributed_fraction"] >= 0.90, prof["attributed_fraction"]
print(f"obs surface OK: {len(records)} spans, trace {tid} connected, "
      f"profile attributes {prof['attributed_fraction']:.1%} of plan wall")
EOF
python -m repro.cli top "$TEL_DIR/obs" --once > /dev/null
TRACE_ID="$(python -c "
import json,sys
print(json.loads(open('$TEL_DIR/obs/traces.jsonl').readline())['trace_id'])")"
python -m repro.cli trace "$TRACE_ID" --traces "$TEL_DIR/obs/traces.jsonl" \
    > /dev/null
python - "$TEL_DIR" <<'EOF'
# a forced deadline miss must auto-dump the flight recorder
import os, sys, time
import numpy as np
from repro.server import ModelRegistry, Server

class SlowPlan:
    out_features = 4
    def __call__(self, x):
        time.sleep(0.05)
        return np.zeros((x.shape[0], 4), dtype=np.float32)

dump_dir = os.path.join(sys.argv[1], "flight")
reg = ModelRegistry()
reg.register("slow", "1", runner=SlowPlan())
srv = Server(reg, max_batch=4, workers=0, default_deadline_s=0.01,
             max_linger_s=0.0, exec_time_init_s=0.0001, tracing=True,
             dump_dir=dump_dir)
with srv:
    for p in [srv.submit("slow", np.zeros((8,), dtype=np.float32))
              for _ in range(4)]:
        p.result(timeout=30)
last = srv._lanes["slow"].flight.last_dump   # post-close: lane quiesced
assert last is not None and last["reason"] == "deadline_miss", last
assert os.path.exists(last["path"]), last
print(f"flight recorder OK: deadline miss auto-dumped to {last['path']}")
EOF

echo "== artifact integrity + chaos harness (repro.export / repro.chaos) =="
python -m pytest tests/chaos -q -m chaos
python - "$TEL_DIR" <<'EOF'
# fresh all-formats export through the deploy pipeline (verified on write)
import sys, os, numpy as np
from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import build_model
rng = np.random.default_rng(0)
qm = quantize_model(build_model("resnet20", num_classes=10, width=8),
                    QConfig(8, 8))
calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32)).astype(np.float32)])
d = deploy(qm, DeploySpec(export_dir=os.path.join(sys.argv[1], "artifacts"),
                          formats=("dec", "hex", "bin", "qint"),
                          runtime="none"))
assert d.integrity is not None and d.integrity.ok
EOF
python -m repro.cli verify-artifacts "$TEL_DIR/artifacts"
python -m repro.cli chaos --dir "$TEL_DIR/artifacts" --seed 2024 --json \
    > "$TEL_DIR/chaos.json"
python - "$TEL_DIR" <<'EOF'
import json, sys, os
rep = json.load(open(os.path.join(sys.argv[1], "chaos.json")))
s = rep["summary"]
assert s["missed"] == 0, f"undetected faults in chaos run: {rep}"
assert s["detected"] == s["injected"] >= 4
print(f"chaos smoke OK: {s['injected']} injected, {s['detected']} detected, "
      f"0 missed")
EOF
python -m repro.cli chaos --model resnet20 --train-size 256 --test-size 64 \
    --calib-batches 1 --seed 7 --json > "$TEL_DIR/chaos_plan.json"
python - "$TEL_DIR" <<'EOF'
# the fresh-build run also mutates the compiled plan; the static verifier
# and registry gate must refuse every mutant
import json, sys, os
rep = json.load(open(os.path.join(sys.argv[1], "chaos_plan.json")))
assert rep["summary"]["missed"] == 0, rep["summary"]
plan_faults = [f for f in rep["faults"]
               if f["injector"] in ("swap_register", "widen_scale", "drop_op",
                                    "fuse_illegal")]
assert len(plan_faults) == 4, [f["injector"] for f in rep["faults"]]
assert all(f["layers"].get("verifier") and f["layers"].get("registry")
           for f in plan_faults), plan_faults
print(f"plan chaos OK: {len(plan_faults)} IR mutations injected, "
      f"all refused by verifier and registry")
EOF

echo "== silent-data-corruption defense (repro.integrity) =="
python -m pytest tests/integrity -q -m sdc
python -m repro.cli chaos --model resnet20 --train-size 256 --test-size 64 \
    --calib-batches 1 --seed 11 --sdc --json > "$TEL_DIR/chaos_sdc.json"
python - "$TEL_DIR" <<'EOF'
# live-memory corruption against a defended 3-replica fleet: every fault
# must be flagged (ABFT / scrubber / golden probe), the victim quarantined
# and replaced, with zero lost requests
import json, sys, os
rep = json.load(open(os.path.join(sys.argv[1], "chaos_sdc.json")))
assert rep["summary"]["missed"] == 0, rep["summary"]
sdc = [f for f in rep["faults"]
       if f["injector"] in ("flip_live_weights", "flip_arena",
                            "corrupt_golden")]
assert len(sdc) == 3, [f["injector"] for f in rep["faults"]]
assert all(f["detected"] and f["recovered"] for f in sdc), sdc
print(f"sdc smoke OK: {len(sdc)} live-memory faults injected, all "
      f"quarantined and healed")
EOF

echo "== replicated serving fleet (repro.fleet) =="
python -m pytest tests/fleet -q -m fleet
python -m repro.cli fleet-bench --model resnet20 --train-size 256 \
    --test-size 64 --replicas 3 --requests 80 --canary-requests 40 \
    --capacity-requests 200 --deadline-ms 500 \
    --out "$TEL_DIR/BENCH_fleet.json"
python - "$TEL_DIR" <<'EOF'
# the fleet drill: 3 replicas, canary 10% -> 100% -> promote, a seeded
# replica kill under load — all bit-exact, zero dropped requests — plus
# the capacity stage's fleet-of-2 speedup floor
import json, sys, os
rep = json.load(open(os.path.join(sys.argv[1], "BENCH_fleet.json")))
assert rep["bit_exact"] is True, "fleet answers diverged from tree"
assert rep["requests_lost"] == 0, f"lost {rep['requests_lost']} requests"
assert rep["chaos_ok"] is True, "seeded replica kill was missed"
assert rep["promoted_version"] == ["2"], rep["promoted_version"]
d = rep["drill"]
drops = sum(d[k]["shed"] + d[k]["failed"]
            for k in ("base", "canary_10pct", "post_promote"))
assert drops == 0, f"dropped requests in fleet drill: {drops}"
assert rep["speedup_fleet2_vs_single"] >= rep["capacity"]["speedup_floor"]
assert rep["keepup_ok"] is True, "fleet shed traffic at 80% headroom"
print(f"fleet smoke OK: canary promoted, replica kill survived, "
      f"speedup {rep['speedup_fleet2_vs_single']}x, 0 dropped")
EOF

echo "== compile-check examples =="
for f in examples/*.py; do
    python -m py_compile "$f"
done

echo "smoke OK"
