"""Customization demo: register a brand-new quantizer and deploy it.

The paper's central promise is that a *user-defined* compression algorithm —
implemented by overriding nothing but the training path — rides the same
automatic fusion / integer conversion / export pipeline.  This example
defines a stochastic-rounding weight quantizer from scratch, registers it,
trains with it, and extracts the integer model.

Run:  python examples/custom_quantizer.py [--epochs 4]
"""
import argparse

import numpy as np

from repro.core import T2C
from repro.core.qbase import _QBase
from repro.core.qconfig import QConfig
from repro.core.quantizers import QUANTIZERS
from repro.data import make_dataset
from repro.models import build_model
from repro.tensor import Tensor
from repro.trainer import TRAINER, evaluate
from repro.utils import seed_everything


class StochasticRoundQuantizer(_QBase):
    """Weight quantizer with unbiased stochastic rounding in training.

    Only the training path is customized; ``q()``/``evalFunc`` (deterministic
    nearest rounding for deployment) are inherited from ``_QBase``, so T2C
    converts it automatically.
    """

    def __init__(self, nbit: int = 8, seed: int = 0, **_):
        super().__init__(nbit=nbit, unsigned=False)
        self._rng = np.random.default_rng(seed)

    def trainFunc(self, x: Tensor) -> Tensor:
        self.set_scale(np.abs(x.data).max() / self.qub)
        s = float(self.scale.data)
        noise = Tensor(self._rng.uniform(-0.5, 0.5, x.shape).astype(np.float32))
        xq = (x * (1.0 / s) + noise).round_ste().clamp(self.qlb, self.qub)
        return xq * s


# one line to make it available everywhere (QConfig, trainers, benches):
QUANTIZERS["stochastic"] = StochasticRoundQuantizer


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--epochs", type=int, default=4)
    args = ap.parse_args()

    seed_everything(0)
    ds = make_dataset("synthetic-cifar10", noise=0.5)
    train, test = ds.splits(1500, 500)
    model = build_model("resnet20", num_classes=10, width=8)

    trainer = TRAINER["qat"](model, qcfg=QConfig(wbit=4, abit=4, wq="stochastic", aq="pact"),
                             train_set=train, test_set=test,
                             epochs=args.epochs, batch_size=64, lr=0.1, verbose=True)
    trainer.fit()
    qnn = T2C(trainer.qmodel).nn2chip()
    print(f"\ncustom-quantizer QAT accuracy : {trainer.evaluate():.4f}")
    print(f"integer-only deployed accuracy: {evaluate(qnn, test):.4f}")


if __name__ == "__main__":
    main()
