"""Integer-only Vision Transformer with LUT softmax / GELU (paper Fig. 4).

Trains ViT-7 on the synthetic CIFAR stand-in, quantizes to 8/8, and compares:
* instant-statistics LayerNorm (float division reference) vs
* running-statistics LayerNorm (fully-integer MulQuant path),
sweeping the LUT probability resolution.

Run:  python examples/vit_integer_inference.py [--epochs 4]
"""
import argparse

from repro.core import T2C
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.data import make_dataset
from repro.models import build_model
from repro.optim import AdamW
from repro.trainer import Trainer, evaluate
from repro.utils import seed_everything


def train_vit(train, test, epochs, ln_running_stats):
    model = build_model("vit-7", num_classes=10, embed_dim=64,
                        ln_running_stats=ln_running_stats)
    opt = AdamW(model.parameters(), lr=1e-3, weight_decay=0.05)
    Trainer(model, train, test, epochs=epochs, batch_size=50,
            optimizer=opt, verbose=True).fit()
    return model


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--epochs", type=int, default=4)
    args = ap.parse_args()

    seed_everything(0)
    ds = make_dataset("synthetic-cifar10", noise=0.5)
    train, test = ds.splits(1500, 500)

    for ln_mode in (False, True):
        label = "running-stats LN (all-integer)" if ln_mode else "instant LN (float-div reference)"
        print(f"\n=== {label} ===")
        model = train_vit(train, test, args.epochs, ln_mode)
        print(f"fp32 accuracy: {evaluate(model, test):.4f}")
        for prob_bits in (4, 8, 12):
            qm = quantize_model(model, QConfig(8, 8, prob_bits=prob_bits))
            calibrate_model(qm, [train.images[i * 64:(i + 1) * 64] for i in range(8)])
            fq = evaluate(qm, test)
            T2C(qm).fuse()
            ii = evaluate(qm, test)
            print(f"prob_bits={prob_bits:2d}: fakequant={fq:.4f} integer-only={ii:.4f}")


if __name__ == "__main__":
    main()
