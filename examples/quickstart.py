"""Quickstart: the paper's five-line compress-and-deploy workflow.

Trains a 4-bit ResNet-20 with SAWB weights + PACT activations (QAT) on a
synthetic CIFAR-10 stand-in, converts it to an integer-only model with T2C,
and exports the tensors in decimal / hex / qint formats.

Run:  python examples/quickstart.py [--epochs 5] [--out /tmp/t2c_quickstart]
"""
import argparse

from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.data import make_dataset
from repro.models import build_model
from repro.trainer import TRAINER, evaluate
from repro.utils import seed_everything


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--epochs", type=int, default=5)
    ap.add_argument("--train-size", type=int, default=2000)
    ap.add_argument("--out", default="/tmp/t2c_quickstart")
    args = ap.parse_args()

    seed_everything(0)
    ds = make_dataset("synthetic-cifar10", noise=0.5)
    train, test = ds.splits(args.train_size, 500)
    model = build_model("resnet20", num_classes=10, width=8)

    # --- the five lines -------------------------------------------------
    trainer = TRAINER["qat"](model, qcfg=QConfig(wbit=4, abit=4, wq="sawb", aq="pact"),
                             train_set=train, test_set=test,
                             epochs=args.epochs, batch_size=64, lr=0.1, verbose=True)
    trainer.fit()
    spec = DeploySpec(export_dir=args.out, formats=("dec", "hex", "qint"))
    deployed = deploy(trainer.qmodel, spec)
    qnn = deployed.qnn
    # ---------------------------------------------------------------------

    print(f"\nfake-quant accuracy : {trainer.evaluate():.4f}")
    print(f"integer-only accuracy: {evaluate(qnn, test):.4f}")
    print(f"exported integer model -> {args.out}/ (see manifest.json)")


if __name__ == "__main__":
    main()
