"""Sparsity + quantization (paper Table 3): prune during training, PTQ after,
and verify the zeros survive into the exported integer model.

Run:  python examples/sparse_then_quantize.py [--epochs 6]
"""
import argparse

import numpy as np

from repro.core import T2C
from repro.core.qconfig import QConfig
from repro.data import make_dataset
from repro.data.transforms import standard_train_transform
from repro.models import build_model
from repro.trainer import PTQTrainer, SparseTrainer, evaluate
from repro.utils import seed_everything


def integer_sparsity(qnn) -> float:
    ws = [p.data for n, p in qnn.named_parameters() if n.endswith("weight") and p.data.ndim == 4]
    total = sum(w.size for w in ws)
    return sum(int((w == 0).sum()) for w in ws) / total


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--epochs", type=int, default=6)
    args = ap.parse_args()

    seed_everything(0)
    ds = make_dataset("synthetic-cifar10", noise=0.5)
    train, test = ds.splits(2000, 500, transform=standard_train_transform())

    configs = [
        ("granet 80%", "granet", dict(sparsity=0.8)),
        ("N:M 2:4 (50%)", "nm", dict(n=2, m=4)),
    ]
    for label, pruner, pk in configs:
        print(f"\n=== {label} ===")
        model = build_model("resnet20", num_classes=10, width=8)
        st = SparseTrainer(model, pruner=pruner, pruner_kwargs=pk,
                           train_set=train, test_set=test,
                           epochs=args.epochs, batch_size=64, lr=0.1,
                           update_every=10, verbose=True)
        st.fit()
        print(f"sparse fp32 accuracy: {st.evaluate():.4f}  (weight sparsity {st.sparsity():.2%})")

        for wbit, abit in ((8, 8), (4, 4)):
            qm = PTQTrainer(model, train, qcfg=QConfig(wbit, abit),
                            calib_batches=8, batch_size=64).fit()
            qnn = T2C(qm).nn2chip()
            acc = evaluate(qnn, test)
            print(f"PTQ {wbit}/{abit}: integer accuracy={acc:.4f}  "
                  f"integer-weight sparsity={integer_sparsity(qnn):.2%}")


if __name__ == "__main__":
    main()
