"""SSL pre-training + compressed transfer learning (paper Table 4).

Pre-trains a MobileNet-V1 encoder with cross-distillation (XD) against a
wider ResNet teacher on the synthetic-ImageNet stand-in, then fine-tunes on a
downstream task and compresses to 8/8 — versus a supervised-from-scratch
baseline.

Run:  python examples/ssl_transfer.py [--ssl-epochs 8] [--ft-epochs 4]
"""
import argparse

from repro.core import T2C
from repro.core.qconfig import QConfig
from repro.data import SyntheticTaskSuite
from repro.data.transforms import standard_train_transform
from repro.models import build_model
from repro.trainer import PTQTrainer, SSLTrainer, Trainer, evaluate
from repro.utils import seed_everything


def finetune_and_compress(encoder_factory, train, test, epochs):
    model = encoder_factory()
    Trainer(model, train, test, epochs=epochs, batch_size=64, lr=0.05).fit()
    qm = PTQTrainer(model, train, qcfg=QConfig(8, 8), calib_batches=8, batch_size=64).fit()
    qnn = T2C(qm).nn2chip()
    return evaluate(model, test), evaluate(qnn, test)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--ssl-epochs", type=int, default=8)
    ap.add_argument("--ft-epochs", type=int, default=4)
    args = ap.parse_args()

    seed_everything(0)
    suite = SyntheticTaskSuite()
    pre_train, _ = suite.pretrain(noise=0.5).splits(3000, 100)

    # XD pre-training: lightweight student + wider teacher.
    student = build_model("mobilenet-v1", num_classes=10, width_mult=1.0)
    teacher = build_model("resnet20", num_classes=10, width=16)
    ssl = SSLTrainer(student, pre_train, student_dim=student.out_channels,
                     teacher=teacher, teacher_dim=64, embed_dim=64,
                     epochs=args.ssl_epochs, batch_size=100, lr=3e-3, verbose=True)
    ssl.fit()
    pretrained_state = student.state_dict()

    task = suite.downstream("synthetic-cifar10", noise=0.5)
    train, test = task.splits(1500, 500, transform=standard_train_transform())

    def from_scratch():
        return build_model("mobilenet-v1", num_classes=10, width_mult=1.0)

    def from_ssl():
        m = build_model("mobilenet-v1", num_classes=10, width_mult=1.0)
        state = {k: v for k, v in pretrained_state.items() if not k.startswith("fc.")}
        m.load_state_dict({**m.state_dict(), **state})
        return m

    print("\n=== supervised from scratch + PTQ 8/8 ===")
    fp, q = finetune_and_compress(from_scratch, train, test, args.ft_epochs)
    print(f"fp32={fp:.4f} integer 8/8={q:.4f}")

    print("\n=== XD SSL pre-trained + fine-tune + PTQ 8/8 ===")
    fp2, q2 = finetune_and_compress(from_ssl, train, test, args.ft_epochs)
    print(f"fp32={fp2:.4f} integer 8/8={q2:.4f}")
    print(f"\nSSL transfer gain (integer models): {q2 - q:+.4f}")


if __name__ == "__main__":
    main()
