"""PTQ playbook: MinMax vs AdaRound vs QDrop at 8 and 4 bits (paper Table 1).

Trains one full-precision ResNet, then applies three post-training
quantization recipes and reports fake-quant + integer-only accuracy for each,
with both float32 scales (industry baseline) and INT16 fixed-point scales
(Torch2Chip).

Run:  python examples/ptq_playbook.py [--epochs 6]
"""
import argparse

from repro.core import T2C
from repro.core.qconfig import QConfig
from repro.data import make_dataset
from repro.data.transforms import standard_train_transform
from repro.models import build_model
from repro.trainer import PTQTrainer, Trainer, evaluate
from repro.utils import seed_everything


RECIPES = {
    "minmax 8/8": dict(qcfg=QConfig(8, 8, wq="minmax_channel", aq="minmax"), reconstruct=False),
    "minmax 4/4": dict(qcfg=QConfig(4, 4, wq="minmax_channel", aq="minmax"), reconstruct=False),
    "adaround 4/8": dict(qcfg=QConfig(4, 8, wq="adaround", aq="minmax"), reconstruct=True),
    "qdrop 4/4": dict(qcfg=QConfig(4, 4, wq="adaround", aq="qdrop"), reconstruct=True),
}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--epochs", type=int, default=6)
    args = ap.parse_args()

    seed_everything(0)
    ds = make_dataset("synthetic-cifar10", noise=0.5)
    train, test = ds.splits(2000, 500, transform=standard_train_transform())

    model = build_model("resnet20", num_classes=10, width=8)
    Trainer(model, train, test, epochs=args.epochs, batch_size=64, lr=0.1, verbose=True).fit()
    fp_acc = evaluate(model, test)
    print(f"\nfp32 baseline: {fp_acc:.4f}\n")

    print(f"{'recipe':14s} {'scales':8s} {'fakequant':>10s} {'integer':>9s}")
    for name, cfg in RECIPES.items():
        for float_scale in (True, False):
            trainer = PTQTrainer(model, train, qcfg=cfg["qcfg"], calib_batches=8,
                                 batch_size=64, reconstruct=cfg["reconstruct"],
                                 recon_iters=100)
            qm = trainer.fit()
            fq = evaluate(qm, test)
            T2C(qm, float_scale=float_scale).fuse()
            ii = evaluate(qm, test)
            stype = "float32" if float_scale else "INT16"
            print(f"{name:14s} {stype:8s} {fq:10.4f} {ii:9.4f}")


if __name__ == "__main__":
    main()
