"""Mixed-precision PTQ: sensitivity-guided per-layer bit allocation.

Profiles per-layer weight-quantization sensitivity, allocates 2/4/8-bit
widths under an average-bit budget, and deploys the heterogeneous model —
comparing against uniform 4-bit PTQ at (roughly) the same storage.

Run:  python examples/mixed_precision.py [--epochs 5]
"""
import argparse

from repro.core import T2C
from repro.core.mixed_precision import (
    allocate_bits,
    average_bits,
    layer_sensitivity,
    quantize_model_mixed,
)
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.data import make_dataset
from repro.models import build_model
from repro.trainer import Trainer, evaluate
from repro.utils import seed_everything


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--epochs", type=int, default=5)
    ap.add_argument("--avg-bits", type=float, default=4.0)
    args = ap.parse_args()

    seed_everything(0)
    ds = make_dataset("synthetic-cifar10", noise=0.5)
    train, test = ds.splits(2000, 500)
    model = build_model("resnet20", num_classes=10, width=8)
    Trainer(model, train, test, epochs=args.epochs, batch_size=64, lr=0.1, verbose=True).fit()
    print(f"fp32: {evaluate(model, test):.4f}")

    sens = layer_sensitivity(model)
    alloc = allocate_bits(sens, avg_bits=args.avg_bits, min_sqnr_db=18.0)
    print(f"\nallocation (avg {average_bits(alloc, sens):.2f} bits):")
    for r in sens:
        print(f"  {r['layer']:32s} {alloc[r['layer']]}b  (2b SQNR {r['sqnr_2b']:.1f} dB)")

    calib = [train.images[i * 64:(i + 1) * 64] for i in range(8)]

    mixed = quantize_model_mixed(model, alloc, QConfig(8, 8))
    calibrate_model(mixed, calib)
    T2C(mixed).fuse()
    print(f"\nmixed-precision integer accuracy : {evaluate(mixed, test):.4f}")

    uniform = quantize_model(model, QConfig(4, 8))
    calibrate_model(uniform, calib)
    T2C(uniform).fuse()
    print(f"uniform 4-bit integer accuracy   : {evaluate(uniform, test):.4f}")


if __name__ == "__main__":
    main()
