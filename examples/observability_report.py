"""Observability: inspect a compression scheme before committing to silicon.

Runs the compress→fuse→deploy flow inside a TelemetrySession and shows every
piece of the telemetry subsystem:

* per-layer weight SQNR / grid-utilization and calibrated activation ranges
  (``repro.core.analysis``);
* per-layer forward timing + activation statistics via ``telemetry.instrument``;
* nested wall-clock spans (printed as a tree, saved as a Chrome trace);
* the integer-datapath saturation audit — how many elements each MulQuant /
  input quantizer clamps on the deploy path.

Run:  python examples/observability_report.py [--epochs 4] [--out telemetry_out]
"""
import argparse

import numpy as np

from repro import telemetry
from repro.core import T2C
from repro.core.analysis import (
    activation_ranges,
    format_report,
    layer_output_sqnr,
    weight_quant_report,
)
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.data import make_dataset
from repro.models import build_model
from repro.tensor import Tensor, no_grad
from repro.trainer import Trainer, evaluate
from repro.utils import seed_everything


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--epochs", type=int, default=4)
    ap.add_argument("--out", default="telemetry_out")
    args = ap.parse_args()

    seed_everything(0)
    ds = make_dataset("synthetic-cifar10", noise=0.5)
    train, test = ds.splits(1500, 400)
    model = build_model("resnet20", num_classes=10, width=8)

    with telemetry.TelemetrySession(out_dir=args.out, label="observability"):
        Trainer(model, train, test, epochs=args.epochs, batch_size=64,
                lr=0.1, verbose=True).fit()

        for wbit in (8, 4, 2):
            with telemetry.trace("quantize_and_report", wbit=wbit):
                qm = quantize_model(model, QConfig(wbit, 8, wq="minmax_channel"))
                calibrate_model(qm, [train.images[i * 64:(i + 1) * 64] for i in range(6)])
                print(f"\n===== W{wbit}/A8 =====")
                print(format_report(weight_quant_report(qm),
                                    columns=["layer", "nbit", "sqnr_db", "grid_utilization"]))
                print(f"\nend-to-end logit SQNR vs fp32: "
                      f"{layer_output_sqnr(qm, model, test.images[:64]):.2f} dB")
                print(f"fake-quant accuracy: {evaluate(qm, test):.4f} "
                      f"(fp32 {evaluate(model, test):.4f})")

        print("\ncalibrated activation quantizers (first 8):")
        print(format_report(activation_ranges(qm)[:8]))

        # per-layer forward timing + activation statistics on one batch
        with telemetry.instrument(qm) as inst:
            with no_grad():
                qm.eval()
                qm(Tensor(np.asarray(test.images[:64], dtype=np.float32)))
        print("\nper-layer forward timing / activation stats (top 8 by time):")
        rows = sorted(inst.report(), key=lambda r: -r["time_ms"])[:8]
        print(format_report(rows, columns=["layer", "type", "time_ms",
                                           "out_min", "out_max", "out_sparsity"]))

        # integer-only deploy of the last (W2/A8) model: saturation audit
        qnn = T2C(qm).nn2chip()
        acc = evaluate(qnn, test)
        print(f"\ninteger-only accuracy: {acc:.4f}")
        sat = telemetry.saturation_report()
        print("\ninteger-datapath saturation audit (top 8 clamp sites):")
        print(format_report(sat[:8]))

    print(f"\nspan tree:\n{telemetry.get_tracer().format_tree()}")
    print(f"\ntelemetry written to {args.out}/ "
          f"(trace.json is chrome://tracing-loadable)")


if __name__ == "__main__":
    main()
