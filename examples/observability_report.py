"""Observability: inspect a compression scheme before committing to silicon.

Quantizes a trained ResNet at several precisions and prints the per-layer
weight SQNR / grid-utilization report plus calibrated activation ranges —
the "fully observable" side of the toolkit.

Run:  python examples/observability_report.py [--epochs 4]
"""
import argparse

from repro.core.analysis import (
    activation_ranges,
    format_report,
    layer_output_sqnr,
    weight_quant_report,
)
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.data import make_dataset
from repro.models import build_model
from repro.trainer import Trainer, evaluate
from repro.utils import seed_everything


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--epochs", type=int, default=4)
    args = ap.parse_args()

    seed_everything(0)
    ds = make_dataset("synthetic-cifar10", noise=0.5)
    train, test = ds.splits(1500, 400)
    model = build_model("resnet20", num_classes=10, width=8)
    Trainer(model, train, test, epochs=args.epochs, batch_size=64, lr=0.1, verbose=True).fit()

    for wbit in (8, 4, 2):
        qm = quantize_model(model, QConfig(wbit, 8, wq="minmax_channel"))
        calibrate_model(qm, [train.images[i * 64:(i + 1) * 64] for i in range(6)])
        print(f"\n===== W{wbit}/A8 =====")
        print(format_report(weight_quant_report(qm),
                            columns=["layer", "nbit", "sqnr_db", "grid_utilization"]))
        print(f"\nend-to-end logit SQNR vs fp32: "
              f"{layer_output_sqnr(qm, model, test.images[:64]):.2f} dB")
        print(f"fake-quant accuracy: {evaluate(qm, test):.4f} "
              f"(fp32 {evaluate(model, test):.4f})")

    print("\ncalibrated activation quantizers (first 8):")
    print(format_report(activation_ranges(qm)[:8]))


if __name__ == "__main__":
    main()
