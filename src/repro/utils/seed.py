"""Determinism helpers."""
from __future__ import annotations

import random

import numpy as np

from repro.nn import init


def seed_everything(seed: int) -> None:
    """Seed python, numpy and the weight-initializer RNG."""
    random.seed(seed)
    np.random.seed(seed)
    init.set_init_rng(seed)
