"""Model checkpointing as ``.npz`` state dicts."""
from __future__ import annotations

from typing import Dict

import numpy as np

from repro.nn.module import Module


def save_checkpoint(model: Module, path: str, **metadata) -> None:
    """Save a model state dict (plus scalar metadata) to ``path`` (.npz)."""
    state = model.state_dict()
    meta = {f"__meta_{k}": np.asarray(v) for k, v in metadata.items()}
    np.savez(path, **state, **meta)


def load_checkpoint(model: Module, path: str, strict: bool = True) -> Dict:
    """Load a checkpoint into ``model``; returns the metadata dict."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    data = np.load(path)
    state = {k: data[k] for k in data.files if not k.startswith("__meta_")}
    meta = {k[len("__meta_"):]: data[k].item() if data[k].ndim == 0 else data[k]
            for k in data.files if k.startswith("__meta_")}
    model.load_state_dict(state, strict=strict)
    return meta
