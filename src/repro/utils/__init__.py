"""Miscellaneous utilities."""
from repro.utils.seed import seed_everything

__all__ = ["seed_everything"]
