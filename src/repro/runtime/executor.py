"""Plan: the executable compiled program.

``Plan.compile(qnn)`` compiles once; ``plan(batch)`` executes the flat op
list against a per-(batch-shape) binding — preallocated buffers, cached
gather indices, pre-broadcast requant constants — created lazily on the
first batch of each shape and reused for every subsequent one.

Per-op wall time is accumulated always (it is two ``perf_counter`` reads);
when the global telemetry switch is on, every op additionally opens a
telemetry span (``plan.<kind>``) so the Chrome trace shows the per-op
breakdown of every batch.
"""
from __future__ import annotations

import time
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.runtime.arena import Arena, plan_pads
from repro.runtime.kernels import new_sig
from repro.runtime.spec import _UNSET, CompileSpec, warn_legacy_compile_kwarg


class OpProfiler:
    """Opt-in, sampled per-op profiling attached to one :class:`Plan`.

    The plan already pays two ``perf_counter`` reads per op to keep
    ``_op_seconds`` current, so the profiler adds *no timing calls to the
    hot path*: on every ``sample_every``-th batch it copies the accumulator
    before the op loop and diffs it after, folding the per-op deltas into a
    :class:`~repro.telemetry.obs.ProfileAggregator`.  ``pop_last`` hands the
    most recent sampled batch's raw rows to pool workers so they can ship
    them to the gateway instead of aggregating in a forked copy nobody reads.
    """

    def __init__(self, plan: "Plan", sample_every: int = 16):
        from repro.telemetry.obs import ProfileAggregator

        self.plan = plan
        self.sample_every = max(1, int(sample_every))
        self.aggregator = ProfileAggregator()
        self._tick = 0
        self._last = None

    def tick(self) -> bool:
        """Advance the batch counter; True when this batch is sampled."""
        self._tick += 1
        return self._tick % self.sample_every == 0

    def record(self, delta, wall_s: float) -> None:
        """Fold one sampled batch's per-op second deltas into the report.

        A fused op's delta is split across its constituent source layers
        (shares sum to 1.0), so attribution stays on real module names and
        the total attributed time — hence the ≥90% wall-attribution
        invariant — is unchanged by fusion.
        """
        ops = self.plan.ops
        rows = []
        for i, dt in enumerate(delta):
            if dt > 0.0:
                for kind, name, share in ops[i].constituents():
                    rows.append((kind, name, float(dt) * share))
        self._last = (rows, float(wall_s))
        self.aggregator.add(rows, wall_s)

    def pop_last(self):
        """``(rows, wall_s)`` of the newest sampled batch, once; else None."""
        last, self._last = self._last, None
        return last

    def report(self, top=None) -> Dict:
        return self.aggregator.report(top=top)


class _Binding:
    """A plan bound to one concrete (batch size, input shape)."""

    def __init__(self, plan: "Plan", in_shape: Tuple[int, ...]):
        n, sample_shape = in_shape[0], tuple(in_shape[1:])
        self.arena = Arena(n, plan.num_regs, layout=plan.layout,
                           spec=plan.spec)
        self.arena.shapes[0] = sample_shape
        for op in plan.ops:
            self.arena.shapes[op.dst] = op.infer(self.arena.shapes)
        if plan.layout == "channel":
            self.arena.pads = plan_pads(plan.ops, self.arena.shapes)
            self.arena.pads.pop(0, None)  # register 0 is the raw input
        self.fns = [op.bind(self.arena) for op in plan.ops]


class Plan:
    """A compiled, bit-exact, batched executor for a re-packed deploy model."""

    def __init__(self, ops: List, num_regs: int, output_reg: int,
                 model_name: str, out_features: int, layout: str = "batch",
                 spec: Optional[CompileSpec] = None):
        self.ops = ops
        self.num_regs = num_regs
        self.output_reg = output_reg
        self.model_name = model_name
        self.out_features = out_features
        self.layout = layout
        # the compile configuration this program was built under — embedded
        # in verification reports and manifests
        self.spec = spec if spec is not None else CompileSpec()
        self.fusion_stats: Dict[str, int] = {"fused": 0, "folded_smq": 0}
        self.slots: Optional[Dict[int, int]] = None  # reg -> arena slot map
        self._bindings: Dict[Tuple[int, ...], _Binding] = {}
        self._op_seconds = np.zeros(len(ops), dtype=np.float64)
        self._op_calls = np.zeros(len(ops), dtype=np.int64)
        self._batches = 0
        self._profiler: Optional[OpProfiler] = None
        self._verification = None  # cached default-config verify() report
        self._abft = None          # sampled AbftChecker when enabled
        self._abft_rows = None     # compile-time checksum rows (op index ->)
        self._scrub_baseline = None  # CRC32 constant baseline for scrubbing

    def __deepcopy__(self, memo):
        """Deep-copy with *fresh* execution state.

        The kernel closures cached in ``_Binding.fns`` capture their arena
        (and the source op's packed weights) by reference, and Python
        functions are atomic under ``deepcopy`` — so naively copying a plan
        that has already executed would leave the copy's bindings writing
        into the *original* plan's buffers while its own output register
        stays stale.  Replication (fleet ``materialize``) deepcopies served
        bundles, so the copy must rebind from scratch; the profiler/ABFT
        checkers likewise hold back-references and are re-attached by their
        owners on the copy.
        """
        import copy as _copy

        cls = self.__class__
        new = cls.__new__(cls)
        memo[id(self)] = new
        fresh = {
            "_bindings": {},
            "_profiler": None,
            "_abft": None,
            "_op_seconds": np.zeros(len(self.ops), dtype=np.float64),
            "_op_calls": np.zeros(len(self.ops), dtype=np.int64),
            "_batches": 0,
        }
        for k, v in self.__dict__.items():
            if k in fresh:
                new.__dict__[k] = fresh[k]
            else:
                new.__dict__[k] = _copy.deepcopy(v, memo)
        return new

    # ------------------------------------------------------------- factory
    @classmethod
    def compile(cls, qnn, spec: Optional[CompileSpec] = None, *,
                layout=_UNSET) -> "Plan":
        """Compile the deploy-ready model from ``T2C.nn2chip()``.

        ``spec`` is the single compile configuration (fusion level, layout,
        tiling, threads); see :class:`repro.runtime.CompileSpec`.  The
        legacy ``layout=`` kwarg still works but emits a
        :class:`DeprecationWarning` and routes through the spec.
        """
        from repro.runtime.compiler import CompileError, compile_program

        if layout is not _UNSET:
            warn_legacy_compile_kwarg("Plan.compile", "layout", "layout")
            if layout not in ("auto", "channel", "batch"):
                raise CompileError(f"unknown layout {layout!r}; "
                                   "expected 'auto', 'channel' or 'batch'")
            spec = (spec if spec is not None
                    else CompileSpec()).evolve(layout=layout)

        with telemetry.trace("plan.compile", model=type(qnn).__name__):
            plan = compile_program(qnn, spec)
        plan.capture_integrity_baseline()
        telemetry.emit("plan_compile", model=plan.model_name,
                       ops=len(plan.ops), registers=plan.num_regs,
                       layout=plan.layout, fusion=plan.spec.fusion,
                       fused_chains=plan.fusion_stats["fused"])
        return plan

    # -------------------------------------------------------- verification
    def verify(self, accum_bits: int = 32, input_shape=None,
               module_bits=None, require_po2: bool = False,
               refresh: bool = False):
        """Statically verify this program (see :func:`repro.lint.plan.verify_plan`).

        The default-configuration report is cached on the plan — the
        registry and server gates re-check swaps for free.  Pass
        ``refresh=True`` after mutating the op list (tests, chaos harness)
        to force a re-proof.
        """
        from repro.lint.plan import verify_plan

        default = (accum_bits == 32 and input_shape is None
                   and module_bits is None and not require_po2)
        if default and not refresh and self._verification is not None:
            return self._verification
        report = verify_plan(self, accum_bits=accum_bits,
                             input_shape=input_shape,
                             module_bits=module_bits,
                             require_po2=require_po2)
        if default:
            self._verification = report
        return report

    # ----------------------------------------------------------- execution
    def __call__(self, batch) -> np.ndarray:
        """Run one batch; returns the logits array, bit-exact vs. the tree."""
        x = np.ascontiguousarray(
            np.asarray(getattr(batch, "data", batch), dtype=np.float32))
        binding = self._bindings.get(x.shape)
        if binding is None:
            with telemetry.trace("plan.bind", shape=str(x.shape)):
                binding = _Binding(self, x.shape)
            self._bindings[x.shape] = binding
        regs = binding.arena.regs
        regs[0] = x
        seconds, calls = self._op_seconds, self._op_calls
        prof = self._profiler
        sampling = prof is not None and prof.tick()
        if sampling:
            before = seconds.copy()
            w0 = time.perf_counter()
        if telemetry.enabled():
            with telemetry.trace("plan.batch", model=self.model_name,
                                 batch=x.shape[0]):
                for i, (op, fn) in enumerate(zip(self.ops, binding.fns)):
                    with telemetry.trace(f"plan.{op.kind}", op=op.name):
                        t0 = time.perf_counter()
                        fn()
                        seconds[i] += time.perf_counter() - t0
                        calls[i] += 1
        else:
            for i, fn in enumerate(binding.fns):
                t0 = time.perf_counter()
                fn()
                seconds[i] += time.perf_counter() - t0
                calls[i] += 1
        if sampling:
            prof.record(seconds - before, time.perf_counter() - w0)
        self._batches += 1
        abft = self._abft
        if abft is not None and abft.tick():
            # registers stay live until the next batch, so the sampled
            # checker reads them in place; a mismatch raises SDCDetected
            # and the batch fails instead of serving corrupted logits
            abft.check(binding)
        return regs[self.output_reg].copy()

    def serve(self, batches: Iterable, workers: int = 0,
              pool_hook=None) -> Iterator[np.ndarray]:
        """Stream logits for an iterable of batches (the *offline* batch API;
        single-request traffic goes through :class:`repro.server.Server`).

        ``workers >= 2`` shards the stream across a ``multiprocessing`` pool
        with shared-memory I/O buffers (see :mod:`repro.runtime.serve`);
        otherwise batches run inline.  Results preserve input order.  A dead
        worker raises instead of hanging; ``pool_hook`` receives the live
        :class:`~repro.runtime.serve.PlanPool` for supervision.
        """
        from repro.runtime.serve import serve_batches

        return serve_batches(self, batches, workers, pool_hook=pool_hook)

    # ------------------------------------------------------------ integrity
    def capture_integrity_baseline(self) -> None:
        """Capture the SDC-defense baseline (checksum rows + constant CRCs).

        Called by :meth:`compile`; idempotent and cheap (one pass over the
        constant arrays), and re-runnable after an intentional mutation
        (tests, chaos harness) to re-baseline.
        """
        from repro.integrity import attach_checksums, snapshot_constants

        attach_checksums(self)
        self._scrub_baseline = snapshot_constants(self)

    def enable_abft(self, sample_every: int = 16):
        """Attach (or replace) the sampled ABFT checker; returns it.

        Every ``sample_every``-th batch one eligible op (round-robin) is
        verified against its compile-time checksum row and the live arena;
        a mismatch raises :class:`~repro.integrity.SDCDetected` from the
        offending ``plan(batch)`` call.
        """
        from repro.integrity import AbftChecker

        self._abft = AbftChecker(self, sample_every=sample_every)
        return self._abft

    def disable_abft(self) -> None:
        self._abft = None

    def scrub(self):
        """One synchronous scrub pass (constant CRCs + arena guards)."""
        from repro.integrity import scrub_plan

        return scrub_plan(self)

    # ----------------------------------------------------------- profiling
    def enable_profiling(self, sample_every: int = 16) -> OpProfiler:
        """Attach (or replace) the sampled per-op profiler; returns it."""
        self._profiler = OpProfiler(self, sample_every=sample_every)
        return self._profiler

    def disable_profiling(self) -> None:
        self._profiler = None

    def profile_report(self, top=None) -> Optional[Dict]:
        """The sampled profile breakdown, or ``None`` when never enabled."""
        return None if self._profiler is None else self._profiler.report(top)

    # ----------------------------------------------------------- reporting
    def reset_op_stats(self) -> None:
        """Zero the per-op timing accumulators (e.g. after warm-up)."""
        self._op_seconds[:] = 0.0
        self._op_calls[:] = 0
        self._batches = 0

    def op_report(self) -> List[Dict]:
        """Per-op cumulative timing rows, hottest first.

        Fused ops are expanded into their constituent source layers with
        their wall time split by work share, so the report keeps naming the
        same layers whatever the fusion level (and the seconds still sum to
        the true total).
        """
        total = float(self._op_seconds.sum()) or 1.0
        rows = []
        for i, op in enumerate(self.ops):
            secs = float(self._op_seconds[i])
            for kind, name, share in op.constituents():
                rows.append({
                    "index": i,
                    "kind": kind,
                    "name": name,
                    "calls": int(self._op_calls[i]),
                    "seconds": secs * share,
                    "share": secs * share / total,
                })
        return sorted(rows, key=lambda r: -r["seconds"])

    def signature(self) -> str:
        """Content hash of the full program (ops, wiring and parameters).

        Two compiles of the same model produce identical signatures — the
        determinism contract tested in ``tests/runtime``.
        """
        h = new_sig()
        h.update(repr((self.model_name, self.num_regs, self.output_reg)).encode())
        for op in self.ops:
            op.sig_update(h)
        return h.hexdigest()

    def describe(self) -> str:
        """Human-readable program listing."""
        lines = [f"plan for {self.model_name}: {len(self.ops)} ops, "
                 f"{self.num_regs} registers, output r{self.output_reg}"]
        for i, op in enumerate(self.ops):
            lines.append(f"  [{i:3d}] {op.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Plan(model={self.model_name}, ops={len(self.ops)}, "
                f"regs={self.num_regs})")
