"""Throughput mode: shard a batch stream across a worker pool.

Workers are forked so they inherit the compiled plan (weights, buffers,
cached indices) by copy-on-write — nothing is pickled.  Each in-flight batch
occupies one shared-memory slot pair (input / output), so the only per-batch
IPC is two small queue messages; the arrays themselves never cross the pipe.
Results are re-ordered to input order before being yielded.

Falls back to inline execution when ``workers < 2``, when the platform has
no ``fork`` start method, or for oversized batches that do not fit the slots
sized from the first batch.
"""
from __future__ import annotations

import collections
from typing import Iterable, Iterator

import numpy as np

from repro import telemetry


def _can_fork() -> bool:
    import multiprocessing as mp

    try:
        return "fork" in mp.get_all_start_methods()
    except Exception:
        return False


def _worker_main(plan, tasks, done, in_names, out_names, slot_shape, out_features):
    """Worker loop: map a shared-memory input slot to its output slot."""
    from multiprocessing import shared_memory

    # Workers are throughput engines; the parent keeps telemetry (a fork
    # inherits the enabled flag, and per-op spans from N processes would
    # interleave into one meaningless trace).
    telemetry.disable()
    in_shms = [shared_memory.SharedMemory(name=nm) for nm in in_names]
    out_shms = [shared_memory.SharedMemory(name=nm) for nm in out_names]
    max_n = slot_shape[0]
    try:
        while True:
            task = tasks.get()
            if task is None:
                return
            seq, slot, n = task
            try:
                x = np.ndarray(slot_shape, dtype=np.float32,
                               buffer=in_shms[slot].buf)[:n]
                y = plan(x)
                out = np.ndarray((max_n, out_features), dtype=np.float32,
                                 buffer=out_shms[slot].buf)
                out[:n] = y
                done.put((seq, slot, n, None))
            except Exception as exc:  # surface, don't hang the parent
                done.put((seq, slot, n, f"{type(exc).__name__}: {exc}"))
    finally:
        for shm in in_shms + out_shms:
            shm.close()


def serve_batches(plan, batches: Iterable, workers: int = 0) -> Iterator[np.ndarray]:
    batches = iter(batches)
    if workers < 2 or not _can_fork():
        for b in batches:
            yield plan(b)
        return

    try:
        first = next(batches)
    except StopIteration:
        return
    first = np.ascontiguousarray(np.asarray(
        getattr(first, "data", first), dtype=np.float32))
    yield from _serve_pool(plan, first, batches, workers)


def _serve_pool(plan, first: np.ndarray, rest: Iterator,
                workers: int) -> Iterator[np.ndarray]:
    import multiprocessing as mp
    from multiprocessing import shared_memory

    ctx = mp.get_context("fork")
    slot_shape = first.shape
    max_n = slot_shape[0]
    nslots = workers * 2
    in_shms, out_shms = [], []
    item = np.prod(slot_shape[1:], dtype=np.int64)
    for _ in range(nslots):
        in_shms.append(shared_memory.SharedMemory(
            create=True, size=int(max_n * item * 4)))
        out_shms.append(shared_memory.SharedMemory(
            create=True, size=int(max_n * plan.out_features * 4)))

    tasks = ctx.Queue()
    done = ctx.Queue()
    procs = [ctx.Process(
        target=_worker_main,
        args=(plan, tasks, done, [s.name for s in in_shms],
              [s.name for s in out_shms], slot_shape, plan.out_features),
        daemon=True) for _ in range(workers)]
    for proc in procs:
        proc.start()
    telemetry.emit("plan_serve_start", workers=workers, slots=nslots,
                   model=plan.model_name)

    free = collections.deque(range(nslots))
    pending = {}      # seq -> logits, completed out of order
    inline = {}       # seq -> logits computed in the parent (oversized batch)
    next_yield = 0
    seq = 0
    in_flight = 0
    exhausted = False

    def submit(batch) -> None:
        nonlocal seq, in_flight
        x = np.ascontiguousarray(np.asarray(
            getattr(batch, "data", batch), dtype=np.float32))
        if x.shape[0] > max_n or x.shape[1:] != slot_shape[1:]:
            inline[seq] = plan(x)  # shape outgrew the slots: run it here
            seq += 1
            return
        slot = free.popleft()
        view = np.ndarray(slot_shape, dtype=np.float32,
                          buffer=in_shms[slot].buf)
        view[:x.shape[0]] = x
        tasks.put((seq, slot, x.shape[0]))
        seq += 1
        in_flight += 1

    try:
        submit(first)
        while True:
            while not exhausted and free:
                try:
                    submit(next(rest))
                except StopIteration:
                    exhausted = True
            while next_yield in pending or next_yield in inline:
                store = pending if next_yield in pending else inline
                yield store.pop(next_yield)
                next_yield += 1
            if in_flight == 0:
                if exhausted:
                    break
                continue
            got_seq, slot, n, err = done.get()
            in_flight -= 1
            if err is not None:
                raise RuntimeError(f"plan worker failed on batch {got_seq}: {err}")
            out = np.ndarray((max_n, plan.out_features), dtype=np.float32,
                             buffer=out_shms[slot].buf)
            pending[got_seq] = out[:n].copy()
            free.append(slot)
    finally:
        for _ in procs:
            tasks.put(None)
        for proc in procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
        for shm in in_shms + out_shms:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
