"""Throughput mode: shard a batch stream across a worker pool.

Workers are forked so they inherit the compiled plan (weights, buffers,
cached indices) by copy-on-write — nothing is pickled.  Each in-flight batch
occupies one shared-memory slot pair (input / output), so the only per-batch
IPC is two small queue messages; the arrays themselves never cross the pipe.
Results are re-ordered to input order before being yielded.

The pool itself is factored out as :class:`PlanPool` so that the online
gateway (:mod:`repro.server`) can supervise it directly: the parent never
blocks indefinitely on the done queue — every wait carries a timeout and a
liveness check, so a crashed/SIGKILLed worker surfaces as a typed
:class:`WorkerDied` (naming the in-flight batches) instead of a hang, and
:meth:`PlanPool.respawn` rebuilds the pool for callers that want to requeue
and continue rather than abort.

``serve_batches`` falls back to inline execution when ``workers < 2``, when
the platform has no ``fork`` start method, or for oversized batches that do
not fit the slots sized from the first batch.
"""
from __future__ import annotations

import collections
import queue as _qmod
import time
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.telemetry import state as _tstate

#: how long one ``done.get`` blocks between pool liveness checks
_POLL_S = 0.2


def _can_fork() -> bool:
    import multiprocessing as mp

    try:
        return "fork" in mp.get_all_start_methods()
    except Exception:
        return False


class WorkerDied(RuntimeError):
    """A pool worker exited abnormally while the pool was serving.

    Workers only ever exit through the ``None`` shutdown sentinel, so any
    observed death (crash, OOM kill, SIGKILL) is abnormal.  ``in_flight``
    names the batch sequence numbers whose results can no longer be trusted
    to arrive; the caller decides whether to abort (offline ``serve``) or
    requeue-and-respawn (the online gateway).
    """

    def __init__(self, message: str, in_flight: Tuple[int, ...] = (),
                 exitcodes: Tuple[Optional[int], ...] = ()):
        super().__init__(message)
        self.in_flight = tuple(in_flight)
        self.exitcodes = tuple(exitcodes)


class BatchFailed(RuntimeError):
    """The plan raised inside a worker for one specific batch.

    Deterministic (the same batch fails inline too), so not retryable —
    unlike :class:`WorkerDied`.
    """

    def __init__(self, seq: int, message: str):
        super().__init__(message)
        self.seq = seq


def _worker_main(plan, tasks, done, in_names, out_names, slot_shape,
                 out_features, profile_every=0):
    """Worker loop: map a shared-memory input slot to its output slot.

    Tasks are ``(seq, slot, n, trace)`` where ``trace`` is ``None`` (the
    zero-overhead common case) or a list of ``(trace_id, parent_span_id)``
    wire tuples — one per request in the batch.  Completions are
    ``(seq, slot, n, err, extra)``; ``extra`` is ``None`` unless the batch
    was traced and/or profile-sampled, in which case it carries the
    worker-minted span records and/or the per-op timing rows back to the
    gateway.  Span timestamps are ``perf_counter`` (CLOCK_MONOTONIC), so
    they join the parent's gateway spans on one clock.
    """
    import os
    from multiprocessing import shared_memory

    from repro.telemetry import live as _live

    # Workers are throughput engines; the parent keeps telemetry (a fork
    # inherits the enabled flag, and per-op spans from N processes would
    # interleave into one meaningless trace).  The suppression is a guard,
    # not a bare disable(), so running this loop in-process (tests, inline
    # fallback re-entry) leaves the caller's telemetry state untouched.
    in_shms = [shared_memory.SharedMemory(name=nm) for nm in in_names]
    out_shms = [shared_memory.SharedMemory(name=nm) for nm in out_names]
    max_n = slot_shape[0]
    span_prefix = f"w{os.getpid()}"
    prof = None
    if profile_every and hasattr(plan, "enable_profiling"):
        prof = plan.enable_profiling(sample_every=profile_every)
    try:
        with _tstate.suppressed():
            while True:
                task = tasks.get()
                if task is None:
                    return
                seq, slot, n, trace = task
                try:
                    x = np.ndarray(slot_shape, dtype=np.float32,
                                   buffer=in_shms[slot].buf)[:n]
                    t0 = time.perf_counter()
                    y = plan(x)
                    t1 = time.perf_counter()
                    out = np.ndarray((max_n, out_features), dtype=np.float32,
                                     buffer=out_shms[slot].buf)
                    out[:n] = y
                    extra = None
                    if trace:
                        extra = {"spans": [
                            _live.span_record(
                                trace_id, "worker.exec", t0, t1,
                                parent_id=parent_id,
                                span_id=_live.new_span_id(span_prefix),
                                proc="worker", attrs={"n": n, "seq": seq})
                            for trace_id, parent_id in trace]}
                    if prof is not None:
                        sampled = prof.pop_last()
                        if sampled is not None:
                            rows, wall_s = sampled
                            extra = extra or {}
                            extra["profile"] = {"rows": rows,
                                                "wall_s": wall_s}
                    done.put((seq, slot, n, None, extra))
                except Exception as exc:  # surface, don't hang the parent
                    done.put((seq, slot, n,
                              f"{type(exc).__name__}: {exc}", None))
    finally:
        for shm in in_shms + out_shms:
            shm.close()


class PlanPool:
    """Forked worker pool over one compiled plan with shared-memory I/O.

    Slots are sized once from ``slot_shape`` (``(max_batch, *sample)``); a
    batch fits when it matches the sample shape and is no larger than the
    slot.  The pool is deliberately passive — callers drive it::

        pool = PlanPool(plan, (max_n, C, H, W), workers=4)
        pool.submit(seq, x)                  # needs pool.free_slots > 0
        seq, logits = pool.wait_one()        # raises WorkerDied / BatchFailed
        pool.respawn()                       # after WorkerDied: fresh procs,
                                             # caller re-submits in-flight work
        pool.close()
    """

    def __init__(self, plan, slot_shape: Tuple[int, ...], workers: int,
                 slots: Optional[int] = None, profile_every: int = 0):
        if workers < 2:
            raise ValueError("PlanPool needs workers >= 2")
        if not _can_fork():
            raise RuntimeError("PlanPool requires the 'fork' start method")
        import multiprocessing as mp
        from multiprocessing import shared_memory

        self.plan = plan
        self.slot_shape = tuple(int(s) for s in slot_shape)
        self.max_n = self.slot_shape[0]
        self.workers = workers
        self.profile_every = int(profile_every)
        self.nslots = int(slots) if slots else workers * 2
        self._ctx = mp.get_context("fork")
        item = np.prod(self.slot_shape[1:], dtype=np.int64)
        self._in_shms = [shared_memory.SharedMemory(
            create=True, size=int(self.max_n * item * 4))
            for _ in range(self.nslots)]
        self._out_shms = [shared_memory.SharedMemory(
            create=True, size=int(self.max_n * plan.out_features * 4))
            for _ in range(self.nslots)]
        self._free = collections.deque(range(self.nslots))
        #: seq -> (slot, n) for batches handed to the pool, not yet returned
        self.in_flight: Dict[int, Tuple[int, int]] = {}
        self._tasks = None
        self._done = None
        self.procs: List = []
        self.respawns = 0
        self._spawn()

    # ------------------------------------------------------------ lifecycle
    def _spawn(self) -> None:
        self._tasks = self._ctx.Queue()
        self._done = self._ctx.Queue()
        self.procs = [self._ctx.Process(
            target=_worker_main,
            args=(self.plan, self._tasks, self._done,
                  [s.name for s in self._in_shms],
                  [s.name for s in self._out_shms],
                  self.slot_shape, self.plan.out_features,
                  self.profile_every),
            daemon=True) for _ in range(self.workers)]
        for proc in self.procs:
            proc.start()

    def _kill_procs(self) -> None:
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5)
        self.procs = []

    def _drop_queues(self) -> None:
        # A SIGKILLed worker can die holding a queue lock, poisoning it for
        # every later reader — respawn therefore abandons the old queue pair
        # entirely instead of draining it.
        for q in (self._tasks, self._done):
            if q is not None:
                try:
                    q.cancel_join_thread()
                    q.close()
                except Exception:
                    pass
        self._tasks = self._done = None

    def respawn(self) -> None:
        """Kill everything and restart with fresh queues and empty slots.

        All in-flight state is dropped — the caller owns the requeue policy
        (the gateway re-submits each lost batch exactly once).
        """
        self._kill_procs()
        self._drop_queues()
        self.in_flight.clear()
        self._free = collections.deque(range(self.nslots))
        self.respawns += 1
        self._spawn()

    def close(self) -> None:
        """Graceful shutdown: sentinel every worker, then reap and unlink."""
        if self._tasks is not None:
            for _ in self.procs:
                try:
                    self._tasks.put(None)
                except Exception:
                    break
        self._kill_procs()
        self._drop_queues()
        for shm in self._in_shms + self._out_shms:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._in_shms = []
        self._out_shms = []

    # ------------------------------------------------------------ data path
    @property
    def free_slots(self) -> int:
        return len(self._free)

    def fits(self, x: np.ndarray) -> bool:
        return (x.shape[0] <= self.max_n
                and tuple(x.shape[1:]) == self.slot_shape[1:])

    def submit(self, seq: int, x: np.ndarray, trace=None) -> None:
        """Copy ``x`` into a free slot and enqueue it for the workers.

        ``trace`` (optional) is a list of ``(trace_id, parent_span_id)``
        wire tuples, one per request in the batch; the worker answers with
        a ``worker.exec`` span record under each parent.
        """
        if not self._free:
            raise RuntimeError("PlanPool.submit with no free slot")
        if not self.fits(x):
            raise ValueError(
                f"batch shape {x.shape} does not fit slot {self.slot_shape}")
        slot = self._free.popleft()
        view = np.ndarray(self.slot_shape, dtype=np.float32,
                          buffer=self._in_shms[slot].buf)
        view[:x.shape[0]] = x
        self.in_flight[seq] = (slot, x.shape[0])
        self._tasks.put((seq, slot, x.shape[0], trace))

    def _check_alive(self) -> None:
        dead = [p for p in self.procs if not p.is_alive()]
        if dead:
            raise WorkerDied(
                f"{len(dead)}/{len(self.procs)} plan worker(s) died "
                f"(exit codes {[p.exitcode for p in dead]}) with "
                f"{len(self.in_flight)} batch(es) in flight: "
                f"{sorted(self.in_flight)}",
                in_flight=sorted(self.in_flight),
                exitcodes=tuple(p.exitcode for p in dead))

    def wait_one(self, timeout: Optional[float] = None) -> Tuple[int, np.ndarray]:
        """Block for one completion; never hangs on a dead pool.

        Raises :class:`WorkerDied` the moment any worker is observed dead,
        :class:`BatchFailed` when the plan raised for a batch, and
        ``TimeoutError`` when ``timeout`` elapses with all workers healthy.
        """
        seq, out, _extra = self.wait_one_ex(timeout)
        return seq, out

    def wait_one_ex(self, timeout: Optional[float] = None
                    ) -> Tuple[int, np.ndarray, Optional[Dict]]:
        """Like :meth:`wait_one` but also returns the worker's observability
        payload: ``None``, or a dict with ``spans`` (worker span records for
        a traced batch) and/or ``profile`` (sampled per-op timing rows)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            self._check_alive()
            wait = _POLL_S
            if deadline is not None:
                wait = min(wait, deadline - time.monotonic())
                if wait <= 0:
                    raise TimeoutError("no completion within timeout")
            try:
                seq, slot, n, err, extra = self._done.get(timeout=wait)
            except _qmod.Empty:
                continue
            self.in_flight.pop(seq, None)
            self._free.append(slot)
            if err is not None:
                raise BatchFailed(seq, f"plan worker failed on batch {seq}: {err}")
            out = np.ndarray((self.max_n, self.plan.out_features),
                             dtype=np.float32, buffer=self._out_shms[slot].buf)
            return seq, out[:n].copy(), extra


def serve_batches(plan, batches: Iterable, workers: int = 0,
                  pool_hook=None) -> Iterator[np.ndarray]:
    """Stream logits for ``batches`` in input order (see module docstring).

    ``pool_hook`` is the supervision hook: called once with the live
    :class:`PlanPool` right after it spawns, so callers (gateway, tests) can
    watch or perturb the pool without threading state through the generator.
    """
    batches = iter(batches)
    if workers < 2 or not _can_fork():
        for b in batches:
            yield plan(b)
        return

    try:
        first = next(batches)
    except StopIteration:
        return
    first = np.ascontiguousarray(np.asarray(
        getattr(first, "data", first), dtype=np.float32))
    yield from _serve_pool(plan, first, batches, workers, pool_hook)


def _serve_pool(plan, first: np.ndarray, rest: Iterator, workers: int,
                pool_hook=None) -> Iterator[np.ndarray]:
    pool = PlanPool(plan, first.shape, workers)
    if pool_hook is not None:
        pool_hook(pool)
    telemetry.emit("plan_serve_start", workers=workers, slots=pool.nslots,
                   model=plan.model_name)

    pending = {}      # seq -> logits, completed out of order
    inline = {}       # seq -> logits computed in the parent (oversized batch)
    next_yield = 0
    seq = 0
    exhausted = False

    def submit(batch) -> None:
        nonlocal seq
        x = np.ascontiguousarray(np.asarray(
            getattr(batch, "data", batch), dtype=np.float32))
        if not pool.fits(x):
            inline[seq] = plan(x)  # shape outgrew the slots: run it here
        else:
            pool.submit(seq, x)
        seq += 1

    try:
        submit(first)
        while True:
            while not exhausted and pool.free_slots:
                try:
                    submit(next(rest))
                except StopIteration:
                    exhausted = True
            while next_yield in pending or next_yield in inline:
                store = pending if next_yield in pending else inline
                yield store.pop(next_yield)
                next_yield += 1
            if not pool.in_flight:
                if exhausted:
                    break
                continue
            try:
                got_seq, out = pool.wait_one()
            except WorkerDied as exc:
                raise RuntimeError(
                    f"plan.serve worker died mid-stream; in-flight batches "
                    f"{list(exc.in_flight)} are lost (exit codes "
                    f"{list(exc.exitcodes)})") from exc
            except BatchFailed as exc:
                raise RuntimeError(str(exc)) from exc
            pending[got_seq] = out
    finally:
        pool.close()
