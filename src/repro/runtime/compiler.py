"""Plan compiler: flatten a re-packed deploy model into a linear op program.

The compiler walks the four supported deploy architectures (``QResNet``,
``QMobileNetV1``, ``QVGG``, ``QVisionTransformer``) **structurally** — it
mirrors exactly what each deploy ``forward`` executes, op for op, so the
compiled program is bit-exact against the interpreted tree by construction.

While walking, it tracks the proven integer code range of every register
(input grid, MulQuant clamp ranges, residual clamps); each convolution's
worst-case accumulator bound over its input range decides whether the fused
kernel may take the single-big-GEMM fast path (see
:mod:`repro.runtime.kernels`) or must replicate the interpreted per-sample
GEMM order.
"""
from __future__ import annotations

from typing import Dict, Tuple

from repro.runtime import kernels
from repro.runtime.program import (AttentionOp, CallModuleOp, ConvMQOp,
                                   ConvRawOp, GapMQOp, HeadOp, InputQuantOp,
                                   LinearMQOp, MaxPoolOp, MLPOp, MulQuantOp,
                                   ResidualOp, TokensOp)
from repro.runtime.spec import _UNSET, CompileSpec, warn_legacy_compile_kwarg


class CompileError(RuntimeError):
    """The model cannot be compiled into a runtime plan."""


class _Builder:
    """Accumulates ops, register ids and proven integer ranges."""

    def __init__(self, qnn, fusion: str = "requant"):
        self.qnn = qnn
        self.fusion = fusion
        self.names: Dict[int, str] = {id(m): n for n, m in qnn.named_modules()}
        self.ops = []
        self.num_regs = 1  # register 0 is the model input
        self.ranges: Dict[int, Tuple[float, float]] = {}

    def name_of(self, module) -> str:
        return self.names.get(id(module), type(module).__name__)

    def new_reg(self) -> int:
        r = self.num_regs
        self.num_regs += 1
        return r

    def emit(self, op, out_range=None) -> int:
        self.ops.append(op)
        if out_range is not None:
            self.ranges[op.dst] = (float(out_range[0]), float(out_range[1]))
        return op.dst

    # ---------------------------------------------------------- shared ops
    def input_quant(self, iq, src: int) -> int:
        dst = self.new_reg()
        return self.emit(
            InputQuantOp(self.name_of(iq), (src,), dst,
                         float(iq.scale.data), iq.qlb, iq.qub),
            out_range=(iq.qlb, iq.qub))

    def conv_unit(self, unit, src: int) -> int:
        """A re-packed QConvBNReLU: vanilla integer conv + its MulQuant."""
        conv, mq = unit.conv, unit.mq
        if mq is None:
            raise CompileError(
                f"{self.name_of(unit)}: no MulQuant wired — run T2C.fuse() "
                "before nn2chip()")
        in_range = self.ranges.get(src)
        if in_range is None:
            raise CompileError(
                f"{self.name_of(unit)}: input register has no proven integer "
                "range; cannot certify the fused conv kernel")
        weight = conv.weight.data
        bound = kernels.conv_reassociation_bound(weight, in_range)
        exact = bound < kernels.EXACT_F32_LIMIT
        dst = self.new_reg()
        if self.fusion == "none":
            # raw accumulator + standalone requant: the pre-fusion view
            self.emit(ConvRawOp(self.name_of(unit), (src,), dst, weight,
                                conv.stride, conv.padding, conv.groups,
                                exact_reassoc=exact, bound=bound),
                      out_range=(-bound, bound))
            return self.mulquant(mq, dst)
        return self.emit(
            ConvMQOp(self.name_of(unit), (src,), dst, weight, conv.stride,
                     conv.padding, conv.groups, kernels.MQParams.of(mq),
                     exact_reassoc=exact, bound=bound),
            out_range=(mq.out_lo, mq.out_hi))

    def mulquant(self, mq, src: int) -> int:
        dst = self.new_reg()
        return self.emit(MulQuantOp(self.name_of(mq), (src,), dst,
                                    kernels.MQParams.of(mq)),
                         out_range=(mq.out_lo, mq.out_hi))

    def residual(self, owner, a: int, s: int, res_scale, clamp) -> int:
        dst = self.new_reg()
        return self.emit(
            ResidualOp(self.name_of(owner), (a, s), dst, res_scale,
                       clamp[0], clamp[1]),
            out_range=clamp)

    def gap_fc(self, model, src: int) -> int:
        """Shared CNN tail: global-average-pool + mq_pool + fc logits."""
        if model.mq_pool is None:
            raise CompileError("mq_pool missing — model is not fully fused")
        dst = self.new_reg()
        pooled = self.emit(GapMQOp(self.name_of(model.mq_pool), (src,), dst,
                                   kernels.MQParams.of(model.mq_pool)))
        fc = model.fc
        out = self.new_reg()
        return self.emit(LinearMQOp(self.name_of(fc), (pooled,), out,
                                    fc.linear.weight.data,
                                    kernels.MQParams.of(fc.mq)))


# ------------------------------------------------------------ architectures
def _compile_resnet(b: _Builder) -> int:
    from repro.core.qmodels import QBasicBlock, QBottleneck

    m = b.qnn
    r = b.input_quant(m.input_q, 0)
    r = b.conv_unit(m.stem, r)
    for blk in m.blocks:
        if isinstance(blk, QBasicBlock):
            a = b.conv_unit(blk.unit2, b.conv_unit(blk.unit1, r))
        elif isinstance(blk, QBottleneck):
            a = b.conv_unit(blk.unit3, b.conv_unit(blk.unit2, b.conv_unit(blk.unit1, r)))
        else:
            raise CompileError(f"unknown residual block {type(blk).__name__}")
        if blk.down is not None:
            s = b.conv_unit(blk.down, r)
        else:
            s = b.mulquant(blk.mq_id, r)
        r = b.residual(blk, a, s, blk.res_scale, blk.out_clamp)
    return b.gap_fc(m, r)


def _compile_mobilenet(b: _Builder) -> int:
    m = b.qnn
    r = b.input_quant(m.input_q, 0)
    for unit in m.units:
        r = b.conv_unit(unit, r)
    return b.gap_fc(m, r)


def _compile_vgg(b: _Builder) -> int:
    from repro import nn
    from repro.core.qmodels import QConvBNReLU

    m = b.qnn
    r = b.input_quant(m.input_q, 0)
    for step in m.chain:
        if isinstance(step, QConvBNReLU):
            r = b.conv_unit(step, r)
        elif isinstance(step, nn.MaxPool2d):
            dst = b.new_reg()
            r = b.emit(MaxPoolOp(b.name_of(step), (r,), dst,
                                 step.kernel_size, step.stride),
                       out_range=b.ranges[r])
        else:
            raise CompileError(f"unexpected chain step {type(step).__name__}")
    return b.gap_fc(m, r)


def _ln(b: _Builder, unit, src: int) -> int:
    """QLNUnit: fused running-stats table, or the interpreted instant path."""
    if unit.running_stats:
        if unit.mq is None:
            raise CompileError(f"{b.name_of(unit)}: running-stats LayerNorm "
                               "without a fused MulQuant")
        return b.mulquant(unit.mq, src)
    dst = b.new_reg()
    return b.emit(CallModuleOp(b.name_of(unit), (src,), dst, unit))


def _compile_vit(b: _Builder) -> int:
    m = b.qnn
    r = b.input_quant(m.input_q, 0)
    r = b.conv_unit(m.patch, r)
    dst = b.new_reg()
    r = b.emit(TokensOp(b.name_of(m), (r,), dst, m.cls_int.data, m.pos_int.data,
                        m.embed_q.qlb, m.embed_q.qub),
               out_range=(m.embed_q.qlb, m.embed_q.qub))
    for blk in m.blocks:
        attn = blk.attn
        a_in = _ln(b, blk.ln1, r)
        a_dst = b.new_reg()
        a = b.emit(AttentionOp(
            b.name_of(attn), (a_in,), a_dst,
            attn.qkv.weight.data, attn.proj.weight.data,
            kernels.MQParams.of(attn.mq_qkv), kernels.MQParams.of(attn.mq_score),
            kernels.MQParams.of(attn.mq_ctx), kernels.MQParams.of(attn.mq_proj),
            attn.lut_softmax.table.data, attn.lut_softmax.prob_bits,
            attn.num_heads, attn.head_dim))
        s = b.mulquant(blk.mq_id1, r)
        r = b.residual(blk, a, s, blk.res_scale, (blk.rq1.qlb, blk.rq1.qub))
        mlp = blk.mlp
        m_in = _ln(b, blk.ln2, r)
        m_dst = b.new_reg()
        mo = b.emit(MLPOp(
            b.name_of(mlp), (m_in,), m_dst,
            mlp.fc1.weight.data, mlp.fc2.weight.data,
            kernels.MQParams.of(mlp.mq_fc1), kernels.MQParams.of(mlp.mq_fc2),
            mlp.lut_gelu.table.data, mlp.lut_gelu.in_qlb, mlp.lut_gelu.in_qub))
        s2 = b.mulquant(blk.mq_id2, r)
        r = b.residual(blk, mo, s2, blk.res_scale, (blk.rq2.qlb, blk.rq2.qub))
    r = _ln(b, m.norm, r)
    head = m.head
    out = b.new_reg()
    return b.emit(HeadOp(b.name_of(head), (r,), out, head.linear.weight.data,
                         kernels.MQParams.of(head.mq)))


def compile_program(qnn, spec: CompileSpec = None, *, layout=_UNSET):
    """Compile a re-packed deploy model into an executable :class:`Plan`.

    ``spec`` (a :class:`repro.runtime.CompileSpec`) is the single compile
    configuration: fusion level, register layout and native-kernel
    tiling/threading.  Defaults to ``CompileSpec()`` (full fusion, auto
    layout).  The layout resolves as before: ``"channel"`` uses channel-major
    padded registers and the native conv kernel (CNN architectures only),
    ``"batch"`` replicates the interpreted numpy sequence over plain
    ``(N, C, H, W)`` registers, and ``"auto"`` selects ``channel`` whenever
    the architecture supports it and the native kernel is available.

    The ``layout=`` keyword is the pre-CompileSpec surface; it keeps working
    but emits a :class:`DeprecationWarning` and routes through the spec.
    """
    from repro import telemetry
    from repro.core.qmodels import QMobileNetV1, QResNet
    from repro.core.qvgg import QVGG
    from repro.core.qvit import QVisionTransformer
    from repro.core.vanilla import InputQuant
    from repro.runtime import ckernel
    from repro.runtime.executor import Plan
    from repro.runtime.fusion import fuse_plan

    if layout is not _UNSET:
        warn_legacy_compile_kwarg("compile_program", "layout", "layout")
        if layout not in ("auto", "channel", "batch"):
            raise CompileError(f"unknown layout {layout!r}; "
                               "expected 'auto', 'channel' or 'batch'")
        spec = (spec if spec is not None else CompileSpec()).evolve(layout=layout)
    elif spec is None:
        spec = CompileSpec()

    if not isinstance(getattr(qnn, "input_q", None), InputQuant):
        raise CompileError(
            "Plan.compile expects the re-packed deploy model returned by "
            "T2C.nn2chip() (its input_q must be the vanilla InputQuant); got "
            f"{type(qnn).__name__}")

    cnn = isinstance(qnn, (QResNet, QMobileNetV1, QVGG))
    resolved = spec.layout
    if resolved == "auto":
        resolved = "channel" if cnn and ckernel.available() else "batch"
        if cnn and resolved == "batch":
            telemetry.emit("plan_layout_fallback", model=type(qnn).__name__,
                           reason="native kernel unavailable")
    elif resolved == "channel" and not cnn:
        raise CompileError(
            f"channel layout supports CNN architectures only, not "
            f"{type(qnn).__name__}")

    b = _Builder(qnn, fusion=spec.fusion)
    if isinstance(qnn, QResNet):
        out_reg = _compile_resnet(b)
    elif isinstance(qnn, QMobileNetV1):
        out_reg = _compile_mobilenet(b)
    elif isinstance(qnn, QVGG):
        out_reg = _compile_vgg(b)
    elif isinstance(qnn, QVisionTransformer):
        out_reg = _compile_vit(b)
    else:
        raise CompileError(
            f"no compiler for architecture {type(qnn).__name__}; supported: "
            "QResNet, QMobileNetV1, QVGG, QVisionTransformer")

    ops = b.ops
    fusion_stats = {"fused": 0, "folded_smq": 0}
    if spec.fusion == "full":
        ops, fusion_stats = fuse_plan(ops, out_reg)

    fc_weight = (qnn.head.linear.weight if isinstance(qnn, QVisionTransformer)
                 else qnn.fc.linear.weight)
    plan = Plan(ops, num_regs=b.num_regs, output_reg=out_reg,
                model_name=type(qnn).__name__,
                out_features=fc_weight.data.shape[0],
                layout=resolved, spec=spec)
    plan.fusion_stats = fusion_stats
    return plan
