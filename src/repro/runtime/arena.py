"""Activation arena for the compiled runtime.

The :class:`Arena` owns the per-batch-shape register buffers.  Registers
are written once per program execution, so a buffer stays valid until the
next batch overwrites it; ops that need skip connections simply read a
register that was produced earlier in the program.

Two layouts exist:

* ``batch`` — registers are plain ``(N, C, H, W)`` arrays assigned by the
  ops; this is the interpreted-replication layout, valid everywhere.
* ``channel`` — feature-map registers are preallocated channel-major
  ``(C, N, Hp, Wp)`` buffers with the consumer convs' zero padding baked
  into the border.  Per channel, the sample planes are contiguous, which is
  what lets the native conv kernel accumulate whole sample blocks in single
  long passes.  The border is zeroed once at allocation and never written
  again — padding is free after the first batch.

Pad planning (:func:`plan_pads`) gives every feature-map register the
maximum padding any consuming conv needs; a conv with smaller padding
simply starts its tap window ``register_pad - conv_pad`` positions in from
the buffer edge.
"""
from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

Shape = Tuple[int, ...]


def plan_pads(ops: List, shapes: Dict[int, Shape]) -> Dict[int, int]:
    """Per-register border padding: max over consuming convs' padding."""
    pads: Dict[int, int] = {}
    for reg, shape in shapes.items():
        if len(shape) == 3:
            pads[reg] = 0
    for op in ops:
        if op.kind in ("conv_mq", "conv_raw", "conv_mq_res"):
            src = op.src[0]
            if src in pads:
                pads[src] = max(pads[src], op.padding)
    return pads


class Arena:
    """Preallocated register file for one (batch size, input shape) binding."""

    def __init__(self, n: int, num_regs: int, layout: str = "batch",
                 spec=None):
        if spec is None:
            from repro.runtime.spec import CompileSpec
            spec = CompileSpec()
        self.n = n
        self.layout = layout
        self.spec = spec
        self.regs = [None] * num_regs
        # per-sample shapes, filled during shape inference at bind time
        self.shapes: Dict[int, Shape] = {}
        # channel layout state: register pad widths and padded buffers
        self.pads: Dict[int, int] = {}
        self._cm_bufs: Dict[int, np.ndarray] = {}
        self._cm_centers: Dict[int, np.ndarray] = {}
        self._bytes = 0

    def alloc(self, shape: Shape, dtype=np.float32,
              zero: bool = False) -> np.ndarray:
        """Allocate a batch buffer ``(n, *shape)`` owned by this arena."""
        buf = (np.zeros if zero else np.empty)((self.n,) + tuple(shape), dtype=dtype)
        self._bytes += buf.nbytes
        return buf

    # ---------------------------------------------------- channel layout
    def cm_buffer(self, reg: int) -> np.ndarray:
        """The padded ``(C, N, Hp, Wp)`` buffer of a channel-major register."""
        buf = self._cm_bufs.get(reg)
        if buf is None:
            c, h, w = self.shapes[reg]
            p = self.pads.get(reg, 0)
            buf = np.zeros((c, self.n, h + 2 * p, w + 2 * p), dtype=np.float32)
            self._bytes += buf.nbytes
            self._cm_bufs[reg] = buf
            self._cm_centers[reg] = buf[:, :, p:p + h, p:p + w]
        return buf

    def cm_center(self, reg: int) -> np.ndarray:
        """The valid ``(C, N, H, W)`` view inside the padded buffer."""
        self.cm_buffer(reg)
        return self._cm_centers[reg]

    @property
    def nbytes(self) -> int:
        return self._bytes
