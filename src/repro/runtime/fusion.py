"""Plan-level operator fusion (fusion level ``"full"``).

The compiler emits residual blocks as a three-op chain over the register
file::

    conv_mq   r_in        -> r_a     # main-path conv + requant
    mulquant  r_skip      -> r_s     # identity-shortcut requant
    residual  r_a, r_s    -> r_out   # (a + s) / res_scale, round, clamp

This pass collapses the chain into one ``conv_mq_res`` op whose epilogue
applies the requant, shortcut requant and residual merge while the conv
accumulator rows are still hot — ``r_a``/``r_s`` are never written, so the
intermediates cost no arena memory and no kernel store/load round-trip.

Legality is *proven*, not assumed, via the PR-7 liveness analysis
(:func:`repro.lint.plan.plan_liveness`): an op is folded only when its
destination register has **exactly one reader** (the residual being fused)
and is not the program output.  Any extra reader — a later skip connection,
a debug tap, the output itself — keeps the chain unfused, which is always
correct because every fused stage replicates the standalone op bit-exactly.
"""
from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, List, Tuple

from repro.runtime.program import ConvMQOp, ConvMQResOp, MulQuantOp, ResidualOp


def _only_reader(live, reg: int, reader: int, output_reg: int) -> bool:
    """True iff ``reg`` is read exactly once, by op ``reader``, and is not
    the program output (which always has an implicit external reader)."""
    return reg != output_reg and live.uses.get(reg) == [reader]


def fuse_plan(ops: List, output_reg: int) -> Tuple[List, Dict[str, int]]:
    """Fuse conv→requant→residual chains; returns ``(new_ops, stats)``.

    ``stats`` counts ``{"fused": chains merged, "folded_smq": shortcut
    requants folded into those chains}``.  Ops whose chains fail the
    liveness proof are passed through untouched.
    """
    from repro.lint.plan import plan_liveness

    live = plan_liveness(SimpleNamespace(ops=list(ops), output_reg=output_reg))
    producer = {op.dst: i for i, op in enumerate(ops)}
    removed = set()
    fused: Dict[int, ConvMQResOp] = {}
    stats = {"fused": 0, "folded_smq": 0}

    for j, op in enumerate(ops):
        if not isinstance(op, ResidualOp):
            continue
        # pick the operand produced by a fusable conv (residual's f32 add is
        # commutative, so either side works bit-exactly)
        conv_i = None
        for a in op.src:
            i = producer.get(a)
            if (i is not None and i not in removed
                    and isinstance(ops[i], ConvMQOp)
                    and _only_reader(live, a, j, output_reg)):
                conv_i = i
                break
        if conv_i is None:
            continue
        conv = ops[conv_i]
        shortcut = op.src[1] if op.src[0] == conv.dst else op.src[0]
        # fold the shortcut's own requant when it too has a single reader
        smq = smq_name = None
        k = producer.get(shortcut)
        if (k is not None and k not in removed and isinstance(ops[k], MulQuantOp)
                and _only_reader(live, shortcut, j, output_reg)):
            smq, smq_name = ops[k].mq, ops[k].name
            shortcut = ops[k].src[0]
            removed.add(k)
            stats["folded_smq"] += 1
        removed.add(conv_i)
        fused[j] = ConvMQResOp(
            conv.name, (conv.src[0], shortcut), op.dst,
            conv.weight, conv.stride, conv.padding, conv.groups, conv.mq,
            conv.exact_reassoc, conv.bound, op.res_scale, op.lo, op.hi,
            op.name, smq=smq, smq_name=smq_name)
        stats["fused"] += 1

    new_ops = []
    for j, op in enumerate(ops):
        if j in removed:
            continue
        new_ops.append(fused.get(j, op))
    return new_ops, stats
