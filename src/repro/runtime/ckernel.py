"""Build-on-first-use native conv kernel for the compiled runtime.

The fused conv+requant kernel lives in three C translation units under
``_ck/`` — they are compiled with different floating-point contraction
settings (the f32 accumulation may fuse because the compiler certified an
exact-integer bound; the f64 requant epilogue must not), so they cannot be
merged.  The first call to :func:`load` compiles them into a shared library
cached under ``~/.cache/repro/ckernel`` (override with
``REPRO_CKERNEL_CACHE``), keyed by a digest of the sources, flags and
machine; later processes reuse the cached binary.

Everything degrades gracefully: no C compiler, a failed build, or the
``REPRO_NO_CKERNEL=1`` kill switch all leave :func:`load` returning ``None``
and the runtime falls back to the interpreted-replication plan layout
(bit-exact, just slower).  A telemetry event records which way it went.
"""
from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import subprocess
import tempfile
from typing import List, Optional

from repro import telemetry

_SRC_DIR = os.path.join(os.path.dirname(__file__), "_ck")
_SOURCES = (
    # (filename, extra compile flags)
    ("conv_acc.c", ("-ffp-contract=fast",)),
    ("requant.c", ("-ffp-contract=off",)),
    ("driver.c", ("-ffp-contract=off",)),
)
_BASE_FLAGS = ("-O3", "-fno-math-errno", "-fPIC", "-pthread")

_loaded = False
_kernel: Optional["CKernel"] = None


class CKernel:
    """ctypes facade over the compiled conv library."""

    def __init__(self, lib: ctypes.CDLL, path: str):
        self._lib = lib
        self.path = path
        lib.conv_mq_taps_cap.restype = ctypes.c_int64
        lib.conv_mq_taps_cap.argtypes = []
        lib.conv_mq_cm.restype = None
        lib.conv_mq_cm.argtypes = (
            [ctypes.c_void_p, ctypes.c_void_p,
             ctypes.c_void_p, ctypes.c_int64,
             ctypes.c_void_p, ctypes.c_int64,
             ctypes.c_double, ctypes.c_double,
             ctypes.c_void_p, ctypes.c_void_p]
            + [ctypes.c_int64] * 19)
        lib.conv_mq_res_cm.restype = None
        lib.conv_mq_res_cm.argtypes = (
            [ctypes.c_void_p, ctypes.c_void_p,      # P, w
             ctypes.c_void_p, ctypes.c_int64,       # m, mlen
             ctypes.c_void_p, ctypes.c_int64,       # b, blen
             ctypes.c_double, ctypes.c_double,      # lo, hi
             ctypes.c_void_p,                       # S
             ctypes.c_void_p, ctypes.c_int64,       # sm, smlen
             ctypes.c_void_p, ctypes.c_int64,       # sb, sblen
             ctypes.c_double, ctypes.c_double,      # slo, shi
             ctypes.c_int64,                        # has_smq
             ctypes.c_double, ctypes.c_double, ctypes.c_double,  # rs, rlo, rhi
             ctypes.c_void_p, ctypes.c_void_p]      # Q, acc
            + [ctypes.c_int64] * 22)
        lib.mulquant_cm.restype = None
        lib.mulquant_cm.argtypes = (
            [ctypes.c_void_p, ctypes.c_int64,
             ctypes.c_void_p, ctypes.c_int64,
             ctypes.c_void_p, ctypes.c_int64,
             ctypes.c_double, ctypes.c_double,
             ctypes.c_void_p] + [ctypes.c_int64] * 9)
        lib.residual_cm.restype = None
        lib.residual_cm.argtypes = (
            [ctypes.c_void_p, ctypes.c_int64,
             ctypes.c_void_p, ctypes.c_int64,
             ctypes.c_void_p, ctypes.c_int64,
             ctypes.c_float, ctypes.c_float, ctypes.c_float]
            + [ctypes.c_int64] * 4)
        self.taps_cap = int(lib.conv_mq_taps_cap())

    def conv_mq_cm(self, P, w, m, b, lo, hi, Q, acc, *,
                   C, N, Hp, Wp, O, kh, kw, stride, in_off,
                   Hq, Wq, out_off, OH, OW, groups,
                   nb=0, ob_step=0, threads=1) -> None:
        """Run the fused conv+MulQuant on channel-major padded registers.

        ``nb`` is the sample-block size (0 = one sample at a time),
        ``ob_step`` the output-channel register blocking (0 = auto) and
        ``threads`` the worker count; any combination is bit-exact — the
        accumulation order is covered by the compiler's exact-reassociation
        certificate and output writes are disjoint.  The caller keeps every
        array referenced for the duration of the call; raw pointers are
        taken here and nothing is retained.
        """
        self._lib.conv_mq_cm(
            P.ctypes.data, w.ctypes.data, m.ctypes.data, m.size,
            b.ctypes.data, b.size, lo, hi, Q.ctypes.data, acc.ctypes.data,
            acc.size, C, N, Hp, Wp, O, kh, kw, stride, in_off,
            Hq, Wq, out_off, OH, OW, groups, nb, ob_step, threads)

    def conv_mq_res_cm(self, P, w, m, b, lo, hi, S, sm, sb, slo, shi,
                       has_smq, rs, rlo, rhi, Q, acc, *,
                       C, N, Hp, Wp, O, kh, kw, stride, in_off,
                       Hq, Wq, out_off, OH, OW, groups,
                       nb=0, ob_step=0, threads=1,
                       Hs, Ws, s_off) -> None:
        """Fused conv+MulQuant+residual-add (optionally folding the
        shortcut's own MulQuant when ``has_smq``); same tiling/threading
        contract as :meth:`conv_mq_cm`."""
        self._lib.conv_mq_res_cm(
            P.ctypes.data, w.ctypes.data, m.ctypes.data, m.size,
            b.ctypes.data, b.size, lo, hi, S.ctypes.data,
            sm.ctypes.data, sm.size, sb.ctypes.data, sb.size, slo, shi,
            has_smq, rs, rlo, rhi, Q.ctypes.data, acc.ctypes.data,
            acc.size, C, N, Hp, Wp, O, kh, kw, stride, in_off,
            Hq, Wq, out_off, OH, OW, groups, nb, ob_step, threads,
            Hs, Ws, s_off)

    def mulquant_cm(self, P, ps, m, b, lo, hi, Q, *,
                    C, N, Hp, Wp, Hq, Wq, out_off, H, W) -> None:
        """Standalone requant over a channel-major register pair."""
        self._lib.mulquant_cm(
            P.ctypes.data, ps, m.ctypes.data, m.size, b.ctypes.data, b.size,
            lo, hi, Q.ctypes.data, C, N, Hp, Wp, Hq, Wq, out_off, H, W)

    def residual_cm(self, A, pa, S, ps, Q, pq, rs, lo, hi, *,
                    C, N, H, W) -> None:
        """Integer residual merge over channel-major registers."""
        self._lib.residual_cm(A.ctypes.data, pa, S.ctypes.data, ps,
                              Q.ctypes.data, pq, rs, lo, hi, C, N, H, W)


def _cache_dir() -> str:
    env = os.environ.get("REPRO_CKERNEL_CACHE")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "ckernel")


def _compilers() -> List[str]:
    seen, out = set(), []
    for cc in (os.environ.get("CC"), "cc", "gcc"):
        if cc and cc not in seen:
            seen.add(cc)
            out.append(cc)
    return out


def _digest(flag_sets: List[List[str]], cc: str) -> str:
    h = hashlib.sha256()
    h.update(platform.machine().encode())
    h.update(cc.encode())
    for (fname, _), flags in zip(_SOURCES, flag_sets):
        h.update(" ".join(flags).encode())
        with open(os.path.join(_SRC_DIR, fname), "rb") as f:
            h.update(f.read())
    return h.hexdigest()[:16]


def _try_build(cc: str, native: bool, cache: str) -> Optional[str]:
    arch = ["-march=native"] if native else []
    flag_sets = [list(_BASE_FLAGS) + arch + list(extra)
                 for _, extra in _SOURCES]
    sopath = os.path.join(cache, f"conv_mq_{_digest(flag_sets, cc)}.so")
    if os.path.exists(sopath):
        return sopath
    os.makedirs(cache, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=cache) as tmp:
        objs = []
        for (fname, _), flags in zip(_SOURCES, flag_sets):
            obj = os.path.join(tmp, fname.replace(".c", ".o"))
            cmd = [cc, *flags, "-c", "-o", obj,
                   os.path.join(_SRC_DIR, fname)]
            r = subprocess.run(cmd, capture_output=True, timeout=120)
            if r.returncode != 0:
                return None
            objs.append(obj)
        tmp_so = os.path.join(tmp, "lib.so")
        r = subprocess.run([cc, "-shared", "-pthread", "-o", tmp_so,
                            *objs, "-lm"],
                           capture_output=True, timeout=120)
        if r.returncode != 0:
            return None
        os.replace(tmp_so, sopath)  # atomic within the cache dir
    return sopath


def load() -> Optional[CKernel]:
    """Return the native kernel, building it on first use; None if unavailable."""
    global _loaded, _kernel
    if _loaded:
        return _kernel
    _loaded = True
    if os.environ.get("REPRO_NO_CKERNEL", "") not in ("", "0"):
        telemetry.emit("ckernel_disabled", reason="REPRO_NO_CKERNEL")
        return None
    cache = _cache_dir()
    for cc in _compilers():
        for native in (True, False):
            try:
                sopath = _try_build(cc, native, cache)
            except (OSError, subprocess.SubprocessError):
                sopath = None
            if sopath is None:
                continue
            try:
                _kernel = CKernel(ctypes.CDLL(sopath), sopath)
            except OSError:
                continue
            telemetry.emit("ckernel_loaded", path=sopath, compiler=cc,
                           native=native)
            return _kernel
    telemetry.emit("ckernel_unavailable",
                   reason="no working C compiler; using interpreted kernels")
    return None


def available() -> bool:
    return load() is not None


def reset_for_tests() -> None:
    """Forget the cached load decision (lets tests flip the kill switch)."""
    global _loaded, _kernel
    _loaded = False
    _kernel = None
