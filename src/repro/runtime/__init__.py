"""Compiled batched integer-inference runtime (the serving path).

The re-packed model out of :meth:`repro.core.T2C.nn2chip` is a plain module
tree: correct, but every batch pays a full Python tree walk, a fresh im2col
index computation per convolution, and a Tensor allocation per op.  This
package compiles that tree **once** into a flat integer op program:

* :func:`repro.runtime.compiler.compile_program` flattens the module tree
  into a linear sequence of ops (conv / linear / MulQuant / LUT / pool /
  attention), each carrying its resolved dotted module name;
* the conv→MulQuant→clamp sequence is fused into one integer kernel, and —
  when the per-channel accumulator bound proves every partial sum is exactly
  representable in float32 — the per-sample GEMMs of the interpreted path
  collapse into a single large GEMM over the whole batch;
* per batch shape, the executor binds the program to a preallocated
  activation arena with cached im2col gather indices, so steady-state
  batches do zero graph walking and zero redundant index math;
* :meth:`Plan.serve` shards batch streams across a ``multiprocessing``
  worker pool with shared-memory input/output buffers.

Everything is bit-exact against the interpreted model — fast paths are only
taken when exactness is proven, otherwise the kernel replicates the
interpreted op sequence verbatim (see ``tests/runtime/``).

Entry points::

    spec = CompileSpec(fusion="full", threads=4)   # the one compile config
    plan = Plan.compile(qnn, spec)    # qnn = T2C(...).nn2chip()
    logits = plan(batch)              # == qnn(Tensor(batch)).data, bitwise
    for logits in plan.serve(batches, workers=4): ...
"""
from repro.runtime.executor import Plan
from repro.runtime.compiler import CompileError
from repro.runtime.serve import BatchFailed, PlanPool, WorkerDied
from repro.runtime.spec import CompileSpec

__all__ = ["Plan", "CompileSpec", "CompileError", "PlanPool", "WorkerDied",
           "BatchFailed"]
