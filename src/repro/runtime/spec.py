"""CompileSpec: one value object describing a full plan compilation.

Mirroring the :class:`repro.core.deploy.DeploySpec` migration, every knob of
the plan compiler lives in one frozen dataclass instead of loose keyword
arguments: the fusion level, the register layout, and the native kernel's
tiling/threading parameters.  ``Plan.compile``/``compile_program`` accept it
as the single entry point; the legacy ``layout=`` kwarg survives as a
:class:`DeprecationWarning` shim that routes through a spec.

Fusion levels
-------------
``"none"``
    Emit the raw IR: every convolution becomes a ``conv_raw`` accumulator op
    followed by a standalone ``mulquant`` requantizer.  Reference/debug mode
    — it shows the program *before* operator fusion and runs on the
    replication kernels only.
``"requant"``
    Fuse conv → requant into ``conv_mq`` (the historical default: one native
    kernel pass per convolution, requant epilogue inlined).
``"full"``
    Additionally run the plan-level fusion pass: conv → requant → residual-add
    chains (including a foldable identity-shortcut requant) collapse into
    single ``conv_mq_res`` ops whose intermediates never touch the arena.
    Legality is proven per chain via :class:`repro.lint.plan.PlanLiveness`.

Tiling / threading knobs
------------------------
``threads``
    Native-kernel worker count; ``0`` resolves to the machine's usable CPU
    count (capped at 8).  Any thread count is bit-exact: tasks partition
    disjoint (sample-block × output-channel-chunk) regions and every output
    element is produced by the same arithmetic regardless of the partition.
``tile_kc``
    KiB of input sample planes per kernel block (the L2 working-set budget);
    ``0`` resolves to 512 KiB.
``tile_oc``
    Output channels accumulated per register block: ``4`` (64-lane tiles),
    ``8`` (32-lane tiles, half the activation streaming), or ``0`` to let
    the kernel pick per conv (``8`` when the group width allows it).
``im2col_cache``
    Memoize the im2col scratch buffers of the replication conv path across
    batches (same values, no per-call pad/gather allocations).
"""
from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, fields, replace

FUSION_LEVELS = ("none", "requant", "full")
LAYOUTS = ("auto", "channel", "batch")

#: sentinel distinguishing "kwarg not passed" from an explicit value, so the
#: deprecation shims only fire for call sites that actually use the old name
_UNSET = object()


def warn_legacy_compile_kwarg(call: str, old: str, new: str) -> None:
    """Emit the standard shim warning naming the CompileSpec replacement."""
    warnings.warn(
        f"{call}({old}=...) is deprecated; set CompileSpec.{new} and pass "
        f"spec= instead", DeprecationWarning, stacklevel=3)


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


@dataclass(frozen=True)
class CompileSpec:
    """Everything plan compilation needs, in one place.

    Attributes
    ----------
    fusion:
        Operator-fusion level: ``"none"``, ``"requant"`` or ``"full"``
        (see the module docstring).
    layout:
        Register storage: ``"auto"``, ``"channel"`` or ``"batch"``.
    threads:
        Native-kernel worker threads (``0`` = auto).
    tile_kc:
        KiB of input planes per native sample block (``0`` = auto, 512 KiB).
    tile_oc:
        Output channels per native register block (``0`` = auto, else 4/8).
    im2col_cache:
        Reuse im2col scratch buffers across batches on replication paths.
    """

    fusion: str = "full"
    layout: str = "auto"
    threads: int = 0
    tile_kc: int = 0
    tile_oc: int = 0
    im2col_cache: bool = True

    def __post_init__(self):
        if self.fusion not in FUSION_LEVELS:
            raise ValueError(f"unknown fusion level {self.fusion!r}; "
                             f"expected one of {FUSION_LEVELS}")
        if self.layout not in LAYOUTS:
            raise ValueError(f"unknown layout {self.layout!r}; "
                             f"expected one of {LAYOUTS}")
        if not (0 <= int(self.threads) <= 256):
            raise ValueError(f"threads must be in [0, 256], got {self.threads}")
        if int(self.tile_kc) < 0:
            raise ValueError(f"tile_kc must be >= 0, got {self.tile_kc}")
        if int(self.tile_oc) not in (0, 4, 8):
            raise ValueError(f"tile_oc must be 0 (auto), 4 or 8, "
                             f"got {self.tile_oc}")

    # ------------------------------------------------------------ resolution
    def resolved_threads(self) -> int:
        """Concrete worker count: the knob, or the usable-CPU count (<= 8)."""
        return int(self.threads) if self.threads else min(8, _usable_cpus())

    def tile_bytes(self) -> int:
        """Concrete L2 budget in bytes for one native sample block."""
        return (int(self.tile_kc) or 512) * 1024

    # ------------------------------------------------------------- plumbing
    @classmethod
    def from_args(cls, args) -> "CompileSpec":
        """Build a spec from an ``argparse`` namespace (shared CLI flags).

        Missing attributes keep their dataclass defaults: ``--fusion-level``/
        ``--threads``/``--tile-kc``/``--tile-oc``/``--no-im2col-cache`` map
        straight onto fields; a ``--runtime channel|batch`` layout flag (the
        legacy deploy surface) fills ``layout`` when present.
        """
        kw = {}
        for fld, attr in (("fusion", "fusion_level"), ("threads", "threads"),
                          ("tile_kc", "tile_kc"), ("tile_oc", "tile_oc"),
                          ("im2col_cache", "im2col_cache"),
                          ("layout", "layout")):
            v = getattr(args, attr, None)
            if v is not None:
                kw[fld] = v
        runtime = getattr(args, "runtime", None)
        if "layout" not in kw and runtime in ("channel", "batch"):
            kw["layout"] = runtime
        return cls(**kw)

    def evolve(self, **changes) -> "CompileSpec":
        return replace(self, **changes)

    def to_json(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}
