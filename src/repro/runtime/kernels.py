"""Numeric kernels for the compiled runtime — bit-exact by construction.

Two exactness strategies, chosen per op at compile time:

* **replication** — execute the very same numpy call sequence the interpreted
  module runs (same dtypes, same views, same reduction order).  Identical
  inputs through identical operations give identical bits; used for every op
  whose cost is not dominated by the conv GEMM.
* **proven reassociation** — the fused conv kernel reshapes the per-sample
  GEMMs of the interpreted path into one large batch GEMM.  That changes
  float32 summation order, which is only safe because the compiler proves a
  bound first: with integer weights and integer activation codes, if the
  largest per-output-channel value ``max_o sum_k |w_ok| * max|x|`` stays
  below ``2**24``, every partial sum of every summation order is an integer
  exactly representable in float32 — so *any* order (including FMA-based
  BLAS blocking) produces the same exact integer.  Layers that exceed the
  bound fall back to replication.

The requantizer uses ``trunc(v + copysign(0.5, v))``, which is value-exact
to the interpreted ``sign(v) * floor(|v| + 0.5)`` for every float (both
halves round away from zero; negation and the 0.5 add are exact in IEEE
arithmetic either way), but needs one fewer full-size temporary.
"""
from __future__ import annotations

import hashlib
from typing import Optional, Tuple

import numpy as np

#: largest integer magnitude n for which every integer in [-n, n] is exactly
#: representable in float32 — the reassociation-safety threshold.
EXACT_F32_LIMIT = float(2 ** 24)

#: the float64 counterpart — the width the ABFT column-checksum accumulator
#: (which sums *across* output channels) is proven against, since the
#: sampled verifier recomputes both sides of the checksum identity in
#: float64 (see repro.integrity.abft and the plan.checksum-overflow rule).
EXACT_F64_LIMIT = float(2 ** 53)


def broadcast_scale(v: np.ndarray, ndim: int, channel_axis: int) -> np.ndarray:
    """Broadcast-align a MulQuant scale/bias vector (mirrors MulQuant._broadcast)."""
    if v.size == 1:
        return v.reshape(())
    if v.ndim > 1:
        return v
    shape = [1] * ndim
    shape[channel_axis % ndim] = v.size
    return v.reshape(shape)


class MQParams:
    """Frozen snapshot of one MulQuant's effective requantization constants."""

    __slots__ = ("m", "b", "lo", "hi", "axis")

    def __init__(self, m: np.ndarray, b: np.ndarray, lo: float, hi: float, axis: int):
        self.m = np.asarray(m, dtype=np.float64)
        self.b = np.asarray(b, dtype=np.float64)
        self.lo = float(lo)
        self.hi = float(hi)
        self.axis = int(axis)

    @classmethod
    def of(cls, mq) -> "MQParams":
        return cls(np.asarray(mq.effective_scale, dtype=np.float64),
                   np.asarray(mq.effective_bias, dtype=np.float64),
                   mq.out_lo, mq.out_hi, mq.channel_axis)

    def sig_update(self, h) -> None:
        h.update(self.m.tobytes())
        h.update(self.b.tobytes())
        h.update(repr((self.m.shape, self.b.shape, self.lo, self.hi, self.axis)).encode())


def round_half_away(v: np.ndarray) -> np.ndarray:
    """Round half away from zero — the interpreted datapath's formulation."""
    return np.sign(v) * np.floor(np.abs(v) + 0.5)


def requant(x: np.ndarray, p: MQParams) -> np.ndarray:
    """Replicate ``MulQuant.forward`` on a plain array; returns float32."""
    acc = x.astype(np.float64)
    m = broadcast_scale(p.m, acc.ndim, p.axis)
    b = broadcast_scale(p.b, acc.ndim, p.axis)
    v = acc * m + b
    r = round_half_away(v)
    return np.clip(r, p.lo, p.hi).astype(np.float32)


def requant_into(acc: np.ndarray, m, b, lo: float, hi: float,
                 scratch: np.ndarray, dst: np.ndarray) -> None:
    """In-place requantization of a float64 accumulator into a float32 view.

    ``acc`` already holds the raw accumulator values (cast up from the GEMM
    output); ``m``/``b`` are broadcast-ready float64 constants, ``scratch``
    a float64 buffer of the same shape, ``dst`` any float32 view of ``acc``'s
    shape (it may be strided — the final copy untransposes the layout).
    All steps are elementwise, so the values match :func:`requant` exactly.
    """
    np.multiply(acc, m, out=acc)
    np.add(acc, b, out=acc)
    np.copysign(0.5, acc, out=scratch)
    np.add(acc, scratch, out=acc)
    np.trunc(acc, out=acc)
    np.clip(acc, lo, hi, out=acc)
    np.copyto(dst, acc, casting="unsafe")


def conv_reassociation_bound(weight: np.ndarray,
                             in_range: Tuple[float, float]) -> float:
    """Worst-case accumulator magnitude of a conv over an integer input range.

    ``weight`` is the (integer-valued) float kernel ``(O, Cg, kh, kw)``;
    ``in_range`` the proven integer code range of the input register.  Any
    partial sum of any summation order is bounded by this value.
    """
    amax = max(abs(in_range[0]), abs(in_range[1]))
    per_channel = np.abs(weight.astype(np.float64).reshape(weight.shape[0], -1)).sum(axis=1)
    return float(per_channel.max(initial=0.0) * amax)


def lut_softmax(x: np.ndarray, table: np.ndarray, prob_bits: int) -> np.ndarray:
    """Replicate ``LUTSoftmax.forward`` on a plain array."""
    s = x.astype(np.int64)
    d = s.max(axis=-1, keepdims=True) - s
    d = np.minimum(d, len(table) - 1)
    e = table[d]
    denom = e.sum(axis=-1, keepdims=True)
    probs = np.floor((e.astype(np.float64) * (1 << prob_bits) + denom // 2) / denom)
    return probs.astype(np.float32)


def lut_gelu(x: np.ndarray, table: np.ndarray, in_qlb: int, in_qub: int) -> np.ndarray:
    """Replicate ``LUTGelu.forward`` on a plain array."""
    idx = np.clip(x.astype(np.int64), in_qlb, in_qub) - in_qlb
    return table[idx].astype(np.float32)


def residual_merge(a: np.ndarray, s: np.ndarray, res_scale: float,
                   lo: float, hi: float) -> np.ndarray:
    """Replicate ``qmodels._residual_merge`` on plain arrays (float32 math)."""
    v = (a + s) / res_scale
    y = np.clip(np.sign(v) * np.floor(np.abs(v) + 0.5), lo, hi)
    return y.astype(np.float32)


def requant_residual(acc: np.ndarray, shortcut: np.ndarray, mq: MQParams,
                     res_scale: float, lo: float, hi: float,
                     smq: Optional[MQParams] = None) -> np.ndarray:
    """Pure-numpy reference of the fused conv→requant→residual epilogue.

    ``acc`` is the raw conv accumulator; ``shortcut`` the residual operand,
    either already requantized (``smq is None``) or a raw accumulator to be
    requantized by ``smq`` first.  Each stage replicates the corresponding
    standalone kernel exactly, so the fused result is bitwise the unfused
    ``residual_merge(requant(acc, mq), requant(shortcut, smq), ...)``.
    """
    a = requant(acc, mq)
    s = requant(shortcut, smq) if smq is not None else shortcut
    return residual_merge(a, s, res_scale, lo, hi)


def array_sig(h, *arrays: Optional[np.ndarray]) -> None:
    """Feed array contents + shapes into a hash (program signatures)."""
    for a in arrays:
        if a is None:
            h.update(b"<none>")
        else:
            a = np.ascontiguousarray(a)
            h.update(repr((a.shape, a.dtype.str)).encode())
            h.update(a.tobytes())


def new_sig() -> "hashlib._Hash":
    return hashlib.sha256()
