"""Op model of the compiled integer program.

A program is a flat list of ops over a register file.  Each op carries:

* ``kind`` / ``name`` — the op class and the resolved dotted module path of
  the layer it was compiled from (telemetry spans and per-op timing report
  under these names);
* ``src`` / ``dst`` — register ids (each register is written exactly once
  per execution, so skip connections just re-read an earlier register);
* ``infer(shapes)`` — symbolic (batch-size-free) shape inference used to
  size the activation arena;
* ``bind(arena)`` — returns the steady-state closure executed per batch,
  with buffers, layout views and broadcast constants resolved up front.

In the ``channel`` arena layout the feature-map ops run over channel-major
padded registers (the native conv kernel's layout); elementwise ops are
layout-free and stay bit-exact by executing the identical per-element
arithmetic on the transposed views.  In the ``batch`` layout every op
replicates the interpreted module's numpy call sequence verbatim.

Numeric contracts live in :mod:`repro.runtime.kernels`.
"""
from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.runtime import kernels
from repro.runtime.arena import Arena
from repro.tensor.im2col import conv_out_size, im2col

Shape = Tuple[int, ...]


def _cm_scale(v: np.ndarray):
    """Broadcast a per-channel vector over (C, N, H, W) channel-major data."""
    return v.reshape(()) if v.size == 1 else v.reshape(-1, 1, 1, 1)


class _Im2colCache:
    """Memoized im2col: bitwise the :func:`repro.tensor.im2col.im2col`
    result, but the pad scratch and the contiguous gather output are
    allocated once per binding and reused across batches."""

    def __init__(self, n, c, h, w, kh, kw, stride, padding):
        oh = conv_out_size(h, kh, stride, padding)
        ow = conv_out_size(w, kw, stride, padding)
        self._kh, self._kw, self._stride = kh, kw, stride
        self._win_shape = (n, c, kh, kw, oh, ow)
        self._cols_shape = (n, c * kh * kw, oh * ow)
        self._out = np.empty(self._win_shape, dtype=np.float32)
        if padding > 0:
            # border zeroed once — np.pad re-zeroes it on every call
            self._padded = np.zeros(
                (n, c, h + 2 * padding, w + 2 * padding), dtype=np.float32)
            self._center = self._padded[:, :, padding:padding + h,
                                        padding:padding + w]
        else:
            self._padded = None

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if self._padded is not None:
            np.copyto(self._center, x)
            x = self._padded
        s = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x, shape=self._win_shape,
            strides=(s[0], s[1], s[2], s[3],
                     s[2] * self._stride, s[3] * self._stride),
            writeable=False)
        np.copyto(self._out, windows)
        return self._out.reshape(self._cols_shape)


def _conv_accum_fn(arena: Arena, src: int, weight: np.ndarray, stride: int,
                   padding: int, groups: int, out_shape: Shape):
    """The interpreted conv accumulation (im2col + GEMM), replicated verbatim.

    Returns ``run(x) -> (N, O, OH, OW) float32`` raw accumulator — the value
    the interpreted path holds just before requantization.
    """
    n = arena.n
    o, oh, ow = out_shape
    _, cg, kh, kw = weight.shape
    g, st, p = groups, stride, padding
    wm = weight.reshape(o, cg * kh * kw)
    if arena.spec.im2col_cache:
        c, h, w = arena.shapes[src]
        gather = _Im2colCache(n, c, h, w, kh, kw, st, p)
    else:
        def gather(x):
            return im2col(x, kh, kw, st, p)

    def run(x):
        cols = gather(x)
        if g == 1:
            out = np.matmul(wm, cols)
        else:
            cols_g = cols.reshape(n, g, cg * kh * kw, oh * ow)
            wm_g = wm.reshape(g, o // g, cg * kh * kw)
            out = np.matmul(wm_g[None], cols_g).reshape(n, o, oh * ow)
        return out.reshape(n, o, oh, ow).astype(np.float32)
    return run


class Op:
    """Base class for program ops."""

    kind = "op"

    def __init__(self, name: str, src, dst: int):
        self.name = name
        self.src = tuple(src)
        self.dst = int(dst)

    def infer(self, shapes: Dict[int, Shape]) -> Shape:
        raise NotImplementedError

    def bind(self, arena: Arena):
        raise NotImplementedError

    def sig_update(self, h) -> None:
        h.update(repr((self.kind, self.name, self.src, self.dst)).encode())
        self._sig_params(h)

    def _sig_params(self, h) -> None:
        pass

    def constituents(self):
        """The source layers this op's wall time belongs to.

        ``[(kind, name, share)]`` with shares summing to 1.0.  Simple ops are
        their own single constituent; fused ops split their time across the
        layers they were fused from, so per-op profiling keeps attributing
        to real module names.
        """
        return [(self.kind, self.name, 1.0)]

    def describe(self) -> str:
        srcs = ",".join(f"r{s}" for s in self.src)
        return f"{self.kind:<12} {srcs} -> r{self.dst}  {self.name}"


class InputQuantOp(Op):
    """Model-input ADC quantizer: round + clamp onto the input integer grid."""

    kind = "input_quant"

    def __init__(self, name, src, dst, scale: float, qlb: int, qub: int):
        super().__init__(name, src, dst)
        self.scale = float(scale)
        self.qlb = qlb
        self.qub = qub

    def infer(self, shapes):
        return shapes[self.src[0]]

    def bind(self, arena):
        regs, s = arena.regs, self.src[0]
        scale, qlb, qub, dst = self.scale, self.qlb, self.qub, self.dst
        if arena.layout == "channel":
            center = arena.cm_center(dst)

            def fn():
                r = np.round(regs[s] / scale)
                q = np.clip(r, qlb, qub).astype(np.float32)
                np.copyto(center, q.transpose(1, 0, 2, 3))
            return fn

        def fn():
            r = np.round(regs[s] / scale)
            regs[dst] = np.clip(r, qlb, qub).astype(np.float32)
        return fn

    def _sig_params(self, h):
        h.update(repr((self.scale, self.qlb, self.qub)).encode())


class ConvMQOp(Op):
    """Fused integer conv + MulQuant requant + clamp.

    In the ``channel`` layout, a conv whose accumulator bound the compiler
    certified (``exact_reassoc``) runs on the native register-blocked kernel
    directly over the padded channel-major registers; a conv exceeding the
    bound (or the kernel's tap cap) transposes to batch layout and replicates
    the interpreted sequence.  In the ``batch`` layout every conv replicates
    the interpreted per-sample GEMM sequence verbatim.
    """

    kind = "conv_mq"

    def __init__(self, name, src, dst, weight: np.ndarray, stride: int,
                 padding: int, groups: int, mq: kernels.MQParams,
                 exact_reassoc: bool, bound: float):
        super().__init__(name, src, dst)
        self.weight = np.ascontiguousarray(weight, dtype=np.float32)
        self.stride = int(stride)
        self.padding = int(padding)
        self.groups = int(groups)
        self.mq = mq
        self.exact_reassoc = bool(exact_reassoc)
        self.bound = float(bound)

    def infer(self, shapes):
        c, h, w = shapes[self.src[0]]
        o, _, kh, kw = self.weight.shape
        return (o, conv_out_size(h, kh, self.stride, self.padding),
                conv_out_size(w, kw, self.stride, self.padding))

    def bind(self, arena):
        if arena.layout == "channel":
            from repro.runtime import ckernel

            ck = ckernel.load()
            o, cg, kh, kw = self.weight.shape
            if (ck is not None and self.exact_reassoc
                    and cg * kh * kw <= ck.taps_cap and o <= ck.taps_cap):
                return self._bind_kernel(arena, ck)
            return self._bind_channel_reference(arena)
        return self._bind_reference(arena)

    def _bind_kernel(self, arena, ck):
        n = arena.n
        spec = arena.spec
        src, dst = self.src[0], self.dst
        c, h, w = arena.shapes[src]
        o, oh, ow = arena.shapes[dst]
        _, cg, kh, kw = self.weight.shape
        P = arena.cm_buffer(src)
        Q = arena.cm_buffer(dst)
        _, _, hp, wp = P.shape
        _, _, hq, wq = Q.shape
        in_off = arena.pads[src] - self.padding
        out_off = arena.pads[dst]
        splane = hp * wp
        # sample-block size fitting the input working set into the L2 budget
        nb = min(n, max(1, spec.tile_bytes() // (cg * splane * 4)))
        ob_step = spec.tile_oc  # 0 lets the kernel pick per conv
        threads = max(1, min(16, spec.resolved_threads()))
        ob_alloc = 4 if ob_step == 4 else 8
        acc = np.empty(threads * ob_alloc * nb * splane, dtype=np.float32)
        wm = np.ascontiguousarray(self.weight.reshape(o, cg * kh * kw))
        m = np.ascontiguousarray(self.mq.m.reshape(-1))
        b = np.ascontiguousarray(self.mq.b.reshape(-1))
        lo, hi = self.mq.lo, self.mq.hi
        st, g = self.stride, self.groups

        def fn():
            ck.conv_mq_cm(P, wm, m, b, lo, hi, Q, acc,
                          C=c, N=n, Hp=hp, Wp=wp, O=o, kh=kh, kw=kw,
                          stride=st, in_off=in_off, Hq=hq, Wq=wq,
                          out_off=out_off, OH=oh, OW=ow, groups=g,
                          nb=nb, ob_step=ob_step, threads=threads)
        return fn

    def _bind_channel_reference(self, arena):
        """Bound/cap fallback inside a channel plan: transpose, replicate."""
        src_center = arena.cm_center(self.src[0])
        dst_center = arena.cm_center(self.dst)
        run = self._reference_fn(arena)

        def fn():
            x = np.ascontiguousarray(src_center.transpose(1, 0, 2, 3))
            y = run(x)
            np.copyto(dst_center, y.transpose(1, 0, 2, 3))
        return fn

    def _bind_reference(self, arena):
        regs, s, dst = arena.regs, self.src[0], self.dst
        run = self._reference_fn(arena)

        def fn():
            regs[dst] = run(regs[s])
        return fn

    def _reference_fn(self, arena):
        """The interpreted conv+MulQuant numpy sequence, replicated verbatim."""
        run_acc = _conv_accum_fn(arena, self.src[0], self.weight, self.stride,
                                 self.padding, self.groups,
                                 arena.shapes[self.dst])
        mq = self.mq

        def run(x):
            return kernels.requant(run_acc(x), mq)
        return run

    def _sig_params(self, h):
        h.update(repr((self.stride, self.padding, self.groups,
                       self.exact_reassoc)).encode())
        kernels.array_sig(h, self.weight)
        self.mq.sig_update(h)


class ConvRawOp(Op):
    """Unfused conv accumulator (fusion level ``"none"``).

    Produces the raw integer-valued float32 GEMM output; a separate
    ``mulquant`` op requantizes it.  Replication paths only — this level
    exists to show and test the program *before* operator fusion, so it
    never touches the native kernel.
    """

    kind = "conv_raw"

    def __init__(self, name, src, dst, weight: np.ndarray, stride: int,
                 padding: int, groups: int, exact_reassoc: bool, bound: float):
        super().__init__(name, src, dst)
        self.weight = np.ascontiguousarray(weight, dtype=np.float32)
        self.stride = int(stride)
        self.padding = int(padding)
        self.groups = int(groups)
        self.exact_reassoc = bool(exact_reassoc)
        self.bound = float(bound)

    def infer(self, shapes):
        c, h, w = shapes[self.src[0]]
        o, _, kh, kw = self.weight.shape
        return (o, conv_out_size(h, kh, self.stride, self.padding),
                conv_out_size(w, kw, self.stride, self.padding))

    def bind(self, arena):
        run = _conv_accum_fn(arena, self.src[0], self.weight, self.stride,
                             self.padding, self.groups, arena.shapes[self.dst])
        if arena.layout == "channel":
            src_center = arena.cm_center(self.src[0])
            dst_center = arena.cm_center(self.dst)

            def fn():
                x = np.ascontiguousarray(src_center.transpose(1, 0, 2, 3))
                np.copyto(dst_center, run(x).transpose(1, 0, 2, 3))
            return fn
        regs, s, dst = arena.regs, self.src[0], self.dst

        def fn():
            regs[dst] = run(regs[s])
        return fn

    def _sig_params(self, h):
        h.update(repr((self.stride, self.padding, self.groups,
                       self.exact_reassoc)).encode())
        kernels.array_sig(h, self.weight)


class ConvMQResOp(Op):
    """Fully fused conv + requant + residual-add (+ folded shortcut requant).

    Produced by the plan fusion pass (:mod:`repro.runtime.fusion`) from a
    ``conv_mq`` → ``residual`` chain whose intermediate register has exactly
    one reader; when the residual's other operand is itself a single-reader
    ``mulquant`` (the identity-shortcut requant of a ResNet block) that is
    folded in as ``smq``.  The fused intermediate registers are never
    written, so they cost no arena memory and no kernel store/load.

    Each epilogue stage replicates the standalone op's arithmetic exactly
    (see :func:`repro.runtime.kernels.requant_residual`), so the fused op is
    bitwise the unfused chain in every layout.
    """

    kind = "conv_mq_res"

    def __init__(self, name, src, dst, weight: np.ndarray, stride: int,
                 padding: int, groups: int, mq: kernels.MQParams,
                 exact_reassoc: bool, bound: float, res_scale: float,
                 res_lo: float, res_hi: float, res_name: str,
                 smq: Optional[kernels.MQParams] = None,
                 smq_name: Optional[str] = None):
        super().__init__(name, src, dst)
        self.weight = np.ascontiguousarray(weight, dtype=np.float32)
        self.stride = int(stride)
        self.padding = int(padding)
        self.groups = int(groups)
        self.mq = mq
        self.exact_reassoc = bool(exact_reassoc)
        self.bound = float(bound)
        self.res_scale = float(res_scale)
        self.res_lo = float(res_lo)
        self.res_hi = float(res_hi)
        self.res_name = str(res_name)
        self.smq = smq
        self.smq_name = smq_name

    def infer(self, shapes):
        c, h, w = shapes[self.src[0]]
        o, _, kh, kw = self.weight.shape
        return (o, conv_out_size(h, kh, self.stride, self.padding),
                conv_out_size(w, kw, self.stride, self.padding))

    def constituents(self):
        # weight the split by work: the conv GEMM costs ~K MACs per output
        # element, each epilogue stage ~1 op per element
        k = int(self.weight.shape[1] * self.weight.shape[2]
                * self.weight.shape[3])
        total = k + (2 if self.smq is not None else 1)
        parts = [("conv_mq", self.name, k / total)]
        if self.smq is not None:
            parts.append(("mulquant", self.smq_name, 1.0 / total))
        parts.append(("residual", self.res_name, 1.0 / total))
        return parts

    def bind(self, arena):
        if arena.layout == "channel":
            from repro.runtime import ckernel

            ck = ckernel.load()
            o, cg, kh, kw = self.weight.shape
            if (ck is not None and self.exact_reassoc
                    and cg * kh * kw <= ck.taps_cap and o <= ck.taps_cap):
                return self._bind_kernel(arena, ck)
            return self._bind_channel_reference(arena)
        return self._bind_reference(arena)

    def _bind_kernel(self, arena, ck):
        n = arena.n
        spec = arena.spec
        src, s_src, dst = self.src[0], self.src[1], self.dst
        c, h, w = arena.shapes[src]
        o, oh, ow = arena.shapes[dst]
        _, cg, kh, kw = self.weight.shape
        P = arena.cm_buffer(src)
        S = arena.cm_buffer(s_src)
        Q = arena.cm_buffer(dst)
        _, _, hp, wp = P.shape
        _, _, hs, ws = S.shape
        _, _, hq, wq = Q.shape
        in_off = arena.pads[src] - self.padding
        s_off = arena.pads.get(s_src, 0)
        out_off = arena.pads.get(dst, 0)
        splane = hp * wp
        nb = min(n, max(1, spec.tile_bytes() // (cg * splane * 4)))
        ob_step = spec.tile_oc
        threads = max(1, min(16, spec.resolved_threads()))
        ob_alloc = 4 if ob_step == 4 else 8
        acc = np.empty(threads * ob_alloc * nb * splane, dtype=np.float32)
        wm = np.ascontiguousarray(self.weight.reshape(o, cg * kh * kw))
        m = np.ascontiguousarray(self.mq.m.reshape(-1))
        b = np.ascontiguousarray(self.mq.b.reshape(-1))
        lo, hi = self.mq.lo, self.mq.hi
        if self.smq is not None:
            sm = np.ascontiguousarray(self.smq.m.reshape(-1))
            sb = np.ascontiguousarray(self.smq.b.reshape(-1))
            slo, shi, has_smq = self.smq.lo, self.smq.hi, 1
        else:
            sm = np.zeros(1, dtype=np.float64)
            sb = np.zeros(1, dtype=np.float64)
            slo, shi, has_smq = 0.0, 0.0, 0
        rs, rlo, rhi = self.res_scale, self.res_lo, self.res_hi
        st, g = self.stride, self.groups

        def fn():
            ck.conv_mq_res_cm(P, wm, m, b, lo, hi, S, sm, sb, slo, shi,
                              has_smq, rs, rlo, rhi, Q, acc,
                              C=c, N=n, Hp=hp, Wp=wp, O=o, kh=kh, kw=kw,
                              stride=st, in_off=in_off, Hq=hq, Wq=wq,
                              out_off=out_off, OH=oh, OW=ow, groups=g,
                              nb=nb, ob_step=ob_step, threads=threads,
                              Hs=hs, Ws=ws, s_off=s_off)
        return fn

    def _bind_channel_reference(self, arena):
        a_center = arena.cm_center(self.src[0])
        s_center = arena.cm_center(self.src[1])
        dst_center = arena.cm_center(self.dst)
        run = self._reference_fn(arena)

        def fn():
            x = np.ascontiguousarray(a_center.transpose(1, 0, 2, 3))
            sc = np.ascontiguousarray(s_center.transpose(1, 0, 2, 3))
            np.copyto(dst_center, run(x, sc).transpose(1, 0, 2, 3))
        return fn

    def _bind_reference(self, arena):
        regs, (a, s), dst = arena.regs, self.src, self.dst
        run = self._reference_fn(arena)

        def fn():
            regs[dst] = run(regs[a], regs[s])
        return fn

    def _reference_fn(self, arena):
        run_acc = _conv_accum_fn(arena, self.src[0], self.weight, self.stride,
                                 self.padding, self.groups,
                                 arena.shapes[self.dst])
        mq, smq = self.mq, self.smq
        rs, rlo, rhi = self.res_scale, self.res_lo, self.res_hi

        def run(x, shortcut):
            return kernels.requant_residual(run_acc(x), shortcut, mq,
                                            rs, rlo, rhi, smq)
        return run

    def _sig_params(self, h):
        h.update(repr((self.stride, self.padding, self.groups,
                       self.exact_reassoc, self.res_scale, self.res_lo,
                       self.res_hi, self.res_name, self.smq_name)).encode())
        kernels.array_sig(h, self.weight)
        self.mq.sig_update(h)
        if self.smq is not None:
            self.smq.sig_update(h)


class LinearMQOp(Op):
    """Fused integer linear + MulQuant requant."""

    kind = "linear_mq"

    def __init__(self, name, src, dst, weight: np.ndarray, mq: kernels.MQParams):
        super().__init__(name, src, dst)
        self.weight = np.ascontiguousarray(weight, dtype=np.float32)
        self.mq = mq

    def infer(self, shapes):
        return shapes[self.src[0]][:-1] + (self.weight.shape[0],)

    def bind(self, arena):
        regs, s, dst = arena.regs, self.src[0], self.dst
        wT = self.weight.T
        mq = self.mq

        def fn():
            regs[dst] = kernels.requant(regs[s] @ wT, mq)
        return fn

    def _sig_params(self, h):
        kernels.array_sig(h, self.weight)
        self.mq.sig_update(h)


class MulQuantOp(Op):
    """Standalone requantizer (identity shortcuts, fused LayerNorm tables)."""

    kind = "mulquant"

    def __init__(self, name, src, dst, mq: kernels.MQParams):
        super().__init__(name, src, dst)
        self.mq = mq

    def infer(self, shapes):
        return shapes[self.src[0]]

    def bind(self, arena):
        regs, s, dst, mq = arena.regs, self.src[0], self.dst, self.mq
        if arena.layout == "channel" and len(arena.shapes[s]) == 3:
            from repro.runtime import ckernel

            ck = ckernel.load()
            if ck is not None:
                return self._bind_channel_kernel(arena, ck)
            src_center = arena.cm_center(s)
            dst_center = arena.cm_center(dst)
            # channel-major broadcast: the channel axis is axis 0
            m = _cm_scale(mq.m)
            b = _cm_scale(mq.b)
            lo, hi = mq.lo, mq.hi

            def fn():
                v = src_center.astype(np.float64) * m + b
                r = kernels.round_half_away(v)
                np.copyto(dst_center, np.clip(r, lo, hi).astype(np.float32))
            return fn

        def fn():
            regs[dst] = kernels.requant(regs[s], mq)
        return fn

    def _bind_channel_kernel(self, arena, ck):
        """Native requant over the padded registers, same exact epilogue as
        the fused conv (f64 multiply and add rounding separately)."""
        s, dst = self.src[0], self.dst
        c, h, w = arena.shapes[s]
        n = arena.n
        P = arena.cm_buffer(s)
        Q = arena.cm_buffer(dst)
        _, _, hp, wp = P.shape
        _, _, hq, wq = Q.shape
        ps = arena.pads.get(s, 0)
        out_off = arena.pads.get(dst, 0)
        m = np.ascontiguousarray(self.mq.m.reshape(-1))
        b = np.ascontiguousarray(self.mq.b.reshape(-1))
        lo, hi = self.mq.lo, self.mq.hi

        def fn():
            ck.mulquant_cm(P, ps, m, b, lo, hi, Q, C=c, N=n, Hp=hp, Wp=wp,
                           Hq=hq, Wq=wq, out_off=out_off, H=h, W=w)
        return fn

    def _sig_params(self, h):
        self.mq.sig_update(h)


class ResidualOp(Op):
    """Integer residual merge in the fine pre-add domain (float32 datapath)."""

    kind = "residual"

    def __init__(self, name, src, dst, res_scale: float, lo: float, hi: float):
        super().__init__(name, src, dst)
        self.res_scale = float(res_scale)
        self.lo = float(lo)
        self.hi = float(hi)

    def infer(self, shapes):
        return shapes[self.src[0]]

    def bind(self, arena):
        regs, (a, s), dst = arena.regs, self.src, self.dst
        rs, lo, hi = self.res_scale, self.lo, self.hi
        if arena.layout == "channel" and len(arena.shapes[dst]) == 3:
            from repro.runtime import ckernel

            ck = ckernel.load()
            if ck is not None:
                c, h, w = arena.shapes[dst]
                n = arena.n
                A = arena.cm_buffer(a)
                S = arena.cm_buffer(s)
                Q = arena.cm_buffer(dst)
                pa = arena.pads.get(a, 0)
                psd = arena.pads.get(s, 0)
                pq = arena.pads.get(dst, 0)

                def fn():
                    ck.residual_cm(A, pa, S, psd, Q, pq, rs, lo, hi,
                                   C=c, N=n, H=h, W=w)
                return fn
            a_c = arena.cm_center(a)
            s_c = arena.cm_center(s)
            d_c = arena.cm_center(dst)

            def fn():
                np.copyto(d_c, kernels.residual_merge(a_c, s_c, rs, lo, hi))
            return fn

        def fn():
            regs[dst] = kernels.residual_merge(regs[a], regs[s], rs, lo, hi)
        return fn

    def _sig_params(self, h):
        h.update(repr((self.res_scale, self.lo, self.hi)).encode())


class MaxPoolOp(Op):
    """Window max over integer codes (order-independent, hence exact)."""

    kind = "maxpool"

    def __init__(self, name, src, dst, kernel: int, stride: int):
        super().__init__(name, src, dst)
        self.kernel = int(kernel)
        self.stride = int(stride or kernel)

    def infer(self, shapes):
        c, h, w = shapes[self.src[0]]
        return (c, conv_out_size(h, self.kernel, self.stride, 0),
                conv_out_size(w, self.kernel, self.stride, 0))

    def bind(self, arena):
        regs, s, dst = arena.regs, self.src[0], self.dst
        n = arena.n
        c, oh, ow = arena.shapes[dst]
        k, st = self.kernel, self.stride
        if arena.layout == "channel":
            x = arena.cm_center(s)
            d_c = arena.cm_center(dst)
            s0, s1, s2, s3 = x.strides
            # window max is order-free, so the layout change is exact
            win = np.lib.stride_tricks.as_strided(
                x, (c, n, oh, ow, k, k), (s0, s1, s2 * st, s3 * st, s2, s3),
                writeable=False)

            def fn():
                np.max(win, axis=(4, 5), out=d_c)
            return fn
        outbuf = arena.alloc((c, oh, ow))

        def fn():
            x = regs[s]
            s0, s1, s2, s3 = x.strides
            win = np.lib.stride_tricks.as_strided(
                x, (n, c, oh, ow, k, k), (s0, s1, s2 * st, s3 * st, s2, s3),
                writeable=False)
            np.max(win, axis=(4, 5), out=outbuf)
            regs[dst] = outbuf
        return fn

    def _sig_params(self, h):
        h.update(repr((self.kernel, self.stride)).encode())


class GapMQOp(Op):
    """Global average pool + flatten + MulQuant into the classifier domain.

    The mean is taken in float32 exactly like ``Tensor.mean`` (same pairwise
    reduction), then requantized.
    """

    kind = "gap_mq"

    def __init__(self, name, src, dst, mq: kernels.MQParams):
        super().__init__(name, src, dst)
        self.mq = mq

    def infer(self, shapes):
        return (shapes[self.src[0]][0],)

    def bind(self, arena):
        regs, s, dst, mq = arena.regs, self.src[0], self.dst, self.mq
        if arena.layout == "channel":
            center = arena.cm_center(s)
            n = arena.n
            c, h, w = arena.shapes[s]

            def fn():
                # The reshape through a transposed view copies into the same
                # contiguous (n, c, h*w) element order the batch layout
                # reduces over, so the pairwise float32 mean is bit-identical.
                x = center.transpose(1, 0, 2, 3).reshape(n, c, h * w)
                regs[dst] = kernels.requant(x.mean(axis=-1), mq)
            return fn

        def fn():
            regs[dst] = kernels.requant(regs[s].mean(axis=(2, 3)), mq)
        return fn

    def _sig_params(self, h):
        self.mq.sig_update(h)


class TokensOp(Op):
    """ViT embedding assembly: patch grid -> tokens, +cls, +pos, clamp."""

    kind = "tokens"

    def __init__(self, name, src, dst, cls_int: np.ndarray, pos_int: np.ndarray,
                 qlb: int, qub: int):
        super().__init__(name, src, dst)
        self.cls_int = np.ascontiguousarray(cls_int, dtype=np.float32)
        self.pos_int = np.ascontiguousarray(pos_int, dtype=np.float32)
        self.qlb = qlb
        self.qub = qub

    def infer(self, shapes):
        d, gh, gw = shapes[self.src[0]]
        return (gh * gw + 1, d)

    def bind(self, arena):
        regs, s, dst = arena.regs, self.src[0], self.dst
        n = arena.n
        d = arena.shapes[s][0]
        cls_int, pos_int, qlb, qub = self.cls_int, self.pos_int, self.qlb, self.qub

        def fn():
            out = regs[s]
            tokens = out.reshape(n, d, -1).transpose(0, 2, 1)
            cls = np.broadcast_to(cls_int, (n, 1, d)).copy()
            tok = np.concatenate([cls, tokens], axis=1)
            regs[dst] = np.clip(tok + pos_int, qlb, qub)
        return fn

    def _sig_params(self, h):
        h.update(repr((self.qlb, self.qub)).encode())
        kernels.array_sig(h, self.cls_int, self.pos_int)


class AttentionOp(Op):
    """Integer multi-head attention: QKV/score/context/proj requants + LUT softmax."""

    kind = "attention"

    def __init__(self, name, src, dst, qkv_w, proj_w, mq_qkv, mq_score, mq_ctx,
                 mq_proj, softmax_table, prob_bits, num_heads, head_dim):
        super().__init__(name, src, dst)
        self.qkv_w = np.ascontiguousarray(qkv_w, dtype=np.float32)
        self.proj_w = np.ascontiguousarray(proj_w, dtype=np.float32)
        self.mq_qkv = mq_qkv
        self.mq_score = mq_score
        self.mq_ctx = mq_ctx
        self.mq_proj = mq_proj
        self.softmax_table = np.ascontiguousarray(softmax_table, dtype=np.int64)
        self.prob_bits = int(prob_bits)
        self.num_heads = int(num_heads)
        self.head_dim = int(head_dim)

    def infer(self, shapes):
        return shapes[self.src[0]]

    def bind(self, arena):
        regs, s, dst = arena.regs, self.src[0], self.dst
        n = arena.n
        l, d = arena.shapes[s]
        qkv_wT, proj_wT = self.qkv_w.T, self.proj_w.T
        H, hd = self.num_heads, self.head_dim
        table, pb = self.softmax_table, self.prob_bits
        p_qkv, p_score, p_ctx, p_proj = self.mq_qkv, self.mq_score, self.mq_ctx, self.mq_proj

        def fn():
            x = regs[s]
            t = kernels.requant(x @ qkv_wT, p_qkv)
            qkv = t.reshape(n, l, 3, H, hd).transpose(2, 0, 3, 1, 4)
            q, k, v = qkv[0], qkv[1], qkv[2]
            s_int = kernels.requant(q @ np.swapaxes(k, -1, -2), p_score)
            p_int = kernels.lut_softmax(s_int, table, pb)
            c_int = kernels.requant(p_int @ v, p_ctx)
            merged = c_int.transpose(0, 2, 1, 3).reshape(n, l, d)
            regs[dst] = kernels.requant(merged @ proj_wT, p_proj)
        return fn

    def _sig_params(self, h):
        h.update(repr((self.prob_bits, self.num_heads, self.head_dim)).encode())
        kernels.array_sig(h, self.qkv_w, self.proj_w, self.softmax_table)
        for p in (self.mq_qkv, self.mq_score, self.mq_ctx, self.mq_proj):
            p.sig_update(h)


class MLPOp(Op):
    """Integer transformer MLP: fc1 + requant + LUT GELU + fc2 + requant."""

    kind = "mlp"

    def __init__(self, name, src, dst, fc1_w, fc2_w, mq_fc1, mq_fc2,
                 gelu_table, gelu_qlb, gelu_qub):
        super().__init__(name, src, dst)
        self.fc1_w = np.ascontiguousarray(fc1_w, dtype=np.float32)
        self.fc2_w = np.ascontiguousarray(fc2_w, dtype=np.float32)
        self.mq_fc1 = mq_fc1
        self.mq_fc2 = mq_fc2
        self.gelu_table = np.ascontiguousarray(gelu_table, dtype=np.int64)
        self.gelu_qlb = int(gelu_qlb)
        self.gelu_qub = int(gelu_qub)

    def infer(self, shapes):
        return shapes[self.src[0]][:-1] + (self.fc2_w.shape[0],)

    def bind(self, arena):
        regs, s, dst = arena.regs, self.src[0], self.dst
        fc1_wT, fc2_wT = self.fc1_w.T, self.fc2_w.T
        p1, p2 = self.mq_fc1, self.mq_fc2
        table, qlb, qub = self.gelu_table, self.gelu_qlb, self.gelu_qub

        def fn():
            g = kernels.lut_gelu(kernels.requant(regs[s] @ fc1_wT, p1), table, qlb, qub)
            regs[dst] = kernels.requant(g @ fc2_wT, p2)
        return fn

    def _sig_params(self, h):
        h.update(repr((self.gelu_qlb, self.gelu_qub)).encode())
        kernels.array_sig(h, self.fc1_w, self.fc2_w, self.gelu_table)
        self.mq_fc1.sig_update(h)
        self.mq_fc2.sig_update(h)


class HeadOp(Op):
    """Classifier head on the CLS token: select token 0, linear, requant."""

    kind = "head"

    def __init__(self, name, src, dst, weight: np.ndarray, mq: kernels.MQParams):
        super().__init__(name, src, dst)
        self.weight = np.ascontiguousarray(weight, dtype=np.float32)
        self.mq = mq

    def infer(self, shapes):
        return (self.weight.shape[0],)

    def bind(self, arena):
        regs, s, dst = arena.regs, self.src[0], self.dst
        wT = self.weight.T
        mq = self.mq

        def fn():
            regs[dst] = kernels.requant(regs[s][:, 0] @ wT, mq)
        return fn

    def _sig_params(self, h):
        kernels.array_sig(h, self.weight)
        self.mq.sig_update(h)


class CallModuleOp(Op):
    """Escape hatch: run an interpreted module for ops with no integer kernel.

    Used for the instant-statistics LayerNorm, whose deploy semantics are a
    float normalization by design (paper's latency/accuracy reference mode).
    """

    kind = "call_module"

    def __init__(self, name, src, dst, module):
        super().__init__(name, src, dst)
        self.module = module

    def infer(self, shapes):
        return shapes[self.src[0]]

    def bind(self, arena):
        from repro.tensor import no_grad
        from repro.tensor.tensor import Tensor

        regs, s, dst, module = arena.regs, self.src[0], self.dst, self.module

        def fn():
            with no_grad():
                regs[dst] = module(Tensor(regs[s])).data
        return fn

    def _sig_params(self, h):
        state = getattr(self.module, "state_dict", None)
        if state is not None:
            for key, t in sorted(state().items()):
                h.update(key.encode())
                kernels.array_sig(h, np.asarray(t.data))
