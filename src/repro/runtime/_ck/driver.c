#include <stdint.h>

void conv_acc_block(const float*, const int64_t*, const float*,
                    int64_t, int64_t, int64_t,
                    float*, int64_t, int64_t);
void requant_rows(const float*, float*,
                  int64_t, int64_t, int64_t,
                  int64_t, int64_t, int64_t,
                  int64_t, int64_t, int64_t,
                  int64_t, int64_t,
                  double, double, double, double);
void residual_row(const float*, const float*, float*,
                  int64_t, float, float, float);

#define CK_MAX_TAPS 8192

/* Fused integer conv + MulQuant over channel-major padded registers.
 *
 * Input register P is (C, N, Hp, Wp) with the conv's zero padding baked
 * into the register border (in_off = register_pad - conv_pad positions in
 * from the edge).  Output register Q is (O, N, Hq, Wq); valid outputs land
 * in its center at out_off.  acc is caller-provided scratch of acc_len
 * floats (>= 4 * Hp * Wp).
 *
 * Samples are processed in blocks sized so one block's input planes stay
 * within L2; per block, each group of 4 output channels runs one
 * register-blocked accumulation over the whole block followed by the exact
 * requant epilogue.  The caller must reject convs with more than
 * CK_MAX_TAPS taps (returned via conv_mq_taps_cap).
 */
int64_t conv_mq_taps_cap(void) { return CK_MAX_TAPS; }

/* Standalone MulQuant over a channel-major register pair (identity
 * shortcuts, fused LayerNorm tables).  Reads the (H, W) center of each
 * input plane (border pad ps) and requantizes it into the center of the
 * output register at out_off, via the same exact epilogue as the conv. */
void mulquant_cm(const float* P, int64_t ps,
                 const double* m, int64_t mlen,
                 const double* b, int64_t blen, double lo, double hi,
                 float* Q, int64_t C, int64_t N, int64_t Hp, int64_t Wp,
                 int64_t Hq, int64_t Wq, int64_t out_off,
                 int64_t H, int64_t W)
{
    for (int64_t c = 0; c < C; ++c) {
        const double mo = m[mlen > 1 ? c : 0];
        const double bo = b[blen > 1 ? c : 0];
        for (int64_t n = 0; n < N; ++n)
            requant_rows(P + ((c * N + n) * Hp + ps) * Wp + ps, Q,
                         c, n, N, Hp, Wp, 1, Hq, Wq, out_off, H, W,
                         mo, bo, lo, hi);
    }
}

/* Residual merge over channel-major registers: per plane row, the float32
 * add/divide/round/clip sequence of the interpreted datapath.  pa/psd/pq
 * are the three registers' border pads. */
void residual_cm(const float* A, int64_t pa, const float* S, int64_t psd,
                 float* Q, int64_t pq, float rs, float lo, float hi,
                 int64_t C, int64_t N, int64_t H, int64_t W)
{
    const int64_t Wa = W + 2 * pa, Ha = H + 2 * pa;
    const int64_t Ws = W + 2 * psd, Hs = H + 2 * psd;
    const int64_t Wq = W + 2 * pq, Hq = H + 2 * pq;
    for (int64_t c = 0; c < C; ++c)
        for (int64_t n = 0; n < N; ++n)
            for (int64_t y = 0; y < H; ++y)
                residual_row(A + ((c * N + n) * Ha + y + pa) * Wa + pa,
                             S + ((c * N + n) * Hs + y + psd) * Ws + psd,
                             Q + ((c * N + n) * Hq + y + pq) * Wq + pq,
                             W, rs, lo, hi);
}

void conv_mq_cm(const float* P, const float* w, const double* m, int64_t mlen,
                const double* b, int64_t blen, double lo, double hi,
                float* Q, float* acc, int64_t acc_len,
                int64_t C, int64_t N, int64_t Hp, int64_t Wp,
                int64_t O, int64_t kh, int64_t kw, int64_t stride,
                int64_t in_off, int64_t Hq, int64_t Wq, int64_t out_off,
                int64_t OH, int64_t OW, int64_t groups)
{
    const int64_t splane = Hp * Wp;
    const int64_t cg = C / groups;
    const int64_t og = O / groups;
    const int64_t K = cg * kh * kw;
    const int64_t maxbase = (in_off + kh - 1) * Wp + in_off + kw - 1;
    if (K > CK_MAX_TAPS)
        return;
    /* sample block: keep the block's input planes (cg channels) within L2 */
    int64_t nb = 524288 / (cg * splane * 4);
    if (nb < 1) nb = 1;
    if (nb > N) nb = N;
    {
        const int64_t cap = acc_len / (4 * splane);
        if (cap < 1) return;
        if (nb > cap) nb = cap;
    }
    /* tap offsets relative to the block base, shared by every group */
    int64_t offs[CK_MAX_TAPS];
    {
        int64_t cl = 0, ki = 0, kj = 0;
        const int64_t cstep = N * splane;
        for (int64_t k = 0; k < K; ++k) {
            offs[k] = cl * cstep + ki * Wp + kj;
            if (++kj == kw) { kj = 0; if (++ki == kh) { ki = 0; ++cl; } }
        }
    }
    for (int64_t n0 = 0; n0 < N; n0 += nb) {
        const int64_t nbk = (n0 + nb <= N) ? nb : N - n0;
        const int64_t R = nbk * splane - maxbase;
        for (int64_t o = 0; o < O; o += 4) {
            int64_t ob = O - o < 4 ? O - o : 4;
            const int64_t left_in_group = og - (o % og);
            if (ob > left_in_group) ob = left_in_group;
            const int64_t cbase = (o / og) * cg;
            const float* base = P + (cbase * N + n0) * splane
                                + in_off * Wp + in_off;
            conv_acc_block(base, offs, w + o * K, K, K, ob,
                           acc, nbk * splane, R);
            for (int64_t u = 0; u < ob; ++u) {
                const double mo = m[mlen > 1 ? o + u : 0];
                const double bo = b[blen > 1 ? o + u : 0];
                for (int64_t i = 0; i < nbk; ++i)
                    requant_rows(acc + u * nbk * splane + i * splane, Q,
                                 o + u, n0 + i, N, Hp, Wp, stride,
                                 Hq, Wq, out_off, OH, OW, mo, bo, lo, hi);
            }
            o += ob - 4; /* group boundary may shorten the block */
        }
    }
}
