#include <pthread.h>
#include <stdint.h>

void conv_acc_block(const float*, const int64_t*, const float*,
                    int64_t, int64_t, int64_t,
                    float*, int64_t, int64_t);
void conv_acc_block8(const float*, const int64_t*, const float*,
                     int64_t, int64_t, int64_t,
                     float*, int64_t, int64_t);
void requant_rows(const float*, float*,
                  int64_t, int64_t, int64_t,
                  int64_t, int64_t, int64_t,
                  int64_t, int64_t, int64_t,
                  int64_t, int64_t,
                  double, double, double, double);
void residual_row(const float*, const float*, float*,
                  int64_t, float, float, float);
void fused_res_rows(const float*, const float*, float*,
                    int64_t, int64_t, int64_t,
                    int64_t, int64_t,
                    int64_t, int64_t, int64_t,
                    int64_t, int64_t, int64_t,
                    int64_t, int64_t,
                    double, double, double, double,
                    int64_t, double, double,
                    double, double,
                    double, double, double);

#define CK_MAX_TAPS 8192
#define CK_MAX_THREADS 16

/* Fused integer conv + MulQuant over channel-major padded registers.
 *
 * Input register P is (C, N, Hp, Wp) with the conv's zero padding baked
 * into the register border (in_off = register_pad - conv_pad positions in
 * from the edge).  Output register Q is (O, N, Hq, Wq); valid outputs land
 * in its center at out_off.  acc is caller-provided scratch of acc_len
 * floats (>= 4 * Hp * Wp).
 *
 * Samples are processed in blocks sized so one block's input planes stay
 * within L2; per block, each group of 4 output channels runs one
 * register-blocked accumulation over the whole block followed by the exact
 * requant epilogue.  The caller must reject convs with more than
 * CK_MAX_TAPS taps (returned via conv_mq_taps_cap).
 */
int64_t conv_mq_taps_cap(void) { return CK_MAX_TAPS; }

/* Standalone MulQuant over a channel-major register pair (identity
 * shortcuts, fused LayerNorm tables).  Reads the (H, W) center of each
 * input plane (border pad ps) and requantizes it into the center of the
 * output register at out_off, via the same exact epilogue as the conv. */
void mulquant_cm(const float* P, int64_t ps,
                 const double* m, int64_t mlen,
                 const double* b, int64_t blen, double lo, double hi,
                 float* Q, int64_t C, int64_t N, int64_t Hp, int64_t Wp,
                 int64_t Hq, int64_t Wq, int64_t out_off,
                 int64_t H, int64_t W)
{
    for (int64_t c = 0; c < C; ++c) {
        const double mo = m[mlen > 1 ? c : 0];
        const double bo = b[blen > 1 ? c : 0];
        for (int64_t n = 0; n < N; ++n)
            requant_rows(P + ((c * N + n) * Hp + ps) * Wp + ps, Q,
                         c, n, N, Hp, Wp, 1, Hq, Wq, out_off, H, W,
                         mo, bo, lo, hi);
    }
}

/* Residual merge over channel-major registers: per plane row, the float32
 * add/divide/round/clip sequence of the interpreted datapath.  pa/psd/pq
 * are the three registers' border pads. */
void residual_cm(const float* A, int64_t pa, const float* S, int64_t psd,
                 float* Q, int64_t pq, float rs, float lo, float hi,
                 int64_t C, int64_t N, int64_t H, int64_t W)
{
    const int64_t Wa = W + 2 * pa, Ha = H + 2 * pa;
    const int64_t Ws = W + 2 * psd, Hs = H + 2 * psd;
    const int64_t Wq = W + 2 * pq, Hq = H + 2 * pq;
    for (int64_t c = 0; c < C; ++c)
        for (int64_t n = 0; n < N; ++n)
            for (int64_t y = 0; y < H; ++y)
                residual_row(A + ((c * N + n) * Ha + y + pa) * Wa + pa,
                             S + ((c * N + n) * Hs + y + psd) * Ws + psd,
                             Q + ((c * N + n) * Hq + y + pq) * Wq + pq,
                             W, rs, lo, hi);
}

/* ------------------------------------------------------------------------
 * Conv job: one conv (plain or fused-residual) over the whole batch,
 * decomposed into (sample block x output-channel block) tasks.  Tasks write
 * disjoint output regions, and every output element is produced by the very
 * same arithmetic whatever the task partition — the accumulation order
 * inside a task is fixed and the epilogues are elementwise — so any thread
 * count yields identical bits.
 */
typedef struct {
    const float* P;
    const float* w;
    const double* m; int64_t mlen;
    const double* b; int64_t blen;
    double lo, hi;
    /* fused residual tail (fused == 1) */
    int64_t fused;
    const float* S;
    const double* sm; int64_t smlen;
    const double* sb; int64_t sblen;
    double slo, shi; int64_t has_smq;
    double rs, rlo, rhi;
    int64_t Hs, Ws, s_off;
    float* Q;
    float* acc; int64_t acc_slot; /* floats per thread slot */
    int64_t C, N, Hp, Wp, O, kh, kw, stride, in_off;
    int64_t Hq, Wq, out_off, OH, OW, groups;
    int64_t splane, cg, og, K, maxbase, nb, n_blocks;
    const int64_t* offs;
    const int64_t* oblk; int64_t n_oblk; /* (o, ob) pairs */
    int64_t ntasks, threads;
} ck_conv_job;

static void ck_conv_task(const ck_conv_job* J, int64_t t, int64_t slot)
{
    const int64_t bi = t / J->n_oblk;
    const int64_t ci = t % J->n_oblk;
    const int64_t n0 = bi * J->nb;
    const int64_t nbk = (n0 + J->nb <= J->N) ? J->nb : J->N - n0;
    const int64_t R = nbk * J->splane - J->maxbase;
    const int64_t o = J->oblk[2 * ci], ob = J->oblk[2 * ci + 1];
    const int64_t cbase = (o / J->og) * J->cg;
    const float* base = J->P + (cbase * J->N + n0) * J->splane
                        + J->in_off * J->Wp + J->in_off;
    float* acc = J->acc + slot * J->acc_slot;
    if (ob > 4)
        conv_acc_block8(base, J->offs, J->w + o * J->K, J->K, J->K, ob,
                        acc, nbk * J->splane, R);
    else
        conv_acc_block(base, J->offs, J->w + o * J->K, J->K, J->K, ob,
                       acc, nbk * J->splane, R);
    for (int64_t u = 0; u < ob; ++u) {
        const double mo = J->m[J->mlen > 1 ? o + u : 0];
        const double bo = J->b[J->blen > 1 ? o + u : 0];
        for (int64_t i = 0; i < nbk; ++i) {
            const float* arow = acc + u * nbk * J->splane + i * J->splane;
            if (!J->fused) {
                requant_rows(arow, J->Q, o + u, n0 + i, J->N,
                             J->Hp, J->Wp, J->stride, J->Hq, J->Wq,
                             J->out_off, J->OH, J->OW, mo, bo, J->lo, J->hi);
            } else {
                const double smo = J->has_smq
                    ? J->sm[J->smlen > 1 ? o + u : 0] : 0.0;
                const double sbo = J->has_smq
                    ? J->sb[J->sblen > 1 ? o + u : 0] : 0.0;
                fused_res_rows(arow, J->S, J->Q, o + u, n0 + i, J->N,
                               J->Wp, J->stride, J->Hq, J->Wq, J->out_off,
                               J->Hs, J->Ws, J->s_off, J->OH, J->OW,
                               mo, bo, J->lo, J->hi, J->has_smq, smo, sbo,
                               J->slo, J->shi, J->rs, J->rlo, J->rhi);
            }
        }
    }
}

/* ------------------------------------------------------------- thread pool
 * Persistent worker pool, spawned lazily on the first multi-threaded conv.
 * One job runs at a time (concurrent callers serialize on ck_job_mu; a
 * caller with threads <= 1 runs inline and never touches the pool).  The
 * caller participates as slot 0; workers hold fixed slots 1..W and skip
 * jobs whose thread count excludes them.  fork() (plan.serve worker pools)
 * is handled via pthread_atfork: the child resets the pool — worker
 * threads do not survive fork — and respawns lazily.
 */
static pthread_mutex_t ck_job_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_mutex_t ck_pool_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_cond_t ck_work_cv = PTHREAD_COND_INITIALIZER;
static pthread_cond_t ck_done_cv = PTHREAD_COND_INITIALIZER;
static pthread_once_t ck_fork_once = PTHREAD_ONCE_INIT;
static int64_t ck_pool_workers = 0;  /* spawned worker threads */
static int64_t ck_pool_ready = 0;    /* workers parked in the wait loop */
static int64_t ck_pool_gen = 0;      /* job generation counter */
static const ck_conv_job* ck_pool_job = NULL;
static int64_t ck_pool_threads = 0;  /* current job's thread count */
static int64_t ck_pool_cursor = 0;   /* next unclaimed task */
static int64_t ck_pool_active = 0;   /* workers still inside the job */

static void* ck_pool_worker(void* arg)
{
    const int64_t slot = (int64_t)(intptr_t)arg;
    pthread_mutex_lock(&ck_pool_mu);
    /* register before any further job can dispatch: seen starts at the
     * current generation so this worker only joins jobs it is counted in */
    int64_t seen = ck_pool_gen;
    ++ck_pool_ready;
    pthread_cond_broadcast(&ck_done_cv);
    for (;;) {
        while (ck_pool_gen == seen)
            pthread_cond_wait(&ck_work_cv, &ck_pool_mu);
        seen = ck_pool_gen;
        const ck_conv_job* J = ck_pool_job;
        const int64_t mine = slot < ck_pool_threads;
        pthread_mutex_unlock(&ck_pool_mu);
        if (mine) {
            for (;;) {
                const int64_t t = __atomic_fetch_add(&ck_pool_cursor, 1,
                                                     __ATOMIC_RELAXED);
                if (t >= J->ntasks)
                    break;
                ck_conv_task(J, t, slot);
            }
        }
        pthread_mutex_lock(&ck_pool_mu);
        if (mine && --ck_pool_active == 0)
            pthread_cond_broadcast(&ck_done_cv);
    }
    return NULL;
}

static void ck_fork_prepare(void)
{
    pthread_mutex_lock(&ck_job_mu);
    pthread_mutex_lock(&ck_pool_mu);
}

static void ck_fork_parent(void)
{
    pthread_mutex_unlock(&ck_pool_mu);
    pthread_mutex_unlock(&ck_job_mu);
}

static void ck_fork_child(void)
{
    pthread_mutex_unlock(&ck_pool_mu);
    pthread_mutex_unlock(&ck_job_mu);
    ck_pool_workers = 0; /* worker threads are gone in the child */
    ck_pool_ready = 0;
    ck_pool_gen = 0;
    ck_pool_job = NULL;
    ck_pool_threads = 0;
    ck_pool_active = 0;
}

static void ck_fork_install(void)
{
    pthread_atfork(ck_fork_prepare, ck_fork_parent, ck_fork_child);
}

/* Grow the pool to serve `threads` participants (caller + threads-1
 * workers); returns the thread count actually available. */
static int64_t ck_pool_ensure(int64_t threads)
{
    pthread_once(&ck_fork_once, ck_fork_install);
    if (threads > CK_MAX_THREADS)
        threads = CK_MAX_THREADS;
    pthread_mutex_lock(&ck_pool_mu);
    while (ck_pool_workers < threads - 1) {
        pthread_t th;
        pthread_attr_t at;
        pthread_attr_init(&at);
        pthread_attr_setdetachstate(&at, PTHREAD_CREATE_DETACHED);
        const int rc = pthread_create(
            &th, &at, ck_pool_worker,
            (void*)(intptr_t)(ck_pool_workers + 1));
        pthread_attr_destroy(&at);
        if (rc != 0)
            break; /* cap at what we could spawn */
        ++ck_pool_workers;
    }
    /* wait until every spawned worker has registered (taken its seen
     * generation) so a dispatch never counts a worker that will skip it */
    while (ck_pool_ready < ck_pool_workers)
        pthread_cond_wait(&ck_done_cv, &ck_pool_mu);
    const int64_t avail = ck_pool_workers + 1;
    pthread_mutex_unlock(&ck_pool_mu);
    return threads < avail ? threads : avail;
}

static void ck_run_job(ck_conv_job* J)
{
    if (J->threads > 1)
        J->threads = ck_pool_ensure(J->threads);
    if (J->threads <= 1) {
        for (int64_t t = 0; t < J->ntasks; ++t)
            ck_conv_task(J, t, 0);
        return;
    }
    pthread_mutex_lock(&ck_job_mu);
    pthread_mutex_lock(&ck_pool_mu);
    ck_pool_job = J;
    ck_pool_threads = J->threads;
    ck_pool_cursor = 0;
    ck_pool_active = J->threads - 1;
    ++ck_pool_gen;
    pthread_cond_broadcast(&ck_work_cv);
    pthread_mutex_unlock(&ck_pool_mu);
    for (;;) {
        const int64_t t = __atomic_fetch_add(&ck_pool_cursor, 1,
                                             __ATOMIC_RELAXED);
        if (t >= J->ntasks)
            break;
        ck_conv_task(J, t, 0);
    }
    pthread_mutex_lock(&ck_pool_mu);
    while (ck_pool_active > 0)
        pthread_cond_wait(&ck_done_cv, &ck_pool_mu);
    pthread_mutex_unlock(&ck_pool_mu);
    pthread_mutex_unlock(&ck_job_mu);
}

/* Shared setup: tiling, tap offsets, oc-block table, dispatch.  `nb` is the
 * caller-chosen sample-block size (CompileSpec.tile_kc); `ob_step` the
 * register blocking (0 = auto: 8-wide when the group width allows, else
 * 4-wide); `threads` the worker count (clamped to what acc can seat). */
static void ck_conv_run(ck_conv_job* J, int64_t acc_len, int64_t nb,
                        int64_t ob_step, int64_t threads)
{
    const int64_t splane = J->Hp * J->Wp;
    const int64_t cg = J->C / J->groups;
    const int64_t og = J->O / J->groups;
    const int64_t K = cg * J->kh * J->kw;
    if (K > CK_MAX_TAPS || J->O > CK_MAX_TAPS)
        return; /* Python gates both on conv_mq_taps_cap() */
    if (ob_step != 4 && ob_step != 8)
        ob_step = og >= 8 ? 8 : 4;
    if (nb < 1) nb = 1;
    if (nb > J->N) nb = J->N;
    if (threads < 1) threads = 1;
    if (threads > CK_MAX_THREADS) threads = CK_MAX_THREADS;
    /* each thread slot must seat an (ob_step x nb x splane) accumulator */
    for (;;) {
        const int64_t slot = acc_len / threads;
        const int64_t cap = slot / (ob_step * splane);
        if (cap >= 1) {
            if (nb > cap) nb = cap;
            J->acc_slot = slot;
            break;
        }
        if (threads > 1) { threads = 1; continue; }
        if (ob_step == 8) { ob_step = 4; continue; }
        return; /* scratch cannot seat even one plane — caller bug */
    }
    J->splane = splane;
    J->cg = cg;
    J->og = og;
    J->K = K;
    J->maxbase = (J->in_off + J->kh - 1) * J->Wp + J->in_off + J->kw - 1;
    J->nb = nb;
    J->n_blocks = (J->N + nb - 1) / nb;

    /* tap offsets relative to the block base, shared by every group */
    int64_t offs[CK_MAX_TAPS];
    {
        int64_t cl = 0, ki = 0, kj = 0;
        const int64_t cstep = J->N * splane;
        for (int64_t k = 0; k < K; ++k) {
            offs[k] = cl * cstep + ki * J->Wp + kj;
            if (++kj == J->kw) {
                kj = 0;
                if (++ki == J->kh) { ki = 0; ++cl; }
            }
        }
    }
    /* output-channel blocks: ob_step channels, clamped at group and O ends */
    int64_t oblk[2 * (CK_MAX_TAPS > 4096 ? CK_MAX_TAPS : 4096)];
    int64_t n_oblk = 0;
    for (int64_t o = 0; o < J->O;) {
        int64_t ob = J->O - o < ob_step ? J->O - o : ob_step;
        const int64_t left = og - (o % og);
        if (ob > left) ob = left;
        oblk[2 * n_oblk] = o;
        oblk[2 * n_oblk + 1] = ob;
        ++n_oblk;
        o += ob;
    }
    J->offs = offs;
    J->oblk = oblk;
    J->n_oblk = n_oblk;
    J->ntasks = J->n_blocks * n_oblk;
    J->threads = threads;
    ck_run_job(J);
}

void conv_mq_cm(const float* P, const float* w, const double* m, int64_t mlen,
                const double* b, int64_t blen, double lo, double hi,
                float* Q, float* acc, int64_t acc_len,
                int64_t C, int64_t N, int64_t Hp, int64_t Wp,
                int64_t O, int64_t kh, int64_t kw, int64_t stride,
                int64_t in_off, int64_t Hq, int64_t Wq, int64_t out_off,
                int64_t OH, int64_t OW, int64_t groups,
                int64_t nb, int64_t ob_step, int64_t threads)
{
    ck_conv_job J = {0};
    J.P = P; J.w = w; J.m = m; J.mlen = mlen; J.b = b; J.blen = blen;
    J.lo = lo; J.hi = hi;
    J.fused = 0;
    J.Q = Q; J.acc = acc;
    J.C = C; J.N = N; J.Hp = Hp; J.Wp = Wp; J.O = O;
    J.kh = kh; J.kw = kw; J.stride = stride; J.in_off = in_off;
    J.Hq = Hq; J.Wq = Wq; J.out_off = out_off; J.OH = OH; J.OW = OW;
    J.groups = groups;
    ck_conv_run(&J, acc_len, nb, ob_step, threads);
}

void conv_mq_res_cm(const float* P, const float* w,
                    const double* m, int64_t mlen,
                    const double* b, int64_t blen, double lo, double hi,
                    const float* S, const double* sm, int64_t smlen,
                    const double* sb, int64_t sblen, double slo, double shi,
                    int64_t has_smq, double rs, double rlo, double rhi,
                    float* Q, float* acc, int64_t acc_len,
                    int64_t C, int64_t N, int64_t Hp, int64_t Wp,
                    int64_t O, int64_t kh, int64_t kw, int64_t stride,
                    int64_t in_off, int64_t Hq, int64_t Wq, int64_t out_off,
                    int64_t OH, int64_t OW, int64_t groups,
                    int64_t nb, int64_t ob_step, int64_t threads,
                    int64_t Hs, int64_t Ws, int64_t s_off)
{
    ck_conv_job J = {0};
    J.P = P; J.w = w; J.m = m; J.mlen = mlen; J.b = b; J.blen = blen;
    J.lo = lo; J.hi = hi;
    J.fused = 1;
    J.S = S; J.sm = sm; J.smlen = smlen; J.sb = sb; J.sblen = sblen;
    J.slo = slo; J.shi = shi; J.has_smq = has_smq;
    J.rs = rs; J.rlo = rlo; J.rhi = rhi;
    J.Hs = Hs; J.Ws = Ws; J.s_off = s_off;
    J.Q = Q; J.acc = acc;
    J.C = C; J.N = N; J.Hp = Hp; J.Wp = Wp; J.O = O;
    J.kh = kh; J.kw = kw; J.stride = stride; J.in_off = in_off;
    J.Hq = Hq; J.Wq = Wq; J.out_off = out_off; J.OH = OH; J.OW = OW;
    J.groups = groups;
    ck_conv_run(&J, acc_len, nb, ob_step, threads);
}
