#include <stdint.h>
#include <string.h>

/* Register-blocked full-grid conv accumulation over channel-major planes.
 *
 * Accumulates up to 4 output channels of one conv over a contiguous block
 * of sample planes.  `base` points at the top-left tap of the first plane;
 * `offs[k]` are the K tap offsets relative to it (identical for every
 * group, because `base` already includes the group's channel base).  The
 * full padded grid is computed: every valid output position of every
 * sample in the block lives at a grid offset below R, and positions >= R
 * (which would read past the block or across a sample seam) are simply
 * never produced.
 *
 * Weights and activations are integer-valued floats; the plan compiler
 * certified that every partial sum stays below 2^24, so all products and
 * sums here are exact regardless of association (this translation unit is
 * built with -ffp-contract=fast).
 */

#if defined(__AVX512F__)
#include <immintrin.h>

void conv_acc_block(const float* base, const int64_t* offs,
                    const float* w, int64_t K, int64_t wstride, int64_t ob,
                    float* acc, int64_t acc_stride, int64_t R)
{
    int64_t t0 = 0;
    /* full 64-float tiles: 16 accumulator registers live across the whole
     * tap loop, 4 plane loads + 4 weight broadcasts feed 16 FMAs */
    for (; t0 + 64 <= R; t0 += 64) {
        __m512 a00 = _mm512_setzero_ps(), a01 = a00, a02 = a00, a03 = a00;
        __m512 a10 = a00, a11 = a00, a12 = a00, a13 = a00;
        __m512 a20 = a00, a21 = a00, a22 = a00, a23 = a00;
        __m512 a30 = a00, a31 = a00, a32 = a00, a33 = a00;
        if (ob == 4) {
            for (int64_t k = 0; k < K; ++k) {
                const float* s = base + offs[k] + t0;
                const __m512 s0 = _mm512_loadu_ps(s);
                const __m512 s1 = _mm512_loadu_ps(s + 16);
                const __m512 s2 = _mm512_loadu_ps(s + 32);
                const __m512 s3 = _mm512_loadu_ps(s + 48);
                __m512 wb;
                wb = _mm512_set1_ps(w[k]);
                a00 = _mm512_fmadd_ps(wb, s0, a00);
                a01 = _mm512_fmadd_ps(wb, s1, a01);
                a02 = _mm512_fmadd_ps(wb, s2, a02);
                a03 = _mm512_fmadd_ps(wb, s3, a03);
                wb = _mm512_set1_ps(w[wstride + k]);
                a10 = _mm512_fmadd_ps(wb, s0, a10);
                a11 = _mm512_fmadd_ps(wb, s1, a11);
                a12 = _mm512_fmadd_ps(wb, s2, a12);
                a13 = _mm512_fmadd_ps(wb, s3, a13);
                wb = _mm512_set1_ps(w[2 * wstride + k]);
                a20 = _mm512_fmadd_ps(wb, s0, a20);
                a21 = _mm512_fmadd_ps(wb, s1, a21);
                a22 = _mm512_fmadd_ps(wb, s2, a22);
                a23 = _mm512_fmadd_ps(wb, s3, a23);
                wb = _mm512_set1_ps(w[3 * wstride + k]);
                a30 = _mm512_fmadd_ps(wb, s0, a30);
                a31 = _mm512_fmadd_ps(wb, s1, a31);
                a32 = _mm512_fmadd_ps(wb, s2, a32);
                a33 = _mm512_fmadd_ps(wb, s3, a33);
            }
        } else {
            for (int64_t k = 0; k < K; ++k) {
                const float* s = base + offs[k] + t0;
                const __m512 s0 = _mm512_loadu_ps(s);
                const __m512 s1 = _mm512_loadu_ps(s + 16);
                const __m512 s2 = _mm512_loadu_ps(s + 32);
                const __m512 s3 = _mm512_loadu_ps(s + 48);
                __m512 wb = _mm512_set1_ps(w[k]);
                a00 = _mm512_fmadd_ps(wb, s0, a00);
                a01 = _mm512_fmadd_ps(wb, s1, a01);
                a02 = _mm512_fmadd_ps(wb, s2, a02);
                a03 = _mm512_fmadd_ps(wb, s3, a03);
                if (ob > 1) {
                    wb = _mm512_set1_ps(w[wstride + k]);
                    a10 = _mm512_fmadd_ps(wb, s0, a10);
                    a11 = _mm512_fmadd_ps(wb, s1, a11);
                    a12 = _mm512_fmadd_ps(wb, s2, a12);
                    a13 = _mm512_fmadd_ps(wb, s3, a13);
                }
                if (ob > 2) {
                    wb = _mm512_set1_ps(w[2 * wstride + k]);
                    a20 = _mm512_fmadd_ps(wb, s0, a20);
                    a21 = _mm512_fmadd_ps(wb, s1, a21);
                    a22 = _mm512_fmadd_ps(wb, s2, a22);
                    a23 = _mm512_fmadd_ps(wb, s3, a23);
                }
            }
        }
        float* d = acc + t0;
        _mm512_storeu_ps(d, a00);
        _mm512_storeu_ps(d + 16, a01);
        _mm512_storeu_ps(d + 32, a02);
        _mm512_storeu_ps(d + 48, a03);
        if (ob > 1) {
            d = acc + acc_stride + t0;
            _mm512_storeu_ps(d, a10);
            _mm512_storeu_ps(d + 16, a11);
            _mm512_storeu_ps(d + 32, a12);
            _mm512_storeu_ps(d + 48, a13);
        }
        if (ob > 2) {
            d = acc + 2 * acc_stride + t0;
            _mm512_storeu_ps(d, a20);
            _mm512_storeu_ps(d + 16, a21);
            _mm512_storeu_ps(d + 32, a22);
            _mm512_storeu_ps(d + 48, a23);
        }
        if (ob > 3) {
            d = acc + 3 * acc_stride + t0;
            _mm512_storeu_ps(d, a30);
            _mm512_storeu_ps(d + 16, a31);
            _mm512_storeu_ps(d + 32, a32);
            _mm512_storeu_ps(d + 48, a33);
        }
    }
    /* masked tail: lanes past R neither fault nor get stored */
    if (t0 < R) {
        const int64_t rem = R - t0;
        __mmask16 mk[4];
        for (int v = 0; v < 4; ++v) {
            const int64_t r = rem - 16 * v;
            mk[v] = r >= 16 ? (__mmask16)0xFFFF
                            : (r > 0 ? (__mmask16)((1u << r) - 1u) : 0);
        }
        __m512 a[4][4];
        for (int u = 0; u < 4; ++u)
            for (int v = 0; v < 4; ++v)
                a[u][v] = _mm512_setzero_ps();
        for (int64_t k = 0; k < K; ++k) {
            const float* s = base + offs[k] + t0;
            __m512 sv[4];
            for (int v = 0; v < 4; ++v)
                sv[v] = _mm512_maskz_loadu_ps(mk[v], s + 16 * v);
            for (int64_t u = 0; u < ob; ++u) {
                const __m512 wb = _mm512_set1_ps(w[u * wstride + k]);
                for (int v = 0; v < 4; ++v)
                    a[u][v] = _mm512_fmadd_ps(wb, sv[v], a[u][v]);
            }
        }
        for (int64_t u = 0; u < ob; ++u)
            for (int v = 0; v < 4; ++v)
                _mm512_mask_storeu_ps(acc + u * acc_stride + t0 + 16 * v,
                                      mk[v], a[u][v]);
    }
}

/* 8-output-channel variant: 32-lane grid tiles x 8 channels keep the same
 * 16 live accumulators but read each activation lane once per 8 channels
 * instead of once per 4, halving activation streaming for convs with wide
 * enough groups.  Exactness is untouched — every partial sum is a <2^24
 * integer, so any register blocking produces identical bits. */
void conv_acc_block8(const float* base, const int64_t* offs,
                     const float* w, int64_t K, int64_t wstride, int64_t ob,
                     float* acc, int64_t acc_stride, int64_t R)
{
    int64_t t0 = 0;
    for (; t0 + 32 <= R; t0 += 32) {
        if (ob == 8) {
            __m512 a00 = _mm512_setzero_ps(), a01 = a00;
            __m512 a10 = a00, a11 = a00, a20 = a00, a21 = a00;
            __m512 a30 = a00, a31 = a00, a40 = a00, a41 = a00;
            __m512 a50 = a00, a51 = a00, a60 = a00, a61 = a00;
            __m512 a70 = a00, a71 = a00;
            for (int64_t k = 0; k < K; ++k) {
                const float* s = base + offs[k] + t0;
                const __m512 s0 = _mm512_loadu_ps(s);
                const __m512 s1 = _mm512_loadu_ps(s + 16);
                __m512 wb;
                wb = _mm512_set1_ps(w[k]);
                a00 = _mm512_fmadd_ps(wb, s0, a00);
                a01 = _mm512_fmadd_ps(wb, s1, a01);
                wb = _mm512_set1_ps(w[wstride + k]);
                a10 = _mm512_fmadd_ps(wb, s0, a10);
                a11 = _mm512_fmadd_ps(wb, s1, a11);
                wb = _mm512_set1_ps(w[2 * wstride + k]);
                a20 = _mm512_fmadd_ps(wb, s0, a20);
                a21 = _mm512_fmadd_ps(wb, s1, a21);
                wb = _mm512_set1_ps(w[3 * wstride + k]);
                a30 = _mm512_fmadd_ps(wb, s0, a30);
                a31 = _mm512_fmadd_ps(wb, s1, a31);
                wb = _mm512_set1_ps(w[4 * wstride + k]);
                a40 = _mm512_fmadd_ps(wb, s0, a40);
                a41 = _mm512_fmadd_ps(wb, s1, a41);
                wb = _mm512_set1_ps(w[5 * wstride + k]);
                a50 = _mm512_fmadd_ps(wb, s0, a50);
                a51 = _mm512_fmadd_ps(wb, s1, a51);
                wb = _mm512_set1_ps(w[6 * wstride + k]);
                a60 = _mm512_fmadd_ps(wb, s0, a60);
                a61 = _mm512_fmadd_ps(wb, s1, a61);
                wb = _mm512_set1_ps(w[7 * wstride + k]);
                a70 = _mm512_fmadd_ps(wb, s0, a70);
                a71 = _mm512_fmadd_ps(wb, s1, a71);
            }
            float* d = acc + t0;
            _mm512_storeu_ps(d, a00); _mm512_storeu_ps(d + 16, a01);
            d = acc + acc_stride + t0;
            _mm512_storeu_ps(d, a10); _mm512_storeu_ps(d + 16, a11);
            d = acc + 2 * acc_stride + t0;
            _mm512_storeu_ps(d, a20); _mm512_storeu_ps(d + 16, a21);
            d = acc + 3 * acc_stride + t0;
            _mm512_storeu_ps(d, a30); _mm512_storeu_ps(d + 16, a31);
            d = acc + 4 * acc_stride + t0;
            _mm512_storeu_ps(d, a40); _mm512_storeu_ps(d + 16, a41);
            d = acc + 5 * acc_stride + t0;
            _mm512_storeu_ps(d, a50); _mm512_storeu_ps(d + 16, a51);
            d = acc + 6 * acc_stride + t0;
            _mm512_storeu_ps(d, a60); _mm512_storeu_ps(d + 16, a61);
            d = acc + 7 * acc_stride + t0;
            _mm512_storeu_ps(d, a70); _mm512_storeu_ps(d + 16, a71);
        } else {
            __m512 a[8][2];
            for (int64_t u = 0; u < ob; ++u)
                a[u][0] = a[u][1] = _mm512_setzero_ps();
            for (int64_t k = 0; k < K; ++k) {
                const float* s = base + offs[k] + t0;
                const __m512 s0 = _mm512_loadu_ps(s);
                const __m512 s1 = _mm512_loadu_ps(s + 16);
                for (int64_t u = 0; u < ob; ++u) {
                    const __m512 wb = _mm512_set1_ps(w[u * wstride + k]);
                    a[u][0] = _mm512_fmadd_ps(wb, s0, a[u][0]);
                    a[u][1] = _mm512_fmadd_ps(wb, s1, a[u][1]);
                }
            }
            for (int64_t u = 0; u < ob; ++u) {
                float* d = acc + u * acc_stride + t0;
                _mm512_storeu_ps(d, a[u][0]);
                _mm512_storeu_ps(d + 16, a[u][1]);
            }
        }
    }
    if (t0 < R) {
        const int64_t rem = R - t0;
        __mmask16 mk[2];
        for (int v = 0; v < 2; ++v) {
            const int64_t r = rem - 16 * v;
            mk[v] = r >= 16 ? (__mmask16)0xFFFF
                            : (r > 0 ? (__mmask16)((1u << r) - 1u) : 0);
        }
        __m512 a[8][2];
        for (int64_t u = 0; u < ob; ++u)
            a[u][0] = a[u][1] = _mm512_setzero_ps();
        for (int64_t k = 0; k < K; ++k) {
            const float* s = base + offs[k] + t0;
            __m512 sv[2];
            for (int v = 0; v < 2; ++v)
                sv[v] = _mm512_maskz_loadu_ps(mk[v], s + 16 * v);
            for (int64_t u = 0; u < ob; ++u) {
                const __m512 wb = _mm512_set1_ps(w[u * wstride + k]);
                for (int v = 0; v < 2; ++v)
                    a[u][v] = _mm512_fmadd_ps(wb, sv[v], a[u][v]);
            }
        }
        for (int64_t u = 0; u < ob; ++u)
            for (int v = 0; v < 2; ++v)
                _mm512_mask_storeu_ps(acc + u * acc_stride + t0 + 16 * v,
                                      mk[v], a[u][v]);
    }
}

#else /* portable fallback: fused axpy passes, auto-vectorizable plain C */

void conv_acc_block(const float* base, const int64_t* offs,
                    const float* w, int64_t K, int64_t wstride, int64_t ob,
                    float* acc, int64_t acc_stride, int64_t R)
{
    for (int64_t u = 0; u < ob; ++u) {
        float* restrict a = acc + u * acc_stride;
        const float* wu = w + u * wstride;
        memset(a, 0, (size_t)R * 4);
        int64_t q = 0;
        while (q < K) {
            const int64_t g = (K - q >= 4) ? 4 : 1;
            if (g == 4) {
                const float* restrict s0 = base + offs[q];
                const float* restrict s1 = base + offs[q + 1];
                const float* restrict s2 = base + offs[q + 2];
                const float* restrict s3 = base + offs[q + 3];
                const float w0 = wu[q], w1 = wu[q + 1];
                const float w2 = wu[q + 2], w3 = wu[q + 3];
                for (int64_t t = 0; t < R; ++t)
                    a[t] += (w0 * s0[t] + w1 * s1[t]) + (w2 * s2[t] + w3 * s3[t]);
            } else {
                const float* restrict s0 = base + offs[q];
                const float w0 = wu[q];
                for (int64_t t = 0; t < R; ++t)
                    a[t] += w0 * s0[t];
            }
            q += g;
        }
    }
}

/* 8-channel entry point: two 4-channel passes (the portable path is
 * per-channel anyway, so the wider blocking buys nothing here). */
void conv_acc_block8(const float* base, const int64_t* offs,
                     const float* w, int64_t K, int64_t wstride, int64_t ob,
                     float* acc, int64_t acc_stride, int64_t R)
{
    const int64_t lo = ob < 4 ? ob : 4;
    conv_acc_block(base, offs, w, K, wstride, lo, acc, acc_stride, R);
    if (ob > 4)
        conv_acc_block(base, offs, w + 4 * wstride, K, wstride, ob - 4,
                       acc + 4 * acc_stride, acc_stride, R);
}
#endif
