#include <stdint.h>

/* Requant epilogue: v = acc*m + b, round half away from zero, clip, cast.
 *
 * This translation unit MUST be compiled with -ffp-contract=off: the mul
 * and add have to round separately, exactly like the interpreted float64
 * numpy datapath (a fused multiply-add would round once and diverge by one
 * ulp on some accumulators).  |v| stays far below 2^62 (the compiler
 * certified the accumulator bound), so the int64 cast (= trunc) is defined
 * and `(double)(int64_t)(v + copysign(0.5, v))` equals numpy's
 * `sign(v) * floor(|v| + 0.5)` for every accumulator value.
 *
 * Reads the valid output positions of one sample plane from the full-grid
 * accumulator (subsampling by `stride`) and writes them into the padded
 * center of the destination register (`out_off`); the register border was
 * zeroed at allocation and is never touched.
 */
/* Residual merge row: y = clip(round_half_away((a + s) / rs), lo, hi) in
 * float32, replicating the interpreted elementwise sequence (sum, divide,
 * round, clip — each rounding separately, hence -ffp-contract=off).  The
 * int64 cast trick is the same exact rounding as in requant_rows, one type
 * narrower. */
void residual_row(const float* restrict a, const float* restrict s,
                  float* restrict q, int64_t W, float rs, float lo, float hi)
{
    for (int64_t x = 0; x < W; ++x) {
        const float v = (a[x] + s[x]) / rs;
        const float h = v >= 0.0f ? 0.5f : -0.5f;
        float r = (float)(int64_t)(v + h);
        r = r < lo ? lo : r;
        r = r > hi ? hi : r;
        q[x] = r;
    }
}

void requant_rows(const float* restrict acc, float* restrict Q,
                  int64_t o, int64_t n, int64_t N,
                  int64_t Hp, int64_t Wp, int64_t stride,
                  int64_t Hq, int64_t Wq, int64_t out_off,
                  int64_t OH, int64_t OW,
                  double mo, double bo, double lo, double hi)
{
    double vb[512];
    (void)Hp;
    for (int64_t y = 0; y < OH; ++y) {
        const float* restrict arow = acc + (y * stride) * Wp;
        float* restrict qrow = Q + ((o * N + n) * Hq + y + out_off) * Wq + out_off;
        for (int64_t x0 = 0; x0 < OW; x0 += 512) {
            const int64_t nb = OW - x0 < 512 ? OW - x0 : 512;
            /* three single-typed loops over a stack tile: each vectorizes */
            if (stride == 1) {
                const float* restrict ar = arow + x0;
                for (int64_t x = 0; x < nb; ++x)
                    vb[x] = (double)ar[x];
            } else {
                const float* restrict ar = arow + x0 * stride;
                for (int64_t x = 0; x < nb; ++x)
                    vb[x] = (double)ar[x * stride];
            }
            for (int64_t x = 0; x < nb; ++x) {
                double v = vb[x] * mo;
                v = v + bo;
                const double h = v >= 0.0 ? 0.5 : -0.5;
                double r = (double)(int64_t)(v + h);
                r = r < lo ? lo : r;
                r = r > hi ? hi : r;
                vb[x] = r;
            }
            float* restrict qr = qrow + x0;
            for (int64_t x = 0; x < nb; ++x)
                qr[x] = (float)vb[x];
        }
    }
}

/* Fused epilogue of a conv+requant+residual chain (conv_mq_res): requant
 * the conv accumulator rows, optionally requant the shortcut rows (folded
 * identity MulQuant), then the float32 residual merge — each stage is the
 * byte-for-byte arithmetic of the standalone kernel above, applied while
 * the rows are still in cache.  The `(float)` cast of the clamped integral
 * double is exact, so skipping the store/load round-trip through the
 * intermediate register changes no bits.
 *
 * acc points at the sample's full-grid accumulator plane; S is the
 * shortcut's (O, N, Hs, Ws) channel-major register with border pad s_off.
 */
void fused_res_rows(const float* restrict acc, const float* restrict S,
                    float* restrict Q,
                    int64_t o, int64_t n, int64_t N,
                    int64_t Wp, int64_t stride,
                    int64_t Hq, int64_t Wq, int64_t out_off,
                    int64_t Hs, int64_t Ws, int64_t s_off,
                    int64_t OH, int64_t OW,
                    double mo, double bo, double lo, double hi,
                    int64_t has_smq, double smo, double sbo,
                    double slo, double shi,
                    double rs, double rlo, double rhi)
{
    double vb[512];
    float av[512], sv[512];
    const float frs = (float)rs, flo = (float)rlo, fhi = (float)rhi;
    for (int64_t y = 0; y < OH; ++y) {
        const float* restrict arow = acc + (y * stride) * Wp;
        const float* restrict srow =
            S + ((o * N + n) * Hs + y + s_off) * Ws + s_off;
        float* restrict qrow =
            Q + ((o * N + n) * Hq + y + out_off) * Wq + out_off;
        for (int64_t x0 = 0; x0 < OW; x0 += 512) {
            const int64_t nb = OW - x0 < 512 ? OW - x0 : 512;
            if (stride == 1) {
                const float* restrict ar = arow + x0;
                for (int64_t x = 0; x < nb; ++x)
                    vb[x] = (double)ar[x];
            } else {
                const float* restrict ar = arow + x0 * stride;
                for (int64_t x = 0; x < nb; ++x)
                    vb[x] = (double)ar[x * stride];
            }
            for (int64_t x = 0; x < nb; ++x) {
                double v = vb[x] * mo;
                v = v + bo;
                const double h = v >= 0.0 ? 0.5 : -0.5;
                double r = (double)(int64_t)(v + h);
                r = r < lo ? lo : r;
                r = r > hi ? hi : r;
                av[x] = (float)r;
            }
            const float* restrict sr = srow + x0;
            if (has_smq) {
                for (int64_t x = 0; x < nb; ++x) {
                    double v = (double)sr[x] * smo;
                    v = v + sbo;
                    const double h = v >= 0.0 ? 0.5 : -0.5;
                    double r = (double)(int64_t)(v + h);
                    r = r < slo ? slo : r;
                    r = r > shi ? shi : r;
                    sv[x] = (float)r;
                }
            } else {
                for (int64_t x = 0; x < nb; ++x)
                    sv[x] = sr[x];
            }
            float* restrict qr = qrow + x0;
            for (int64_t x = 0; x < nb; ++x) {
                const float v = (av[x] + sv[x]) / frs;
                const float h = v >= 0.0f ? 0.5f : -0.5f;
                float r = (float)(int64_t)(v + h);
                r = r < flo ? flo : r;
                r = r > fhi ? fhi : r;
                qr[x] = r;
            }
        }
    }
}
