"""Supervised trainer: the base of the TRAINER hierarchy."""
from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro import telemetry
from repro.data.dataloader import DataLoader
from repro.data.dataset import ArrayDataset
from repro.nn.module import Module
from repro.optim import SGD
from repro.optim.lr_scheduler import CosineAnnealingLR, LRScheduler
from repro.optim.optimizer import Optimizer
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.trainer.metrics import AverageMeter, accuracy, evaluate


class Trainer:
    """Supervised training loop with cosine LR schedule.

    Hooks (``on_epoch_end(trainer, epoch)``, ``on_step_end(trainer)``) let
    subclasses and pruners interleave with the optimization without
    re-implementing the loop.
    """

    def __init__(
        self,
        model: Module,
        train_set: ArrayDataset,
        test_set: Optional[ArrayDataset] = None,
        epochs: int = 10,
        batch_size: int = 64,
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 5e-4,
        optimizer: Optional[Optimizer] = None,
        scheduler: Optional[LRScheduler] = None,
        label_smoothing: float = 0.0,
        seed: int = 0,
        verbose: bool = False,
    ):
        self.model = model
        self.train_set = train_set
        self.test_set = test_set
        self.epochs = epochs
        self.batch_size = batch_size
        self.label_smoothing = label_smoothing
        self.verbose = verbose
        self.optimizer = optimizer or SGD(model.parameters(), lr=lr, momentum=momentum,
                                          weight_decay=weight_decay)
        self.scheduler = scheduler or CosineAnnealingLR(self.optimizer, t_max=epochs)
        self.loader = DataLoader(train_set, batch_size=batch_size, shuffle=True, seed=seed)
        self.history: List[dict] = []
        self.step_hooks: List[Callable] = []
        self.epoch_hooks: List[Callable] = []
        self._global_step = 0

    # -------------------------------------------------------------- pieces
    def compute_loss(self, x: np.ndarray, y: np.ndarray) -> Tensor:
        logits = self.model(Tensor(x))
        self._last_logits = logits
        return F.cross_entropy(logits, y, self.label_smoothing)

    def train_epoch(self, epoch: int) -> dict:
        self.model.train()
        loss_m, acc_m = AverageMeter("loss"), AverageMeter("acc")
        with telemetry.trace("train_epoch", index=epoch):
            for x, y in self.loader:
                self.optimizer.zero_grad()
                loss = self.compute_loss(x, y)
                loss.backward()
                self.optimizer.step()
                self._global_step += 1
                for hook in self.step_hooks:
                    hook(self)
                step_loss = loss.item()
                step_acc = accuracy(self._last_logits.data, y)
                loss_m.update(step_loss, len(y))
                acc_m.update(step_acc, len(y))
                telemetry.emit("step", trainer=type(self).__name__,
                               step=self._global_step, epoch=epoch,
                               loss=step_loss, acc=step_acc, batch=len(y))
                # drop the computation graph between steps: on deep models it
                # retains every intermediate activation (gigabytes)
                self._last_logits = self._last_logits.detach()
                loss = None
        self.scheduler.step()
        return {"epoch": epoch, "loss": loss_m.avg, "train_acc": acc_m.avg, "lr": self.scheduler.lr}

    def fit(self) -> Module:
        """Run the full schedule; returns the trained model."""
        with telemetry.trace("Trainer.fit", trainer=type(self).__name__,
                             epochs=self.epochs):
            for epoch in range(self.epochs):
                stats = self.train_epoch(epoch)
                for hook in self.epoch_hooks:
                    hook(self, epoch)
                if self.test_set is not None and (epoch == self.epochs - 1 or self.verbose):
                    with telemetry.trace("evaluate", index=epoch):
                        stats["test_acc"] = evaluate(self.model, self.test_set)
                self.history.append(stats)
                telemetry.emit("epoch", trainer=type(self).__name__, **stats)
                if self.verbose:
                    print(f"[{type(self).__name__}] " + "  ".join(
                        f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                        for k, v in stats.items()))
        return self.model

    def evaluate(self) -> float:
        if self.test_set is None:
            raise RuntimeError("no test set configured")
        return evaluate(self.model, self.test_set)

    @property
    def progress(self) -> float:
        """Normalized training progress in [0, 1] (used by prune schedules)."""
        total = self.epochs * max(len(self.loader), 1)
        return min(self._global_step / max(total, 1), 1.0)
