"""Sparse training: supervised training interleaved with mask updates.

Follows Table 3's recipe: start dense, ramp sparsity with the cubic schedule
during training, keep pruned weights at zero via post-step mask application.
For GraNet, gradients are snapshotted before the optimizer step so regrowth
can use them.
"""
from __future__ import annotations

from typing import Optional

from repro.nn.module import Module
from repro.pruning import build_pruner
from repro.pruning.granet import GraNetPruner
from repro.pruning.pruner import Pruner
from repro.trainer.base import Trainer


class SparseTrainer(Trainer):
    """Trainer with an attached pruner.

    Parameters
    ----------
    pruner:
        A :class:`Pruner` instance, or a registered name + ``pruner_kwargs``.
    update_every:
        Mask-update period in optimizer steps.
    """

    def __init__(self, model: Module, pruner="magnitude", sparsity: float = 0.8,
                 update_every: int = 20, pruner_kwargs: Optional[dict] = None, **kwargs):
        super().__init__(model, **kwargs)
        if isinstance(pruner, Pruner):
            self.pruner = pruner
        else:
            pk = dict(pruner_kwargs or {})
            if pruner != "nm":
                pk.setdefault("sparsity", sparsity)
            self.pruner = build_pruner(pruner, model, **pk)
        self.update_every = update_every
        self.step_hooks.append(self._on_step)

    def _on_step(self, trainer: Trainer) -> None:
        if self._global_step % self.update_every != 0:
            return
        if isinstance(self.pruner, GraNetPruner):
            grads = self.pruner.collect_grads()
            self.pruner.step(self.progress, grads=grads)
        else:
            self.pruner.step(self.progress)

    def fit(self) -> Module:
        model = super().fit()
        # Final enforcement at the terminal sparsity.
        if isinstance(self.pruner, GraNetPruner):
            self.pruner.step(1.0, grads=None)
        else:
            self.pruner.step(1.0)
        return model

    def sparsity(self) -> float:
        return self.pruner.sparsity()
