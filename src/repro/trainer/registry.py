"""The ``TRAINER`` registry of the paper's five-line workflow."""
from __future__ import annotations

from typing import Dict

from repro.trainer.base import Trainer
from repro.trainer.distill import DistillTrainer
from repro.trainer.profit import PROFITTrainer
from repro.trainer.ptq import PTQTrainer
from repro.trainer.qat import QATTrainer
from repro.trainer.sparse import SparseTrainer
from repro.trainer.ssl_trainer import SSLTrainer

TRAINER: Dict[str, type] = {
    "supervised": Trainer,
    "qat": QATTrainer,
    "profit": PROFITTrainer,
    "ptq": PTQTrainer,
    "sparse": SparseTrainer,
    "ssl": SSLTrainer,
    "distill": DistillTrainer,
}


def build_trainer(name: str, *args, **kwargs):
    """``TRAINER[user_select](args)`` with a friendlier error message."""
    if name not in TRAINER:
        raise KeyError(f"unknown trainer {name!r}; known: {sorted(TRAINER)}")
    return TRAINER[name](*args, **kwargs)
