"""Quantization-aware training.

The QAT trainer drives the *training path* of a dual-path Q-model: fake
quantization with straight-through gradients, with the quantizers' learnable
parameters (PACT/RCF alpha, LSQ steps) optimized jointly with the weights.
"""
from __future__ import annotations

from typing import Optional

from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.nn.module import Module
from repro.trainer.base import Trainer


class QATTrainer(Trainer):
    """Trainer over a Q-model (or a float model + QConfig to convert)."""

    def __init__(self, model: Module, qcfg: Optional[QConfig] = None, **kwargs):
        if qcfg is not None:
            model = quantize_model(model, qcfg)
        self.qmodel = model
        super().__init__(model, **kwargs)
