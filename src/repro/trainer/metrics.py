"""Training metrics and evaluation helpers."""
from __future__ import annotations

import numpy as np

from repro.data.dataloader import DataLoader
from repro.data.dataset import ArrayDataset
from repro.nn.module import Module
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor


class AverageMeter:
    """Running average of a scalar metric."""

    def __init__(self, name: str = ""):
        self.name = name
        self.reset()

    def reset(self) -> None:
        self.sum = 0.0
        self.count = 0

    def update(self, value: float, n: int = 1) -> None:
        self.sum += value * n
        self.count += n

    @property
    def avg(self) -> float:
        return self.sum / max(self.count, 1)


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy of a batch of logits."""
    return float((logits.argmax(axis=1) == targets).mean())


def evaluate(model: Module, dataset: ArrayDataset, batch_size: int = 250) -> float:
    """Top-1 test accuracy of a model over a dataset."""
    model.eval()
    correct, total = 0, 0
    with no_grad():
        for x, y in DataLoader(dataset, batch_size=batch_size):
            pred = model(Tensor(x)).data.argmax(axis=1)
            correct += int((pred == y).sum())
            total += len(y)
    return correct / max(total, 1)
