"""Training schemes (paper §3.4): the ``TRAINER`` registry.

``TRAINER[name](**args)`` covers the full spectrum the paper ships:
supervised training, QAT, PTQ (calibration + AdaRound/QDrop reconstruction),
sparse training, and self-supervised XD pre-training.
"""
from repro.trainer.metrics import AverageMeter, accuracy, evaluate
from repro.trainer.base import Trainer
from repro.trainer.qat import QATTrainer
from repro.trainer.ptq import PTQTrainer, reconstruct_unit
from repro.trainer.sparse import SparseTrainer
from repro.trainer.ssl_trainer import SSLTrainer
from repro.trainer.registry import TRAINER, build_trainer

__all__ = [
    "AverageMeter", "accuracy", "evaluate",
    "Trainer", "QATTrainer", "PTQTrainer", "reconstruct_unit",
    "SparseTrainer", "SSLTrainer",
    "TRAINER", "build_trainer",
]
