"""Self-supervised pre-training trainer (Barlow Twins / XD).

Generates two augmented views per batch and minimizes the XD objective over
the student+teacher pair; the lightweight student encoder is the artifact
carried into downstream fine-tuning + compression (paper Table 4 flow).
"""
from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataloader import DataLoader
from repro.data.dataset import ArrayDataset
from repro.data.transforms import ssl_view_transform
from repro.nn.module import Module
from repro.optim import AdamW
from repro.optim.lr_scheduler import WarmupCosineLR
from repro.ssl.barlow import barlow_loss
from repro.ssl.heads import Projector
from repro.ssl.xd import XDModel
from repro.tensor.tensor import Tensor
from repro.trainer.metrics import AverageMeter


class SSLTrainer:
    """Pre-train an encoder with Barlow Twins, optionally with XD.

    Parameters
    ----------
    student / teacher:
        Encoders exposing ``features(x)``.  Without a teacher the objective
        reduces to plain Barlow Twins on the student.
    """

    def __init__(
        self,
        student: Module,
        train_set: ArrayDataset,
        student_dim: int,
        teacher: Optional[Module] = None,
        teacher_dim: Optional[int] = None,
        embed_dim: int = 128,
        epochs: int = 10,
        batch_size: int = 64,
        lr: float = 1e-3,
        weight_decay: float = 1e-4,
        lambda_offdiag: float = 5e-3,
        lambda_xd: float = 1.0,
        seed: int = 0,
        verbose: bool = False,
    ):
        self.student = student
        self.teacher = teacher
        self.lambda_offdiag = lambda_offdiag
        self.lambda_xd = lambda_xd
        self.epochs = epochs
        self.verbose = verbose
        if teacher is not None:
            self.pair = XDModel(student, teacher, student_dim, teacher_dim or student_dim,
                                embed_dim=embed_dim)
            params = list(self.pair.parameters())
        else:
            self.pair = None
            self.head = Projector(student_dim, 2 * embed_dim, embed_dim)
            params = list(student.parameters()) + list(self.head.parameters())
        self.optimizer = AdamW(params, lr=lr, weight_decay=weight_decay)
        self.scheduler = WarmupCosineLR(self.optimizer, warmup=max(epochs // 10, 1), t_max=epochs)
        self.loader = DataLoader(train_set, batch_size=batch_size, shuffle=True, seed=seed)
        self.view_tf = ssl_view_transform()
        self._rng = np.random.default_rng(seed)
        self.history = []

    def _views(self, x: np.ndarray):
        return self.view_tf(x, rng=self._rng), self.view_tf(x, rng=self._rng)

    def _loss(self, va: Tensor, vb: Tensor) -> Tensor:
        if self.pair is not None:
            return self.pair.loss(va, vb, self.lambda_offdiag, self.lambda_xd)
        za = self.head(self.student.features(va))
        zb = self.head(self.student.features(vb))
        return barlow_loss(za, zb, self.lambda_offdiag)

    def fit(self) -> Module:
        """Pre-train; returns the student encoder."""
        trainable = self.pair if self.pair is not None else self.student
        trainable.train()
        for epoch in range(self.epochs):
            meter = AverageMeter("ssl_loss")
            for x, _ in self.loader:
                va, vb = self._views(x)
                self.optimizer.zero_grad()
                loss = self._loss(Tensor(va), Tensor(vb))
                loss.backward()
                self.optimizer.step()
                meter.update(loss.item(), len(x))
            self.scheduler.step()
            self.history.append({"epoch": epoch, "ssl_loss": meter.avg})
            if self.verbose:
                print(f"[SSL] epoch {epoch} loss {meter.avg:.4f}")
        return self.student
