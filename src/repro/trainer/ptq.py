"""Post-training quantization: calibration + reconstruction optimization.

Two stages:

1. **Calibration** — run the calibration set through the fake-quant training
   path with observers armed, then fix activation scales
   (:func:`repro.core.t2c.calibrate_model`).
2. **Reconstruction** (AdaRound / QDrop) — unit-by-unit, optimize the
   learnable rounding gates (and let QDrop stochastically drop activation
   quantization) against the float unit's output, Adam over ``alpha`` with
   the rounding regularizer annealed from soft to hard.
"""
from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.qconfig import QConfig
from repro.core.qlayers import QConv2d, QLinear
from repro.core.qmodels import QBasicBlock, QBottleneck, QConvBNReLU, QLinearUnit, quantize_model
from repro.core.quantizers.adaround import AdaRoundQuantizer
from repro.core.quantizers.qdrop import QDropQuantizer
from repro.core.t2c import calibrate_model
from repro.data.dataset import ArrayDataset
from repro.nn.module import Module
from repro.optim import Adam
from repro.tensor import functional as F
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor


def _unit_float_forward(unit: QConvBNReLU, x: Tensor) -> Tensor:
    """The unit's full-precision reference output (quantizers bypassed)."""
    conv: QConv2d = unit.conv
    y = F.conv2d(x, Tensor(conv.weight.data),
                 Tensor(conv.bias.data) if conv.bias is not None else None,
                 conv.stride, conv.padding, conv.groups)
    if unit.has_bn:
        y = unit.bn(y)
    if unit.relu:
        y = y.relu()
    return y


def reconstruct_unit(
    unit: QConvBNReLU,
    calib_inputs: Sequence[np.ndarray],
    iters: int = 200,
    lr: float = 1e-2,
    reg_weight: float = 0.01,
    beta_range=(20.0, 2.0),
    seed: int = 0,
) -> float:
    """AdaRound-style reconstruction of one unit.

    ``calib_inputs`` are the unit's inputs captured from the calibrated
    fake-quant model.  Returns the final reconstruction MSE.
    """
    wq = unit.conv.wq
    if not isinstance(wq, AdaRoundQuantizer):
        raise TypeError("reconstruct_unit expects an AdaRound weight quantizer")
    if unit.has_bn:
        unit.bn.eval()
    wq.init_from_weight(unit.conv.weight.data)
    opt = Adam([wq.alpha], lr=lr)
    rng = np.random.default_rng(seed)
    refs = []
    with no_grad():
        for x in calib_inputs:
            refs.append(_unit_float_forward(unit, Tensor(x)).data)
    final = 0.0
    for it in range(iters):
        j = rng.integers(len(calib_inputs))
        x = Tensor(calib_inputs[j])
        y = unit(x)
        beta = beta_range[0] + (beta_range[1] - beta_range[0]) * it / max(iters - 1, 1)
        loss = F.mse_loss(y, Tensor(refs[j])) + reg_weight * wq.reg_loss(beta)
        opt.zero_grad()
        loss.backward()
        opt.step()
        final = loss.item()
    wq.soft = False  # inference uses hard rounding from here on
    return final


def _block_float_forward(blk, x: Tensor) -> Tensor:
    """Full-precision reference output of a residual block."""
    if isinstance(blk, QBasicBlock):
        a = _unit_float_forward(blk.unit2, _unit_float_forward(blk.unit1, x))
    elif isinstance(blk, QBottleneck):
        a = _unit_float_forward(
            blk.unit3, _unit_float_forward(blk.unit2, _unit_float_forward(blk.unit1, x)))
    else:
        raise TypeError(type(blk))
    s = _unit_float_forward(blk.down, x) if blk.down is not None else x
    return (a + s).relu()


def reconstruct_block(
    blk,
    calib_inputs: Sequence[np.ndarray],
    iters: int = 200,
    lr: float = 1e-2,
    reg_weight: float = 0.01,
    beta_range=(20.0, 2.0),
    seed: int = 0,
) -> float:
    """QDrop/BRECQ-style *block-wise* reconstruction.

    All AdaRound gates of the block's units are optimized jointly against the
    float block output, with the block's activation quantizers running their
    training path (QDrop's stochastic dropping included).  Block-level
    granularity is what makes W4A4 PTQ work on deep bottleneck networks —
    unit-wise reconstruction cannot account for cross-layer error
    interactions (Li et al. 2021; Wei et al. 2022).
    """
    wqs = [u.conv.wq for u in blk.units() if isinstance(u.conv.wq, AdaRoundQuantizer)]
    if not wqs:
        raise TypeError("reconstruct_block expects AdaRound weight quantizers")
    for u in blk.units():
        if u.has_bn:
            u.bn.eval()
    for u, wq in zip([u for u in blk.units() if isinstance(u.conv.wq, AdaRoundQuantizer)], wqs):
        wq.init_from_weight(u.conv.weight.data)
    opt = Adam([wq.alpha for wq in wqs], lr=lr)
    rng = np.random.default_rng(seed)
    refs = []
    with no_grad():
        for x in calib_inputs:
            refs.append(_block_float_forward(blk, Tensor(x)).data)
    final = 0.0
    for it in range(iters):
        j = rng.integers(len(calib_inputs))
        y = blk(Tensor(calib_inputs[j]))
        beta = beta_range[0] + (beta_range[1] - beta_range[0]) * it / max(iters - 1, 1)
        loss = F.mse_loss(y, Tensor(refs[j]))
        for wq in wqs:
            loss = loss + reg_weight * wq.reg_loss(beta)
        opt.zero_grad()
        loss.backward()
        opt.step()
        final = loss.item()
    for wq in wqs:
        wq.soft = False
    return final


class PTQTrainer:
    """Calibrate (and optionally reconstruct) a Q-model post training.

    Parameters
    ----------
    model:
        Float model (converted via ``qcfg``) or an existing Q-model.
    calib_set:
        Calibration dataset; ``calib_batches`` x ``batch_size`` samples are
        drawn from it.
    reconstruct:
        Run AdaRound reconstruction on every unit whose weight quantizer is
        an :class:`AdaRoundQuantizer`.
    """

    def __init__(
        self,
        model: Module,
        calib_set: ArrayDataset,
        qcfg: Optional[QConfig] = None,
        calib_batches: int = 8,
        batch_size: int = 64,
        reconstruct: bool = False,
        recon_iters: int = 150,
        seed: int = 0,
        **_,
    ):
        if qcfg is not None:
            model = quantize_model(model, qcfg)
        self.qmodel = model
        self.model = model
        self.calib_set = calib_set
        self.batch_size = batch_size
        self.calib_batches = calib_batches
        self.reconstruct = reconstruct
        self.recon_iters = recon_iters
        self.seed = seed

    def _batches(self) -> List[np.ndarray]:
        n = len(self.calib_set)
        rng = np.random.default_rng(self.seed)
        idx = rng.permutation(n)
        out = []
        for b in range(self.calib_batches):
            sel = idx[b * self.batch_size:(b + 1) * self.batch_size]
            if len(sel) == 0:
                break
            out.append(self.calib_set.images[sel])
        return out

    def fit(self) -> Module:
        batches = self._batches()
        calibrate_model(self.qmodel, batches)
        if self.reconstruct:
            self._reconstruct(batches)
        # QDrop's stochastic dropping is a calibration-time trick only.
        for m in self.qmodel.modules():
            if isinstance(m, QDropQuantizer):
                m.drop_enabled = False
        return self.qmodel

    # ------------------------------------------------------------ recon
    def _units(self) -> List[QConvBNReLU]:
        return [m for m in self.qmodel.modules() if isinstance(m, QConvBNReLU)]

    def _capture_all_inputs(self, units: Sequence[QConvBNReLU],
                            batches: Sequence[np.ndarray]) -> dict:
        """One model pass per batch captures every target unit's input.

        Inputs are stored float16 to bound memory.  Capturing before any unit
        is reconstructed (instead of re-tracing after each) is a standard
        approximation: AdaRound perturbs unit outputs by <= 1 rounding step,
        so downstream input drift is negligible.
        """
        captured: dict = {id(u): [] for u in units}
        originals = {}
        for unit in units:
            conv = unit.conv

            def hooked(x, _conv=conv, _store=captured[id(unit)]):
                _store.append(x.data.astype(np.float16))
                return type(_conv).forward(_conv, x)

            object.__setattr__(conv, "forward", hooked)
            originals[id(unit)] = conv
        try:
            with no_grad():
                self.qmodel.eval()
                for x in batches:
                    self.qmodel(Tensor(x))
        finally:
            for conv in originals.values():
                object.__delattr__(conv, "forward")
        return captured

    def _blocks(self):
        return [b for b in self.qmodel.modules() if isinstance(b, (QBasicBlock, QBottleneck))]

    def _capture_block_inputs(self, blocks, batches: Sequence[np.ndarray]) -> dict:
        """One pass capturing every residual block's input (float16)."""
        captured: dict = {id(b): [] for b in blocks}
        hooked = []
        for blk in blocks:
            def hooked_fwd(x, _blk=blk, _store=captured[id(blk)]):
                _store.append(x.data.astype(np.float16))
                return type(_blk).forward(_blk, x)

            object.__setattr__(blk, "forward", hooked_fwd)
            hooked.append(blk)
        try:
            with no_grad():
                self.qmodel.eval()
                for x in batches:
                    self.qmodel(Tensor(x))
        finally:
            for blk in hooked:
                object.__delattr__(blk, "forward")
        return captured

    def _reconstruct(self, batches: Sequence[np.ndarray]) -> None:
        # Residual blocks reconstruct jointly (QDrop/BRECQ granularity);
        # everything outside a block (stem, plain chains, fc) unit-wise.
        blocks = [b for b in self._blocks()
                  if any(isinstance(u.conv.wq, AdaRoundQuantizer) for u in b.units())]
        in_block = {id(u) for b in blocks for u in b.units()}
        units = [u for u in self._units()
                 if isinstance(u.conv.wq, AdaRoundQuantizer) and id(u) not in in_block]

        if blocks:
            captured = self._capture_block_inputs(blocks, batches)
            for blk in blocks:
                inputs = [a.astype(np.float32) for a in captured.pop(id(blk))]
                reconstruct_block(blk, inputs, iters=self.recon_iters, seed=self.seed)
        if units:
            captured = self._capture_all_inputs(units, batches)
            for unit in units:
                inputs = [a.astype(np.float32) for a in captured.pop(id(unit))]
                reconstruct_unit(unit, inputs, iters=self.recon_iters, seed=self.seed)
