"""PROFIT: progressive freezing for sub-4-bit MobileNet QAT (Park & Yoo, 2020).

PROFIT's observation: in depthwise networks, a few layers suffer dominant
activation-instability from weight quantization (AIWQ); training proceeds in
phases, and after each phase the most unstable layers are *frozen* so the
rest can settle around them.

We implement the training skeleton faithfully with a simplified instability
metric: the quantization perturbation each layer injects into its own output
(per-layer normalized weight-rounding error), which ranks layers very
similarly to AIWQ for the uniform quantizers used here, without needing
activation probes.
"""
from __future__ import annotations

from typing import List

from repro.core.qlayers import QConv2d
from repro.nn.module import Module
from repro.tensor import no_grad
from repro.trainer.qat import QATTrainer


class PROFITTrainer(QATTrainer):
    """QAT in ``phases`` stages with progressive layer freezing.

    Parameters
    ----------
    phases:
        Number of training stages; after each of the first ``phases - 1``
        stages, the most quantization-unstable ``1/phases`` of the (not yet
        frozen) conv layers is frozen.
    """

    def __init__(self, model: Module, phases: int = 3, **kwargs):
        super().__init__(model, **kwargs)
        if phases < 1:
            raise ValueError("phases must be >= 1")
        self.phases = phases
        self.frozen: List[str] = []

    # ----------------------------------------------------------- instability
    def layer_instability(self) -> List[tuple]:
        """(metric, name, module) per quantized conv, descending metric."""
        out = []
        with no_grad():
            for name, m in self.model.named_modules():
                if not isinstance(m, QConv2d):
                    continue
                w = m.weight.detach()
                wdq = m.wq.trainFunc(w)
                num = float(((wdq.data - w.data) ** 2).mean())
                den = float((w.data ** 2).mean()) + 1e-12
                out.append((num / den, name, m))
        out.sort(key=lambda t: -t[0])
        return out

    def _freeze_most_unstable(self, k: int) -> None:
        remaining = [(s, n, m) for s, n, m in self.layer_instability() if n not in self.frozen]
        for _, name, mod in remaining[:k]:
            mod.weight.requires_grad = False
            for p in mod.wq.parameters():
                p.requires_grad = False
            self.frozen.append(name)

    # ------------------------------------------------------------------ fit
    def fit(self) -> Module:
        n_layers = sum(1 for m in self.model.modules() if isinstance(m, QConv2d))
        per_phase_epochs = max(self.epochs // self.phases, 1)
        freeze_chunk = max(n_layers // self.phases, 1)
        epoch = 0
        for phase in range(self.phases):
            last = phase == self.phases - 1
            n_ep = self.epochs - epoch if last else per_phase_epochs
            for _ in range(n_ep):
                stats = self.train_epoch(epoch)
                self.history.append(stats)
                if self.verbose:
                    print(f"[PROFIT phase {phase}] {stats}")
                epoch += 1
            if not last:
                self._freeze_most_unstable(freeze_chunk)
        if self.test_set is not None and self.history:
            self.history[-1]["test_acc"] = self.evaluate()
        return self.model
