"""Knowledge-distillation fine-tuning trainer.

A common compression recipe the toolkit should cover: fine-tune a (quantized
or pruned) student against a full-precision teacher's soft targets, mixing
the KD loss with the hard-label cross entropy.
"""
from __future__ import annotations

import numpy as np

from repro.nn.losses import SoftTargetKLLoss
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor
from repro.trainer.base import Trainer


class DistillTrainer(Trainer):
    """Student trainer with a frozen teacher.

    loss = (1 - kd_weight) * CE(student, labels)
           + kd_weight * T^2 * KL(teacher_probs || student_probs)
    """

    def __init__(self, model: Module, teacher: Module, kd_weight: float = 0.5,
                 temperature: float = 4.0, **kwargs):
        super().__init__(model, **kwargs)
        if not 0.0 <= kd_weight <= 1.0:
            raise ValueError("kd_weight must be in [0, 1]")
        self.teacher = teacher
        self.teacher.eval()
        self.teacher.requires_grad_(False)
        self.kd_weight = kd_weight
        self.kd_loss = SoftTargetKLLoss(temperature)

    def compute_loss(self, x: np.ndarray, y: np.ndarray) -> Tensor:
        xt = Tensor(x)
        logits = self.model(xt)
        self._last_logits = logits
        hard = F.cross_entropy(logits, y, self.label_smoothing)
        with no_grad():
            teacher_logits = self.teacher(xt)
        soft = self.kd_loss(logits, teacher_logits)
        return hard * (1.0 - self.kd_weight) + soft * self.kd_weight
