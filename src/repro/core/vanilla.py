"""Vanilla re-pack: the final "custom -> vanilla" conversion (paper §3.4).

After fusion, the model still contains user-customized quantizer modules.
:func:`repack` strips them and swaps every :class:`QConv2d` / :class:`QLinear`
for a *vanilla* conv/linear whose weight tensor holds the raw low-precision
integers, with all scaling folded into the surviving
:class:`~repro.core.mulquant.MulQuant` modules.  The result:

* the state dict stores integer-valued tensors only ("real compression");
* the module tree has the same architecture as the original model (plus
  MulQuant), and contains no custom quantization logic beyond the single
  :class:`InputQuant` at the model input (the ADC boundary).
"""
from __future__ import annotations

import copy

import numpy as np

from repro import nn
from repro.core.qbase import _QBase
from repro.core.qlayers import QConv2d, QLinear
from repro.nn.module import Module
from repro.telemetry import state as _telemetry_state
from repro.telemetry import trace as _trace
from repro.telemetry.hooks import attach_names
from repro.telemetry.saturation import record as _record_saturation
from repro.tensor.tensor import Tensor


class GridRange(Module):
    """Parameter-free stand-in for a train-path quantizer.

    After re-pack, deploy forwards still consult the integer grid bounds of
    former quantizers (residual clamps in ViT blocks); this module keeps
    ``qlb``/``qub`` (plain ints) and nothing else.
    """

    def __init__(self, qlb: int, qub: int):
        super().__init__()
        self.qlb = qlb
        self.qub = qub

    def forward(self, x: Tensor) -> Tensor:
        raise RuntimeError("GridRange is metadata-only; the deploy path never calls it")

    def extra_repr(self) -> str:
        return f"[{self.qlb}, {self.qub}]"


class InputQuant(Module):
    """Model-input quantizer of the deployed network: round + clamp."""

    def __init__(self, scale: float, qlb: int, qub: int):
        super().__init__()
        self.register_buffer("scale", np.float32(scale))
        self.qlb = qlb
        self.qub = qub

    def forward(self, x: Tensor) -> Tensor:
        r = np.round(x.data / float(self.scale.data))  # lint: allow-float (ADC boundary)
        y = np.clip(r, self.qlb, self.qub)
        if _telemetry_state.enabled():
            clipped = int(np.count_nonzero((r < self.qlb) | (r > self.qub)))
            _record_saturation(self, "input", clipped, int(r.size))
        return Tensor(y.astype(np.float32))

    def extra_repr(self) -> str:
        return f"scale={float(self.scale.data):.6g}, range=[{self.qlb}, {self.qub}]"


def _check_symmetric(q) -> None:
    zp = float(np.asarray(q.aq.zero_point.data).reshape(-1)[0])
    if zp != 0.0:
        raise NotImplementedError(
            "vanilla re-pack supports symmetric activation grids; asymmetric "
            "(zero-point) models deploy through the fused Q-model, whose "
            "layers carry the integer offset-subtract stage (lint rule "
            "deploy.asymmetric-grid flags this before re-pack)")


def _vanilla_conv(q: QConv2d) -> nn.Conv2d:
    _check_symmetric(q)
    conv = nn.Conv2d(q.in_channels, q.out_channels, q.kernel_size,
                     q.stride, q.padding, q.groups, bias=False)
    conv.weight.data = q.wint.data.copy()
    conv.weight.requires_grad = False
    return conv


def _vanilla_linear(q: QLinear) -> nn.Linear:
    _check_symmetric(q)
    lin = nn.Linear(q.in_features, q.out_features, bias=False)
    lin.weight.data = q.wint.data.copy()
    lin.weight.requires_grad = False
    return lin


def repack(qmodel: Module) -> Module:
    """Return an inference-only copy with vanilla integer layers.

    The input model must already be fused and in deploy mode.  The original
    model is left untouched.
    """
    with _trace("repack", model=type(qmodel).__name__):
        return _repack(qmodel)


def _repack(qmodel: Module) -> Module:
    model = copy.deepcopy(qmodel)

    # Swap the model-level input quantizer for the minimal vanilla version.
    if hasattr(model, "input_q") and isinstance(model.input_q, _QBase):
        iq = model.input_q
        scale = float(np.asarray(iq.scale.data).reshape(-1)[0])
        model.input_q = InputQuant(scale, iq.qlb, iq.qub)

    # ViT: the float cls/pos parameters are train-path-only (deploy uses the
    # cls_int / pos_int integer buffers).
    for pname in ("cls_token", "pos_embed"):
        if pname in getattr(model, "_parameters", {}):
            model.register_parameter(pname, None)

    from repro.core.qvit import QLNUnit

    for mod in list(model.modules()):
        for name, child in list(mod.named_children()):
            if isinstance(child, QConv2d):
                setattr(mod, name, _vanilla_conv(child))
            elif isinstance(child, QLinear):
                setattr(mod, name, _vanilla_linear(child))
            elif isinstance(child, nn.BatchNorm2d):
                setattr(mod, name, nn.Identity())  # fused away
            elif isinstance(child, QLNUnit) and child.mq is not None:
                # running-stats LayerNorm fused into its MulQuant
                child.ln = nn.Identity()
            elif isinstance(child, _QBase) and name != "input_q":
                # train-path quantizer: keep only the grid bounds the deploy
                # forward consults for residual clamping
                setattr(mod, name, GridRange(child.qlb, child.qub))
    # re-stamp dotted paths so deploy-path saturation counters stay readable
    attach_names(model)
    return model


def integer_state_report(model: Module, accum_bits: int = 32) -> dict:
    """Sanity report over a repacked model: every parameter must be integral.

    On repacked models (those carrying an :class:`InputQuant`), the report
    also includes the interval engine's proven per-layer accumulator widths
    under ``"accum"``: ``min_accum_bits`` maps each MAC site to the smallest
    safe register width, and ``over_limit`` lists layers whose proven bound
    exceeds ``accum_bits``.
    """
    report = {"num_tensors": 0, "num_non_integer": 0, "names_non_integer": []}
    for name, p in list(model.named_parameters()) + list(model.named_buffers()):
        report["num_tensors"] += 1
        if not np.allclose(p.data, np.round(p.data)):
            report["num_non_integer"] += 1
            report["names_non_integer"].append(name)

    if any(isinstance(m, InputQuant) for m in model.modules()):
        from repro.lint.engine import lint_intervals  # lazy: lint imports core

        ir = lint_intervals(model, accum_bits=accum_bits)
        report["accum"] = {
            "accum_bits": accum_bits,
            "min_accum_bits": ir.min_accum_bits(),
            "over_limit": ir.overflows(accum_bits),
        }
    return report
