"""Quantization-aware model structures with Dual-Path forward (CNNs).

Every vanilla architecture gets a Q-counterpart assembled from two reusable
units:

* :class:`QConvBNReLU` — ``aq -> conv(wq) -> BN -> ReLU`` in the training
  path; ``int-conv -> MulQuant`` in the deploy path.
* :class:`QLinearUnit` — same for fully-connected layers.

Residual blocks (:class:`QBasicBlock`, :class:`QBottleneck`) add the branch
requantization logic: in deploy mode both branches are requantized into a
shared signed integer domain, added, and clamped (ReLU == clamp-at-zero for
the unsigned consumer grid).

The ``vanilla -> custom`` converters (:func:`quantize_model` and friends)
re-use the float model's weights, matching the paper's workflow where a
pre-trained checkpoint enters the toolkit untouched.
"""
from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import nn
from repro.core.qbase import _QBase
from repro.core.qconfig import QConfig
from repro.core.qlayers import QConv2d, QLinear
from repro.core.mulquant import MulQuant
from repro.models.mobilenet import MobileNetV1
from repro.models.resnet import BasicBlock, Bottleneck, ResNet
from repro.tensor.tensor import Tensor


class QConvBNReLU(nn.Module):
    """Conv + (BN) + (ReLU) unit with dual-path execution."""

    def __init__(self, conv: QConv2d, bn: Optional[nn.BatchNorm2d], relu: bool):
        super().__init__()
        self.conv = conv
        self.bn = bn if bn is not None else nn.Identity()
        self.has_bn = bn is not None
        self.relu = relu
        self.deploy = False
        self.mq: Optional[MulQuant] = None  # wired by the fuser

    def forward(self, x: Tensor) -> Tensor:
        if self.deploy:
            if self.mq is None:
                raise RuntimeError("deploy before fusion: MulQuant missing")
            return self.mq(self.conv(x))
        y = self.conv(x)
        if self.has_bn:
            y = self.bn(y)
        if self.relu:
            y = y.relu()
        return y

    def set_deploy(self, flag: bool = True) -> None:
        self.deploy = flag
        self.conv.set_deploy(flag)


class QLinearUnit(nn.Module):
    """Linear unit with dual-path execution."""

    def __init__(self, linear: QLinear):
        super().__init__()
        self.linear = linear
        self.deploy = False
        self.mq: Optional[MulQuant] = None

    def forward(self, x: Tensor) -> Tensor:
        if self.deploy:
            if self.mq is None:
                raise RuntimeError("deploy before fusion: MulQuant missing")
            return self.mq(self.linear(x))
        return self.linear(x)

    def set_deploy(self, flag: bool = True) -> None:
        self.deploy = flag
        self.linear.set_deploy(flag)


def _residual_merge(a: Tensor, s: Tensor, res_scale: float, out_clamp) -> Tensor:
    """Integer residual add in a fine pre-add domain.

    Branch MulQuants land in a domain ``res_scale``x finer than the output
    activation grid (one extra right-shift on hardware), so the two branch
    roundings contribute sub-LSB error instead of a full LSB — matching the
    fake-quant path, which rounds the *sum* once.  ReLU == the zero lower
    clamp of the unsigned consumer grid.
    """
    v = (a.data + s.data) / res_scale
    y = np.clip(np.sign(v) * np.floor(np.abs(v) + 0.5), out_clamp[0], out_clamp[1])
    return Tensor(y.astype(np.float32))


class QBasicBlock(nn.Module):
    """Dual-path BasicBlock.

    The block input quantizer is *shared* between the main branch and the
    (projection) shortcut so both consume the same integer domain.  The
    identity shortcut is also fake-quantized in the training path so the
    deploy-path branch requantization is faithful.
    """

    expansion = 1

    def __init__(self, block: BasicBlock, qcfg: QConfig):
        super().__init__()
        aq_in = qcfg.make_aq()
        self.unit1 = QConvBNReLU(QConv2d.from_float(block.conv1, qcfg.make_wq(), aq_in), block.bn1, relu=True)
        self.unit2 = QConvBNReLU(QConv2d.from_float(block.conv2, qcfg.make_wq(), qcfg.make_aq()), block.bn2, relu=False)
        self.aq_in = aq_in
        if isinstance(block.downsample, nn.Identity):
            self.down = None
        else:
            conv_d, bn_d = block.downsample[0], block.downsample[1]
            self.down = QConvBNReLU(QConv2d.from_float(conv_d, qcfg.make_wq(), aq_in), bn_d, relu=False)
        self.deploy = False
        self.mq_id: Optional[MulQuant] = None  # identity-shortcut requant
        self.out_clamp = (0.0, float(2 ** 31))  # set by the fuser
        self.res_scale = 1.0                    # pre-add domain refinement

    def forward(self, x: Tensor) -> Tensor:
        if self.deploy:
            a = self.unit2(self.unit1(x))
            s = self.down(x) if self.down is not None else self.mq_id(x)
            return _residual_merge(a, s, self.res_scale, self.out_clamp)
        a = self.unit2(self.unit1(x))
        s = self.down(x) if self.down is not None else self.aq_in(x)
        return (a + s).relu()

    def set_deploy(self, flag: bool = True) -> None:
        self.deploy = flag
        self.unit1.set_deploy(flag)
        self.unit2.set_deploy(flag)
        if self.down is not None:
            self.down.set_deploy(flag)

    def units(self) -> List[QConvBNReLU]:
        out = [self.unit1, self.unit2]
        if self.down is not None:
            out.append(self.down)
        return out


class QBottleneck(nn.Module):
    """Dual-path Bottleneck block (ResNet-50 family)."""

    expansion = 4

    def __init__(self, block: Bottleneck, qcfg: QConfig):
        super().__init__()
        aq_in = qcfg.make_aq()
        self.unit1 = QConvBNReLU(QConv2d.from_float(block.conv1, qcfg.make_wq(), aq_in), block.bn1, relu=True)
        self.unit2 = QConvBNReLU(QConv2d.from_float(block.conv2, qcfg.make_wq(), qcfg.make_aq()), block.bn2, relu=True)
        self.unit3 = QConvBNReLU(QConv2d.from_float(block.conv3, qcfg.make_wq(), qcfg.make_aq()), block.bn3, relu=False)
        self.aq_in = aq_in
        if isinstance(block.downsample, nn.Identity):
            self.down = None
        else:
            conv_d, bn_d = block.downsample[0], block.downsample[1]
            self.down = QConvBNReLU(QConv2d.from_float(conv_d, qcfg.make_wq(), aq_in), bn_d, relu=False)
        self.deploy = False
        self.mq_id: Optional[MulQuant] = None
        self.out_clamp = (0.0, float(2 ** 31))
        self.res_scale = 1.0

    def forward(self, x: Tensor) -> Tensor:
        if self.deploy:
            a = self.unit3(self.unit2(self.unit1(x)))
            s = self.down(x) if self.down is not None else self.mq_id(x)
            return _residual_merge(a, s, self.res_scale, self.out_clamp)
        a = self.unit3(self.unit2(self.unit1(x)))
        s = self.down(x) if self.down is not None else self.aq_in(x)
        return (a + s).relu()

    def set_deploy(self, flag: bool = True) -> None:
        self.deploy = flag
        for u in self.units():
            u.set_deploy(flag)

    def units(self) -> List[QConvBNReLU]:
        out = [self.unit1, self.unit2, self.unit3]
        if self.down is not None:
            out.append(self.down)
        return out


class QResNet(nn.Module):
    """Quantization-aware ResNet with dual-path execution."""

    def __init__(self, model: ResNet, qcfg: QConfig):
        super().__init__()
        self.qcfg = qcfg
        self.input_q = qcfg.make_input_q()
        self.stem = QConvBNReLU(QConv2d.from_float(model.conv1, qcfg.make_wq(), self.input_q), model.bn1, relu=True)
        blocks = []
        for stage in model.stages:
            for block in stage:
                if isinstance(block, BasicBlock):
                    blocks.append(QBasicBlock(block, qcfg))
                elif isinstance(block, Bottleneck):
                    blocks.append(QBottleneck(block, qcfg))
                else:
                    raise TypeError(f"unknown block {type(block)}")
        self.blocks = nn.Sequential(*blocks)
        self.pool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.fc = QLinearUnit(QLinear.from_float(model.fc, qcfg.make_wq(), qcfg.make_aq()))
        self.deploy = False
        self.mq_pool: Optional[MulQuant] = None  # rounds pooled ints into the fc domain

    def forward(self, x: Tensor) -> Tensor:
        if self.deploy:
            xi = self.input_q(x)
            y = self.blocks(self.stem(xi))
            y = self.flatten(self.pool(y))
            y = self.mq_pool(y)
            return self.fc(y)
        y = self.blocks(self.stem(x))
        return self.fc(self.flatten(self.pool(y)))

    def set_deploy(self, flag: bool = True) -> None:
        self.deploy = flag
        self.input_q.deploy = flag
        self.stem.set_deploy(flag)
        for b in self.blocks:
            b.set_deploy(flag)
        self.fc.set_deploy(flag)


class QMobileNetV1(nn.Module):
    """Quantization-aware MobileNet-V1: a pure chain of conv units."""

    def __init__(self, model: MobileNetV1, qcfg: QConfig):
        super().__init__()
        self.qcfg = qcfg
        self.input_q = qcfg.make_input_q()
        units = [QConvBNReLU(QConv2d.from_float(model.stem[0], qcfg.make_wq(), self.input_q),
                             model.stem[1], relu=True)]
        for block in model.blocks:
            # each block is Sequential(dw conv, bn, relu, pw conv, bn, relu)
            units.append(QConvBNReLU(QConv2d.from_float(block[0], qcfg.make_wq(), qcfg.make_aq()),
                                     block[1], relu=True))
            units.append(QConvBNReLU(QConv2d.from_float(block[3], qcfg.make_wq(), qcfg.make_aq()),
                                     block[4], relu=True))
        self.units = nn.Sequential(*units)
        self.pool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.fc = QLinearUnit(QLinear.from_float(model.fc, qcfg.make_wq(), qcfg.make_aq()))
        self.deploy = False
        self.mq_pool: Optional[MulQuant] = None

    def forward(self, x: Tensor) -> Tensor:
        if self.deploy:
            xi = self.input_q(x)
            y = self.units(xi)
            y = self.flatten(self.pool(y))
            y = self.mq_pool(y)
            return self.fc(y)
        y = self.units(x)
        return self.fc(self.flatten(self.pool(y)))

    def set_deploy(self, flag: bool = True) -> None:
        self.deploy = flag
        self.input_q.deploy = flag
        for u in self.units:
            u.set_deploy(flag)
        self.fc.set_deploy(flag)


def quantize_model(model: nn.Module, qcfg: QConfig) -> nn.Module:
    """vanilla -> custom: wrap a float model with dual-path quantized modules."""
    if isinstance(model, ResNet):
        return QResNet(model, qcfg)
    if isinstance(model, MobileNetV1):
        return QMobileNetV1(model, qcfg)
    # ViT / VGG conversions live in their own modules to keep this one lean.
    from repro.core.qvit import QVisionTransformer
    from repro.models.vit import VisionTransformer

    if isinstance(model, VisionTransformer):
        return QVisionTransformer(model, qcfg)
    from repro.core.qvgg import QVGG
    from repro.models.vgg import VGG

    if isinstance(model, VGG):
        return QVGG(model, qcfg)
    raise TypeError(f"no quantized counterpart registered for {type(model).__name__}")
