"""Integer-only Vision Transformer (paper §3.2.2, Fig. 4).

Dual-path counterparts of the ViT building blocks:

* :class:`QAttention` — fused-QKV multi-head attention with quantizers on the
  Q/K/V tensors, the attention scores, and the probabilities; the deploy path
  is integer matmuls + :class:`~repro.core.lut.LUTSoftmax`.
* :class:`QMLP` — the feed-forward block with a
  :class:`~repro.core.lut.LUTGelu` in the deploy path.
* :class:`QLNUnit` — LayerNorm with two deploy strategies: pre-computed
  running statistics fused into a per-channel MulQuant (fully integer), or
  instant statistics computed on dequantized values (the float-division
  reference, for accuracy/latency trade-off studies).
* :class:`QViTBlock` / :class:`QVisionTransformer` — residual-stream
  bookkeeping: every residual add happens on integers in a per-junction
  signed domain defined by a stream quantizer.

``ViTFuser`` wires all the MulQuants and LUTs from the calibrated scales.
"""
from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro import nn
from repro.core.fusion import FuserBase, _scalar_scale, _weight_scale_vector
from repro.core.lut import LUTGelu, LUTSoftmax
from repro.core.mulquant import MulQuant
from repro.core.qbase import _QBase
from repro.core.qconfig import QConfig
from repro.core.qlayers import QConv2d, QLinear
from repro.core.qmodels import QConvBNReLU, QLinearUnit
from repro.models.vit import Block, VisionTransformer
from repro.nn.module import Parameter
from repro.tensor import cat
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class QLNUnit(nn.Module):
    """LayerNorm with a dual-path deploy strategy.

    * running-stats LN -> fully-integer per-channel MulQuant (wired by fuser);
    * instant-stats LN -> dequantize, normalize, requantize (reference mode
      the paper keeps customizable for latency/accuracy studies).
    """

    def __init__(self, ln: nn.LayerNorm):
        super().__init__()
        self.ln = ln
        self.running_stats = ln.running_stats
        self.deploy = False
        self.mq: Optional[MulQuant] = None        # running-stats path
        # instant path: input grid step + output grid (plain values so the
        # vanilla re-pack carries them without any quantizer module)
        self.in_scale: Optional[float] = None
        self.out_scale: Optional[float] = None
        self.out_qlb: int = 0
        self.out_qub: int = 0

    def forward(self, x: Tensor) -> Tensor:
        if not self.deploy:
            return self.ln(x)
        if self.running_stats:
            return self.mq(x)
        # Instant statistics: float normalization between integer domains.
        xf = x * self.in_scale
        y = self.ln(xf)
        yq = np.clip(np.round(y.data / self.out_scale), self.out_qlb, self.out_qub)
        return Tensor(yq.astype(np.float32))

    def set_deploy(self, flag: bool = True) -> None:
        self.deploy = flag


class QAttention(nn.Module):
    """Dual-path multi-head self-attention."""

    def __init__(self, attn: nn.MultiheadAttention, qcfg: QConfig):
        super().__init__()
        self.embed_dim = attn.embed_dim
        self.num_heads = attn.num_heads
        self.head_dim = attn.head_dim
        self.softmax_scale = 1.0 / math.sqrt(self.head_dim)
        self.qkv = QLinear.from_float(attn.qkv, qcfg.make_wq(), qcfg.make_aq(signed=True))
        self.proj = QLinear.from_float(attn.proj, qcfg.make_wq(), qcfg.make_aq(signed=True))
        self.qq = qcfg.make_aq(signed=True)
        self.kq = qcfg.make_aq(signed=True)
        self.vq = qcfg.make_aq(signed=True)
        self.sq = qcfg.make_aq(signed=True)  # attention-score quantizer
        self.prob_bits = qcfg.prob_bits
        self.deploy = False
        # wired by the fuser:
        self.mq_qkv: Optional[MulQuant] = None
        self.mq_score: Optional[MulQuant] = None
        self.lut_softmax: Optional[LUTSoftmax] = None
        self.mq_ctx: Optional[MulQuant] = None
        self.mq_proj: Optional[MulQuant] = None

    def _split_qkv(self, qkv: Tensor, n: int, l: int):
        qkv = qkv.reshape(n, l, 3, self.num_heads, self.head_dim).transpose(2, 0, 3, 1, 4)
        return qkv[0], qkv[1], qkv[2]  # each (N, H, L, hd)

    def _merge_heads(self, ctx: Tensor, n: int, l: int) -> Tensor:
        return ctx.transpose(0, 2, 1, 3).reshape(n, l, self.embed_dim)

    def forward(self, x: Tensor) -> Tensor:
        n, l, _ = x.shape
        if self.deploy:
            t = self.mq_qkv(self.qkv(x))          # int acc -> q/k/v domains
            q, k, v = self._split_qkv(t, n, l)
            s_int = self.mq_score(q @ k.swapaxes(-1, -2))
            p_int = self.lut_softmax(s_int)       # probs on the 2^-pb grid
            c_int = self.mq_ctx(p_int @ v)        # -> proj input domain
            return self.mq_proj(self.proj(self._merge_heads(c_int, n, l)))
        qkv = self.qkv(x)
        q, k, v = self._split_qkv(qkv, n, l)
        q, k, v = self.qq(q), self.kq(k), self.vq(v)
        scores = (q @ k.swapaxes(-1, -2)) * self.softmax_scale
        s = self.sq(scores)
        p = s.softmax(axis=-1)
        # Fake-quantize probabilities onto the deploy LUT's output grid.
        pb = float(1 << self.prob_bits)
        p = ((p * pb).round_ste() * (1.0 / pb)).clamp(0.0, 1.0)
        ctx = self._merge_heads(p @ v, n, l)
        return self.proj(ctx)

    def set_deploy(self, flag: bool = True) -> None:
        self.deploy = flag
        self.qkv.set_deploy(flag)
        self.proj.set_deploy(flag)
        for q in (self.qq, self.kq, self.vq, self.sq):
            q.deploy = flag


class QMLP(nn.Module):
    """Dual-path transformer feed-forward block with LUT GELU."""

    def __init__(self, mlp, qcfg: QConfig):
        super().__init__()
        self.fc1 = QLinear.from_float(mlp.fc1, qcfg.make_wq(), qcfg.make_aq(signed=True))
        self.fc2 = QLinear.from_float(mlp.fc2, qcfg.make_wq(), qcfg.make_aq(signed=True))
        self.gq = qcfg.make_aq(signed=True)  # GELU-input quantizer
        self.deploy = False
        self.mq_fc1: Optional[MulQuant] = None
        self.lut_gelu: Optional[LUTGelu] = None
        self.mq_fc2: Optional[MulQuant] = None

    def forward(self, x: Tensor) -> Tensor:
        if self.deploy:
            g = self.lut_gelu(self.mq_fc1(self.fc1(x)))
            return self.mq_fc2(self.fc2(g))
        h = self.gq(self.fc1(x))
        return self.fc2(F.gelu(h))

    def set_deploy(self, flag: bool = True) -> None:
        self.deploy = flag
        self.fc1.set_deploy(flag)
        self.fc2.set_deploy(flag)
        self.gq.deploy = flag


class QViTBlock(nn.Module):
    """Dual-path transformer block with quantized residual stream."""

    def __init__(self, block: Block, qcfg: QConfig):
        super().__init__()
        self.ln1 = QLNUnit(block.norm1)
        self.attn = QAttention(block.attn, qcfg)
        self.ln2 = QLNUnit(block.norm2)
        self.mlp = QMLP(block.mlp, qcfg)
        self.rq1 = qcfg.make_aq(signed=True)  # stream domain after attn add
        self.rq2 = qcfg.make_aq(signed=True)  # stream domain after mlp add
        self.deploy = False
        self.mq_id1: Optional[MulQuant] = None
        self.mq_id2: Optional[MulQuant] = None
        self.res_scale = 1.0  # pre-add domain refinement (set by fuser)

    def forward(self, x: Tensor) -> Tensor:
        if self.deploy:
            from repro.core.qmodels import _residual_merge

            a = self.attn(self.ln1(x))
            x = _residual_merge(a, self.mq_id1(x), self.res_scale,
                                (self.rq1.qlb, self.rq1.qub))
            m = self.mlp(self.ln2(x))
            x = _residual_merge(m, self.mq_id2(x), self.res_scale,
                                (self.rq2.qlb, self.rq2.qub))
            return x
        x = self.rq1(x + self.attn(self.ln1(x)))
        x = self.rq2(x + self.mlp(self.ln2(x)))
        return x

    def set_deploy(self, flag: bool = True) -> None:
        self.deploy = flag
        for m in (self.ln1, self.attn, self.ln2, self.mlp):
            m.set_deploy(flag)
        self.rq1.deploy = flag
        self.rq2.deploy = flag


class QVisionTransformer(nn.Module):
    """Dual-path ViT: patch embedding, quantized blocks, classifier head."""

    def __init__(self, model: VisionTransformer, qcfg: QConfig):
        super().__init__()
        self.qcfg = qcfg
        self.embed_dim = model.embed_dim
        self.input_q = qcfg.make_input_q()
        self.patch = QConvBNReLU(
            QConv2d.from_float(model.patch_embed.proj, qcfg.make_wq(), self.input_q),
            bn=None, relu=False)
        self.cls_token = Parameter(model.cls_token.data.copy())
        self.pos_embed = Parameter(model.pos_embed.data.copy())
        self.embed_q = qcfg.make_aq(signed=True)
        self.blocks = nn.Sequential(*[QViTBlock(b, qcfg) for b in model.blocks])
        self.norm = QLNUnit(model.norm)
        self.head = QLinearUnit(QLinear.from_float(model.head, qcfg.make_wq(), qcfg.make_aq(signed=True)))
        self.deploy = False
        self.register_buffer("cls_int", np.zeros_like(model.cls_token.data))
        self.register_buffer("pos_int", np.zeros_like(model.pos_embed.data))

    def _tokens(self, x: Tensor) -> Tensor:
        out = self.patch(x)  # (N, D, h, w)
        n, d = out.shape[0], out.shape[1]
        return out.reshape(n, d, -1).transpose(0, 2, 1)

    def forward(self, x: Tensor) -> Tensor:
        if self.deploy:
            xi = self.input_q(x)
            tok = self._tokens(xi)  # int tokens in the embed domain
            n = tok.shape[0]
            cls = Tensor(np.broadcast_to(self.cls_int.data, (n, 1, self.embed_dim)).copy())
            tok = cat([cls, tok], axis=1)
            tok = Tensor(np.clip(tok.data + self.pos_int.data, self.embed_q.qlb, self.embed_q.qub))
            tok = self.blocks(tok)
            tok = self.norm(tok)
            return self.head(tok[:, 0])
        tok = self._tokens(x)
        n = tok.shape[0]
        cls = self.cls_token.broadcast_to((n, 1, self.embed_dim))
        tok = cat([cls, tok], axis=1) + self.pos_embed
        tok = self.embed_q(tok)
        tok = self.blocks(tok)
        tok = self.norm(tok)
        return self.head(tok[:, 0])

    def set_deploy(self, flag: bool = True) -> None:
        self.deploy = flag
        self.input_q.deploy = flag
        self.patch.set_deploy(flag)
        self.embed_q.deploy = flag
        for b in self.blocks:
            b.set_deploy(flag)
        self.norm.set_deploy(flag)
        self.head.set_deploy(flag)


class ViTFuser(FuserBase):
    """Fuser for :class:`QVisionTransformer`."""

    def _fuse_ln(self, unit: QLNUnit, s_in: float, out_q: _QBase) -> None:
        s_out = _scalar_scale(out_q)
        if unit.running_stats:
            ln = unit.ln
            gamma = ln.weight.data.astype(np.float64).reshape(-1)
            beta = ln.bias.data.astype(np.float64).reshape(-1)
            # Per-position running statistics (e.g. (L, 1) for token streams)
            # broadcast against the per-channel gamma/beta into an affine
            # table — one INT16 word pair per (position, channel).
            mu = np.asarray(ln.running_mean.data, dtype=np.float64)
            sigma = np.sqrt(np.asarray(ln.running_var.data, dtype=np.float64) + ln.eps)
            scale = gamma * s_in / (sigma * s_out)
            bias = (beta - gamma * mu / sigma) / s_out
            unit.mq = MulQuant(scale, bias, fmt=self.fmt, channel_axis=-1,
                               out_lo=out_q.qlb, out_hi=out_q.qub,
                               float_scale=self.float_scale)
        else:
            unit.in_scale = s_in
            unit.out_scale = s_out
            unit.out_qlb = out_q.qlb
            unit.out_qub = out_q.qub

    def _fuse_linear_to(self, lin: QLinear, s_targets: np.ndarray, out_lo: float,
                        out_hi: float) -> MulQuant:
        """MulQuant mapping a linear's int accumulator into target domain(s)."""
        lin.freeze_int_weight()
        s_x = _scalar_scale(lin.aq)
        s_w = _weight_scale_vector(lin, lin.out_features)
        scale = s_w * s_x / s_targets
        bias_f = lin.bias.data.astype(np.float64) if lin.bias is not None else np.zeros(lin.out_features)
        bias = bias_f / s_targets
        return MulQuant(scale, bias, fmt=self.fmt, channel_axis=-1,
                        out_lo=out_lo, out_hi=out_hi, float_scale=self.float_scale)

    def _fuse_attention(self, attn: QAttention, s_stream_out: float, stream_range) -> None:
        d = attn.embed_dim
        sq_, sk_, sv_ = (_scalar_scale(attn.qq), _scalar_scale(attn.kq), _scalar_scale(attn.vq))
        targets = np.concatenate([np.full(d, sq_), np.full(d, sk_), np.full(d, sv_)])
        qgrid = attn.qq  # all three share the same integer grid width
        attn.mq_qkv = self._fuse_linear_to(attn.qkv, targets, qgrid.qlb, qgrid.qub)

        s_score = _scalar_scale(attn.sq)
        attn.mq_score = MulQuant(sq_ * sk_ * attn.softmax_scale / s_score, fmt=self.fmt,
                                 out_lo=attn.sq.qlb, out_hi=attn.sq.qub,
                                 float_scale=self.float_scale)
        attn.lut_softmax = LUTSoftmax(s_score, attn.sq.qlb, attn.sq.qub,
                                      prob_bits=attn.prob_bits)
        s_proj_in = _scalar_scale(attn.proj.aq)
        pb = float(1 << attn.prob_bits)
        attn.mq_ctx = MulQuant(sv_ / (pb * s_proj_in), fmt=self.fmt,
                               out_lo=attn.proj.aq.qlb, out_hi=attn.proj.aq.qub,
                               float_scale=self.float_scale)
        attn.mq_proj = self._fuse_linear_to(
            attn.proj, np.full(d, s_stream_out), *stream_range)

    def _fuse_mlp(self, mlp: QMLP, s_stream_out: float, stream_range) -> None:
        s_g = _scalar_scale(mlp.gq)
        hidden = mlp.fc1.out_features
        mlp.mq_fc1 = self._fuse_linear_to(mlp.fc1, np.full(hidden, s_g),
                                          mlp.gq.qlb, mlp.gq.qub)
        s_fc2_in = _scalar_scale(mlp.fc2.aq)
        mlp.lut_gelu = LUTGelu(s_g, mlp.gq.qlb, mlp.gq.qub,
                               s_fc2_in, mlp.fc2.aq.qlb, mlp.fc2.aq.qub)
        mlp.mq_fc2 = self._fuse_linear_to(
            mlp.fc2, np.full(mlp.fc2.out_features, s_stream_out), *stream_range)

    def fuse(self) -> QVisionTransformer:
        m: QVisionTransformer = self.model
        s_embed = _scalar_scale(m.embed_q)

        # Patch embedding -> embed domain; cls/pos land on the same grid.
        self.fuse_unit(m.patch, s_embed, (float(m.embed_q.qlb), float(m.embed_q.qub)))
        m.cls_int.data = np.clip(np.round(m.cls_token.data / s_embed),
                                 m.embed_q.qlb, m.embed_q.qub).astype(np.float32)
        m.pos_int.data = np.clip(np.round(m.pos_embed.data / s_embed),
                                 m.embed_q.qlb, m.embed_q.qub).astype(np.float32)

        s_prev = s_embed
        r = self.res_scale
        for blk in m.blocks:
            # Branches land in pre-add domains res_scale finer than the
            # stream grids (see FuserBase.res_scale).
            s1 = _scalar_scale(blk.rq1) / r
            s2 = _scalar_scale(blk.rq2) / r
            r1 = tuple(v * r for v in self._signed_range(blk.rq1.qub))
            r2 = tuple(v * r for v in self._signed_range(blk.rq2.qub))
            self._fuse_ln(blk.ln1, s_prev, blk.attn.qkv.aq)
            self._fuse_attention(blk.attn, s1, r1)
            blk.mq_id1 = MulQuant(s_prev / s1, fmt=self.fmt, out_lo=r1[0], out_hi=r1[1],
                                  float_scale=self.float_scale)
            self._fuse_ln(blk.ln2, _scalar_scale(blk.rq1), blk.mlp.fc1.aq)
            self._fuse_mlp(blk.mlp, s2, r2)
            blk.mq_id2 = MulQuant(_scalar_scale(blk.rq1) / s2, fmt=self.fmt,
                                  out_lo=r2[0], out_hi=r2[1],
                                  float_scale=self.float_scale)
            blk.res_scale = r
            s_prev = _scalar_scale(blk.rq2)

        self._fuse_ln(m.norm, s_prev, m.head.linear.aq)
        self.fuse_fc_logits(m.head)
        return m
