"""Observability tools: per-layer quantization error analysis.

The paper sells Torch2Chip as "fully customizable, fully observable"; this
module provides the observability half for debugging a compression scheme
before committing it to silicon:

* :func:`weight_quant_report` — per-layer weight-quantization SQNR and range
  utilization;
* :func:`activation_ranges` — calibrated activation scales / clipping levels
  per quantizer;
* :func:`sqnr` — signal-to-quantization-noise ratio helper;
* :func:`format_report` — printable table.
"""
from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.qbase import _QBase
from repro.core.qlayers import QConv2d, QLinear
from repro.nn.module import Module
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor


def sqnr(signal: np.ndarray, noisy: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in dB."""
    err = np.asarray(noisy, dtype=np.float64) - np.asarray(signal, dtype=np.float64)
    p_sig = float((np.asarray(signal, dtype=np.float64) ** 2).mean())
    p_err = float((err ** 2).mean())
    if p_err == 0:
        return float("inf")
    return 10.0 * np.log10(max(p_sig, 1e-30) / p_err)


def weight_quant_report(model: Module) -> List[Dict]:
    """Per quantized layer: weight SQNR, scale, grid utilization.

    Utilization = fraction of the integer grid actually occupied; a low value
    flags a poorly-fit scale (e.g. an outlier-dominated max-abs).
    """
    rows = []
    with no_grad():
        for name, m in model.named_modules():
            if not isinstance(m, (QConv2d, QLinear)):
                continue
            w = m.weight.detach()
            wdq = m.wq.trainFunc(w)
            ints = m.wq.q(w).data
            levels = m.wq.qub - m.wq.qlb + 1
            used = len(np.unique(ints))
            rows.append({
                "layer": name,
                "shape": tuple(w.shape),
                "nbit": m.wq.nbit,
                "sqnr_db": sqnr(w.data, wdq.data),
                "grid_utilization": used / levels,
                "max_scale": float(np.asarray(m.wq.scale.data).max()),
            })
    return rows


def activation_ranges(model: Module) -> List[Dict]:
    """Calibrated activation-quantizer scales and implied clipping ranges.

    Weight quantizers are excluded by identity: every quantizer that is some
    layer's ``wq`` attribute is skipped, whatever the attribute path looks
    like — custom module layouts that alias or re-nest their weight
    quantizers cannot leak them into the activation report.
    """
    weight_q_ids = {
        id(m.wq) for m in model.modules()
        if isinstance(getattr(m, "wq", None), _QBase)
    }
    rows = []
    for name, m in model.named_modules():
        if not isinstance(m, _QBase) or id(m) in weight_q_ids:
            continue
        s = np.asarray(m.scale.data).reshape(-1)
        rows.append({
            "quantizer": name or "<root>",
            "nbit": m.nbit,
            "unsigned": m.unsigned,
            "scale": float(s[0]) if s.size == 1 else float(s.mean()),
            "clip_hi": float(s.max()) * m.qub,
        })
    return rows


def layer_output_sqnr(qmodel: Module, float_model: Module, x: np.ndarray) -> float:
    """End-to-end logit SQNR of the fake-quant model vs its float source."""
    qmodel.eval()
    float_model.eval()
    with no_grad():
        q = qmodel(Tensor(np.asarray(x, dtype=np.float32))).data
        f = float_model(Tensor(np.asarray(x, dtype=np.float32))).data
    return sqnr(f, q)


def format_report(rows: List[Dict], columns: List[str] | None = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(empty report)"
    columns = columns or list(rows[0].keys())
    table = [[("%.3f" % r[c]) if isinstance(r[c], float) else str(r[c]) for c in columns]
             for r in rows]
    widths = [max(len(c), max(len(row[i]) for row in table)) for i, c in enumerate(columns)]
    lines = ["  ".join(c.ljust(w) for c, w in zip(columns, widths))]
    for row in table:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
