"""Dual-path base layers: ``QConv2d`` and ``QLinear`` (paper Fig. 2).

Each layer embeds a weight quantizer ``wq`` and an input-activation quantizer
``aq`` (both ``_QBase``) and splits computation into:

* **training path** — convolution/matmul over *dequantized* (fake-quantized)
  float tensors, fully differentiable;
* **inference path** (``deploy=True``) — the same operation over integer
  tensors only: the input is already integer (produced by the upstream
  MulQuant or the model's input quantizer) and the weight is the registered
  integer buffer ``wint``.

The layers subclass the vanilla ones so weight re-use and the final
"vanilla-custom-vanilla" re-pack are state-dict compatible.
"""
from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.core.qbase import _QBase, IdentityQuantizer
from repro.tensor import functional as F
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor


class QConv2d(nn.Conv2d):
    """Conv2d with embedded quantizers and a dual-path forward."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        wq: Optional[_QBase] = None,
        aq: Optional[_QBase] = None,
    ):
        super().__init__(in_channels, out_channels, kernel_size, stride, padding, groups, bias)
        self.wq = wq or IdentityQuantizer()
        self.aq = aq or IdentityQuantizer()
        self.deploy = False
        self.register_buffer("wint", np.zeros_like(self.weight.data))

    @classmethod
    def from_float(cls, conv: nn.Conv2d, wq: _QBase, aq: _QBase) -> "QConv2d":
        """Wrap a vanilla conv, re-using its weights (vanilla -> custom)."""
        q = cls(conv.in_channels, conv.out_channels, conv.kernel_size, conv.stride,
                conv.padding, conv.groups, bias=conv.bias is not None, wq=wq, aq=aq)
        q.weight.data = conv.weight.data.copy()
        if conv.bias is not None:
            q.bias.data = conv.bias.data.copy()
        return q

    def freeze_int_weight(self) -> np.ndarray:
        """Snapshot the integer weight into the ``wint`` buffer (deploy prep).

        Runs the training path once (no grad) so data-dependent quantizers
        (SAWB, MinMax) refresh their scale from the final weights before the
        integer snapshot is taken.
        """
        with no_grad():
            self.wq.trainFunc(self.weight.detach())
            self.wint.data = self.wq.q(self.weight.detach()).data.copy()
        return self.wint.data

    def set_deploy(self, flag: bool = True) -> None:
        self.deploy = flag
        self.wq.deploy = flag
        self.aq.deploy = flag

    def forward(self, x: Tensor) -> Tensor:
        if self.deploy:
            # Integer-only: input already integer, weight from the frozen
            # buffer; bias is handled by the downstream MulQuant.  Asymmetric
            # input grids subtract their zero point before the MACs (integer
            # offset-subtract stage) so zero padding stays exact.
            zp = float(np.asarray(self.aq.zero_point.data).reshape(-1)[0])
            if zp != 0.0:
                x = x - zp
            return F.conv2d(x, Tensor(self.wint.data), None,
                            self.stride, self.padding, self.groups)
        xdq = self.aq(x)
        wdq = self.wq(self.weight)
        return F.conv2d(xdq, wdq, self.bias, self.stride, self.padding, self.groups)


class QLinear(nn.Linear):
    """Linear with embedded quantizers and a dual-path forward."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 wq: Optional[_QBase] = None, aq: Optional[_QBase] = None):
        super().__init__(in_features, out_features, bias)
        self.wq = wq or IdentityQuantizer()
        self.aq = aq or IdentityQuantizer()
        self.deploy = False
        self.register_buffer("wint", np.zeros_like(self.weight.data))

    @classmethod
    def from_float(cls, lin: nn.Linear, wq: _QBase, aq: _QBase) -> "QLinear":
        q = cls(lin.in_features, lin.out_features, bias=lin.bias is not None, wq=wq, aq=aq)
        q.weight.data = lin.weight.data.copy()
        if lin.bias is not None:
            q.bias.data = lin.bias.data.copy()
        return q

    def freeze_int_weight(self) -> np.ndarray:
        with no_grad():
            self.wq.trainFunc(self.weight.detach())
            self.wint.data = self.wq.q(self.weight.detach()).data.copy()
        return self.wint.data

    def set_deploy(self, flag: bool = True) -> None:
        self.deploy = flag
        self.wq.deploy = flag
        self.aq.deploy = flag

    def forward(self, x: Tensor) -> Tensor:
        if self.deploy:
            zp = float(np.asarray(self.aq.zero_point.data).reshape(-1)[0])
            if zp != 0.0:
                x = x - zp
            return F.linear(x, Tensor(self.wint.data), None)
        xdq = self.aq(x)
        wdq = self.wq(self.weight)
        return F.linear(xdq, wdq, self.bias)
