"""Fixed-point ``INT(int_bits, frac_bits)`` encoding for fused scales/biases.

The paper (§4.1, Tables 1-2) quantizes the fused normalization scaling factor
and bias to an INT16 fixed-point format — e.g. ``INT(12, 4)`` = 12 fractional
bits + 4 integer bits (sign included in the integer part).  This module
provides the encode/decode helpers used by :class:`repro.core.mulquant.MulQuant`.

Note on notation: the paper's table header reads "(INT, Frac)" while the prose
of §4.1 says "12 fractional bits and 4 integer bits"; we follow the prose and
define ``FixedPointFormat(int_bits=4, frac_bits=12)`` as the Table 1 format.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point format with ``int_bits + frac_bits`` total bits.

    ``int_bits`` includes the sign bit, so representable values lie in
    ``[-2^(int_bits-1), 2^(int_bits-1) - 2^-frac_bits]`` with resolution
    ``2^-frac_bits``.
    """

    int_bits: int = 4
    frac_bits: int = 12

    @property
    def total_bits(self) -> int:
        return self.int_bits + self.frac_bits

    @property
    def lo(self) -> int:
        """Smallest representable raw integer."""
        return -(1 << (self.total_bits - 1))

    @property
    def hi(self) -> int:
        """Largest representable raw integer."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def resolution(self) -> float:
        return 2.0 ** (-self.frac_bits)

    def __str__(self) -> str:  # matches the paper's "INT (frac, int)" prose
        return f"INT({self.frac_bits}, {self.int_bits})"


def to_fixed_point(x, fmt: FixedPointFormat) -> np.ndarray:
    """Encode float values as raw fixed-point integers (round to nearest)."""
    raw = np.round(np.asarray(x, dtype=np.float64) * (1 << fmt.frac_bits))
    return np.clip(raw, fmt.lo, fmt.hi).astype(np.int64)


def from_fixed_point(raw, fmt: FixedPointFormat) -> np.ndarray:
    """Decode raw fixed-point integers back to floats."""
    return (np.asarray(raw, dtype=np.float64) * fmt.resolution).astype(np.float32)


def quantize_to_fixed_point(x, fmt: FixedPointFormat) -> np.ndarray:
    """Round-trip a float array through the fixed-point grid."""
    return from_fixed_point(to_fixed_point(x, fmt), fmt)
