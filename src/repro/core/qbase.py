"""``_QBase``: the Dual-Path quantizer base (paper §3.1).

The quantizer owns the scaling factor and zero point as registered buffers and
exposes two computation paths:

* **training path** (``trainFunc``) — fake quantization: quantize, then
  dequantize, with a straight-through estimator so gradients flow.  This is
  the only method a user-customized quantizer must override.
* **inference path** (``evalFunc``) — integer-only: the quantizer emits the
  low-precision integer tensor (no dequantization), exactly what hardware
  consumes.

The global switch is the ``deploy`` flag, toggled model-wide by
:meth:`repro.core.t2c.T2C`.  Calibration (PTQ range estimation) is a third
mode driven by the ``observe`` flag.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.module import Module
from repro.telemetry import state as _telemetry_state
from repro.telemetry.saturation import record as _record_saturation
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor


@dataclass(frozen=True)
class QuantSpec:
    """Integer grid specification for an ``nbit`` signed/unsigned quantizer."""

    nbit: int
    unsigned: bool = False

    @property
    def qlb(self) -> int:
        """Lower bound of the integer grid."""
        return 0 if self.unsigned else -(1 << (self.nbit - 1))

    @property
    def qub(self) -> int:
        """Upper bound of the integer grid."""
        return (1 << self.nbit) - 1 if self.unsigned else (1 << (self.nbit - 1)) - 1

    @property
    def levels(self) -> int:
        return (1 << self.nbit)


class _QBase(Module):
    """Bottom-level dual-path quantizer.

    Subclasses customize the *training path only* — typically by computing
    ``self.scale`` (and optionally ``self.zero_point``) from data or from
    learnable parameters — and Torch2Chip handles the integer-only inference
    path automatically.

    Buffers
    -------
    scale:
        Quantization step size.  Scalar for per-tensor quantizers; shape
        ``(C, 1, 1, 1)`` (conv) / ``(C, 1)`` (linear) for per-channel weight
        quantizers.
    zero_point:
        Integer offset (0 for the symmetric/unsigned-after-ReLU schemes used
        by the bundled quantizers; kept for custom asymmetric schemes).
    """

    def __init__(self, nbit: int = 8, unsigned: bool = False, train_flag: bool = True):
        super().__init__()
        self.spec = QuantSpec(nbit, unsigned)
        self.nbit = nbit
        self.unsigned = unsigned
        self.train_flag = train_flag
        self.deploy = False
        self.observe = False
        self.register_buffer("scale", np.ones((), dtype=np.float32))
        self.register_buffer("zero_point", np.zeros((), dtype=np.float32))

    # ------------------------------------------------------------ utilities
    @property
    def qlb(self) -> int:
        return self.spec.qlb

    @property
    def qub(self) -> int:
        return self.spec.qub

    def set_scale(self, scale) -> None:
        """Register a new scale (any broadcastable shape)."""
        arr = np.asarray(scale, dtype=np.float32)
        arr = np.maximum(np.abs(arr), 1e-12)
        self.scale.data = arr
        self.scale = self.scale  # keep buffer registration fresh

    def set_zero_point(self, zp) -> None:
        self.zero_point.data = np.asarray(zp, dtype=np.float32)

    # ------------------------------------------------------------ two paths
    def q(self, x: Tensor) -> Tensor:
        """Quantize to the integer grid (rounding, no dequant, no grad)."""
        xq = (x / Tensor(self.scale.data) + Tensor(self.zero_point.data)).round()
        return xq.clamp(self.qlb, self.qub)

    def dq(self, xq: Tensor) -> Tensor:
        """Map integers back to the float domain."""
        return (xq - Tensor(self.zero_point.data)) * Tensor(self.scale.data)

    def trainFunc(self, x: Tensor) -> Tensor:
        """Training path: fake quantization with straight-through estimator.

        Subclasses override this to implement custom QAT/PTQ behaviour; the
        contract is to *also* keep ``self.scale``/``self.zero_point`` current
        so the automatic inference-path conversion stays correct.
        """
        s = Tensor(self.scale.data)
        zp = Tensor(self.zero_point.data)
        xq = (x / s + zp).round_ste().clamp(self.qlb, self.qub)
        return (xq - zp) * s

    def evalFunc(self, x: Tensor) -> Tensor:
        """Inference path: low-precision integers only (paper Fig. 2)."""
        with no_grad():
            if _telemetry_state.enabled():
                # mirror q() but audit how many elements the grid clamps
                xq = (x.detach() / Tensor(self.scale.data) + Tensor(self.zero_point.data)).round()
                d = xq.data
                clipped = int(np.count_nonzero((d < self.qlb) | (d > self.qub)))
                _record_saturation(self, "quantizer", clipped, int(d.size))
                return xq.clamp(self.qlb, self.qub)
            return self.q(x.detach())

    def observeFunc(self, x: Tensor) -> None:
        """Calibration hook: update range statistics (PTQ)."""

    def forward(self, x: Tensor) -> Tensor:
        if self.observe:
            self.observeFunc(x.detach())
        if self.deploy:
            return self.evalFunc(x)
        return self.trainFunc(x)

    def extra_repr(self) -> str:
        return f"nbit={self.nbit}, unsigned={self.unsigned}, deploy={self.deploy}"


class IdentityQuantizer(_QBase):
    """No-op quantizer (full precision); useful as a default placeholder."""

    def __init__(self, **_):
        super().__init__(nbit=32)

    def trainFunc(self, x: Tensor) -> Tensor:
        return x

    def evalFunc(self, x: Tensor) -> Tensor:
        return x
