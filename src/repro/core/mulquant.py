"""MulQuant: the integer-only requantization module (paper §3.2, Fig. 3).

After fusion, every normalization layer + quantizer pair collapses into a
scale-and-shift on the integer accumulator::

    y_int = clamp( round( (acc * M) >> f_m  +  (B >> f_b) ), out_lo, out_hi )

``M`` (per-channel or scalar) and ``B`` are INT16 fixed-point integers.  The
requantization *scale* is a small number (product of quantization steps), so
it gets the many-fractional-bits format — ``INT(4, 12)`` in Table 1's
notation.  The *bias* lives in output-integer units (up to hundreds), so it
gets the complementary format with the integer/fractional split swapped
(``INT(12, 4)``).  Both are plain INT16 words realizable with two shifts on
hardware; see DESIGN.md for the notation discussion.

Two scale modes (paper Eq. 14 / 15):

* **unified** (8-bit "Pre-Fusing"): ``M`` is a scalar because BN was folded
  into the weights before quantization.
* **channel-wise** (sub-8-bit): ``M`` has one entry per output channel,
  carrying the BN ``gamma*`` factor that cannot be folded stably at low
  precision.

``float_scale=True`` reproduces the PyTorch/industry-toolkit baseline that
keeps the scaling factor in float32 (the "Float" rows in Tables 1-2).
"""
from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.fixed_point import FixedPointFormat, from_fixed_point, to_fixed_point
from repro.nn.module import Module
from repro.telemetry import state as _telemetry_state
from repro.telemetry.saturation import record as _record_saturation
from repro.tensor.tensor import Tensor


class MulQuant(Module):
    """Integer scale-and-shift requantizer (deploy-path only, no autograd).

    Parameters
    ----------
    scale:
        Float requantization scale(s): scalar or per-channel vector.
    bias:
        Float bias(es) expressed in *output integer units*.
    fmt:
        Fixed-point format of the scale.  The bias uses the complementary
        format (integer/fractional widths swapped) unless ``bias_fmt`` is
        given explicitly.
    out_lo / out_hi:
        Output integer clamp range (e.g. ``0 / 255`` for an unsigned 8-bit
        consumer; a negative lower bound for pre-residual signed domains).
    channel_axis:
        Axis the per-channel scale broadcasts along (1 for NCHW feature maps,
        -1 for NLC token tensors).
    float_scale:
        Keep scale/bias as float32 (PyTorch-style baseline rows).
    """

    def __init__(
        self,
        scale,
        bias=None,
        fmt: Optional[FixedPointFormat] = None,
        bias_fmt: Optional[FixedPointFormat] = None,
        out_lo: float = -(2 ** 31),
        out_hi: float = 2 ** 31 - 1,
        channel_axis: int = 1,
        float_scale: bool = False,
    ):
        super().__init__()
        self.fmt = fmt or FixedPointFormat(4, 12)
        self.bias_fmt = bias_fmt or FixedPointFormat(self.fmt.frac_bits, self.fmt.int_bits)
        self.out_lo = out_lo
        self.out_hi = out_hi
        self.channel_axis = channel_axis
        self.float_scale = float_scale

        scale = np.atleast_1d(np.asarray(scale, dtype=np.float64))
        bias = np.zeros_like(scale) if bias is None else np.atleast_1d(np.asarray(bias, dtype=np.float64))
        # Intended (pre-encoding) values, kept as plain attributes — not
        # buffers, so the state dict is unchanged — for the static lint's
        # fixed-point round-trip check (contract.scale-roundtrip).
        self.scale_f = scale.copy()
        self.bias_f = bias.copy()
        if float_scale:
            self.shift = 0
            self.register_buffer("scale", scale.astype(np.float32))
            self.register_buffer("bias", bias.astype(np.float32))
        else:
            # Normalize the multiplier into the fixed-point sweet spot with a
            # power-of-two pre-shift (a barrel shift on hardware): store
            # M0 = M * 2^shift with max|M0| in [2^(i-2), 2^(i-1)), apply
            # y = (acc * M0) >> (frac + shift).  Without this, fused scales
            # (products of small quantization steps) underflow the grid.
            max_abs = float(np.abs(scale).max())
            fmt_max = float(1 << (self.fmt.int_bits - 1))
            if max_abs > 0:
                self.shift = int(np.floor(np.log2(fmt_max / max_abs)))
                # An exact power-of-two ratio would land on fmt_max itself,
                # which clamps; back off one shift so M0 stays representable.
                if max_abs * 2.0 ** self.shift >= fmt_max:
                    self.shift -= 1
            else:
                self.shift = 0
            self.register_buffer("scale", to_fixed_point(scale * (2.0 ** self.shift), self.fmt))
            self.register_buffer("bias", to_fixed_point(bias, self.bias_fmt))

    # ----------------------------------------------------------------- api
    @property
    def effective_scale(self) -> np.ndarray:
        """The float value the stored scale actually represents."""
        if self.float_scale:
            return self.scale.data
        return from_fixed_point(self.scale.data, self.fmt) * np.float32(2.0 ** (-self.shift))

    @property
    def effective_bias(self) -> np.ndarray:
        if self.float_scale:
            return self.bias.data
        return from_fixed_point(self.bias.data, self.bias_fmt)

    def _broadcast(self, v: np.ndarray, ndim: int) -> np.ndarray:
        if v.size == 1:
            return v.reshape(())
        if v.ndim > 1:
            # multi-axis table (e.g. per-position-per-channel fused LayerNorm):
            # align by trailing dimensions, numpy-style
            return v
        shape = [1] * ndim
        shape[self.channel_axis % ndim] = v.size
        return v.reshape(shape)

    def forward(self, x: Tensor) -> Tensor:
        acc = x.data.astype(np.float64)
        nd = acc.ndim
        m = self._broadcast(np.asarray(self.effective_scale, dtype=np.float64), nd)
        b = self._broadcast(np.asarray(self.effective_bias, dtype=np.float64), nd)
        # (acc * M) >> f_m + (B >> f_b), rounding half away from zero (the
        # add-half-then-truncate datapath).  float64 represents the integer
        # products exactly for the bit-widths used here, so this is
        # bit-equivalent to the two-shift integer implementation.
        v = acc * m + b
        r = np.sign(v) * np.floor(np.abs(v) + 0.5)  # lint: allow-float (add-half rounding)
        y = np.clip(r, self.out_lo, self.out_hi)
        if _telemetry_state.enabled():
            # saturation audit: a requantizer clamping real accumulator mass
            # is invisible in accuracy numbers until it is too late
            clipped = int(np.count_nonzero((r < self.out_lo) | (r > self.out_hi)))
            _record_saturation(self, "mulquant", clipped, int(r.size))
        return Tensor(y.astype(np.float32))

    def extra_repr(self) -> str:
        kind = "float" if self.float_scale else f"scale={self.fmt}, bias={self.bias_fmt}"
        return f"{kind}, C={self.scale.data.size}, out=[{self.out_lo}, {self.out_hi}]"
