"""Range observers for post-training calibration.

Observers accumulate statistics of a tensor stream (activations during
calibration forward passes, or a weight tensor) and produce the quantization
scale for a given integer grid.  Three strategies are provided:

* :class:`MinMaxObserver` — running min/max (OpenVINO-style "MinMax Quant.").
* :class:`PercentileObserver` — clips the tails (robust to outliers).
* :class:`MSEObserver` — grid-searches the clipping range that minimizes the
  quantization MSE (the common choice for sub-8-bit PTQ).
"""
from __future__ import annotations

import numpy as np


class Observer:
    """Base observer: track statistics, then :meth:`compute_scale`."""

    def __init__(self, momentum: float = 0.9):
        self.momentum = momentum
        self.initialized = False

    def update(self, x: np.ndarray) -> None:
        raise NotImplementedError

    def compute_scale(self, qlb: int, qub: int) -> np.ndarray:
        raise NotImplementedError

    def reset(self) -> None:
        self.initialized = False


class MinMaxObserver(Observer):
    """Exponential-moving-average min/max observer."""

    def __init__(self, momentum: float = 0.9):
        super().__init__(momentum)
        self.min_val = 0.0
        self.max_val = 0.0

    def update(self, x: np.ndarray) -> None:
        lo, hi = float(x.min()), float(x.max())
        if not self.initialized:
            self.min_val, self.max_val = lo, hi
            self.initialized = True
        else:
            m = self.momentum
            self.min_val = m * self.min_val + (1 - m) * lo
            self.max_val = m * self.max_val + (1 - m) * hi

    def compute_scale(self, qlb: int, qub: int) -> np.ndarray:
        if qlb == 0:  # unsigned grid: range [0, max]
            rng = max(self.max_val, 1e-8)
            return np.float32(rng / qub)
        rng = max(abs(self.min_val), abs(self.max_val), 1e-8)
        return np.float32(rng / qub)


class PercentileObserver(Observer):
    """Percentile-clipped range observer (keeps a bounded sample reservoir)."""

    def __init__(self, percentile: float = 99.9, max_samples: int = 1 << 18, seed: int = 0):
        super().__init__()
        self.percentile = percentile
        self.max_samples = max_samples
        self._rng = np.random.default_rng(seed)
        self._samples: list[np.ndarray] = []
        self._count = 0

    def update(self, x: np.ndarray) -> None:
        flat = x.reshape(-1)
        if flat.size > self.max_samples // 8:
            flat = self._rng.choice(flat, size=self.max_samples // 8, replace=False)
        self._samples.append(flat.astype(np.float32))
        self._count += flat.size
        self.initialized = True
        if self._count > self.max_samples:
            merged = np.concatenate(self._samples)
            keep = self._rng.choice(merged, size=self.max_samples // 2, replace=False)
            self._samples = [keep]
            self._count = keep.size

    def compute_scale(self, qlb: int, qub: int) -> np.ndarray:
        data = np.concatenate(self._samples)
        if qlb == 0:
            hi = np.percentile(data, self.percentile)
            return np.float32(max(hi, 1e-8) / qub)
        hi = np.percentile(np.abs(data), self.percentile)
        return np.float32(max(hi, 1e-8) / qub)


class MSEObserver(PercentileObserver):
    """Search the clipping range minimizing quantization MSE on the reservoir."""

    def __init__(self, grid: int = 40, **kwargs):
        kwargs.pop("percentile", None)
        super().__init__(percentile=100.0, **kwargs)
        self.grid = grid

    def compute_scale(self, qlb: int, qub: int) -> np.ndarray:
        data = np.concatenate(self._samples)
        max_abs = float(np.abs(data).max()) if qlb != 0 else float(data.max())
        max_abs = max(max_abs, 1e-8)
        best_scale, best_err = max_abs / qub, np.inf
        for frac in np.linspace(0.3, 1.0, self.grid):
            scale = max(frac * max_abs, 1e-12) / qub
            q = np.clip(np.round(data / scale), qlb, qub)
            err = float(((q * scale - data) ** 2).mean())
            if err < best_err:
                best_err, best_scale = err, scale
        return np.float32(best_scale)


class KLObserver(PercentileObserver):
    """Entropy-calibration observer (TensorRT-style).

    Builds a histogram of the observed distribution and picks the clipping
    threshold whose quantized distribution has minimal KL divergence from the
    original — robust for long-tailed activations.
    """

    def __init__(self, bins: int = 512, grid: int = 32, **kwargs):
        kwargs.pop("percentile", None)
        super().__init__(percentile=100.0, **kwargs)
        self.bins = bins
        self.grid = grid

    @staticmethod
    def _kl(p: np.ndarray, q: np.ndarray) -> float:
        mask = p > 0
        qq = np.where(q > 0, q, 1e-12)
        return float((p[mask] * np.log(p[mask] / qq[mask])).sum())

    def compute_scale(self, qlb: int, qub: int) -> np.ndarray:
        data = np.concatenate(self._samples)
        mag = np.abs(data) if qlb != 0 else np.clip(data, 0, None)
        max_abs = max(float(mag.max()), 1e-8)
        hist, edges = np.histogram(mag, bins=self.bins, range=(0, max_abs))
        p = hist.astype(np.float64)
        total = p.sum()
        if total == 0:
            return np.float32(max_abs / qub)
        p /= total
        levels = qub  # magnitude buckets of the target grid
        eps = 1e-10
        best_t, best_kl = max_abs, np.inf
        for frac in np.linspace(0.1, 1.0, self.grid):
            t_bin = max(int(frac * self.bins), levels)
            if t_bin > self.bins:
                t_bin = self.bins
            # Model distribution: in-range mass is chunk-quantized to the
            # grid resolution; out-of-range mass is unrepresentable (clipped)
            # and modeled as eps — so clipping pays a log(p/eps) penalty that
            # trades off against in-range resolution.
            chunks = np.array_split(p[:t_bin], levels)
            q = np.concatenate([np.full(len(c), c.sum() / max(len(c), 1)) for c in chunks])
            q = np.concatenate([q, np.full(self.bins - t_bin, eps)])
            q = np.where(q > 0, q, eps)
            q /= q.sum()
            kl = self._kl(p, q)
            if kl < best_kl:
                best_kl = kl
                best_t = edges[t_bin]
            if t_bin == self.bins:
                break
        return np.float32(max(best_t, 1e-8) / qub)


OBSERVERS = {
    "minmax": MinMaxObserver,
    "percentile": PercentileObserver,
    "mse": MSEObserver,
    "kl": KLObserver,
}


def build_observer(name: str, **kwargs) -> Observer:
    """Build a registered observer by name."""
    if name not in OBSERVERS:
        raise KeyError(f"unknown observer {name!r}; known: {sorted(OBSERVERS)}")
    return OBSERVERS[name](**kwargs)
