"""LUT-based non-linear function approximation (paper §3.2.2, Fig. 4).

Hardware accelerators implement transcendental functions with lookup tables
indexed by the integer activation.  Torch2Chip builds these tables
automatically from the calibrated quantizer scales:

* :class:`LUTSoftmax` — integer softmax: subtract the row max, look up
  ``exp`` of the (non-positive) integer difference, and renormalize into a
  power-of-two probability grid.
* :class:`LUTGelu` — a direct int -> int table for GELU (one entry per input
  code, e.g. 256 entries at 8-bit).

Both are deploy-only modules (pure integer in/out); their table resolution is
user-customizable, and the Fig. 4 bench sweeps it.
"""
from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class LUTSoftmax(Module):
    """Integer-only softmax over the last axis.

    Parameters
    ----------
    score_scale:
        Float scale of the integer attention scores (input grid step).
    score_qlb / score_qub:
        Integer range of the scores (defines the table span).
    prob_bits:
        Output probabilities are integers on the grid ``1 / 2**prob_bits``.
    exp_bits:
        Internal precision of the exp table entries.
    """

    def __init__(self, score_scale: float, score_qlb: int, score_qub: int,
                 prob_bits: int = 8, exp_bits: int = 15):
        super().__init__()
        self.score_scale = float(score_scale)
        self.prob_bits = prob_bits
        self.exp_bits = exp_bits
        span = score_qub - score_qlb  # max possible (x - max) magnitude
        d = np.arange(span + 1, dtype=np.float64)  # d = max - x  (>= 0)
        table = np.round(np.exp(-d * self.score_scale) * (1 << exp_bits))
        self.register_buffer("table", table.astype(np.int64))

    def forward(self, x: Tensor) -> Tensor:
        s = x.data.astype(np.int64)
        d = s.max(axis=-1, keepdims=True) - s  # non-negative integer offsets
        d = np.minimum(d, len(self.table.data) - 1)
        e = self.table.data[d]  # integer exp values
        denom = e.sum(axis=-1, keepdims=True)
        probs = np.floor((e.astype(np.float64) * (1 << self.prob_bits) + denom // 2) / denom)  # lint: allow-float (int divide unit)
        return Tensor(probs.astype(np.float32))

    @property
    def prob_scale(self) -> float:
        """Float value of one output probability LSB."""
        return 2.0 ** (-self.prob_bits)

    def extra_repr(self) -> str:
        return f"scale={self.score_scale:.5g}, entries={len(self.table.data)}, prob_bits={self.prob_bits}"


class LUTGelu(Module):
    """Integer-to-integer GELU lookup table.

    Maps input codes on the grid ``in_scale`` to output codes on the grid
    ``out_scale``; one table entry per representable input code.
    """

    def __init__(self, in_scale: float, in_qlb: int, in_qub: int,
                 out_scale: float, out_qlb: int, out_qub: int):
        super().__init__()
        self.in_qlb = in_qlb
        self.in_qub = in_qub
        self.in_scale = float(in_scale)
        self.out_scale = float(out_scale)
        codes = np.arange(in_qlb, in_qub + 1, dtype=np.float64)
        vals = _gelu_ref(codes * in_scale)
        table = np.clip(np.round(vals / out_scale), out_qlb, out_qub)
        self.register_buffer("table", table.astype(np.int64))

    def forward(self, x: Tensor) -> Tensor:
        idx = np.clip(x.data.astype(np.int64), self.in_qlb, self.in_qub) - self.in_qlb
        return Tensor(self.table.data[idx].astype(np.float32))

    def extra_repr(self) -> str:
        return f"in=[{self.in_qlb},{self.in_qub}]@{self.in_scale:.5g} -> @{self.out_scale:.5g}"


def _gelu_ref(x: np.ndarray) -> np.ndarray:
    """Float GELU reference (tanh approximation, matching the train path)."""
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x ** 3)))


def lut_softmax_reference_error(score_scale: float, prob_bits: int, n: int = 64,
                                seed: int = 0) -> float:
    """Mean |LUT softmax - float softmax| on random scores (diagnostics)."""
    rng = np.random.default_rng(seed)
    scores = rng.integers(-128, 128, size=(n, 16))
    lut = LUTSoftmax(score_scale, -128, 127, prob_bits=prob_bits)
    approx = lut(Tensor(scores.astype(np.float32))).data * lut.prob_scale
    ref = F.softmax(Tensor(scores.astype(np.float32) * score_scale), axis=-1).data
    return float(np.abs(approx - ref).mean())
