"""Mixed-precision bit allocation (paper §2.1's mixed-precision PTQ line).

Assigns a per-layer weight bit-width under a model-size budget using
sensitivity analysis: each layer's sensitivity is the weight-quantization
SQNR drop at a candidate precision, and a greedy allocator spends the bit
budget on the most sensitive layers first.

Works hand-in-hand with :func:`quantize_model_mixed`, which builds a Q-model
whose per-layer weight quantizers honor the allocation (activation precision
stays uniform — the common accelerator constraint).
"""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro import nn
from repro.core.analysis import sqnr
from repro.core.qconfig import QConfig
from repro.core.qlayers import QConv2d, QLinear
from repro.core.qmodels import quantize_model
from repro.core.quantizers import build_quantizer
from repro.nn.module import Module
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor


def layer_sensitivity(model: Module, bits: Sequence[int] = (2, 4, 8)) -> List[Dict]:
    """Per float conv/linear layer: weight SQNR at each candidate precision.

    Lower SQNR at a given width = more sensitive = deserves more bits.
    """
    rows = []
    with no_grad():
        for name, m in model.named_modules():
            if not isinstance(m, (nn.Conv2d, nn.Linear)) or getattr(m, "weight", None) is None:
                continue
            w = Tensor(m.weight.data.copy())
            entry = {"layer": name, "params": int(m.weight.size)}
            for b in bits:
                q = build_quantizer("minmax_channel", nbit=b)
                wdq = q.trainFunc(w)
                entry[f"sqnr_{b}b"] = sqnr(w.data, wdq.data)
            rows.append(entry)
    return rows


def allocate_bits(
    sensitivity: List[Dict],
    avg_bits: float = 4.0,
    bits: Sequence[int] = (2, 4, 8),
    min_sqnr_db: float = 12.0,
) -> Dict[str, int]:
    """Greedy per-layer bit allocation under an average-bit-width budget.

    Start every layer at the lowest width; repeatedly promote the layer with
    the worst current SQNR to the next width.  Stop when either every layer
    reaches ``min_sqnr_db`` (no more promotions needed) or the
    parameter-weighted average would exceed ``avg_bits`` (budget exhausted).
    The result is heterogeneous whenever the budget runs out before all
    layers are adequate — the interesting regime.
    """
    bits = sorted(bits)
    alloc = {r["layer"]: bits[0] for r in sensitivity}
    total_params = sum(r["params"] for r in sensitivity)
    info = {r["layer"]: r for r in sensitivity}

    def avg() -> float:
        return sum(alloc[l] * info[l]["params"] for l in alloc) / max(total_params, 1)

    def current_sqnr(layer: str) -> float:
        return info[layer][f"sqnr_{alloc[layer]}b"]

    while True:
        candidates = [l for l in alloc
                      if alloc[l] < bits[-1] and current_sqnr(l) < min_sqnr_db]
        if not candidates:
            break  # every layer adequate at its width
        worst = min(candidates, key=current_sqnr)
        next_b = bits[bits.index(alloc[worst]) + 1]
        delta = (next_b - alloc[worst]) * info[worst]["params"] / max(total_params, 1)
        if avg() + delta > avg_bits:
            break  # budget exhausted
        alloc[worst] = next_b
    return alloc


def quantize_model_mixed(model: Module, alloc: Dict[str, int], qcfg: Optional[QConfig] = None) -> Module:
    """Build a Q-model whose weight quantizers follow ``alloc``.

    ``alloc`` maps *float-model* layer names (as produced by
    :func:`layer_sensitivity`) to weight bit-widths.  Layers absent from the
    map keep ``qcfg.wbit``.  The converters preserve layer traversal order
    (stem, blocks, head), so float layers and Q-layers correspond
    positionally; shapes are cross-checked defensively.
    """
    qcfg = qcfg or QConfig()
    qm = quantize_model(model, qcfg)
    float_layers = [(name, m) for name, m in model.named_modules()
                    if isinstance(m, (nn.Conv2d, nn.Linear))
                    and getattr(m, "weight", None) is not None
                    and not isinstance(m, (QConv2d, QLinear))]
    q_layers = [m for m in qm.modules() if isinstance(m, (QConv2d, QLinear))]
    if len(float_layers) != len(q_layers):
        raise RuntimeError("layer count mismatch between float and Q model")
    for (name, fmod), qmod in zip(float_layers, q_layers):
        if fmod.weight.shape != qmod.weight.shape:
            raise RuntimeError(f"layer order mismatch at {name}")
        if name in alloc:
            qmod.wq = build_quantizer(qcfg.wq, nbit=alloc[name], **qcfg.wq_kwargs)
    return qm


def average_bits(alloc: Dict[str, int], sensitivity: List[Dict]) -> float:
    """Parameter-weighted average bit-width of an allocation."""
    info = {r["layer"]: r["params"] for r in sensitivity}
    total = sum(info.values())
    return sum(alloc[l] * info[l] for l in alloc) / max(total, 1)
