"""DeploySpec: one value object describing a full deploy configuration.

Historically every stage of the hand-off grew its own keyword arguments —
``T2C(mode=..., fmt=..., float_scale=...)``, ``nn2chip(save_model=...,
export_dir=..., formats=...)``, ``export_model(..., formats=...)`` — and the
CLI re-plumbed each of them per subcommand.  :class:`DeploySpec` collects the
whole configuration in one frozen dataclass, :func:`deploy` runs the fuse →
lint → re-pack → export → plan-compile pipeline from it in one call, and the
legacy kwargs survive as :class:`DeprecationWarning` shims that name their
replacement field.
"""
from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Optional, Tuple

from repro.core.fixed_point import FixedPointFormat
from repro.runtime.spec import CompileSpec

#: sentinel distinguishing "kwarg not passed" from an explicit value, so the
#: deprecation shims only fire for call sites that actually use the old name
_UNSET = object()


def warn_deprecated_kwarg(call: str, old: str, new: str) -> None:
    """Emit the standard shim warning naming the DeploySpec replacement."""
    warnings.warn(
        f"{call}({old}=...) is deprecated; set DeploySpec.{new} and pass "
        f"spec= instead", DeprecationWarning, stacklevel=3)


@dataclass(frozen=True)
class DeploySpec:
    """Everything the integer hand-off needs, in one place.

    Attributes
    ----------
    fusion:
        Normalization-fusion mode: ``"channel"`` (sub-8-bit channel-wise
        scaling) or ``"prefuse"`` (8-bit BN folding into weights).
    fixed_point:
        ``INT(i, f)`` grid for the fused MulQuant scales.
    float_scale:
        Keep fused scales in float32 (industry-toolkit baseline mode).
    lint:
        Run the static verifier right after ``fuse()`` (the report lands on
        ``T2C.lint_report`` / ``Deployed.lint_report``).
    accum_bits:
        Accumulator register width the lint interval engine verifies against.
    export_dir:
        Write per-tensor artifacts + manifest here; ``None`` skips export.
    formats:
        Data formats to export (``dec``/``hex``/``bin``/``qint``).
    runtime:
        ``"auto"`` compiles the runtime plan, ``"none"`` skips it.  The
        legacy layout values ``"channel"``/``"batch"`` still work but are
        deprecated — the layout (and every other compile knob) lives in
        ``compile``.
    compile:
        The :class:`repro.runtime.CompileSpec` the plan is compiled under —
        fusion level, register layout, tiling and thread count.
    verify_artifacts:
        Audit exported artifacts (checksums, header/payload consistency)
        whenever they are written or loaded from disk; on by default so a
        half-written or corrupted directory raises a typed
        :class:`~repro.export.errors.ArtifactError` instead of being served.
    verify_plan:
        Statically verify the compiled plan (register dataflow, no-alias,
        accumulator overflow proofs — see :mod:`repro.lint.plan`); on by
        default so :func:`deploy` raises
        :class:`~repro.lint.plan.PlanVerificationError` rather than hand
        over an unverified program.  The report lands on
        ``Deployed.plan_verification`` and in the export manifest.
    """

    fusion: str = "channel"
    fixed_point: FixedPointFormat = field(
        default_factory=lambda: FixedPointFormat(4, 12))
    float_scale: bool = False
    lint: bool = False
    accum_bits: int = 32
    export_dir: Optional[str] = None
    formats: Tuple[str, ...] = ("dec",)
    runtime: str = "auto"
    compile: CompileSpec = field(default_factory=CompileSpec)
    verify_artifacts: bool = True
    verify_plan: bool = True
    #: record this many deterministic input->output golden vectors against
    #: the compiled plan (0 skips).  They ride in ``Deployed.golden`` and
    #: the export manifest, and are replayed as a pre-cutover self-test by
    #: ``Server.swap`` and periodically per replica by the fleet health
    #: loop (see docs/integrity.md).
    golden_vectors: int = 4
    #: sample shape the golden vectors are drawn at (``None``: CIFAR-scale
    #: ``(3, 32, 32)``, which every bundled model takes)
    golden_input_shape: Optional[Tuple[int, ...]] = None

    def __post_init__(self):
        if self.fusion not in ("channel", "prefuse"):
            raise ValueError(f"unknown fusion mode {self.fusion!r}; "
                             "expected 'channel' or 'prefuse'")
        if self.runtime not in ("auto", "channel", "batch", "none"):
            raise ValueError(f"unknown runtime layout {self.runtime!r}; "
                             "expected 'auto', 'channel', 'batch' or 'none'")
        if not isinstance(self.compile, CompileSpec):
            raise ValueError("DeploySpec.compile must be a CompileSpec, got "
                             f"{type(self.compile).__name__}")

    @classmethod
    def from_args(cls, args) -> "DeploySpec":
        """Build a spec from an ``argparse`` namespace (shared CLI flags).

        Missing attributes keep their dataclass defaults, so every subcommand
        maps through this one translation — ``--fusion``/``--float-scale``/
        ``--accum-bits``/``--out-dir``/``--formats``/``--runtime``.
        """
        kw = {}
        for fld, attr in (("fusion", "fusion"), ("float_scale", "float_scale"),
                          ("lint", "lint"), ("accum_bits", "accum_bits"),
                          ("export_dir", "out_dir"), ("runtime", "runtime"),
                          ("verify_artifacts", "verify_artifacts"),
                          ("verify_plan", "verify_plan")):
            v = getattr(args, attr, None)
            if v is not None:
                kw[fld] = v
        fmts = getattr(args, "formats", None)
        if fmts is not None:
            kw["formats"] = tuple(fmts)
        # compile knobs (--fusion-level/--threads/--tile-*) share one
        # translation too; a legacy `--runtime channel|batch` folds into
        # CompileSpec.layout there, so no deprecation shim fires for it
        kw["compile"] = CompileSpec.from_args(args)
        if kw.get("runtime") in ("channel", "batch"):
            kw["runtime"] = "auto"
        return cls(**kw)

    def evolve(self, **changes) -> "DeploySpec":
        return replace(self, **changes)

    def to_json(self) -> dict:
        out = {}
        for f in fields(self):
            v = getattr(self, f.name)
            if isinstance(v, FixedPointFormat):
                v = str(v)
            elif isinstance(v, CompileSpec):
                v = v.to_json()
            elif isinstance(v, tuple):
                v = list(v)
            out[f.name] = v
        return out


@dataclass
class Deployed:
    """Result bundle of :func:`deploy`."""

    qnn: object                      #: vanilla re-packed integer model
    fused: object                    #: the fused Q-model (T2C's working copy)
    spec: DeploySpec
    t2c: object                      #: the converter, for further inspection
    plan: object = None              #: compiled runtime Plan (spec.runtime)
    lint_report: object = None
    manifest: Optional[dict] = None  #: export manifest when spec.export_dir
    integrity: object = None         #: IntegrityReport when artifacts verified
    plan_verification: object = None  #: PlanVerificationReport when verified
    golden: object = None            #: GoldenSet self-test vectors (spec.golden_vectors)

    def __call__(self, batch):
        """Run a batch through the fastest available executor."""
        if self.plan is not None:
            return self.plan(batch)
        from repro.tensor import no_grad
        from repro.tensor.tensor import Tensor

        with no_grad():
            return self.qnn(Tensor(batch)).data


def deploy(model, spec: Optional[DeploySpec] = None, **overrides) -> Deployed:
    """One-call hand-off: fuse, (lint,) re-pack, (export,) compile the plan.

    ``model`` is a calibrated dual-path Q-model; ``overrides`` are applied on
    top of ``spec`` (``deploy(qm, runtime="batch")``).  Returns a
    :class:`Deployed` bundle whose ``plan`` (when compiled) is bit-exact
    against the interpreted ``qnn``.
    """
    from repro.core.t2c import T2C  # lazy: t2c imports this module

    spec = (spec or DeploySpec())
    if overrides:
        spec = spec.evolve(**overrides)
    t2c = T2C(model, spec=spec)
    t2c.fuse()
    if spec.lint:
        t2c.lint(accum_bits=spec.accum_bits)
    qnn = t2c.nn2chip()
    manifest = t2c.last_manifest
    plan = None
    plan_report = None
    if spec.runtime != "none":
        from repro.runtime import Plan

        cspec = spec.compile
        if spec.runtime in ("channel", "batch"):
            warn_deprecated_kwarg("DeploySpec", "runtime", "compile.layout")
            if cspec.layout == "auto":
                cspec = cspec.evolve(layout=spec.runtime)
        plan = Plan.compile(qnn, spec=cspec)
        if spec.verify_plan:
            from repro.lint.plan import PlanVerificationError

            module_bits = (t2c.lint_report.min_accum_bits()
                           if t2c.lint_report is not None else None)
            plan_report = plan.verify(accum_bits=spec.accum_bits,
                                      module_bits=module_bits)
            if spec.accum_bits == 32:
                # seed the default-config cache so the registry/server
                # gates reuse this proof instead of re-deriving it
                plan._verification = plan_report
            if not plan_report.ok:
                raise PlanVerificationError(plan_report)
            if spec.export_dir is not None:
                from repro.export.writer import amend_manifest

                manifest = amend_manifest(
                    spec.export_dir,
                    {"plan_verification": plan_report.to_json()})
    golden = None
    if plan is not None and spec.golden_vectors > 0:
        from repro import telemetry
        from repro.integrity import GoldenSet

        shape = tuple(spec.golden_input_shape or (3, 32, 32))
        try:
            golden = GoldenSet.record(plan, shape, k=spec.golden_vectors)
        except Exception as exc:
            # a model with a different input contract simply ships without
            # golden vectors; the swap/fleet self-test gates then no-op
            telemetry.emit("golden_record_skipped", level="warning",
                           model=plan.model_name, error=str(exc))
        else:
            telemetry.emit("golden_recorded", model=plan.model_name,
                           k=golden.k, seed=golden.seed)
            if spec.export_dir is not None:
                from repro.export.writer import amend_manifest

                manifest = amend_manifest(spec.export_dir,
                                          {"golden": golden.to_json()})
    integrity = None
    if spec.export_dir is not None and spec.verify_artifacts:
        # read the published directory back end to end: the write-side
        # round-trip already ran, this proves what a *consumer* will see
        from repro.export.integrity import verify_artifacts

        integrity = verify_artifacts(spec.export_dir).raise_if_failed()
    return Deployed(qnn=qnn, fused=t2c.model, spec=spec, t2c=t2c, plan=plan,
                    lint_report=t2c.lint_report, manifest=manifest,
                    integrity=integrity, plan_verification=plan_report,
                    golden=golden)


def deploy_registry(models, spec: Optional[DeploySpec] = None,
                    version: str = "1", **overrides):
    """Deploy a ``{name: calibrated Q-model}`` mapping into a ModelRegistry.

    The construction path for the online gateway: every entry goes through
    the same :func:`deploy` pipeline (fuse → lint → re-pack → plan-compile)
    under one shared spec, and lands in a
    :class:`repro.server.ModelRegistry` as ``name@version``, activated.
    """
    from repro.server.registry import ModelRegistry

    registry = ModelRegistry()
    for name, model in models.items():
        registry.register(name, version, deploy(model, spec, **overrides))
    return registry
