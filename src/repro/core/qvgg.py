"""Dual-path VGG: the reference "extend the toolkit to a new architecture".

Follows the recipe in docs/customization.md §4: compose
:class:`~repro.core.qmodels.QConvBNReLU` units, keep the pooling modules
(integer max-pool is exact — the max of integer codes in a shared domain is
the code of the max), and write a chain fuser.
"""
from __future__ import annotations

from typing import List, Optional

from repro import nn
from repro.core.fusion import FuserBase, _scalar_scale
from repro.core.mulquant import MulQuant
from repro.core.qconfig import QConfig
from repro.core.qlayers import QConv2d, QLinear
from repro.core.qmodels import QConvBNReLU, QLinearUnit
from repro.models.vgg import VGG
from repro.tensor.tensor import Tensor


class QVGG(nn.Module):
    """Quantization-aware VGG: units and pools interleaved in one chain."""

    def __init__(self, model: VGG, qcfg: QConfig):
        super().__init__()
        self.qcfg = qcfg
        self.input_q = qcfg.make_input_q()
        steps = []
        mods = list(model.features)
        i = 0
        first = True
        while i < len(mods):
            m = mods[i]
            if isinstance(m, nn.MaxPool2d):
                steps.append(nn.MaxPool2d(m.kernel_size, m.stride))
                i += 1
                continue
            conv, bn = mods[i], mods[i + 1]  # conv-BN-ReLU triple
            aq = self.input_q if first else qcfg.make_aq()
            steps.append(QConvBNReLU(QConv2d.from_float(conv, qcfg.make_wq(), aq), bn, relu=True))
            first = False
            i += 3
        self.chain = nn.Sequential(*steps)
        self.pool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.fc = QLinearUnit(QLinear.from_float(model.fc, qcfg.make_wq(), qcfg.make_aq()))
        self.deploy = False
        self.mq_pool: Optional[MulQuant] = None

    def forward(self, x: Tensor) -> Tensor:
        if self.deploy:
            y = self.chain(self.input_q(x))
            y = self.mq_pool(self.flatten(self.pool(y)))
            return self.fc(y)
        y = self.chain(x)
        return self.fc(self.flatten(self.pool(y)))

    def set_deploy(self, flag: bool = True) -> None:
        self.deploy = flag
        self.input_q.deploy = flag
        for step in self.chain:
            if isinstance(step, QConvBNReLU):
                step.set_deploy(flag)
        self.fc.set_deploy(flag)

    def units(self) -> List[QConvBNReLU]:
        return [s for s in self.chain if isinstance(s, QConvBNReLU)]


class VGGFuser(FuserBase):
    """Chain fuser: max-pools pass integer domains through unchanged."""

    def fuse(self) -> QVGG:
        from repro.core.fusion import _zp_of

        m: QVGG = self.model
        units = m.units()
        for i, unit in enumerate(units):
            next_aq = units[i + 1].conv.aq if i + 1 < len(units) else m.fc.linear.aq
            self.fuse_unit(unit, _scalar_scale(next_aq), (0.0, float(next_aq.qub)),
                           zp_next=_zp_of(next_aq))
        fc_aq = m.fc.linear.aq
        m.mq_pool = MulQuant(1.0, fmt=self.fmt, out_lo=0.0, out_hi=float(fc_aq.qub),
                             channel_axis=-1, float_scale=self.float_scale)
        self.fuse_fc_logits(m.fc)
        return m
