"""QConfig: declarative description of a quantization scheme.

Bundles the weight/activation quantizer choices and bit-widths so model
converters can mint fresh quantizer instances per layer.  This is the
user-facing knob of the "hierarchical customized quantization build-up":
swap the quantizer names (or register your own in
:data:`repro.core.quantizers.QUANTIZERS`) and the rest of the pipeline —
fusion, integer conversion, extraction — is unchanged.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.core.qbase import _QBase
from repro.core.quantizers import build_quantizer


@dataclass
class QConfig:
    """Quantization scheme description.

    Attributes
    ----------
    wbit / abit:
        Weight / activation precisions.
    wq / aq:
        Registered quantizer names for weights and activations.
    input_bit:
        Precision of the model-input (image) quantizer; 8-bit signed by
        default (sensor/ADC width), independent of ``abit``.
    wq_kwargs / aq_kwargs:
        Extra constructor arguments for the quantizers.
    """

    wbit: int = 8
    abit: int = 8
    wq: str = "minmax_channel"
    aq: str = "minmax"
    input_bit: int = 8
    prob_bits: int = 8  # attention-probability grid of the integer ViT
    wq_kwargs: Dict[str, Any] = field(default_factory=dict)
    aq_kwargs: Dict[str, Any] = field(default_factory=dict)

    def make_wq(self) -> _QBase:
        """Fresh weight quantizer instance."""
        return build_quantizer(self.wq, nbit=self.wbit, **self.wq_kwargs)

    def make_aq(self, signed: bool = False) -> _QBase:
        """Fresh activation quantizer instance.

        CNN activations sit after ReLU (unsigned grid); transformer token
        streams are zero-centered, so ViT call sites pass ``signed=True``.
        Quantizers with an inherently unsigned design (PACT, RCF-act) ignore
        the flag.
        """
        kwargs = dict(self.aq_kwargs)
        kwargs.setdefault("unsigned", not signed)
        return build_quantizer(self.aq, nbit=self.abit, **kwargs)

    def make_input_q(self) -> _QBase:
        """Signed quantizer for the model input (images are zero-centered)."""
        return build_quantizer("minmax", nbit=self.input_bit, unsigned=False)
