"""T2C: the top-level Torch2Chip converter (paper §3.4).

The five-line workflow::

    model   = ...                                  # vanilla float model
    trainer = TRAINER[user_select](args)           # QAT / PTQ / SSL / sparse
    trainer.fit()
    nn2c = T2C(qmodel, fuser=build_fuser)          # fuse + integer conversion
    qnn  = nn2c.nn2chip(save_model=True)           # vanilla re-pack + export

``T2C.fuse()`` wires MulQuant modules behind every unit (architecture-aware
fuser) and flips the whole model into the integer-only deploy path;
``T2C.nn2chip()`` re-packs into vanilla integer layers and optionally exports
every tensor in the requested data formats (dec/hex/bin/qint).
"""
from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.deploy import _UNSET, Deployed, DeploySpec, deploy, \
    warn_deprecated_kwarg
from repro.core.fixed_point import FixedPointFormat
from repro.core.fusion import FuserBase, build_fuser
from repro.core.qbase import _QBase
from repro.core.vanilla import repack
from repro.nn.module import Module
from repro.telemetry import emit as _emit
from repro.telemetry import trace as _trace
from repro.telemetry.hooks import attach_names
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor


def calibrate_model(qmodel: Module, batches: Iterable[np.ndarray]) -> Module:
    """PTQ range calibration: observe activation statistics, then fix scales.

    Runs the *training path* (fake quantization) so downstream observers see
    the distributions they will face at inference.
    """
    qmodel.eval()
    quantizers = [m for m in qmodel.modules() if isinstance(m, _QBase)]
    with _trace("calibrate_model", quantizers=len(quantizers)) as span:
        for q in quantizers:
            q.observe = True
        n_batches = 0
        with no_grad():
            for x in batches:
                with _trace("calibration_batch", index=n_batches):
                    qmodel(Tensor(np.asarray(x, dtype=np.float32)))
                n_batches += 1
        names = {id(m): n for n, m in qmodel.named_modules()}
        stale = []
        for q in quantizers:
            q.observe = False
            if hasattr(q, "finalize_calibration") and getattr(q, "observer", None) is not None:
                if q.observer.initialized:
                    q.finalize_calibration()
                else:
                    # the observer never saw a batch: the scale silently stays
                    # at its initialization value, which poisons every
                    # consumer downstream — surface it loudly
                    stale.append(names.get(id(q), type(q).__name__))
        if stale:
            _emit("calibration_stale", severity="WARNING",
                  quantizers=stale, count=len(stale))
            span.annotate(stale=len(stale))
        qmodel._stale_calibration = stale
        span.annotate(batches=n_batches)
        _emit("calibrate", quantizers=len(quantizers), batches=n_batches)
    return qmodel


class T2C:
    """Fuse a trained/calibrated Q-model and extract the integer-only model.

    Parameters
    ----------
    model:
        A dual-path Q-model (from :func:`repro.core.qmodels.quantize_model`)
        with trained weights and calibrated activation scales.
    fuser:
        Fuser class/factory; defaults to the architecture-matched one.
    spec:
        A :class:`~repro.core.deploy.DeploySpec` carrying the full deploy
        configuration (fusion mode, fixed-point grid, export targets, ...).

    The historical per-stage kwargs (``fmt``, ``mode``, ``float_scale``,
    ``lint_after_fuse`` here; ``save_model``/``export_dir``/``formats`` on
    :meth:`nn2chip`) still work but emit a :class:`DeprecationWarning`
    naming the :class:`DeploySpec` field that replaces them.
    """

    def __init__(
        self,
        model: Module,
        fuser=None,
        fmt: FixedPointFormat = _UNSET,
        mode: str = _UNSET,
        float_scale: bool = _UNSET,
        lint_after_fuse: bool = _UNSET,
        spec: Optional[DeploySpec] = None,
    ):
        spec = spec or DeploySpec()
        for old, new, val in (("fmt", "fixed_point", fmt),
                              ("mode", "fusion", mode),
                              ("float_scale", "float_scale", float_scale),
                              ("lint_after_fuse", "lint", lint_after_fuse)):
            if val is not _UNSET:
                warn_deprecated_kwarg("T2C", old, new)
                spec = spec.evolve(**{new: val})
        self.model = model
        self.spec = spec
        self.fmt = spec.fixed_point
        self.mode = spec.fusion
        self.float_scale = spec.float_scale
        self.lint_after_fuse = spec.lint
        self.lint_report = None
        self.last_manifest = None
        if fuser is None:
            self._fuser: FuserBase = build_fuser(
                model, fmt=self.fmt, mode=self.mode, float_scale=self.float_scale)
        elif isinstance(fuser, FuserBase):
            self._fuser = fuser
        else:
            self._fuser = fuser(model, fmt=self.fmt, mode=self.mode,
                                float_scale=self.float_scale)
        self._fused = False

    def fuse(self) -> Module:
        """Wire MulQuants and switch the model to integer-only inference."""
        with _trace("T2C.fuse", fuser=type(self._fuser).__name__, mode=self.mode):
            self._fuser.fuse()
            self.model.set_deploy(True)
            self.model.eval()
            self._fused = True
            # stamp dotted paths so the fused MulQuants report saturation
            # under readable layer names
            attach_names(self.model)
            _emit("fuse", mode=self.mode, float_scale=self.float_scale)
        if self.lint_after_fuse:
            self.lint()
        return self.model

    def lint(self, accum_bits: int = 32):
        """Statically verify the fused model (interval engine + contracts).

        Returns the :class:`repro.lint.LintReport`; it is also kept on
        ``self.lint_report`` so callers of the post-fuse hook can inspect it.
        An ERROR-level finding means the integer model is not safe to hand
        to hardware (e.g. a proven accumulator overflow).
        """
        from repro.lint import lint_model  # lazy: lint imports core

        if not self._fused:
            self.fuse()
        self.lint_report = lint_model(self.model, accum_bits=accum_bits)
        s = self.lint_report.to_json()["summary"]
        _emit("lint", errors=s["errors"], warnings=s["warnings"])
        return self.lint_report

    def nn2chip(
        self,
        save_model: bool = _UNSET,
        export_dir: Optional[str] = _UNSET,
        formats: Sequence[str] = _UNSET,
    ) -> Module:
        """Re-pack into vanilla integer layers; optionally export tensors.

        Export destination and formats come from ``self.spec``
        (``export_dir`` / ``formats``); the legacy kwargs still override
        them under a :class:`DeprecationWarning`.  Returns the deploy-ready
        model whose state dict holds integer-valued tensors only; the export
        manifest (when written) lands on ``self.last_manifest``.
        """
        spec = self.spec
        if save_model is not _UNSET:
            warn_deprecated_kwarg("T2C.nn2chip", "save_model", "export_dir")
            if save_model and spec.export_dir is None:
                spec = spec.evolve(export_dir="t2c_out")
        if export_dir is not _UNSET:
            warn_deprecated_kwarg("T2C.nn2chip", "export_dir", "export_dir")
            if export_dir is not None:
                spec = spec.evolve(export_dir=export_dir)
        if formats is not _UNSET:
            warn_deprecated_kwarg("T2C.nn2chip", "formats", "formats")
            spec = spec.evolve(formats=tuple(formats))
        if not self._fused:
            self.fuse()
        qnn = repack(self.model)
        if spec.export_dir is not None:
            from repro.export.writer import export_model

            self.last_manifest = export_model(qnn, spec=spec)
        return qnn
