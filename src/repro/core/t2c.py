"""T2C: the top-level Torch2Chip converter (paper §3.4).

The five-line workflow::

    model   = ...                                  # vanilla float model
    trainer = TRAINER[user_select](args)           # QAT / PTQ / SSL / sparse
    trainer.fit()
    nn2c = T2C(qmodel, fuser=build_fuser)          # fuse + integer conversion
    qnn  = nn2c.nn2chip(save_model=True)           # vanilla re-pack + export

``T2C.fuse()`` wires MulQuant modules behind every unit (architecture-aware
fuser) and flips the whole model into the integer-only deploy path;
``T2C.nn2chip()`` re-packs into vanilla integer layers and optionally exports
every tensor in the requested data formats (dec/hex/bin/qint).
"""
from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.fixed_point import FixedPointFormat
from repro.core.fusion import FuserBase, build_fuser
from repro.core.qbase import _QBase
from repro.core.vanilla import repack
from repro.nn.module import Module
from repro.telemetry import emit as _emit
from repro.telemetry import trace as _trace
from repro.telemetry.hooks import attach_names
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor


def calibrate_model(qmodel: Module, batches: Iterable[np.ndarray]) -> Module:
    """PTQ range calibration: observe activation statistics, then fix scales.

    Runs the *training path* (fake quantization) so downstream observers see
    the distributions they will face at inference.
    """
    qmodel.eval()
    quantizers = [m for m in qmodel.modules() if isinstance(m, _QBase)]
    with _trace("calibrate_model", quantizers=len(quantizers)) as span:
        for q in quantizers:
            q.observe = True
        n_batches = 0
        with no_grad():
            for x in batches:
                with _trace("calibration_batch", index=n_batches):
                    qmodel(Tensor(np.asarray(x, dtype=np.float32)))
                n_batches += 1
        for q in quantizers:
            q.observe = False
            if hasattr(q, "finalize_calibration") and getattr(q, "observer", None) is not None:
                if q.observer.initialized:
                    q.finalize_calibration()
        span.annotate(batches=n_batches)
        _emit("calibrate", quantizers=len(quantizers), batches=n_batches)
    return qmodel


class T2C:
    """Fuse a trained/calibrated Q-model and extract the integer-only model.

    Parameters
    ----------
    model:
        A dual-path Q-model (from :func:`repro.core.qmodels.quantize_model`)
        with trained weights and calibrated activation scales.
    fuser:
        Fuser class/factory; defaults to the architecture-matched one.
    fmt:
        Fixed-point format for the fused scales (paper's ``INT(i, f)``).
    mode:
        ``"channel"`` (sub-8-bit channel-wise scaling) or ``"prefuse"``
        (8-bit BN folding into weights).
    float_scale:
        Keep fused scales in float32 (industry-toolkit baseline).
    """

    def __init__(
        self,
        model: Module,
        fuser=None,
        fmt: FixedPointFormat = FixedPointFormat(4, 12),
        mode: str = "channel",
        float_scale: bool = False,
        lint_after_fuse: bool = False,
    ):
        self.model = model
        self.fmt = fmt
        self.mode = mode
        self.float_scale = float_scale
        self.lint_after_fuse = lint_after_fuse
        self.lint_report = None
        if fuser is None:
            self._fuser: FuserBase = build_fuser(model, fmt=fmt, mode=mode, float_scale=float_scale)
        elif isinstance(fuser, FuserBase):
            self._fuser = fuser
        else:
            self._fuser = fuser(model, fmt=fmt, mode=mode, float_scale=float_scale)
        self._fused = False

    def fuse(self) -> Module:
        """Wire MulQuants and switch the model to integer-only inference."""
        with _trace("T2C.fuse", fuser=type(self._fuser).__name__, mode=self.mode):
            self._fuser.fuse()
            self.model.set_deploy(True)
            self.model.eval()
            self._fused = True
            # stamp dotted paths so the fused MulQuants report saturation
            # under readable layer names
            attach_names(self.model)
            _emit("fuse", mode=self.mode, float_scale=self.float_scale)
        if self.lint_after_fuse:
            self.lint()
        return self.model

    def lint(self, accum_bits: int = 32):
        """Statically verify the fused model (interval engine + contracts).

        Returns the :class:`repro.lint.LintReport`; it is also kept on
        ``self.lint_report`` so callers of the post-fuse hook can inspect it.
        An ERROR-level finding means the integer model is not safe to hand
        to hardware (e.g. a proven accumulator overflow).
        """
        from repro.lint import lint_model  # lazy: lint imports core

        if not self._fused:
            self.fuse()
        self.lint_report = lint_model(self.model, accum_bits=accum_bits)
        s = self.lint_report.to_json()["summary"]
        _emit("lint", errors=s["errors"], warnings=s["warnings"])
        return self.lint_report

    def nn2chip(
        self,
        save_model: bool = False,
        export_dir: Optional[str] = None,
        formats: Sequence[str] = ("dec",),
    ) -> Module:
        """Re-pack into vanilla integer layers; optionally export tensors.

        Returns the deploy-ready model whose state dict holds integer-valued
        tensors only.
        """
        if not self._fused:
            self.fuse()
        qnn = repack(self.model)
        if save_model or export_dir is not None:
            from repro.export.writer import export_model

            export_model(qnn, export_dir or "t2c_out", formats=formats)
        return qnn
