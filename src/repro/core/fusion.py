"""Automatic post-training fusion (paper §3.2).

Turns a calibrated/trained dual-path Q-model into an integer-only inference
graph by wiring a :class:`~repro.core.mulquant.MulQuant` behind every unit.

Two fusion modes:

* ``mode="channel"`` (sub-8-bit, paper Eq. 15): BN stays out of the weights;
  its ``gamma* = gamma / sigma-hat`` factor rides in the per-channel MulQuant
  scale.  Works at any precision.
* ``mode="prefuse"`` (8-bit, paper Eq. 14): BN is folded into the float
  weights *before* weight quantization (``W_fuse = gamma W / sigma-hat``);
  the MulQuant scale collapses to a unified scalar.  Mirrors the classic
  Jacob et al. (2018) scheme, which degrades below 8 bits (Park & Yoo, 2020)
  — the Fig. 3 ablation bench measures exactly that.

Fusers are architecture-aware (the ``fuser=NetFuser`` argument of the paper's
five-line flow): they know which unit feeds which, where residual branches
merge, and which quantizer defines each integer domain.
"""
from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.fixed_point import FixedPointFormat
from repro.core.mulquant import MulQuant
from repro.core.qbase import _QBase
from repro.core.qlayers import QConv2d, QLinear
from repro.core.qmodels import (
    QBasicBlock,
    QBottleneck,
    QConvBNReLU,
    QLinearUnit,
    QMobileNetV1,
    QResNet,
)


def _scalar_scale(q: _QBase) -> float:
    s = np.asarray(q.scale.data).reshape(-1)
    if s.size != 1:
        raise ValueError("expected a per-tensor activation scale")
    return float(s[0])


def _weight_scale_vector(layer, out_ch: int) -> np.ndarray:
    s = np.asarray(layer.wq.scale.data, dtype=np.float64).reshape(-1)
    if s.size == 1:
        return np.full(out_ch, s[0])
    if s.size != out_ch:
        raise ValueError(f"weight scale size {s.size} != out channels {out_ch}")
    return s


def _bn_params(bn) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    gamma = bn.weight.data.astype(np.float64) if bn.affine else np.ones(bn.num_features)
    beta = bn.bias.data.astype(np.float64) if bn.affine else np.zeros(bn.num_features)
    mu = bn.running_mean.data.astype(np.float64)
    sigma = np.sqrt(bn.running_var.data.astype(np.float64) + bn.eps)
    return gamma, beta, mu, sigma


class FuserBase:
    """Shared unit-level fusion math."""

    def __init__(
        self,
        model,
        fmt: FixedPointFormat = FixedPointFormat(4, 12),
        mode: str = "channel",
        float_scale: bool = False,
        headroom: int = 4,
        res_shift: int = 4,
    ):
        if mode not in ("channel", "prefuse"):
            raise ValueError(f"unknown fusion mode {mode!r}")
        self.model = model
        self.fmt = fmt
        self.mode = mode
        self.float_scale = float_scale
        self.headroom = headroom
        # Residual branches are requantized into a domain 2**res_shift finer
        # than the consumer grid, added, then shifted back down — keeping the
        # two branch roundings sub-LSB (one extra barrel shift on hardware).
        self.res_scale = float(1 << res_shift)

    # ------------------------------------------------------------ helpers
    def _signed_range(self, qub: int) -> Tuple[float, float]:
        h = self.headroom * (qub + 1)
        return (-float(h), float(h) - 1)

    def fuse_unit(self, unit: QConvBNReLU, s_next: float, out_range: Tuple[float, float],
                  zp_next: float = 0.0) -> None:
        """Wire ``unit.mq`` so the deploy path lands in the consumer domain.

        Zero points (paper Eq. 2's optional ``Z``): the input offset is
        removed by the layer itself (integer subtract before the MACs, which
        keeps zero-padding exact); an asymmetric *consumer* grid adds
        ``+zp_next`` output codes through the MulQuant bias.
        """
        conv: QConv2d = unit.conv
        out_ch = conv.out_channels
        s_x = _scalar_scale(conv.aq)
        bias_f = conv.bias.data.astype(np.float64) if conv.bias is not None else np.zeros(out_ch)

        if unit.has_bn:
            gamma, beta, mu, sigma = _bn_params(unit.bn)
            mu_eff = mu - bias_f  # conv bias folds into the BN mean
            if self.mode == "prefuse":
                # Fold BN into the float weights, then (re)quantize per-tensor.
                w_fused = conv.weight.data.astype(np.float64) * (gamma / sigma).reshape(-1, 1, 1, 1)
                s_w = max(np.abs(w_fused).max() / conv.wq.qub, 1e-12)
                wint = np.clip(np.round(w_fused / s_w), conv.wq.qlb, conv.wq.qub)
                conv.wint.data = wint.astype(np.float32)
                scale = np.full(out_ch, s_w * s_x / s_next)
                bias_units = (beta - gamma * mu_eff / sigma) / s_next
            else:
                conv.freeze_int_weight()
                s_w = _weight_scale_vector(conv, out_ch)
                scale = gamma * s_w * s_x / (sigma * s_next)
                bias_units = (beta - gamma * mu_eff / sigma) / s_next
        else:
            conv.freeze_int_weight()
            s_w = _weight_scale_vector(conv, out_ch)
            scale = s_w * s_x / s_next
            bias_units = bias_f / s_next

        bias_units = bias_units + zp_next  # asymmetric consumer grid offset

        if self.mode == "prefuse":
            scale = np.float64(np.asarray(scale).reshape(-1)[0])  # unified scalar (paper Eq. 14)
        unit.mq = MulQuant(scale, bias_units, fmt=self.fmt,
                           out_lo=out_range[0], out_hi=out_range[1],
                           channel_axis=1, float_scale=self.float_scale)

    def fuse_fc_logits(self, fc_unit: QLinearUnit) -> float:
        """Fuse the classifier head.

        Per-class scales are normalized by their maximum so they fit the
        fixed-point grid; argmax (and therefore accuracy) is invariant to the
        common factor, which is returned for logit reconstruction.
        """
        lin: QLinear = fc_unit.linear
        lin.freeze_int_weight()
        s_x = _scalar_scale(lin.aq)
        s_w = _weight_scale_vector(lin, lin.out_features)
        per_class = s_w * s_x
        s_max = float(per_class.max())
        scale = per_class / s_max
        bias_f = lin.bias.data.astype(np.float64) if lin.bias is not None else np.zeros(lin.out_features)
        bias_units = bias_f / s_max
        fc_unit.mq = MulQuant(scale, bias_units, fmt=self.fmt,
                              channel_axis=-1, float_scale=self.float_scale)
        return s_max

    def fuse(self):
        raise NotImplementedError


class ResNetFuser(FuserBase):
    """Fuser for :class:`QResNet` (handles residual branch requantization)."""

    def fuse(self) -> QResNet:
        m: QResNet = self.model
        blocks = list(m.blocks)

        # Stem feeds the first block's shared input quantizer.
        first_aq = blocks[0].aq_in
        self.fuse_unit(m.stem, _scalar_scale(first_aq), (0.0, float(first_aq.qub)))

        for i, blk in enumerate(blocks):
            next_aq = blocks[i + 1].aq_in if i + 1 < len(blocks) else m.fc.linear.aq
            s_out = _scalar_scale(next_aq)
            qub_out = next_aq.qub
            # Pre-residual branches land in a shared signed domain res_scale
            # times finer than the consumer grid.
            s_add = s_out / self.res_scale
            lo, hi = self._signed_range(qub_out)
            signed = (lo * self.res_scale, hi * self.res_scale)

            if isinstance(blk, QBasicBlock):
                inner_last = blk.unit2
                self.fuse_unit(blk.unit1, _scalar_scale(blk.unit2.conv.aq),
                               (0.0, float(blk.unit2.conv.aq.qub)))
            elif isinstance(blk, QBottleneck):
                inner_last = blk.unit3
                self.fuse_unit(blk.unit1, _scalar_scale(blk.unit2.conv.aq),
                               (0.0, float(blk.unit2.conv.aq.qub)))
                self.fuse_unit(blk.unit2, _scalar_scale(blk.unit3.conv.aq),
                               (0.0, float(blk.unit3.conv.aq.qub)))
            else:
                raise TypeError(type(blk))

            self.fuse_unit(inner_last, s_add, signed)
            if blk.down is not None:
                self.fuse_unit(blk.down, s_add, signed)
            else:
                s_in = _scalar_scale(blk.aq_in)
                blk.mq_id = MulQuant(s_in / s_add, fmt=self.fmt,
                                     out_lo=signed[0], out_hi=signed[1],
                                     float_scale=self.float_scale)
            blk.out_clamp = (0.0, float(qub_out))
            blk.res_scale = self.res_scale

        # Pooled features are already in the fc input domain; round + clamp.
        fc_aq = m.fc.linear.aq
        m.mq_pool = MulQuant(1.0, fmt=self.fmt, out_lo=0.0, out_hi=float(fc_aq.qub),
                             channel_axis=-1, float_scale=self.float_scale)
        self.fuse_fc_logits(m.fc)
        return m


def _zp_of(q: _QBase) -> float:
    return float(np.asarray(q.zero_point.data).reshape(-1)[0])


class MobileNetFuser(FuserBase):
    """Fuser for :class:`QMobileNetV1` (a straight unit chain)."""

    def fuse(self) -> QMobileNetV1:
        m: QMobileNetV1 = self.model
        units = list(m.units)
        for i, unit in enumerate(units):
            next_aq = units[i + 1].conv.aq if i + 1 < len(units) else m.fc.linear.aq
            self.fuse_unit(unit, _scalar_scale(next_aq), (0.0, float(next_aq.qub)),
                           zp_next=_zp_of(next_aq))
        fc_aq = m.fc.linear.aq
        m.mq_pool = MulQuant(1.0, fmt=self.fmt, out_lo=0.0, out_hi=float(fc_aq.qub),
                             channel_axis=-1, float_scale=self.float_scale)
        self.fuse_fc_logits(m.fc)
        return m


def build_fuser(model, **kwargs) -> FuserBase:
    """Pick the architecture-matched fuser for a Q-model."""
    if isinstance(model, QResNet):
        return ResNetFuser(model, **kwargs)
    if isinstance(model, QMobileNetV1):
        return MobileNetFuser(model, **kwargs)
    from repro.core.qvit import QVisionTransformer, ViTFuser

    if isinstance(model, QVisionTransformer):
        return ViTFuser(model, **kwargs)
    from repro.core.qvgg import QVGG, VGGFuser

    if isinstance(model, QVGG):
        return VGGFuser(model, **kwargs)
    raise TypeError(f"no fuser registered for {type(model).__name__}")
