"""Quantizer zoo built on the ``_QBase`` dual-path template.

Every quantizer customizes only the *training path* (``trainFunc``) and keeps
``scale``/``zero_point`` registered, so T2C converts it to integer-only
inference automatically — the paper's central workflow claim.
"""
from repro.core.qbase import _QBase, IdentityQuantizer
from repro.core.quantizers.asymmetric import AsymMinMaxQuantizer
from repro.core.quantizers.dorefa import DoReFaWeightQuantizer, DoReFaActQuantizer
from repro.core.quantizers.minmax import MinMaxQuantizer, MinMaxChannelQuantizer, MinMaxWeightQuantizer
from repro.core.quantizers.sawb import SAWBQuantizer
from repro.core.quantizers.pact import PACTQuantizer
from repro.core.quantizers.rcf import RCFWeightQuantizer, RCFActQuantizer
from repro.core.quantizers.lsq import LSQQuantizer
from repro.core.quantizers.adaround import AdaRoundQuantizer
from repro.core.quantizers.qdrop import QDropQuantizer

#: name -> class registry for config-driven construction
QUANTIZERS = {
    "identity": IdentityQuantizer,
    "minmax": MinMaxQuantizer,
    "asym_minmax": AsymMinMaxQuantizer,
    "minmax_channel": MinMaxChannelQuantizer,
    "minmax_weight": MinMaxWeightQuantizer,
    "sawb": SAWBQuantizer,
    "pact": PACTQuantizer,
    "rcf_weight": RCFWeightQuantizer,
    "rcf_act": RCFActQuantizer,
    "lsq": LSQQuantizer,
    "adaround": AdaRoundQuantizer,
    "qdrop": QDropQuantizer,
    "dorefa_weight": DoReFaWeightQuantizer,
    "dorefa_act": DoReFaActQuantizer,
}


def build_quantizer(name: str, **kwargs) -> _QBase:
    """Instantiate a registered quantizer by name."""
    if name not in QUANTIZERS:
        raise KeyError(f"unknown quantizer {name!r}; known: {sorted(QUANTIZERS)}")
    return QUANTIZERS[name](**kwargs)


__all__ = [
    "QUANTIZERS", "build_quantizer",
    "MinMaxQuantizer", "AsymMinMaxQuantizer", "MinMaxChannelQuantizer", "MinMaxWeightQuantizer",
    "SAWBQuantizer", "PACTQuantizer", "RCFWeightQuantizer", "RCFActQuantizer",
    "LSQQuantizer", "AdaRoundQuantizer", "QDropQuantizer", "IdentityQuantizer",
    "DoReFaWeightQuantizer", "DoReFaActQuantizer",
]
