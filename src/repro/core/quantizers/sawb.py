"""SAWB: Statistics-Aware Weight Binning (Choi et al., 2019).

The optimal symmetric clipping threshold is estimated from the first and
second moments of the weight distribution::

    alpha* = c1 * sqrt(E[w^2]) - c2 * E[|w|]

with bit-width-specific coefficients fitted by the original authors.  Paired
with PACT activations this is the paper's 2/2 and 4/4 QAT recipe for
ResNet-20 (Table 2).
"""
from __future__ import annotations

import numpy as np

from repro.core.qbase import _QBase
from repro.tensor.tensor import Tensor

#: (c1, c2) per bit-width, from the SAWB paper's regression.
SAWB_COEFFS = {
    2: (3.12, 2.064),
    3: (7.509, 6.892),
    4: (12.68, 12.80),
    8: (31.76, 35.04),
}


class SAWBQuantizer(_QBase):
    """Symmetric statistics-aware weight quantizer (QAT)."""

    def __init__(self, nbit: int = 4, **_):
        super().__init__(nbit=nbit, unsigned=False)
        if nbit not in SAWB_COEFFS:
            raise ValueError(f"SAWB coefficients undefined for {nbit}-bit; known: {sorted(SAWB_COEFFS)}")
        self.c1, self.c2 = SAWB_COEFFS[nbit]

    def compute_alpha(self, w: np.ndarray) -> float:
        e2 = float(np.sqrt((w.astype(np.float64) ** 2).mean()))
        e1 = float(np.abs(w).mean())
        alpha = self.c1 * e2 - self.c2 * e1
        if alpha <= 0:  # degenerate distribution: fall back to max-abs
            alpha = float(np.abs(w).max())
        return max(alpha, 1e-8)

    def trainFunc(self, x: Tensor) -> Tensor:
        alpha = self.compute_alpha(x.data)
        self.set_scale(alpha / self.qub)
        return super().trainFunc(x)
