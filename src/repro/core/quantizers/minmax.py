"""MinMax quantizers: the OpenVINO-style PTQ baseline (paper Table 1).

``MinMaxQuantizer`` calibrates a per-tensor scale from observed ranges (any
observer from :mod:`repro.core.observer`); ``MinMaxChannelQuantizer`` is the
per-output-channel variant for weights; ``MinMaxWeightQuantizer`` computes the
scale directly from the current weight tensor every call (no calibration
passes needed).
"""
from __future__ import annotations

import numpy as np

from repro.core.observer import build_observer
from repro.core.qbase import _QBase
from repro.tensor.tensor import Tensor


class MinMaxQuantizer(_QBase):
    """Observer-calibrated per-tensor quantizer (PTQ).

    Calibration protocol: set ``observe=True``, run forward passes over the
    calibration set, call :meth:`finalize_calibration`.
    """

    def __init__(self, nbit: int = 8, unsigned: bool = False, observer: str = "minmax", **obs_kwargs):
        super().__init__(nbit=nbit, unsigned=unsigned)
        self.observer = build_observer(observer, **obs_kwargs)
        self.calibrated = False

    def observeFunc(self, x: Tensor) -> None:
        self.observer.update(x.data)

    def finalize_calibration(self) -> None:
        """Fix the scale from the accumulated range statistics."""
        if not self.observer.initialized:
            raise RuntimeError("finalize_calibration before any observation")
        self.set_scale(self.observer.compute_scale(self.qlb, self.qub))
        self.calibrated = True
        self.observe = False

    def trainFunc(self, x: Tensor) -> Tensor:
        if not self.calibrated:
            if self.training and not self.observe:
                # QAT mode: self-calibrate online (EMA over training batches,
                # analogous to BatchNorm running statistics).
                self.observer.update(x.data)
            if self.observer.initialized:
                self.set_scale(self.observer.compute_scale(self.qlb, self.qub))
        return super().trainFunc(x)


class MinMaxWeightQuantizer(_QBase):
    """Per-tensor symmetric weight quantizer; scale from the weight itself."""

    def __init__(self, nbit: int = 8, **_):
        super().__init__(nbit=nbit, unsigned=False)

    def trainFunc(self, x: Tensor) -> Tensor:
        self.set_scale(np.abs(x.data).max() / self.qub)
        return super().trainFunc(x)


class MinMaxChannelQuantizer(_QBase):
    """Per-output-channel symmetric weight quantizer.

    Scale shape follows the weight: ``(O, 1, 1, 1)`` for conv weights,
    ``(O, 1)`` for linear weights.
    """

    def __init__(self, nbit: int = 8, **_):
        super().__init__(nbit=nbit, unsigned=False)

    def _channel_scale(self, w: np.ndarray) -> np.ndarray:
        flat = np.abs(w.reshape(w.shape[0], -1)).max(axis=1)
        scale = np.maximum(flat / self.qub, 1e-12).astype(np.float32)
        return scale.reshape((w.shape[0],) + (1,) * (w.ndim - 1))

    def trainFunc(self, x: Tensor) -> Tensor:
        self.set_scale(self._channel_scale(x.data))
        return super().trainFunc(x)
