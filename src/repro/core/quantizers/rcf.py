"""RCF: learnable clipping function from APoT (Li et al., 2020).

APoT's "Reinforced Clipping Function" learns the clipping threshold jointly
with the weights, for both the (signed, symmetric) weight quantizer and the
(unsigned) activation quantizer.  We implement the uniform-grid variant the
paper's Table 2 uses for ResNet-18 and ViT-7 at 4/4 and 8/8.

The clipping threshold receives an LSQ-style ``1/sqrt(N * qub)`` gradient
rescaling: its raw gradient sums over every tensor element, which is orders
of magnitude larger than weight gradients and destabilizes joint SGD
otherwise.
"""
from __future__ import annotations

import math

import numpy as np

from repro.core.qbase import _QBase
from repro.nn.module import Parameter
from repro.tensor import minimum
from repro.tensor.tensor import Tensor


def _grad_scaled(alpha: Tensor, n_elements: int, qub: int) -> Tensor:
    """Identity in the forward pass; scales alpha's gradient by 1/sqrt(N*qub)."""
    g = 1.0 / math.sqrt(max(n_elements * qub, 1))
    frozen = Tensor(alpha.data.copy())
    return alpha * g + frozen * (1.0 - g)


class RCFWeightQuantizer(_QBase):
    """Signed symmetric weight quantizer with learnable clipping ``alpha``.

    The threshold is lazily initialized from the first weight tensor seen
    (max-abs) — a fixed constant mis-scales by orders of magnitude across
    layers with different fan-in and silently zeroes small-weight layers.
    """

    def __init__(self, nbit: int = 4, alpha_init: float = None, **_):
        super().__init__(nbit=nbit, unsigned=False)
        self.alpha = Parameter(np.array([alpha_init or 1.0], dtype=np.float32))
        # buffer so checkpoints remember that alpha is already data-scaled
        self.register_buffer("init_flag", np.float32(1.0 if alpha_init is not None else 0.0))

    def _maybe_init(self, x: Tensor) -> None:
        if float(self.init_flag.data) == 0.0:
            self.alpha.data = np.array([max(float(np.abs(x.data).max()), 1e-4)],
                                       dtype=np.float32)
            self.init_flag.data = np.float32(1.0)

    def trainFunc(self, x: Tensor) -> Tensor:
        self._maybe_init(x)
        alpha = _grad_scaled(self.alpha, x.size, self.qub).clamp(1e-4)
        xn = (x / alpha).clamp(-1.0, 1.0)
        yq = (xn * self.qub).round_ste()
        y = yq * (alpha * (1.0 / self.qub))
        self.set_scale(max(float(self.alpha.data[0]), 1e-4) / self.qub)
        return y


class RCFActQuantizer(_QBase):
    """Unsigned activation quantizer with learnable clipping ``alpha``.

    Lazily initialized from the 99.9th percentile of the first batch.
    """

    def __init__(self, nbit: int = 4, alpha_init: float = None, **_):
        super().__init__(nbit=nbit, unsigned=True)
        self.alpha = Parameter(np.array([alpha_init or 6.0], dtype=np.float32))
        self.register_buffer("init_flag", np.float32(1.0 if alpha_init is not None else 0.0))

    def _maybe_init(self, x: Tensor) -> None:
        if float(self.init_flag.data) == 0.0:
            hi = float(np.percentile(np.clip(x.data, 0, None), 99.9))
            self.alpha.data = np.array([max(hi, 1e-2)], dtype=np.float32)
            self.init_flag.data = np.float32(1.0)

    def trainFunc(self, x: Tensor) -> Tensor:
        self._maybe_init(x)
        alpha = _grad_scaled(self.alpha, x.size, self.qub).clamp(1e-4)
        clipped = minimum(x.relu(), alpha)
        scale = alpha * (1.0 / self.qub)
        y = (clipped / scale).round_ste() * scale
        self.set_scale(max(float(self.alpha.data[0]), 1e-4) / self.qub)
        return y
