"""DoReFa-Net quantizers (Zhou et al., 2016) — the classic low-bit baseline.

Weights are squashed with ``tanh`` and normalized to [-1, 1] before uniform
quantization; activations are clipped to [0, 1].  Both land on uniform grids,
so they deploy through the standard integer pipeline (the tanh squash is a
train-time transformation of the stored float weights; the deployed tensor is
the uniform integer grid).
"""
from __future__ import annotations

import numpy as np

from repro.core.qbase import _QBase
from repro.tensor.tensor import Tensor


class DoReFaWeightQuantizer(_QBase):
    """tanh-normalized symmetric weight quantizer."""

    def __init__(self, nbit: int = 4, **_):
        super().__init__(nbit=nbit, unsigned=False)

    def _normalize(self, x: Tensor) -> Tensor:
        t = x.tanh()
        return t / float(np.abs(t.data).max() + 1e-12)

    def trainFunc(self, x: Tensor) -> Tensor:
        w = self._normalize(x)  # in [-1, 1]
        self.set_scale(1.0 / self.qub)
        yq = (w * self.qub).round_ste().clamp(self.qlb, self.qub)
        return yq * (1.0 / self.qub)

    def q(self, x: Tensor) -> Tensor:
        from repro.tensor import no_grad

        with no_grad():
            w = self._normalize(x.detach())
            return (w * self.qub).round().clamp(self.qlb, self.qub)


class DoReFaActQuantizer(_QBase):
    """Activations clipped to [0, alpha] (fixed alpha, DoReFa uses 1)."""

    def __init__(self, nbit: int = 4, alpha: float = 1.0, **_):
        super().__init__(nbit=nbit, unsigned=True)
        self.alpha = alpha
        self.set_scale(alpha / self.qub)

    def trainFunc(self, x: Tensor) -> Tensor:
        clipped = x.clamp(0.0, self.alpha)
        s = self.alpha / self.qub
        return (clipped * (1.0 / s)).round_ste() * s
