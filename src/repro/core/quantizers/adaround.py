"""AdaRound: adaptive rounding for PTQ (Nagel et al., 2020).

Instead of rounding to nearest, each weight learns whether to round up or
down through a rectified-sigmoid gate ``h(alpha)`` optimized against a
layer-wise reconstruction loss (paper Eq. 5/6):

* training path:   ``Wq = floor(W / S) + h(alpha)``     (soft, differentiable)
* inference path:  ``Wq = floor(W / S) + (alpha >= 0)`` (hard, integer)

This quantizer demonstrates the paper's point that Torch2Chip accommodates
adaptive methods that PyTorch's fixed nearest-rounding API cannot express:
only the training path is custom, and the deploy conversion still works
because the integer path is derived from the same registered state.
"""
from __future__ import annotations

import numpy as np

from repro.core.qbase import _QBase
from repro.nn.module import Parameter
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor

ZETA, GAMMA = 1.1, -0.1


class AdaRoundQuantizer(_QBase):
    """Weight quantizer with learnable rounding offsets (PTQ)."""

    def __init__(self, nbit: int = 8, **_):
        super().__init__(nbit=nbit, unsigned=False)
        self.alpha: Parameter | None = None
        self.soft = True  # soft h(alpha) during reconstruction; hard after

    # -------------------------------------------------------------- init
    def init_from_weight(self, w: np.ndarray) -> None:
        """Set the scale (max-abs symmetric) and initialize ``alpha`` so that
        ``h(alpha)`` reproduces the float rounding residual.

        Exactly-zero weights (pruned connections) are pinned to integer code
        0 in both paths so reconstruction cannot regrow them — sparsity must
        survive into the deployed tensors (paper §4.3).
        """
        scale = max(np.abs(w).max() / self.qub, 1e-12)
        self.set_scale(scale)
        rest = w / scale - np.floor(w / scale)  # in [0, 1)
        rest = np.clip(rest, 1e-4, 1 - 1e-4)
        # invert the rectified sigmoid: rest = sigmoid(a)*(Z-G)+G
        p = np.clip((rest - GAMMA) / (ZETA - GAMMA), 1e-4, 1 - 1e-4)
        alpha = -np.log(1.0 / p - 1.0)
        self.alpha = Parameter(alpha.astype(np.float32))
        self._nonzero = (w != 0).astype(np.float32)

    def h(self) -> Tensor:
        """Rectified sigmoid gate in [0, 1]."""
        if self.alpha is None:
            raise RuntimeError("AdaRoundQuantizer.init_from_weight was never called")
        return (self.alpha.sigmoid() * (ZETA - GAMMA) + GAMMA).clamp(0.0, 1.0)

    def reg_loss(self, beta: float = 2.0) -> Tensor:
        """Rounding regularizer pushing h(alpha) to {0, 1} (paper's f_reg)."""
        h = self.h()
        return (1.0 - (2.0 * h - 1.0).abs() ** beta).sum()

    # -------------------------------------------------------------- paths
    def trainFunc(self, x: Tensor) -> Tensor:
        if self.alpha is None:
            self.init_from_weight(x.data)
        s = float(self.scale.data)
        floor_part = Tensor(np.floor(x.data / s))
        gate = self.h() if self.soft else Tensor((self.alpha.data >= 0).astype(np.float32))
        wq = (floor_part + gate).clamp(self.qlb, self.qub)
        return wq * Tensor(self._nonzero) * s

    def q(self, x: Tensor) -> Tensor:
        if self.alpha is None:
            self.init_from_weight(x.data)
        s = float(self.scale.data)
        hard = (np.floor(x.data / s) + (self.alpha.data >= 0)) * self._nonzero
        return Tensor(np.clip(hard, self.qlb, self.qub).astype(np.float32))

    def evalFunc(self, x: Tensor) -> Tensor:
        with no_grad():
            return self.q(x.detach())
