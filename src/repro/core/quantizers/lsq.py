"""LSQ: Learned Step Size Quantization (Esser et al., 2020).

The step size is a parameter; with a straight-through ``round`` the autograd
chain reproduces the LSQ step-size gradient ``round(x/s) - x/s`` in the
non-saturated region.  The per-element gradient is scaled by
``1/sqrt(N * qub)`` as in the paper for stable training.
"""
from __future__ import annotations

import math

import numpy as np

from repro.core.qbase import _QBase
from repro.nn.module import Parameter
from repro.tensor.tensor import Tensor


class LSQQuantizer(_QBase):
    """Learnable step-size quantizer (weights: signed; acts: unsigned)."""

    def __init__(self, nbit: int = 4, unsigned: bool = False, step_init: float = 0.1, **_):
        super().__init__(nbit=nbit, unsigned=unsigned)
        self.step = Parameter(np.array([step_init], dtype=np.float32))
        self._initialized = False

    def _maybe_init(self, x: Tensor) -> None:
        if self._initialized:
            return
        # LSQ init: 2 * E|x| / sqrt(qub)
        init = 2.0 * float(np.abs(x.data).mean()) / math.sqrt(self.qub)
        self.step.data = np.array([max(init, 1e-6)], dtype=np.float32)
        self._initialized = True

    def trainFunc(self, x: Tensor) -> Tensor:
        self._maybe_init(x)
        g = 1.0 / math.sqrt(x.size * self.qub)
        # Gradient scaling trick: s_scaled behaves like s in the forward pass
        # but its gradient is multiplied by g.
        step = self.step.clamp(1e-6)
        s_detached = Tensor(step.data.copy())
        s_scaled = step * g + s_detached * (1.0 - g)
        xq = (x / s_scaled).round_ste().clamp(self.qlb, self.qub)
        y = xq * s_scaled
        self.set_scale(max(float(self.step.data[0]), 1e-6))
        return y
