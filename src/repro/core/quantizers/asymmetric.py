"""Asymmetric (zero-point) activation quantizer.

The paper's Eq. (2) notes the optional integer zero point ``Z`` that shifts
the grid for signed/unsigned data.  This quantizer calibrates both scale and
zero point from the observed min/max range — useful for activations that are
neither ReLU-positive nor zero-centred (e.g. GELU outputs).
"""
from __future__ import annotations

import numpy as np

from repro.core.observer import MinMaxObserver
from repro.core.qbase import _QBase
from repro.tensor.tensor import Tensor


class AsymMinMaxQuantizer(_QBase):
    """Affine quantizer: ``xq = round(x / s) + z``, grid ``[0, 2^n - 1]``."""

    def __init__(self, nbit: int = 8, momentum: float = 0.9, **_):
        super().__init__(nbit=nbit, unsigned=True)
        self.observer = MinMaxObserver(momentum=momentum)
        self.calibrated = False

    def _refresh(self) -> None:
        lo = min(self.observer.min_val, 0.0)
        hi = max(self.observer.max_val, lo + 1e-8)
        scale = (hi - lo) / (self.qub - self.qlb)
        zp = np.round(-lo / scale)
        self.set_scale(scale)
        self.set_zero_point(np.clip(zp, self.qlb, self.qub))

    def observeFunc(self, x: Tensor) -> None:
        self.observer.update(x.data)

    def finalize_calibration(self) -> None:
        if not self.observer.initialized:
            raise RuntimeError("finalize_calibration before any observation")
        self._refresh()
        self.calibrated = True
        self.observe = False

    def trainFunc(self, x: Tensor) -> Tensor:
        if not self.calibrated:
            if self.training and not self.observe:
                self.observer.update(x.data)
            if self.observer.initialized:
                self._refresh()
        return super().trainFunc(x)
