"""PACT: Parameterized Clipping Activation (Choi et al., 2019).

Activations are clipped to a *learnable* threshold ``alpha`` before uniform
unsigned quantization.  The clipping threshold receives gradients through the
autograd graph (the straight-through estimator passes gradients to ``alpha``
exactly where the input saturates), so it co-trains with the weights.
"""
from __future__ import annotations

import numpy as np

from repro.core.qbase import _QBase
from repro.nn.module import Parameter
from repro.tensor import minimum
from repro.tensor.tensor import Tensor


class PACTQuantizer(_QBase):
    """Unsigned activation quantizer with learnable clipping level."""

    def __init__(self, nbit: int = 4, alpha_init: float = 6.0, **_):
        super().__init__(nbit=nbit, unsigned=True)
        self.alpha = Parameter(np.array([alpha_init], dtype=np.float32))

    def trainFunc(self, x: Tensor) -> Tensor:
        alpha = self.alpha.clamp(1e-4)  # keep the threshold positive
        clipped = minimum(x.relu(), alpha)
        scale = alpha * (1.0 / self.qub)
        yq = (clipped / scale).round_ste()
        y = yq * scale
        # Keep the registered scale in sync for the inference path.
        self.set_scale(max(float(self.alpha.data[0]), 1e-4) / self.qub)
        return y
