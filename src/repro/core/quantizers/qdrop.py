"""QDrop: randomly dropping activation quantization during PTQ (Wei et al., 2022).

During block-wise reconstruction, each activation element is passed through
*un*-quantized with probability ``p`` (default 0.5), which flattens the loss
landscape of the calibrated model and is the SoTA recipe for extremely low
bit PTQ.  At inference the quantizer behaves like a plain calibrated uniform
quantizer — so the deploy conversion is unchanged.  Paper Table 1 uses QDrop
for the 4/4 and 8/8 ResNet-50 PTQ rows.
"""
from __future__ import annotations

import numpy as np

from repro.core.observer import build_observer
from repro.core.qbase import _QBase
from repro.tensor import where
from repro.tensor.tensor import Tensor


class QDropQuantizer(_QBase):
    """Unsigned activation quantizer with stochastic quantization dropping."""

    def __init__(self, nbit: int = 8, p: float = 0.5, observer: str = "mse", seed: int = 0,
                 unsigned: bool = True, **obs_kwargs):
        super().__init__(nbit=nbit, unsigned=unsigned)
        self.p = p
        self.observer = build_observer(observer, **obs_kwargs)
        self.calibrated = False
        self.drop_enabled = True  # reconstruction phase only
        self._rng = np.random.default_rng(seed)

    def observeFunc(self, x: Tensor) -> None:
        self.observer.update(x.data)

    def finalize_calibration(self) -> None:
        if not self.observer.initialized:
            raise RuntimeError("finalize_calibration before any observation")
        self.set_scale(self.observer.compute_scale(self.qlb, self.qub))
        self.calibrated = True
        self.observe = False

    def trainFunc(self, x: Tensor) -> Tensor:
        fq = super().trainFunc(x)
        if self.drop_enabled and self.p > 0:
            keep_fp = Tensor((self._rng.random(x.shape) < self.p).astype(np.float32))
            return where(keep_fp.data.astype(bool), x, fq)
        return fq
