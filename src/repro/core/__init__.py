"""Torch2Chip core: the paper's contribution.

* :mod:`repro.core.qbase` — ``_QBase``: the Dual-Path quantizer bottom-level
  logic (training path = differentiable fake-quant, inference path =
  integer-only).
* :mod:`repro.core.quantizers` — the customizable quantizer zoo (MinMax, SAWB,
  PACT, RCF, LSQ, AdaRound, QDrop).
* :mod:`repro.core.qlayers` / :mod:`repro.core.qmodels` — dual-path layers and
  quantization-aware model blocks (CNN and ViT).
* :mod:`repro.core.mulquant` / :mod:`repro.core.fixed_point` — fixed-point
  ``INT(i, f)`` requantization (scale+shift) module.
* :mod:`repro.core.lut` — LUT-based softmax / GELU for the integer-only ViT.
* :mod:`repro.core.fusion` — automatic normalization fusion (8-bit pre-fusing
  and sub-8-bit channel-wise scaling).
* :mod:`repro.core.t2c` — the ``T2C`` top-level converter and vanilla re-pack.
"""
from repro.core.qbase import _QBase, QuantSpec
from repro.core.mulquant import MulQuant
from repro.core.fixed_point import to_fixed_point, from_fixed_point, FixedPointFormat
from repro.core.qlayers import QConv2d, QLinear
from repro.core.deploy import Deployed, DeploySpec, deploy, deploy_registry
from repro.core.t2c import T2C

__all__ = [
    "_QBase", "QuantSpec", "MulQuant",
    "to_fixed_point", "from_fixed_point", "FixedPointFormat",
    "QConv2d", "QLinear", "T2C",
    "DeploySpec", "Deployed", "deploy", "deploy_registry",
]
