"""Compute/storage profiling: MACs, parameter bytes, sparsity-adjusted MACs.

Accelerator design starts from a workload profile; this module counts
per-layer multiply-accumulates for conv/linear layers (shape-traced, so
strides/pooling are handled exactly) and folds in weight sparsity to report
*effective* MACs — the number a zero-skipping accelerator executes.

Forward interception goes through :mod:`repro.telemetry.hooks`
(:class:`~repro.telemetry.hooks.ForwardPatchSet`), so the model is restored
exactly even if the traced forward raises.
"""
from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro import nn
from repro.nn.module import Module
from repro.telemetry.hooks import ForwardPatchSet
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor


def _is_attention(mod: Module) -> bool:
    # duck-typed so both the float MultiheadAttention and the quantized
    # QAttention (same layout, fused QKV) are profiled without importing core
    return all(hasattr(mod, a) for a in ("num_heads", "head_dim", "qkv", "proj"))


def profile_macs(model: Module, input_shape=(3, 32, 32)) -> List[Dict]:
    """Trace one input through the model; return per-layer MAC counts.

    Each row: ``layer``, ``type``, ``macs``, ``effective_macs`` (zero weights
    skipped), ``params``, ``weight_sparsity``.

    Counting assumptions
    --------------------
    * Conv/linear MACs are exact from traced shapes (stride, padding, groups
      and token/batch dimensions all accounted for).
    * Attention modules contribute the two activation-activation matmuls —
      scores ``Q·K^T`` and context ``attn·V``, ``2·N·H·L²·hd`` MACs total —
      as a separate row (``params = 0``); their QKV/projection linears are
      counted by their own rows.  These matmuls have no weight operand, so
      weight sparsity never discounts them.
    * Softmax, non-linearities (LUT or float), normalization and
      requantization arithmetic are not MACs and are not counted.
    """
    rows: List[Dict] = []

    def conv_linear_wrapper(name, mod):
        def make(orig):
            def hook(x, *args, **kwargs):
                out = orig(x, *args, **kwargs)
                if isinstance(mod, nn.Conv2d):
                    spatial = int(np.prod(out.shape[2:]))
                    k2 = mod.kernel_size ** 2
                    macs = spatial * mod.out_channels * (mod.in_channels // mod.groups) * k2
                    macs *= x.shape[0]
                else:  # Linear
                    macs = int(np.prod(x.shape[:-1])) * mod.in_features * mod.out_features
                w = mod.weight.data
                sparsity = float((w == 0).mean())
                rows.append({
                    "layer": name,
                    "type": type(mod).__name__,
                    "macs": int(macs),
                    "effective_macs": int(round(macs * (1.0 - sparsity))),
                    "params": int(w.size),
                    "weight_sparsity": sparsity,
                })
                return out
            return hook
        return make

    def attention_wrapper(name, mod):
        def make(orig):
            def hook(x, *args, **kwargs):
                n, l, _ = x.shape
                # scores QK^T: N*H*L*L*hd; context attn@V: same again
                macs = 2 * n * mod.num_heads * l * l * mod.head_dim
                rows.append({
                    "layer": name,
                    "type": type(mod).__name__,
                    "macs": int(macs),
                    "effective_macs": int(macs),
                    "params": 0,
                    "weight_sparsity": 0.0,
                })
                return orig(x, *args, **kwargs)
            return hook
        return make

    with ForwardPatchSet() as patches:
        for name, mod in model.named_modules():
            if isinstance(mod, (nn.Conv2d, nn.Linear)) and getattr(mod, "weight", None) is not None:
                patches.patch(mod, conv_linear_wrapper(name, mod))
            elif _is_attention(mod):
                patches.patch(mod, attention_wrapper(name, mod))
        with no_grad():
            model.eval()
            model(Tensor(np.zeros((1,) + tuple(input_shape), dtype=np.float32)))
    return rows


def summarize_profile(rows: List[Dict]) -> Dict:
    """Model-level totals from :func:`profile_macs` rows."""
    total = sum(r["macs"] for r in rows)
    eff = sum(r["effective_macs"] for r in rows)
    params = sum(r["params"] for r in rows)
    return {
        "total_macs": total,
        "effective_macs": eff,
        "mac_reduction": 1.0 - eff / max(total, 1),
        "params": params,
        "avg_weight_sparsity": 1.0 - sum(r["params"] * (1 - r["weight_sparsity"]) for r in rows) / max(params, 1),
    }
