"""Batch-level data augmentations (vectorized numpy).

Each transform maps a batch ``(N, C, H, W)`` to a batch of the same shape.
``Compose`` chains transforms; every transform accepts an optional ``rng`` so
loaders control determinism.
"""
from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np


class Compose:
    """Apply transforms in order."""

    def __init__(self, transforms: Sequence[Callable]):
        self.transforms = list(transforms)

    def __call__(self, x: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = rng or np.random.default_rng()
        for t in self.transforms:
            x = t(x, rng=rng)
        return x


class RandomHorizontalFlip:
    def __init__(self, p: float = 0.5):
        self.p = p

    def __call__(self, x: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = rng or np.random.default_rng()
        out = x.copy()
        mask = rng.random(len(x)) < self.p
        out[mask] = out[mask, :, :, ::-1]
        return out


class RandomCrop:
    """Pad by ``padding`` (reflect) and crop back to the original size."""

    def __init__(self, padding: int = 4):
        self.padding = padding

    def __call__(self, x: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = rng or np.random.default_rng()
        n, c, h, w = x.shape
        p = self.padding
        xp = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)), mode="reflect")
        oy = rng.integers(0, 2 * p + 1, size=n)
        ox = rng.integers(0, 2 * p + 1, size=n)
        rows = oy[:, None] + np.arange(h)[None, :]
        cols = ox[:, None] + np.arange(w)[None, :]
        return xp[np.arange(n)[:, None, None, None],
                  np.arange(c)[None, :, None, None],
                  rows[:, None, :, None],
                  cols[:, None, None, :]]


class ColorJitter:
    """Per-channel multiplicative gain and additive bias."""

    def __init__(self, gain: float = 0.2, bias: float = 0.2):
        self.gain = gain
        self.bias = bias

    def __call__(self, x: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = rng or np.random.default_rng()
        n, c = x.shape[:2]
        g = rng.uniform(1 - self.gain, 1 + self.gain, size=(n, c, 1, 1)).astype(np.float32)
        b = rng.uniform(-self.bias, self.bias, size=(n, c, 1, 1)).astype(np.float32)
        return x * g + b


class GaussianNoise:
    def __init__(self, std: float = 0.05):
        self.std = std

    def __call__(self, x: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = rng or np.random.default_rng()
        return x + rng.normal(0, self.std, size=x.shape).astype(np.float32)


class RandomErasing:
    """Zero out a random rectangle (cutout-style regularization)."""

    def __init__(self, p: float = 0.5, max_frac: float = 0.3):
        self.p = p
        self.max_frac = max_frac

    def __call__(self, x: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = rng or np.random.default_rng()
        out = x.copy()
        n, _, h, w = x.shape
        for i in np.flatnonzero(rng.random(n) < self.p):
            eh = int(rng.uniform(0.1, self.max_frac) * h)
            ew = int(rng.uniform(0.1, self.max_frac) * w)
            y0 = rng.integers(0, h - eh + 1)
            x0 = rng.integers(0, w - ew + 1)
            out[i, :, y0:y0 + eh, x0:x0 + ew] = 0.0
        return out


def standard_train_transform(padding: int = 4) -> Compose:
    """The default supervised-training augmentation (crop + flip)."""
    return Compose([RandomCrop(padding), RandomHorizontalFlip()])


def ssl_view_transform(noise: float = 0.1) -> Compose:
    """Aggressive augmentation used to create SSL views (crop/flip/jitter/noise/erase)."""
    return Compose([
        RandomCrop(4),
        RandomHorizontalFlip(),
        ColorJitter(0.4, 0.4),
        GaussianNoise(noise),
        RandomErasing(0.3),
    ])
