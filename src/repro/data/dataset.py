"""Dataset abstractions."""
from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class Dataset:
    """Minimal map-style dataset interface."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, idx: int) -> Tuple[np.ndarray, int]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset over in-memory arrays with an optional per-batch transform."""

    def __init__(self, images: np.ndarray, labels: np.ndarray, transform=None):
        if len(images) != len(labels):
            raise ValueError("images and labels length mismatch")
        self.images = np.ascontiguousarray(images, dtype=np.float32)
        self.labels = np.ascontiguousarray(labels, dtype=np.int64)
        self.transform = transform

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, idx):
        x, y = self.images[idx], self.labels[idx]
        if self.transform is not None:
            x = self.transform(x[None])[0]
        return x, y

    def subset(self, n: int, rng: Optional[np.random.Generator] = None) -> "ArrayDataset":
        """Random subset of ``n`` samples (used for PTQ calibration sets)."""
        rng = rng or np.random.default_rng(0)
        idx = rng.choice(len(self), size=min(n, len(self)), replace=False)
        return ArrayDataset(self.images[idx], self.labels[idx], self.transform)
