"""Datasets, loaders and augmentations.

Real CIFAR/ImageNet are unavailable offline; :mod:`repro.data.synthetic`
provides procedurally generated class-conditional image datasets that stand in
for them (see DESIGN.md for the substitution rationale).
"""
from repro.data.dataset import ArrayDataset, Dataset
from repro.data.dataloader import DataLoader
from repro.data.synthetic import SyntheticVisionDataset, SyntheticTaskSuite, make_dataset
from repro.data import transforms

__all__ = [
    "Dataset", "ArrayDataset", "DataLoader",
    "SyntheticVisionDataset", "SyntheticTaskSuite", "make_dataset",
    "transforms",
]
