"""Procedurally generated class-conditional image datasets.

Substitution for CIFAR-10/100, ImageNet-1K and the transfer suites
(Aircraft / Flowers / Food-101), which are unavailable offline.

Each class is defined by a *prototype field*: a sum of oriented 2-D sinusoidal
gratings plus Gaussian blobs, with class-specific frequencies, orientations,
phases and per-channel color mixing.  Samples draw intra-class nuisance
variation — random translation (wrap-around roll), horizontal flips, amplitude
jitter, per-channel gain/bias, and additive noise — so models must learn
translation-tolerant frequency/texture features rather than memorize pixels.
That is the same inductive structure conv nets exploit on natural images, and
it preserves the paper's *relative* phenomena: quantization bit-width vs
accuracy ordering, pruning damage, SSL-transfer gains.

A :class:`SyntheticTaskSuite` mints related downstream tasks from the same
generative family with fresh seeds, giving a transfer-learning benchmark:
features useful on the pre-training task (frequency/orientation detectors)
transfer to the downstream tasks, so SSL pre-training measurably helps, as in
paper Table 4.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset

#: Registry of named dataset configurations mirroring the paper's benchmarks.
DATASET_SPECS: Dict[str, Dict] = {
    "synthetic-cifar10": dict(num_classes=10, image_size=32, seed=10),
    "synthetic-cifar100": dict(num_classes=100, image_size=32, seed=100),
    "synthetic-imagenet": dict(num_classes=20, image_size=32, seed=1000),
    "synthetic-aircraft": dict(num_classes=10, image_size=32, seed=30),
    "synthetic-flowers": dict(num_classes=10, image_size=32, seed=102),
    "synthetic-food": dict(num_classes=10, image_size=32, seed=101),
}


@dataclass
class SyntheticVisionDataset:
    """Generator of one synthetic vision classification task.

    Parameters
    ----------
    num_classes:
        Number of classes; each gets an independent prototype field.
    image_size:
        Square image side; images are ``(3, S, S)`` float32 roughly in [-2, 2]
        after normalization.
    seed:
        Seed of the class prototypes (the task identity).  Different seeds are
        different "datasets" from the same family.
    noise:
        Std of per-pixel additive Gaussian noise (task difficulty knob).
    gratings / blobs:
        Number of sinusoidal components and Gaussian blobs per prototype.
    """

    num_classes: int = 10
    image_size: int = 32
    seed: int = 0
    noise: float = 0.35
    gratings: int = 3
    blobs: int = 2
    _protos: np.ndarray = field(init=False, repr=False, default=None)

    def __post_init__(self):
        self._protos = self._build_prototypes()

    # ------------------------------------------------------------ prototypes
    def _build_prototypes(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        s = self.image_size
        yy, xx = np.mgrid[0:s, 0:s].astype(np.float32) / s
        protos = np.zeros((self.num_classes, 3, s, s), dtype=np.float32)
        for c in range(self.num_classes):
            canvas = np.zeros((3, s, s), dtype=np.float32)
            for _ in range(self.gratings):
                freq = rng.uniform(1.5, 6.0)
                theta = rng.uniform(0, np.pi)
                phase = rng.uniform(0, 2 * np.pi)
                wave = np.sin(2 * np.pi * freq * (np.cos(theta) * xx + np.sin(theta) * yy) + phase)
                color = rng.normal(size=(3, 1, 1)).astype(np.float32)
                canvas += color * wave[None]
            for _ in range(self.blobs):
                cx, cy = rng.uniform(0.2, 0.8, size=2)
                sigma = rng.uniform(0.08, 0.2)
                blob = np.exp(-(((xx - cx) ** 2 + (yy - cy) ** 2) / (2 * sigma ** 2)))
                color = rng.normal(size=(3, 1, 1)).astype(np.float32) * 1.5
                canvas += color * blob[None]
            canvas /= max(np.abs(canvas).max(), 1e-6)
            protos[c] = canvas
        return protos

    # --------------------------------------------------------------- samples
    def sample(self, n: int, split_seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` labelled samples; ``split_seed`` separates train/test."""
        rng = np.random.default_rng((self.seed + 1) * 7919 + split_seed)
        s = self.image_size
        labels = rng.integers(0, self.num_classes, size=n).astype(np.int64)
        imgs = self._protos[labels].copy()  # (n, 3, s, s)

        # Random wrap-around translation: roll each sample independently by
        # gathering from index grids (vectorized over the batch).
        max_shift = s // 4
        dx = rng.integers(-max_shift, max_shift + 1, size=n)
        dy = rng.integers(-max_shift, max_shift + 1, size=n)
        row = (np.arange(s)[None, :] - dy[:, None]) % s  # (n, s)
        col = (np.arange(s)[None, :] - dx[:, None]) % s
        imgs = imgs[np.arange(n)[:, None, None, None],
                    np.arange(3)[None, :, None, None],
                    row[:, None, :, None],
                    col[:, None, None, :]]

        # Horizontal flip for half the samples.
        flip = rng.random(n) < 0.5
        imgs[flip] = imgs[flip, :, :, ::-1]

        # Amplitude jitter, per-channel gain/bias, additive noise.
        amp = rng.uniform(0.8, 1.2, size=(n, 1, 1, 1)).astype(np.float32)
        gain = rng.uniform(0.9, 1.1, size=(n, 3, 1, 1)).astype(np.float32)
        bias = rng.uniform(-0.1, 0.1, size=(n, 3, 1, 1)).astype(np.float32)
        imgs = imgs * amp * gain + bias
        imgs += rng.normal(0, self.noise, size=imgs.shape).astype(np.float32)
        return imgs.astype(np.float32), labels

    def splits(self, n_train: int, n_test: int, transform=None) -> Tuple[ArrayDataset, ArrayDataset]:
        """Build disjoint train/test :class:`ArrayDataset` splits."""
        xtr, ytr = self.sample(n_train, split_seed=1)
        xte, yte = self.sample(n_test, split_seed=2)
        return ArrayDataset(xtr, ytr, transform), ArrayDataset(xte, yte)


def make_dataset(name: str, **overrides) -> SyntheticVisionDataset:
    """Instantiate a registered synthetic dataset by name.

    >>> ds = make_dataset("synthetic-cifar10")
    >>> train, test = ds.splits(2000, 500)
    """
    if name not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASET_SPECS)}")
    spec = dict(DATASET_SPECS[name])
    spec.update(overrides)
    return SyntheticVisionDataset(**spec)


class SyntheticTaskSuite:
    """The paper's transfer-learning suite (Table 4) as synthetic analogues.

    Pre-train on ``pretrain_task`` (many classes), then fine-tune/evaluate on
    each downstream task.  Downstream tasks share the generative family but
    have fresh prototype seeds, so transferable features help while pixel
    memorization does not.
    """

    DOWNSTREAM = ["synthetic-cifar10", "synthetic-cifar100", "synthetic-aircraft",
                  "synthetic-flowers", "synthetic-food"]

    def __init__(self, image_size: int = 32, downstream_classes: Optional[int] = None):
        self.image_size = image_size
        self.downstream_classes = downstream_classes

    def pretrain(self, **overrides) -> SyntheticVisionDataset:
        return make_dataset("synthetic-imagenet", image_size=self.image_size, **overrides)

    def downstream(self, name: str, **overrides) -> SyntheticVisionDataset:
        if name not in self.DOWNSTREAM:
            raise KeyError(f"unknown downstream task {name!r}")
        if self.downstream_classes is not None:
            overrides.setdefault("num_classes", self.downstream_classes)
        return make_dataset(name, image_size=self.image_size, **overrides)
