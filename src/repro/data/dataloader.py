"""Vectorized mini-batch loader over :class:`ArrayDataset`."""
from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset


class DataLoader:
    """Yields ``(images, labels)`` numpy batches.

    Batch-level (not sample-level) transforms keep augmentation vectorized,
    which matters on a CPU-only substrate.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 128,
        shuffle: bool = False,
        drop_last: bool = False,
        seed: int = 0,
    ):
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        end = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, end, self.batch_size):
            idx = order[start:start + self.batch_size]
            x = self.dataset.images[idx]
            y = self.dataset.labels[idx]
            if self.dataset.transform is not None:
                x = self.dataset.transform(x, rng=self._rng)
            yield x, y
