"""Projector heads for SSL embeddings."""
from __future__ import annotations

from repro import nn
from repro.tensor.tensor import Tensor


class Projector(nn.Module):
    """MLP projector mapping encoder features to the SSL embedding space."""

    def __init__(self, in_dim: int, hidden_dim: int, out_dim: int):
        super().__init__()
        self.net = nn.Sequential(
            nn.Linear(in_dim, hidden_dim),
            nn.ReLU(),
            nn.Linear(hidden_dim, out_dim),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
