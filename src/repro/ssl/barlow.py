"""Barlow Twins: redundancy-reduction self-supervised loss."""
from __future__ import annotations

from repro.tensor.tensor import Tensor


def _batch_normalize(z: Tensor, eps: float = 1e-5) -> Tensor:
    """Standardize each embedding dimension over the batch."""
    mu = z.mean(axis=0, keepdims=True)
    sd = (z.var(axis=0, keepdims=True) + eps).sqrt()
    return (z - mu) / sd


def cross_correlation(z1: Tensor, z2: Tensor) -> Tensor:
    """Empirical cross-correlation matrix of batch-normalized embeddings."""
    n = z1.shape[0]
    z1n = _batch_normalize(z1)
    z2n = _batch_normalize(z2)
    return (z1n.transpose() @ z2n) * (1.0 / n)


def barlow_loss(z1: Tensor, z2: Tensor, lambda_offdiag: float = 5e-3) -> Tensor:
    """``sum_i (1 - C_ii)^2 + lambda * sum_{i != j} C_ij^2``."""
    import numpy as np

    c = cross_correlation(z1, z2)
    d = c.shape[0]
    eye = Tensor(np.eye(d, dtype=np.float32))
    on_diag = (((c - eye) * eye) ** 2.0).sum()
    off_diag = ((c * (1.0 - eye)) ** 2.0).sum()
    return on_diag + lambda_offdiag * off_diag
