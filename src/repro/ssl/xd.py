"""XD: cross-distillation for lightweight SSL encoders (Meng et al., 2023).

Paper Eq. 16: the student's embedding of view ``A`` is cross-correlated with
the teacher's embedding of view ``A~`` (and vice versa); pushing the diagonal
to 1 and the off-diagonal to 0 distills the teacher's representation geometry
into the lightweight encoder *during* contrastive pre-training.  Combined
with each encoder's own Barlow loss, the slimmed student (e.g. MobileNet-V1)
inherits representations it could not learn alone.
"""
from __future__ import annotations

from repro import nn
from repro.ssl.barlow import barlow_loss, cross_correlation
from repro.ssl.heads import Projector
from repro.tensor.tensor import Tensor


def xd_loss(z_student: Tensor, z_teacher: Tensor, lambda_offdiag: float = 5e-3) -> Tensor:
    """Cross-distillation loss: L = sum_i (1 - C_ii) + lambda sum_{i!=j} C_ij^2."""
    import numpy as np

    c = cross_correlation(z_student, z_teacher.detach())
    d = c.shape[0]
    eye = Tensor(np.eye(d, dtype=np.float32))
    on_diag = ((1.0 - c) * eye).sum()
    off_diag = ((c * (1.0 - eye)) ** 2.0).sum()
    return on_diag + lambda_offdiag * off_diag


class XDModel(nn.Module):
    """Student + teacher encoder pair with projector heads.

    The encoders must expose ``features(x) -> (N, D)``; the heads map to a
    shared embedding dimension so the cross-correlation is square.
    """

    def __init__(self, student: nn.Module, teacher: nn.Module,
                 student_dim: int, teacher_dim: int,
                 embed_dim: int = 128, hidden_dim: int = 256):
        super().__init__()
        self.student = student
        self.teacher = teacher
        self.student_head = Projector(student_dim, hidden_dim, embed_dim)
        self.teacher_head = Projector(teacher_dim, hidden_dim, embed_dim)

    def embed_student(self, x: Tensor) -> Tensor:
        return self.student_head(self.student.features(x))

    def embed_teacher(self, x: Tensor) -> Tensor:
        return self.teacher_head(self.teacher.features(x))

    def loss(self, view_a: Tensor, view_b: Tensor,
             lambda_offdiag: float = 5e-3, lambda_xd: float = 1.0) -> Tensor:
        """Joint objective: both encoders' Barlow losses + cross terms."""
        zs_a, zs_b = self.embed_student(view_a), self.embed_student(view_b)
        zt_a, zt_b = self.embed_teacher(view_a), self.embed_teacher(view_b)
        l_student = barlow_loss(zs_a, zs_b, lambda_offdiag)
        l_teacher = barlow_loss(zt_a, zt_b, lambda_offdiag)
        l_xd = xd_loss(zs_a, zt_b, lambda_offdiag) + xd_loss(zs_b, zt_a, lambda_offdiag)
        return l_student + l_teacher + lambda_xd * l_xd
