"""Self-supervised pre-training (paper §3.3, Table 4).

* :func:`barlow_loss` — redundancy-reduction loss (Zbontar et al., 2021).
* :func:`xd_loss` — cross-distillation between a lightweight student and a
  wider teacher encoder (Meng et al., 2023), paper Eq. 16.
* :class:`Projector` / :class:`SSLPair` — projector heads and the two-encoder
  training wrapper the SSL trainer drives.
"""
from repro.ssl.barlow import barlow_loss, cross_correlation
from repro.ssl.xd import xd_loss, XDModel
from repro.ssl.heads import Projector

__all__ = ["barlow_loss", "cross_correlation", "xd_loss", "XDModel", "Projector"]
