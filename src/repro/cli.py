"""Command-line interface for the compress-and-deploy workflow.

Usage (module form)::

    python -m repro.cli qat     --model resnet20 --wbit 4 --abit 4 --wq sawb --aq pact \
                                --epochs 5 --out ckpt.npz
    python -m repro.cli ptq     --model resnet20 --ckpt ckpt.npz --wbit 8 --abit 8
    python -m repro.cli export  --model resnet20 --ckpt ckpt.npz --wbit 4 --abit 4 \
                                --formats dec hex qint --out-dir deploy/

Everything runs on the synthetic datasets (``--dataset`` picks which); the
CLI exists so a hardware designer can drive the whole flow without writing
Python.
"""
from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import T2C
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.data import make_dataset
from repro.data.transforms import standard_train_transform
from repro.models import MODELS, build_model
from repro.trainer import PTQTrainer, QATTrainer, Trainer, evaluate
from repro.utils import seed_everything
from repro.utils.checkpoint import load_checkpoint, save_checkpoint

MODEL_KWARGS = {
    "resnet20": dict(width=8), "resnet18": dict(width=8), "resnet50": dict(width=8),
    "mobilenet-v1": dict(width_mult=1.0), "vgg8": dict(width_mult=1.0),
    "vit-7": dict(embed_dim=64),
}


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", choices=sorted(MODELS), default="resnet20")
    parser.add_argument("--dataset", default="synthetic-cifar10")
    parser.add_argument("--train-size", type=int, default=2000)
    parser.add_argument("--test-size", type=int, default=500)
    parser.add_argument("--noise", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--wbit", type=int, default=8)
    parser.add_argument("--abit", type=int, default=8)
    parser.add_argument("--wq", default="minmax_channel")
    parser.add_argument("--aq", default="minmax")


def _data(args):
    ds = make_dataset(args.dataset, noise=args.noise)
    n_cls = ds.num_classes
    train, test = ds.splits(args.train_size, args.test_size,
                            transform=standard_train_transform())
    return train, test, n_cls


def _model(args, num_classes):
    return build_model(args.model, num_classes=num_classes, **MODEL_KWARGS[args.model])


def cmd_train(args) -> int:
    seed_everything(args.seed)
    train, test, n_cls = _data(args)
    model = _model(args, n_cls)
    Trainer(model, train, test, epochs=args.epochs, batch_size=args.batch_size,
            lr=args.lr, verbose=True).fit()
    acc = evaluate(model, test)
    save_checkpoint(model, args.out, accuracy=acc)
    print(f"fp32 accuracy {acc:.4f}; checkpoint -> {args.out}")
    return 0


def cmd_qat(args) -> int:
    seed_everything(args.seed)
    train, test, n_cls = _data(args)
    model = _model(args, n_cls)
    qcfg = QConfig(args.wbit, args.abit, wq=args.wq, aq=args.aq)
    trainer = QATTrainer(model, qcfg=qcfg, train_set=train, test_set=test,
                         epochs=args.epochs, batch_size=args.batch_size,
                         lr=args.lr, verbose=True)
    trainer.fit()
    acc = trainer.evaluate()
    save_checkpoint(trainer.qmodel, args.out, accuracy=acc)
    print(f"QAT W{args.wbit}/A{args.abit} accuracy {acc:.4f}; checkpoint -> {args.out}")
    return 0


def cmd_ptq(args) -> int:
    seed_everything(args.seed)
    train, test, n_cls = _data(args)
    model = _model(args, n_cls)
    load_checkpoint(model, args.ckpt)
    qcfg = QConfig(args.wbit, args.abit, wq=args.wq, aq=args.aq)
    qm = PTQTrainer(model, train, qcfg=qcfg, calib_batches=args.calib_batches,
                    batch_size=args.batch_size,
                    reconstruct=args.wq == "adaround").fit()
    acc = evaluate(qm, test)
    save_checkpoint(qm, args.out, accuracy=acc)
    print(f"PTQ W{args.wbit}/A{args.abit} accuracy {acc:.4f}; checkpoint -> {args.out}")
    return 0


def cmd_export(args) -> int:
    seed_everything(args.seed)
    train, test, n_cls = _data(args)
    model = _model(args, n_cls)
    qcfg = QConfig(args.wbit, args.abit, wq=args.wq, aq=args.aq)
    qm = quantize_model(model, qcfg)
    load_checkpoint(qm, args.ckpt)
    # re-calibration is cheap and makes the checkpoint self-contained even if
    # it was saved before calibration
    from repro.core.t2c import calibrate_model
    calibrate_model(qm, [train.images[i * 64:(i + 1) * 64] for i in range(args.calib_batches)])
    nn2c = T2C(qm, mode=args.fusion, float_scale=args.float_scale)
    qnn = nn2c.nn2chip(save_model=True, export_dir=args.out_dir, formats=tuple(args.formats))
    acc = evaluate(qnn, test)
    print(f"integer-only accuracy {acc:.4f}; exported -> {args.out_dir}/manifest.json")
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro.cli", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("train", help="supervised fp32 training")
    _common(p)
    p.add_argument("--epochs", type=int, default=6)
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--lr", type=float, default=0.1)
    p.add_argument("--out", default="fp32.npz")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("qat", help="quantization-aware training")
    _common(p)
    p.add_argument("--epochs", type=int, default=6)
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--lr", type=float, default=0.1)
    p.add_argument("--out", default="qat.npz")
    p.set_defaults(func=cmd_qat)

    p = sub.add_parser("ptq", help="post-training quantization of a checkpoint")
    _common(p)
    p.add_argument("--ckpt", required=True)
    p.add_argument("--calib-batches", type=int, default=8)
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--out", default="ptq.npz")
    p.set_defaults(func=cmd_ptq)

    p = sub.add_parser("export", help="fuse + integer-only export of a Q-model checkpoint")
    _common(p)
    p.add_argument("--ckpt", required=True)
    p.add_argument("--calib-batches", type=int, default=8)
    p.add_argument("--fusion", choices=("channel", "prefuse"), default="channel")
    p.add_argument("--float-scale", action="store_true")
    p.add_argument("--formats", nargs="+", default=["dec", "hex"],
                   choices=("dec", "hex", "bin", "qint"))
    p.add_argument("--out-dir", default="t2c_out")
    p.set_defaults(func=cmd_export)
    return ap


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
