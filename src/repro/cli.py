"""Command-line interface for the compress-and-deploy workflow.

Usage (module form)::

    python -m repro.cli qat     --model resnet20 --wbit 4 --abit 4 --wq sawb --aq pact \
                                --epochs 5 --out ckpt.npz
    python -m repro.cli ptq     --model resnet20 --ckpt ckpt.npz --wbit 8 --abit 8
    python -m repro.cli export  --model resnet20 --ckpt ckpt.npz --wbit 4 --abit 4 \
                                --formats dec hex qint --out-dir deploy/
    python -m repro.cli inspect --model resnet20 --epochs 1 --telemetry-out telemetry_out/
    python -m repro.cli lint    --model vgg8 --wbit 8 --abit 8      # static verification
    python -m repro.cli lint    --purity                            # AST pass only, no model
    python -m repro.cli bench   --model resnet20 --batch-size 64    # compiled runtime
    python -m repro.cli serve-bench --model resnet20 --requests 300 # online gateway

Everything runs on the synthetic datasets (``--dataset`` picks which); the
CLI exists so a hardware designer can drive the whole flow without writing
Python.  ``inspect`` runs the full compress→fuse→export flow under a
:class:`~repro.telemetry.report.TelemetrySession` and writes the Chrome
trace, the JSONL event log, the per-layer profile and the integer-datapath
saturation audit to disk.

``export``, ``lint``, ``inspect``, ``bench`` and ``serve-bench`` all
translate their flags into one :class:`~repro.core.DeploySpec`
(``DeploySpec.from_args``) and share :func:`_build_deployed_model`, so the
subcommands exercise the identical deploy pipeline.  ``serve-bench`` stands
up the online gateway (:mod:`repro.server`) on the deployed model and
drives it with the open-loop Poisson load generator, writing
``BENCH_server.json`` with numbers directly comparable to ``bench``'s
``BENCH_runtime.json`` (same percentile summary).
"""
from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

import numpy as np

from repro import telemetry
from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.data import make_dataset
from repro.data.transforms import standard_train_transform
from repro.models import MODELS, build_model
from repro.trainer import PTQTrainer, QATTrainer, Trainer, evaluate
from repro.utils import seed_everything
from repro.utils.checkpoint import load_checkpoint, save_checkpoint

MODEL_KWARGS = {
    "resnet20": dict(width=8), "resnet18": dict(width=8), "resnet50": dict(width=8),
    "mobilenet-v1": dict(width_mult=1.0), "vgg8": dict(width_mult=1.0),
    "vit-7": dict(embed_dim=64),
}


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", choices=sorted(MODELS), default="resnet20")
    parser.add_argument("--dataset", default="synthetic-cifar10")
    parser.add_argument("--train-size", type=int, default=2000)
    parser.add_argument("--test-size", type=int, default=500)
    parser.add_argument("--noise", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--wbit", type=int, default=8)
    parser.add_argument("--abit", type=int, default=8)
    parser.add_argument("--wq", default="minmax_channel")
    parser.add_argument("--aq", default="minmax")


def _deploy_flags(parser: argparse.ArgumentParser, calib_batches: int = 4,
                  runtime: str = "none") -> None:
    """Flags shared by every subcommand that runs the deploy pipeline;
    ``DeploySpec.from_args`` translates them into the spec."""
    parser.add_argument("--calib-batches", type=int, default=calib_batches)
    parser.add_argument("--fusion", choices=("channel", "prefuse"),
                        default="channel")
    parser.add_argument("--float-scale", action="store_true")
    parser.set_defaults(runtime=runtime)
    # plan-compile knobs -> CompileSpec.from_args (DeploySpec.compile)
    parser.add_argument("--fusion-level", choices=("none", "requant", "full"),
                        default=None,
                        help="plan operator-fusion level (CompileSpec.fusion; "
                             "default full)")
    parser.add_argument("--threads", type=int, default=None,
                        help="conv kernel thread count (0 = one per core)")
    parser.add_argument("--tile-kc", type=int, default=None, metavar="KIB",
                        help="conv sample-tile cache budget in KiB (0 = auto)")
    parser.add_argument("--tile-oc", type=int, choices=(0, 4, 8), default=None,
                        help="output-channel register blocking (0 = auto)")
    parser.add_argument("--no-im2col-cache", dest="im2col_cache",
                        action="store_false", default=None,
                        help="disable im2col buffer reuse in the batch layout")


def _data(args):
    ds = make_dataset(args.dataset, noise=args.noise)
    n_cls = ds.num_classes
    train, test = ds.splits(args.train_size, args.test_size,
                            transform=standard_train_transform())
    return train, test, n_cls


def _model(args, num_classes):
    return build_model(args.model, num_classes=num_classes, **MODEL_KWARGS[args.model])


def _build_deployed_model(args, spec, model=None, data=None, before_deploy=None):
    """Shared deploy path for ``export``/``lint``/``inspect``/``bench``.

    Builds (or reuses) the float model, quantizes it with the common
    ``--wbit/--abit/--wq/--aq`` flags, loads ``--ckpt`` when given,
    calibrates on the training split, then hands the Q-model to
    :func:`repro.core.deploy` under ``spec``.  ``before_deploy`` runs on the
    calibrated Q-model right before conversion (``inspect`` instruments it
    there).  Returns ``(deployed, (train, test, num_classes))``.
    """
    from repro.core.t2c import calibrate_model

    train, test, n_cls = data if data is not None else _data(args)
    if model is None:
        model = _model(args, n_cls)
    qcfg = QConfig(args.wbit, args.abit, wq=args.wq, aq=args.aq)
    qm = quantize_model(model, qcfg)
    if getattr(args, "ckpt", None):
        load_checkpoint(qm, args.ckpt)
    # re-calibration is cheap and makes the checkpoint self-contained even if
    # it was saved before calibration
    calibrate_model(qm, [train.images[i * 64:(i + 1) * 64]
                         for i in range(args.calib_batches)])
    if before_deploy is not None:
        before_deploy(qm, train, test)
    return deploy(qm, spec), (train, test, n_cls)


def cmd_train(args) -> int:
    seed_everything(args.seed)
    train, test, n_cls = _data(args)
    model = _model(args, n_cls)
    Trainer(model, train, test, epochs=args.epochs, batch_size=args.batch_size,
            lr=args.lr, verbose=True).fit()
    acc = evaluate(model, test)
    save_checkpoint(model, args.out, accuracy=acc)
    print(f"fp32 accuracy {acc:.4f}; checkpoint -> {args.out}")
    return 0


def cmd_qat(args) -> int:
    seed_everything(args.seed)
    train, test, n_cls = _data(args)
    model = _model(args, n_cls)
    qcfg = QConfig(args.wbit, args.abit, wq=args.wq, aq=args.aq)
    trainer = QATTrainer(model, qcfg=qcfg, train_set=train, test_set=test,
                         epochs=args.epochs, batch_size=args.batch_size,
                         lr=args.lr, verbose=True)
    trainer.fit()
    acc = trainer.evaluate()
    save_checkpoint(trainer.qmodel, args.out, accuracy=acc)
    print(f"QAT W{args.wbit}/A{args.abit} accuracy {acc:.4f}; checkpoint -> {args.out}")
    return 0


def cmd_ptq(args) -> int:
    seed_everything(args.seed)
    train, test, n_cls = _data(args)
    model = _model(args, n_cls)
    load_checkpoint(model, args.ckpt)
    qcfg = QConfig(args.wbit, args.abit, wq=args.wq, aq=args.aq)
    qm = PTQTrainer(model, train, qcfg=qcfg, calib_batches=args.calib_batches,
                    batch_size=args.batch_size,
                    reconstruct=args.wq == "adaround").fit()
    acc = evaluate(qm, test)
    save_checkpoint(qm, args.out, accuracy=acc)
    print(f"PTQ W{args.wbit}/A{args.abit} accuracy {acc:.4f}; checkpoint -> {args.out}")
    return 0


def cmd_export(args) -> int:
    if getattr(args, "telemetry_out", None):
        with telemetry.TelemetrySession(out_dir=args.telemetry_out,
                                        label=f"export-{args.model}"):
            rc = _run_export(args)
        print(f"telemetry -> {args.telemetry_out}/manifest.json")
        return rc
    return _run_export(args)


def _run_export(args) -> int:
    seed_everything(args.seed)
    spec = DeploySpec.from_args(args)
    deployed, (_, test, _) = _build_deployed_model(args, spec)
    with telemetry.trace("evaluate_integer"):
        acc = evaluate(deployed.qnn, test)
    telemetry.emit("integer_accuracy", accuracy=acc)
    print(f"integer-only accuracy {acc:.4f}; exported -> {args.out_dir}/manifest.json")
    return 0


def cmd_inspect(args) -> int:
    """Run the full compress→fuse→export flow with telemetry on; write the
    trace, event log, per-layer profile and saturation audit to disk."""
    seed_everything(args.seed)
    out_dir = args.telemetry_out
    from repro.core.analysis import format_report, weight_quant_report
    from repro.core.profiling import profile_macs, summarize_profile
    from repro.tensor import no_grad
    from repro.tensor.tensor import Tensor

    with telemetry.TelemetrySession(out_dir=out_dir,
                                    label=f"inspect-{args.model}") as session:
        with telemetry.trace("inspect", model=args.model,
                             wbit=args.wbit, abit=args.abit):
            train, test, n_cls = _data(args)
            model = _model(args, n_cls)
            if args.epochs > 0:
                Trainer(model, train, test, epochs=args.epochs,
                        batch_size=args.batch_size, lr=args.lr,
                        verbose=True).fit()

            input_shape = tuple(train.images[0].shape)
            with telemetry.trace("profile_macs"):
                profile_rows = profile_macs(model, input_shape=input_shape)

            reports = {}

            def before_deploy(qm, train_, test_):
                reports["weight_rows"] = weight_quant_report(qm)
                # per-layer timing + activation stats over one batch
                with telemetry.trace("instrumented_eval"):
                    with telemetry.instrument(qm) as inst:
                        with no_grad():
                            qm.eval()
                            qm(Tensor(test_.images[:args.batch_size]))
                    reports["layer_rows"] = inst.report()

            # integer-only deploy path: this is where saturation counters fill
            spec = DeploySpec.from_args(args)
            deployed, _ = _build_deployed_model(
                args, spec, model=model, data=(train, test, n_cls),
                before_deploy=before_deploy)
            with telemetry.trace("evaluate_integer"):
                acc = evaluate(deployed.qnn, test)
            telemetry.emit("integer_accuracy", accuracy=acc)

        sat_rows = telemetry.saturation_report()
        _write_inspect_report(out_dir, profile_rows, reports["layer_rows"],
                              reports["weight_rows"], sat_rows,
                              summarize_profile(profile_rows), acc)

    print(f"integer-only accuracy {acc:.4f}")
    if sat_rows:
        worst = sat_rows[0]
        print(f"worst saturation: {worst['layer']} ({worst['kind']}) "
              f"{worst['clipped']}/{worst['total']} = {worst['rate']:.2%}")
    print(f"telemetry -> {out_dir}/ (manifest.json, trace.json, events.jsonl, "
          f"metrics.json, saturation.json, layer_report.json, report.txt)")
    return 0


def _write_inspect_report(out_dir, profile_rows, layer_rows, weight_rows,
                          sat_rows, summary, accuracy) -> None:
    from repro.core.analysis import format_report

    with open(os.path.join(out_dir, "layer_report.json"), "w") as f:
        json.dump({
            "summary": {**summary, "integer_accuracy": accuracy},
            "profile": profile_rows,
            "layers": layer_rows,
            "weight_quant": weight_rows,
            "saturation": sat_rows,
        }, f, indent=1, default=str)
    sections = [
        ("workload profile (MACs)", profile_rows),
        ("per-layer forward timing / activation stats", layer_rows),
        ("weight quantization", weight_rows),
        ("integer-datapath saturation audit", sat_rows),
    ]
    with open(os.path.join(out_dir, "report.txt"), "w") as f:
        f.write(f"integer-only accuracy: {accuracy:.4f}\n")
        for title, rows in sections:
            f.write(f"\n== {title} ==\n{format_report(rows)}\n")


def cmd_lint(args) -> int:
    """Static verification: interval engine + contracts (or --purity only).

    ``--plan`` additionally compiles the deploy model and runs the plan-IR
    verifier (dataflow/no-alias/overflow/shift proofs) over the program.
    Exit code 2 when any finding reaches the ``--fail-on`` threshold
    (default: ERROR), so CI can gate on it.
    """
    from repro.lint import lint_model, lint_sources

    plan_rep = None
    if args.purity:
        rep = lint_sources()
    else:
        seed_everything(args.seed)
        spec = DeploySpec.from_args(args)
        if getattr(args, "plan", False):
            # the CLI reports violations instead of raising mid-build, and
            # needs a compiled plan even when the runtime was off
            spec = spec.evolve(verify_plan=False)
            if spec.runtime == "none":
                spec = spec.evolve(runtime="auto")
        deployed, _ = _build_deployed_model(args, spec)
        target = deployed.qnn if args.repacked else deployed.fused
        rep = lint_model(target, accum_bits=args.accum_bits)
        if getattr(args, "plan", False):
            plan_rep = deployed.plan.verify(accum_bits=args.accum_bits,
                                            module_bits=rep.min_accum_bits())
    fail_on = getattr(args, "fail_on", "error")
    if args.json:
        out = rep.to_json()
        if plan_rep is not None:
            out["plan"] = plan_rep.to_json()
        print(json.dumps(out, indent=1))
    else:
        print(rep.render())
        if plan_rep is not None:
            print()
            print(plan_rep.render())
    failed = rep.exceeds(fail_on) or (
        plan_rep is not None and plan_rep.exceeds(fail_on))
    return 2 if failed else 0


def cmd_bench(args) -> int:
    """Throughput benchmark: compiled runtime plan vs the interpreted tree."""
    if args.telemetry_out:
        with telemetry.TelemetrySession(out_dir=args.telemetry_out,
                                        label=f"bench-{args.model}"):
            rc = _run_bench(args)
        print(f"telemetry -> {args.telemetry_out}/manifest.json")
        return rc
    return _run_bench(args)


def _bench_trajectory(path: str) -> list:
    """Prior BENCH rows to preserve; wraps a pre-trajectory flat file."""
    if not os.path.exists(path):
        return []
    try:
        with open(path) as f:
            old = json.load(f)
    except (OSError, ValueError):
        return []
    if isinstance(old.get("trajectory"), list):
        return old["trajectory"]
    if "imgs_per_sec" in old:  # flat single-result layout from earlier runs
        keep = ("model", "layout", "imgs_per_sec", "plan_ms_per_batch",
                "speedup", "compile")
        return [{k: old[k] for k in keep if k in old}]
    return []


def _run_bench(args) -> int:
    from repro.tensor import no_grad
    from repro.tensor.tensor import Tensor

    seed_everything(args.seed)
    spec = DeploySpec.from_args(args)
    deployed, (_, test, _) = _build_deployed_model(args, spec)
    plan, qnn = deployed.plan, deployed.qnn

    bs = args.batch_size
    pool = test.images
    if pool.shape[0] < bs:
        pool = np.concatenate([pool] * (-(-bs // pool.shape[0])))
    batch = np.ascontiguousarray(pool[:bs], dtype=np.float32)

    with no_grad():
        ref = qnn(Tensor(batch)).data
    exact = bool(np.array_equal(ref, plan(batch)))

    for _ in range(args.warmup):
        plan(batch)
    plan.reset_op_stats()
    t0 = time.perf_counter()
    if args.workers >= 2:
        for _ in plan.serve([batch] * args.batches, workers=args.workers):
            pass
    else:
        for _ in range(args.batches):
            plan(batch)
    plan_s = (time.perf_counter() - t0) / args.batches

    # Per-batch-size latency sweep (serial, so each sample is one batch's
    # wall time): p50/p95/p99 land next to the throughput numbers so the
    # gateway's BENCH_server.json is directly comparable to the raw plan.
    latency_ms = {}
    for bs_i in sorted(set([bs] + (args.batch_sizes or []))):
        pool_i = pool
        if pool_i.shape[0] < bs_i:
            pool_i = np.concatenate([pool_i] * (-(-bs_i // pool_i.shape[0])))
        batch_i = np.ascontiguousarray(pool_i[:bs_i], dtype=np.float32)
        plan(batch_i)  # bind once, untimed
        lats = []
        for _ in range(max(args.batches, 5)):
            t0 = time.perf_counter()
            plan(batch_i)
            lats.append((time.perf_counter() - t0) * 1e3)
        latency_ms[str(bs_i)] = {
            k: round(v, 3)
            for k, v in telemetry.percentile_summary(lats).items()}

    t0 = time.perf_counter()
    for _ in range(args.tree_batches):
        with no_grad():
            qnn(Tensor(batch))
    tree_s = (time.perf_counter() - t0) / max(1, args.tree_batches)

    # unfused single-thread baseline under the same layout: the fused-vs-
    # unfused comparison every bench run re-records (and re-checks bitwise)
    from repro.runtime import Plan

    base_spec = plan.spec.evolve(fusion="requant", threads=1)
    base_plan = Plan.compile(qnn, base_spec)
    fused_matches = bool(np.array_equal(base_plan(batch), plan(batch)))
    base_plan(batch)
    t0 = time.perf_counter()
    for _ in range(args.batches):
        base_plan(batch)
    base_s = (time.perf_counter() - t0) / args.batches

    per_op = [r for r in plan.op_report() if r["calls"]]
    result = {
        "model": args.model,
        "layout": plan.layout,
        "workers": args.workers,
        "batch_size": bs,
        "batches": args.batches,
        "bit_exact": exact,
        "plan_ms_per_batch": plan_s * 1e3,
        "tree_ms_per_batch": tree_s * 1e3,
        "imgs_per_sec": bs / plan_s,
        "speedup": tree_s / plan_s,
        "latency_ms": latency_ms,
        "per_op": per_op,
        "spec": spec.to_json(),
        "compile": plan.spec.to_json(),
        "fusion_stats": plan.fusion_stats,
    }
    baseline = {
        "plan_ms_per_batch": base_s * 1e3,
        "imgs_per_sec": bs / base_s,
        "compile": base_spec.to_json(),
        "matches_fused_bitwise": fused_matches,
    }
    doc = {
        "model": args.model,
        "current": result,
        "baseline_unfused": baseline,
        "fused_speedup_vs_unfused": base_s / plan_s,
        "trajectory": _bench_trajectory(args.out) + [{
            "model": args.model,
            "layout": plan.layout,
            "imgs_per_sec": round(bs / plan_s, 1),
            "plan_ms_per_batch": round(plan_s * 1e3, 3),
            "speedup_vs_tree": round(tree_s / plan_s, 2),
            "compile": plan.spec.to_json(),
        }],
    }
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=1)
    telemetry.emit("bench_runtime", model=args.model, layout=plan.layout,
                   imgs_per_sec=result["imgs_per_sec"],
                   speedup=result["speedup"], bit_exact=exact,
                   fusion=plan.spec.fusion,
                   fused_speedup=base_s / plan_s)
    print(f"bit-exact vs tree: {exact}   fused == unfused: {fused_matches}")
    print(f"plan[{plan.layout}] {plan_s * 1e3:8.1f} ms/batch "
          f"({result['imgs_per_sec']:.1f} imgs/sec)  "
          f"[fusion={plan.spec.fusion}, "
          f"{plan.fusion_stats['fused']} chain(s) fused]")
    print(f"unfused 1-thread {base_s * 1e3:6.1f} ms/batch  "
          f"-> fused speedup {base_s / plan_s:.2f}x")
    print(f"tree           {tree_s * 1e3:8.1f} ms/batch  "
          f"-> speedup {result['speedup']:.2f}x")
    for bs_key, pcts in latency_ms.items():
        print(f"latency bs={bs_key:>4}  p50 {pcts['p50']:7.2f}  "
              f"p95 {pcts['p95']:7.2f}  p99 {pcts['p99']:7.2f} ms")
    print(f"results -> {args.out}")
    return 0 if exact else 1


def cmd_serve_bench(args) -> int:
    """Online gateway benchmark: Poisson open-loop load over the Server."""
    if args.telemetry_out:
        with telemetry.TelemetrySession(out_dir=args.telemetry_out,
                                        label=f"serve-bench-{args.model}"):
            rc = _run_serve_bench(args)
        print(f"telemetry -> {args.telemetry_out}/manifest.json")
        return rc
    return _run_serve_bench(args)


def _run_serve_bench(args) -> int:
    from repro.server import ModelRegistry, Server, run_poisson_load
    from repro.tensor import no_grad
    from repro.tensor.tensor import Tensor

    seed_everything(args.seed)
    spec = DeploySpec.from_args(args)
    deployed, (_, test, _) = _build_deployed_model(args, spec)
    plan, qnn = deployed.plan, deployed.qnn

    # raw plan throughput at the gateway's batch size — the baseline the
    # gateway's achieved rate is measured against
    mb = args.max_batch
    pool = test.images
    if pool.shape[0] < mb:
        pool = np.concatenate([pool] * (-(-mb // pool.shape[0])))
    batch = np.ascontiguousarray(pool[:mb], dtype=np.float32)
    plan(batch)  # bind + warm
    raw_s = min(_timeit(plan, batch) for _ in range(max(args.raw_batches, 3)))
    raw_rate = mb / raw_s

    rate = args.rate if args.rate > 0 else args.rate_fraction * raw_rate
    deadline_s = args.deadline_ms / 1e3

    n_distinct = max(1, min(args.distinct_samples, test.images.shape[0]))
    samples = [np.ascontiguousarray(test.images[i], dtype=np.float32)
               for i in range(n_distinct)]
    with no_grad():
        refs = [qnn(Tensor(s[None])).data[0] for s in samples]

    registry = ModelRegistry()
    registry.register(args.model, "1", deployed)
    obs_dir = getattr(args, "obs_dir", None)
    extra_cfg = {}
    if obs_dir:
        # full observability stack for this run: request tracing, sampled
        # per-op profiling, flight-recorder dumps and the live status files
        extra_cfg = dict(tracing=True,
                         profile_every=args.profile_every or 4,
                         dump_dir=obs_dir)
    elif args.profile_every:
        extra_cfg = dict(profile_every=args.profile_every)
    server = Server(registry, max_batch=mb, max_queue=args.max_queue,
                    workers=args.workers, default_deadline_s=deadline_s,
                    **extra_cfg)
    try:
        if obs_dir:
            server.start_status_export(obs_dir, interval_s=0.5)
        report = run_poisson_load(
            server, args.model, samples, rate_hz=rate,
            n_requests=args.requests, deadline_s=deadline_s, refs=refs,
            rng=np.random.default_rng(args.seed))
        stats = server.stats().get(args.model, {})
        status = server.status()
        if obs_dir:
            server.dump_traces(os.path.join(obs_dir, "traces.jsonl"))
            server.dump_flight_recorder(
                path=os.path.join(obs_dir, "flight_recorder.json"))
            with open(os.path.join(obs_dir, "profile.json"), "w") as f:
                json.dump(server.profile_report(args.model), f, indent=1)
    finally:
        server.close()

    sustained = (report.achieved_rate_hz / raw_rate) if raw_rate else 0.0
    result = {
        "model": args.model,
        "layout": plan.layout,
        "workers": args.workers,
        "max_batch": mb,
        "max_queue": args.max_queue,
        "raw_imgs_per_sec": round(raw_rate, 1),
        "raw_ms_per_batch": round(raw_s * 1e3, 3),
        "rate_fraction_of_raw": round(rate / raw_rate, 4) if raw_rate else 0,
        "sustained_fraction_of_raw": round(sustained, 4),
        "gateway": report.to_json(),
        "server_stats": stats,
        "status": status,    # operational snapshot: rolling window, SLO burn
        "spec": spec.to_json(),
    }
    with open(args.out, "w") as f:
        json.dump(result, f, indent=1, default=str)
    telemetry.emit("bench_server", model=args.model,
                   offered_rate_hz=report.offered_rate_hz,
                   achieved_rate_hz=report.achieved_rate_hz,
                   sustained_fraction=sustained,
                   p99_latency_ms=report.to_json()["latency_ms"]["p99"],
                   shed=report.shed, failed=report.failed,
                   bit_exact=report.bit_exact)
    lat = report.to_json()["latency_ms"]
    print(f"raw plan      {raw_rate:8.1f} imgs/sec (batch {mb})")
    print(f"gateway       {report.achieved_rate_hz:8.1f} req/sec answered "
          f"({report.offered_rate_hz:.1f} offered, "
          f"{sustained:.0%} of raw)")
    print(f"latency p50 {lat['p50']:.2f}  p95 {lat['p95']:.2f}  "
          f"p99 {lat['p99']:.2f} ms  (deadline {args.deadline_ms:.0f} ms)")
    print(f"ok {report.ok}  shed {report.shed}  failed {report.failed}  "
          f"late {report.late}  mean batch "
          f"{report.to_json()['mean_batch_size']}")
    print(f"bit-exact vs single-sample tree: {report.bit_exact}")
    w = status["models"].get(args.model, {}).get("window", {})
    if w.get("slo"):
        print(f"slo window    burn {w['slo']['error_budget_burn']:.2f} "
              f"(target {w['slo']['target']:.2%}, "
              f"miss {w['deadline_miss']}, shed {w['shed']})")
    if obs_dir:
        print(f"observability -> {obs_dir}/ "
              f"(status.json, metrics.prom, traces.jsonl, "
              f"flight_recorder.json, profile.json)")
    print(f"results -> {args.out}")
    return 0 if (report.bit_exact is not False and report.failed == 0) else 1


def _timeit(fn, x) -> float:
    t0 = time.perf_counter()
    fn(x)
    return time.perf_counter() - t0


def cmd_fleet_bench(args) -> int:
    """Replicated-fleet benchmark: rollout drill + chaos kill + capacity."""
    if args.telemetry_out:
        with telemetry.TelemetrySession(out_dir=args.telemetry_out,
                                        label=f"fleet-bench-{args.model}"):
            rc = _run_fleet_bench(args)
        print(f"telemetry -> {args.telemetry_out}/manifest.json")
        return rc
    return _run_fleet_bench(args)


def _run_fleet_bench(args) -> int:
    """Two stages, one trajectory file.

    **Serving drill** (real deployed model, ``--replicas`` fleet): Poisson
    load with bitwise reference checking, then the canary ladder
    (10% -> 100% -> promote, every answer still bit-exact), then a seeded
    replica kill under load — detected, rerouted, zero requests lost.

    **Capacity** (synthetic sleep-based service time): single server vs a
    fleet of 2 at 80% of twice the measured single-server capacity.  The
    stub sleeps instead of computing because this host serializes numpy on
    one core — sleeping models an accelerator-bound replica and lets the
    fleet's concurrency show; the drill stage above is where real-model
    correctness is proven.
    """
    import time as _time

    from repro.chaos import ChaosPlan
    from repro.fleet import Fleet, FleetConfig
    from repro.server import (ModelRegistry, Server, ServerConfig,
                              run_poisson_load)
    from repro.tensor import no_grad
    from repro.tensor.tensor import Tensor

    seed_everything(args.seed)
    spec = DeploySpec.from_args(args)
    deployed, (_, test, _) = _build_deployed_model(args, spec)
    qnn = deployed.qnn
    deadline_s = args.deadline_ms / 1e3

    n_distinct = max(1, min(args.distinct_samples, test.images.shape[0]))
    samples = [np.ascontiguousarray(test.images[i], dtype=np.float32)
               for i in range(n_distinct)]
    with no_grad():
        refs = [qnn(Tensor(s[None])).data[0] for s in samples]

    # ---------------------------------------------- stage 1: serving drill
    scfg = ServerConfig(max_batch=args.max_batch,
                        default_deadline_s=deadline_s)
    fleet = Fleet(FleetConfig(replicas=args.replicas,
                              health_interval_s=0.1,
                              default_deadline_s=deadline_s, server=scfg))
    fleet.add_model(args.model)
    fleet.register_version(args.model, "1", deployed)
    # the rollout candidate is the same verified bundle under a new version
    # tag, so the drill proves the machinery while staying bit-exact
    fleet.register_version(args.model, "2", deployed)
    with fleet:
        base = run_poisson_load(fleet, args.model, samples,
                                rate_hz=args.rate,
                                n_requests=args.requests,
                                deadline_s=deadline_s, refs=refs,
                                seed=args.seed)
        fleet.begin_canary(args.model, "2", fraction=0.1)
        canary10 = run_poisson_load(fleet, args.model, samples,
                                    rate_hz=args.rate,
                                    n_requests=args.canary_requests,
                                    deadline_s=deadline_s, refs=refs,
                                    seed=args.seed + 1)
        fleet.advance_canary(args.model, 1.0)
        fleet.promote(args.model)
        canary100 = run_poisson_load(fleet, args.model, samples,
                                     rate_hz=args.rate,
                                     n_requests=args.canary_requests,
                                     deadline_s=deadline_s, refs=refs,
                                     seed=args.seed + 2)
        promoted = sorted({r.active_version()
                           for r in fleet.replicas(args.model)})
        chaos = (ChaosPlan(args.seed).add("kill_replica")
                 .run_fleet(fleet, args.model, samples[0],
                            probe_deadline_s=max(deadline_s, 2.0)))
        lost = fleet.requests_lost
        rollout = fleet.status()["models"][args.model]["rollout"]

    drill_bit_exact = (base.bit_exact and canary10.bit_exact
                       and canary100.bit_exact)
    drill_ok = (drill_bit_exact and promoted == ["2"] and chaos.ok
                and chaos.recovered == chaos.injected and lost == 0
                and base.failed + canary10.failed + canary100.failed == 0)

    # ------------------------------------------------- stage 2: capacity
    service_s = args.service_ms / 1e3
    # generous: the capacity stage measures throughput, not tail latency
    stub_deadline = max(5.0, 200.0 * service_s)

    def _stub_runner(batch):
        _time.sleep(service_s)      # models an accelerator-bound replica
        return batch * 2.0

    cap_cfg = ServerConfig(max_batch=1, max_queue=4096, max_linger_s=0.0,
                           default_deadline_s=stub_deadline)
    stub_sample = [np.ones((4,), dtype=np.float32)]

    def _single_run(rate_hz: float, n: int, seed: int):
        reg = ModelRegistry()
        reg.register("stub", "1", runner=_stub_runner)
        with Server(reg, config=cap_cfg) as srv:
            return run_poisson_load(srv, "stub", stub_sample,
                                    rate_hz=rate_hz, n_requests=n,
                                    deadline_s=stub_deadline, seed=seed)

    def _fleet_run(rate_hz: float, n: int, seed: int):
        fleet2 = Fleet(FleetConfig(replicas=2, health_interval_s=0.1,
                                   default_deadline_s=stub_deadline,
                                   server=cap_cfg))
        fleet2.add_model("stub")
        fleet2.register_version("stub", "1", runner=_stub_runner)
        with fleet2:
            return run_poisson_load(fleet2, "stub", stub_sample,
                                    rate_hz=rate_hz, n_requests=n,
                                    deadline_s=stub_deadline, seed=seed)

    # Capacity is measured *saturated* on both sides (offered rate far above
    # what either can serve, so the run is drain-dominated): the achieved
    # rate then reflects service capability, not the luck of one Poisson
    # trace's realized span — a single 250-arrival trace can run ~5% long or
    # short, which is exactly the margin the speedup floor lives in.
    sat_rate = 4.0 / service_s
    sat = _single_run(rate_hz=sat_rate,
                      n=max(50, args.capacity_requests // 4),
                      seed=args.seed)
    capacity_hz = sat.achieved_rate_hz
    fleet_sat = _fleet_run(rate_hz=sat_rate,
                           n=max(100, args.capacity_requests // 2),
                           seed=args.seed)
    speedup = (fleet_sat.achieved_rate_hz / capacity_hz
               if capacity_hz else 0.0)

    # ...and at the 80%-of-fleet-headroom operating point the fleet must
    # actually keep up: every request answered, nothing shed.
    offered = 0.8 * 2.0 * capacity_hz
    keepup = _fleet_run(rate_hz=offered, n=args.capacity_requests,
                        seed=args.seed + 3)
    keepup_ok = keepup.shed == 0 and keepup.failed == 0
    capacity_ok = speedup >= args.speedup_floor and keepup_ok

    row = {
        "model": args.model,
        "replicas": args.replicas,
        "offered_rate_hz": round(args.rate, 2),
        "bit_exact": drill_bit_exact,
        "requests_lost": lost,
        "chaos_ok": chaos.ok,
        "promoted_version": promoted,
        "capacity_single_hz": round(capacity_hz, 1),
        "capacity_fleet2_hz": round(fleet_sat.achieved_rate_hz, 1),
        "speedup_fleet2_vs_single": round(speedup, 3),
        "keepup_ok": keepup_ok,
    }
    result = {
        **row,
        "drill": {
            "base": base.to_json(),
            "canary_10pct": canary10.to_json(),
            "post_promote": canary100.to_json(),
            "rollout": rollout,
            "chaos": chaos.to_json(),
        },
        "capacity": {
            "service_ms": args.service_ms,
            "measured_single_capacity_hz": round(capacity_hz, 1),
            "single_saturated": sat.to_json(),
            "fleet_saturated": fleet_sat.to_json(),
            "keepup_offered_rate_hz": round(offered, 1),
            "keepup": keepup.to_json(),
            "speedup_floor": args.speedup_floor,
        },
        "spec": spec.to_json(),
        "trajectory": _bench_trajectory(args.out) + [row],
    }
    with open(args.out, "w") as f:
        json.dump(result, f, indent=1, default=str)
    telemetry.emit("bench_fleet", model=args.model, replicas=args.replicas,
                   bit_exact=drill_bit_exact, requests_lost=lost,
                   chaos_ok=chaos.ok, speedup=speedup)

    print(f"drill         {args.replicas}-replica fleet, "
          f"{base.requests + canary10.requests + canary100.requests} "
          f"requests, bit-exact {drill_bit_exact}, lost {lost}")
    print(f"rollout       canary 10% -> 100% -> promoted "
          f"{'/'.join(promoted)} (state {rollout['state']})")
    print(chaos.render())
    print(f"capacity      single {capacity_hz:7.1f} req/s   "
          f"fleet-of-2 {fleet_sat.achieved_rate_hz:7.1f} req/s   "
          f"speedup {speedup:.2f}x (floor {args.speedup_floor}x)")
    print(f"keep-up       {offered:.1f} req/s offered -> "
          f"{keepup.achieved_rate_hz:.1f} achieved, "
          f"{keepup.shed} shed, {keepup.failed} failed "
          f"({'ok' if keepup_ok else 'NOT OK'})")
    print(f"results -> {args.out}")
    return 0 if (drill_ok and capacity_ok) else 1


def _render_top(status: dict) -> str:
    """One frame of the live gateway view from a status.json snapshot."""
    lines = [f"repro gateway  up {status.get('uptime_s', 0):.0f}s  "
             f"tracing={'on' if status.get('tracing') else 'off'}  "
             f"traces={status.get('traces_held', 0)}"]
    header = (f"{'model':<16} {'rps':>7} {'p50ms':>7} {'p99ms':>7} "
              f"{'queue':>5} {'shed':>5} {'miss':>5} {'burn':>6} {'workers':>7}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, m in sorted(status.get("models", {}).items()):
        w = m.get("window", {})
        slo = w.get("slo", {})
        lines.append(
            f"{name:<16} {w.get('throughput_hz', 0):>7.1f} "
            f"{w.get('latency_ms', {}).get('p50', 0):>7.2f} "
            f"{w.get('latency_ms', {}).get('p99', 0):>7.2f} "
            f"{m.get('queue_depth', 0):>5d} {w.get('shed', 0):>5d} "
            f"{w.get('deadline_miss', 0):>5d} "
            f"{slo.get('error_budget_burn', 0):>6.2f} "
            f"{m.get('workers_alive', 0):>7d}")
        fr = m.get("flight_recorder", {})
        if fr.get("last_dump"):
            lines.append(f"  last flight dump: {fr['last_dump'].get('reason')}"
                         f" ({fr['last_dump'].get('num_events')} events)")
        prof = m.get("profile")
        if prof:
            hot = ", ".join(f"{r['kind']}:{r['share']:.0%}"
                            for r in prof.get("per_kind", [])[:3])
            lines.append(f"  profile: {prof['attributed_fraction']:.0%} "
                         f"attributed over {prof['sampled_batches']} sampled "
                         f"batches  [{hot}]")
    return "\n".join(lines)


def cmd_top(args) -> int:
    """Live terminal view of a gateway's exported status directory.

    Tails the ``status.json`` written by ``Server.start_status_export``
    (or by ``serve-bench --obs-dir``) — the file-based stand-in for an
    HTTP status endpoint.
    """
    path = os.path.join(args.dir, "status.json")
    frames = 1 if args.once else args.iterations
    i = 0
    while frames <= 0 or i < frames:
        i += 1
        try:
            with open(path) as f:
                status = json.load(f)
        except FileNotFoundError:
            print(f"waiting for {path} ...")
            status = None
        except json.JSONDecodeError:
            status = None      # mid-write of a non-atomic producer; retry
        if status is not None:
            frame = _render_top(status)
            if not args.once:
                print("\x1b[2J\x1b[H", end="")
            print(frame)
            if status.get("closing") and not args.once:
                print("(gateway closing; exiting)")
                return 0
        if args.once or (frames > 0 and i >= frames):
            break
        time.sleep(args.interval)
    return 0 if status is not None else 1


def cmd_trace(args) -> int:
    """Extract one request's span tree from a traces.jsonl dump."""
    from repro.telemetry import live

    records = live.load_jsonl(args.traces, trace_id=args.request_id)
    if not records:
        print(f"no spans for request {args.request_id} in {args.traces}")
        return 1
    roots, orphans = live.build_tree(records)
    print(f"request {args.request_id}: {len(records)} spans, "
          f"{len(roots)} root(s), {len(orphans)} orphan(s)")
    print(live.format_tree(roots))
    if orphans:
        for r in orphans:
            print(f"orphan: {r['name']} (parent {r['parent_id']} missing)")
    if args.chrome:
        with open(args.chrome, "w") as f:
            json.dump(live.to_chrome_trace(records), f, indent=1)
        print(f"chrome trace -> {args.chrome}")
    return 0


def cmd_verify_artifacts(args) -> int:
    """Audit an exported artifact directory; exit 2 on any ERROR finding.

    Same contract as ``lint``: human-readable report by default,
    ``--json`` for machine-readable findings, so CI can gate on it.
    """
    from repro.export.integrity import verify_artifacts

    report = verify_artifacts(args.dir, deep=not args.shallow)
    if args.json:
        print(json.dumps(report.to_json(), indent=1))
    else:
        print(report.render())
    return 0 if report.ok else 2


def cmd_chaos(args) -> int:
    """Seeded fault-injection run; exit 2 when any fault goes undetected.

    Artifact faults always run (against copies of the target directory —
    the original is never modified); when a freshly deployed model is in
    play (no ``--dir``, or ``--server``), its compiled plan also gets the
    plan-mutation schedule — the static verifier must refuse every mutant;
    ``--server`` additionally stands up the online gateway and runs the
    server-fault schedule against it, then a 3-replica fleet for the
    fleet-fault schedule (replica kill / partition: eject, reroute with
    zero lost requests, self-heal); ``--sdc`` runs the live-corruption
    schedule against an SDC-defended fleet (flagged, quarantined, healed,
    zero lost).
    """
    import shutil
    import tempfile

    from repro.chaos import ChaosPlan

    seed_everything(args.seed)
    tmp = None
    deployed = sample = None
    export_dir = args.dir
    try:
        if export_dir is None or args.server or args.sdc:
            spec = DeploySpec.from_args(args)
            if export_dir is None:
                tmp = tempfile.mkdtemp(prefix="repro-chaos-")
                export_dir = os.path.join(tmp, "artifacts")
                spec = spec.evolve(export_dir=export_dir,
                                   formats=("dec", "hex", "bin", "qint"))
            deployed, (_, test, _) = _build_deployed_model(args, spec)
            sample = np.ascontiguousarray(test.images[0], dtype=np.float32)

        plan = ChaosPlan.artifact_default(args.seed, rounds=args.rounds)
        if not any(f.endswith(".qint.json") for f in os.listdir(export_dir)):
            plan = ChaosPlan(args.seed)
            for _ in range(args.rounds):
                for name in ("flip_bits", "truncate_file", "stale_manifest"):
                    plan.add(name)
            print("note: no qint artifacts in target; skipping corrupt_header")
        report = plan.run_artifacts(export_dir)

        if deployed is not None and deployed.plan is not None:
            module_bits = (deployed.lint_report.min_accum_bits()
                           if deployed.lint_report is not None else None)
            report.extend(
                ChaosPlan.plan_default(args.seed, rounds=args.rounds)
                .run_plan(deployed.plan, module_bits=module_bits))
        else:
            print("note: no freshly compiled plan (ran against --dir); "
                  "skipping plan-mutation schedule", file=sys.stderr)

        if args.server:
            from repro.runtime.serve import _can_fork
            from repro.server import ModelRegistry, Server

            registry = ModelRegistry()
            registry.register(args.model, "1", deployed)
            pooled = args.workers >= 2 and _can_fork()
            splan = (ChaosPlan.server_default(args.seed) if pooled
                     else ChaosPlan(args.seed).add("delay_clock"))
            if not pooled:
                print("note: fork unavailable or --workers < 2; server "
                      "schedule reduced to delay_clock")
            with Server(registry, max_batch=8, workers=args.workers,
                        default_deadline_s=2.0) as srv:
                report.extend(splan.run_server(srv, args.model, sample))

            # the same deployed model behind a 3-replica fleet: replica
            # kill + partition must eject, reroute (zero lost) and heal
            from repro.fleet import Fleet, FleetConfig
            from repro.server import ServerConfig

            fleet = Fleet(FleetConfig(
                replicas=3, health_interval_s=0.1, default_deadline_s=2.0,
                server=ServerConfig(max_batch=8, default_deadline_s=2.0)))
            fleet.add_model(args.model)
            fleet.register_version(args.model, "1", deployed)
            with fleet:
                report.extend(ChaosPlan.fleet_default(args.seed)
                              .run_fleet(fleet, args.model, sample))

        if args.sdc:
            # live-corruption schedule against an SDC-defended fleet:
            # every fault must be flagged (ABFT / scrub / golden probe),
            # the victim quarantined and a clean replacement spawned,
            # with zero lost requests
            from repro.fleet import Fleet, FleetConfig
            from repro.server import ServerConfig

            fleet = Fleet(FleetConfig(
                replicas=3, health_interval_s=0.1, default_deadline_s=2.0,
                golden_every=2, golden_limit=2, scrub_every=2,
                server=ServerConfig(max_batch=8, default_deadline_s=2.0,
                                    abft_every=4)))
            fleet.add_model(args.model)
            fleet.register_version(args.model, "1", deployed)
            with fleet:
                report.extend(ChaosPlan.sdc_default(args.seed)
                              .run_sdc(fleet, args.model, sample))
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)

    if args.json:
        print(json.dumps(report.to_json(), indent=1))
    else:
        print(report.render())
    return 0 if report.ok else 2


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro.cli", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("train", help="supervised fp32 training")
    _common(p)
    p.add_argument("--epochs", type=int, default=6)
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--lr", type=float, default=0.1)
    p.add_argument("--out", default="fp32.npz")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("qat", help="quantization-aware training")
    _common(p)
    p.add_argument("--epochs", type=int, default=6)
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--lr", type=float, default=0.1)
    p.add_argument("--out", default="qat.npz")
    p.set_defaults(func=cmd_qat)

    p = sub.add_parser("ptq", help="post-training quantization of a checkpoint")
    _common(p)
    p.add_argument("--ckpt", required=True)
    p.add_argument("--calib-batches", type=int, default=8)
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--out", default="ptq.npz")
    p.set_defaults(func=cmd_ptq)

    p = sub.add_parser("export", help="fuse + integer-only export of a Q-model checkpoint")
    _common(p)
    _deploy_flags(p, calib_batches=8)
    p.add_argument("--ckpt", required=True)
    p.add_argument("--formats", nargs="+", default=["dec", "hex"],
                   choices=("dec", "hex", "bin", "qint"))
    p.add_argument("--out-dir", default="t2c_out")
    p.add_argument("--telemetry-out", default=None, metavar="DIR",
                   help="also capture a TelemetrySession (trace/events/"
                        "metrics/saturation) into DIR")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("lint", help="static integer-datapath verification "
                                    "(interval bounds + deploy contracts)")
    _common(p)
    _deploy_flags(p)
    p.add_argument("--purity", action="store_true",
                   help="AST purity lint over the deploy-path sources only "
                        "(no model is built; ideal for CI)")
    p.add_argument("--ckpt", default=None,
                   help="optional Q-model checkpoint to lint instead of "
                        "freshly calibrated weights")
    p.add_argument("--repacked", action="store_true",
                   help="lint the vanilla re-packed model instead of the "
                        "fused Q-model")
    p.add_argument("--accum-bits", type=int, default=32,
                   help="accumulator register width to verify against")
    p.add_argument("--plan", action="store_true",
                   help="also compile the deploy model and run the plan-IR "
                        "verifier (dataflow/no-alias/overflow/shift proofs)")
    p.add_argument("--fail-on", choices=("error", "warning"), default="error",
                   help="exit-2 threshold: 'warning' makes WARN findings "
                        "fail too (strict CI mode)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable findings on stdout")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("inspect", help="full observability run: trace + events "
                                       "+ per-layer profile + saturation audit")
    _common(p)
    _deploy_flags(p)
    p.add_argument("--epochs", type=int, default=1,
                   help="fp32 warm-up epochs before quantization (0 to skip)")
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--lr", type=float, default=0.1)
    p.add_argument("--ckpt", default=None,
                   help="optional Q-model checkpoint to load instead of "
                        "the warm-up weights")
    p.add_argument("--telemetry-out", default="telemetry_out", metavar="DIR")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("bench", help="compiled-runtime throughput benchmark "
                                     "(plan vs interpreted tree)")
    _common(p)
    _deploy_flags(p, calib_batches=2, runtime="auto")
    p.add_argument("--ckpt", default=None,
                   help="optional Q-model checkpoint to benchmark")
    p.add_argument("--runtime", choices=("auto", "channel", "batch"),
                   default="auto", help="plan register layout")
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--warmup", type=int, default=2,
                   help="untimed warm-up batches (binding + kernel build)")
    p.add_argument("--batches", type=int, default=5,
                   help="timed steady-state batches")
    p.add_argument("--tree-batches", type=int, default=2,
                   help="timed interpreted-baseline batches")
    p.add_argument("--workers", type=int, default=0,
                   help=">=2 shards batches across a shared-memory worker pool")
    p.add_argument("--batch-sizes", type=int, nargs="+", default=None,
                   metavar="N", help="extra batch sizes for the latency "
                                     "percentile sweep (p50/p95/p99)")
    p.add_argument("--out", default="BENCH_runtime.json")
    p.add_argument("--telemetry-out", default=None, metavar="DIR",
                   help="capture per-op spans into a TelemetrySession in DIR")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("serve-bench", help="online gateway benchmark: Poisson "
                                           "open-loop load, BENCH_server.json")
    _common(p)
    _deploy_flags(p, calib_batches=2, runtime="auto")
    p.add_argument("--ckpt", default=None,
                   help="optional Q-model checkpoint to serve")
    p.add_argument("--runtime", choices=("auto", "channel", "batch"),
                   default="auto", help="plan register layout")
    p.add_argument("--requests", type=int, default=300,
                   help="total Poisson arrivals to fire")
    p.add_argument("--rate", type=float, default=0.0,
                   help="arrival rate in req/s; 0 derives it from "
                        "--rate-fraction of measured raw plan throughput")
    p.add_argument("--rate-fraction", type=float, default=0.8,
                   help="offered load as a fraction of raw plan throughput "
                        "when --rate is 0")
    p.add_argument("--deadline-ms", type=float, default=250.0,
                   help="per-request deadline (batching slack + admission)")
    p.add_argument("--max-batch", type=int, default=16,
                   help="gateway micro-batch size cap")
    p.add_argument("--max-queue", type=int, default=512,
                   help="bounded queue depth before load shedding")
    p.add_argument("--workers", type=int, default=0,
                   help=">=2 executes batches on a supervised worker pool")
    p.add_argument("--distinct-samples", type=int, default=32,
                   help="distinct inputs cycled through the request stream")
    p.add_argument("--raw-batches", type=int, default=5,
                   help="timed batches for the raw-throughput baseline")
    p.add_argument("--out", default="BENCH_server.json")
    p.add_argument("--telemetry-out", default=None, metavar="DIR",
                   help="capture spans/events/metrics into a "
                        "TelemetrySession in DIR")
    p.add_argument("--obs-dir", default=None, metavar="DIR",
                   help="enable the full observability stack (tracing, "
                        "per-op profiling, flight recorder, live status "
                        "export) and write status.json / metrics.prom / "
                        "traces.jsonl / flight_recorder.json / profile.json "
                        "to DIR (watch live with `repro.cli top DIR`)")
    p.add_argument("--profile-every", type=int, default=0,
                   help="sample every Nth batch for per-op profiling "
                        "(0 = off; --obs-dir defaults it to 4)")
    p.set_defaults(func=cmd_serve_bench)

    p = sub.add_parser("fleet-bench",
                       help="replicated-fleet benchmark: canary rollout "
                            "drill + seeded replica kill (zero lost) + "
                            "fleet-of-2 capacity, BENCH_fleet.json")
    _common(p)
    _deploy_flags(p, calib_batches=2, runtime="auto")
    p.add_argument("--ckpt", default=None,
                   help="optional Q-model checkpoint to serve")
    p.add_argument("--runtime", choices=("auto", "channel", "batch"),
                   default="auto", help="plan register layout")
    p.add_argument("--replicas", type=int, default=3,
                   help="replica count for the serving drill")
    p.add_argument("--requests", type=int, default=150,
                   help="Poisson arrivals for the baseline drill run")
    p.add_argument("--canary-requests", type=int, default=80,
                   help="arrivals per canary-ladder step")
    p.add_argument("--rate", type=float, default=50.0,
                   help="drill arrival rate in req/s")
    p.add_argument("--deadline-ms", type=float, default=250.0,
                   help="per-request deadline for the drill")
    p.add_argument("--max-batch", type=int, default=8,
                   help="per-replica micro-batch size cap")
    p.add_argument("--distinct-samples", type=int, default=16,
                   help="distinct inputs cycled through the request stream")
    p.add_argument("--service-ms", type=float, default=20.0,
                   help="synthetic per-request service time for the "
                        "capacity stage (sleep-based: models an "
                        "accelerator-bound replica; keep well above "
                        "per-request scheduling overhead ~0.5 ms)")
    p.add_argument("--capacity-requests", type=int, default=400,
                   help="arrivals for each capacity run")
    p.add_argument("--speedup-floor", type=float, default=1.5,
                   help="required fleet-of-2 / single-server throughput "
                        "ratio at 80%% offered")
    p.add_argument("--out", default="BENCH_fleet.json")
    p.add_argument("--telemetry-out", default=None, metavar="DIR",
                   help="capture spans/events/metrics into a "
                        "TelemetrySession in DIR")
    p.set_defaults(func=cmd_fleet_bench)

    p = sub.add_parser("top", help="live terminal view of a gateway status "
                                   "directory (see serve-bench --obs-dir / "
                                   "Server.start_status_export)")
    p.add_argument("dir", help="directory containing status.json")
    p.add_argument("--interval", type=float, default=1.0,
                   help="refresh period in seconds")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit (no screen clearing)")
    p.add_argument("--iterations", type=int, default=0,
                   help="stop after N frames (0 = until gateway closes)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("trace", help="extract one request's span tree from "
                                     "a traces.jsonl dump")
    p.add_argument("request_id", type=int, help="request (= trace) id")
    p.add_argument("--traces", default="traces.jsonl",
                   help="span JSONL written by serve-bench --obs-dir or "
                        "Server.dump_traces")
    p.add_argument("--chrome", default=None, metavar="OUT",
                   help="also write the request as Chrome trace JSON")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("verify-artifacts",
                       help="audit an exported artifact directory: manifest "
                            "digest, per-file checksums, header/payload "
                            "consistency (exit 2 on failure)")
    p.add_argument("dir", help="artifact directory (contains manifest.json)")
    p.add_argument("--shallow", action="store_true",
                   help="checksums + manifest only; skip per-tensor decode")
    p.add_argument("--json", action="store_true",
                   help="machine-readable findings on stdout")
    p.set_defaults(func=cmd_verify_artifacts)

    p = sub.add_parser("chaos", help="seeded fault-injection run against the "
                                     "export/serve pipeline (exit 2 on any "
                                     "undetected fault)")
    _common(p)
    _deploy_flags(p, calib_batches=2, runtime="auto")
    p.add_argument("--dir", default=None,
                   help="existing artifact directory to attack (faults hit "
                        "copies; the directory is never modified); default "
                        "builds and exports a fresh model")
    p.add_argument("--rounds", type=int, default=1,
                   help="passes over the artifact-fault catalog")
    p.add_argument("--server", action="store_true",
                   help="also run the server-fault schedule (kill/stall "
                        "worker, clock skew) against a live gateway")
    p.add_argument("--workers", type=int, default=2,
                   help="gateway pool size for --server faults")
    p.add_argument("--sdc", action="store_true",
                   help="also run the silent-data-corruption schedule "
                        "(live weight/arena/golden corruption) against an "
                        "SDC-defended 3-replica fleet: every fault must be "
                        "detected, quarantined and healed")
    p.add_argument("--ckpt", default=None,
                   help="optional Q-model checkpoint for the built model")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")
    p.set_defaults(func=cmd_chaos)
    return ap


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
