"""Command-line interface for the compress-and-deploy workflow.

Usage (module form)::

    python -m repro.cli qat     --model resnet20 --wbit 4 --abit 4 --wq sawb --aq pact \
                                --epochs 5 --out ckpt.npz
    python -m repro.cli ptq     --model resnet20 --ckpt ckpt.npz --wbit 8 --abit 8
    python -m repro.cli export  --model resnet20 --ckpt ckpt.npz --wbit 4 --abit 4 \
                                --formats dec hex qint --out-dir deploy/
    python -m repro.cli inspect --model resnet20 --epochs 1 --telemetry-out telemetry_out/
    python -m repro.cli lint    --model vgg8 --wbit 8 --abit 8      # static verification
    python -m repro.cli lint    --purity                            # AST pass only, no model
    python -m repro.cli bench   --model resnet20 --batch-size 64    # compiled runtime

Everything runs on the synthetic datasets (``--dataset`` picks which); the
CLI exists so a hardware designer can drive the whole flow without writing
Python.  ``inspect`` runs the full compress→fuse→export flow under a
:class:`~repro.telemetry.report.TelemetrySession` and writes the Chrome
trace, the JSONL event log, the per-layer profile and the integer-datapath
saturation audit to disk.

``export``, ``lint``, ``inspect`` and ``bench`` all translate their flags
into one :class:`~repro.core.DeploySpec` (``DeploySpec.from_args``) and
share :func:`_build_deployed_model`, so the four subcommands exercise the
identical deploy pipeline.
"""
from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

import numpy as np

from repro import telemetry
from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.data import make_dataset
from repro.data.transforms import standard_train_transform
from repro.models import MODELS, build_model
from repro.trainer import PTQTrainer, QATTrainer, Trainer, evaluate
from repro.utils import seed_everything
from repro.utils.checkpoint import load_checkpoint, save_checkpoint

MODEL_KWARGS = {
    "resnet20": dict(width=8), "resnet18": dict(width=8), "resnet50": dict(width=8),
    "mobilenet-v1": dict(width_mult=1.0), "vgg8": dict(width_mult=1.0),
    "vit-7": dict(embed_dim=64),
}


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", choices=sorted(MODELS), default="resnet20")
    parser.add_argument("--dataset", default="synthetic-cifar10")
    parser.add_argument("--train-size", type=int, default=2000)
    parser.add_argument("--test-size", type=int, default=500)
    parser.add_argument("--noise", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--wbit", type=int, default=8)
    parser.add_argument("--abit", type=int, default=8)
    parser.add_argument("--wq", default="minmax_channel")
    parser.add_argument("--aq", default="minmax")


def _deploy_flags(parser: argparse.ArgumentParser, calib_batches: int = 4,
                  runtime: str = "none") -> None:
    """Flags shared by every subcommand that runs the deploy pipeline;
    ``DeploySpec.from_args`` translates them into the spec."""
    parser.add_argument("--calib-batches", type=int, default=calib_batches)
    parser.add_argument("--fusion", choices=("channel", "prefuse"),
                        default="channel")
    parser.add_argument("--float-scale", action="store_true")
    parser.set_defaults(runtime=runtime)


def _data(args):
    ds = make_dataset(args.dataset, noise=args.noise)
    n_cls = ds.num_classes
    train, test = ds.splits(args.train_size, args.test_size,
                            transform=standard_train_transform())
    return train, test, n_cls


def _model(args, num_classes):
    return build_model(args.model, num_classes=num_classes, **MODEL_KWARGS[args.model])


def _build_deployed_model(args, spec, model=None, data=None, before_deploy=None):
    """Shared deploy path for ``export``/``lint``/``inspect``/``bench``.

    Builds (or reuses) the float model, quantizes it with the common
    ``--wbit/--abit/--wq/--aq`` flags, loads ``--ckpt`` when given,
    calibrates on the training split, then hands the Q-model to
    :func:`repro.core.deploy` under ``spec``.  ``before_deploy`` runs on the
    calibrated Q-model right before conversion (``inspect`` instruments it
    there).  Returns ``(deployed, (train, test, num_classes))``.
    """
    from repro.core.t2c import calibrate_model

    train, test, n_cls = data if data is not None else _data(args)
    if model is None:
        model = _model(args, n_cls)
    qcfg = QConfig(args.wbit, args.abit, wq=args.wq, aq=args.aq)
    qm = quantize_model(model, qcfg)
    if getattr(args, "ckpt", None):
        load_checkpoint(qm, args.ckpt)
    # re-calibration is cheap and makes the checkpoint self-contained even if
    # it was saved before calibration
    calibrate_model(qm, [train.images[i * 64:(i + 1) * 64]
                         for i in range(args.calib_batches)])
    if before_deploy is not None:
        before_deploy(qm, train, test)
    return deploy(qm, spec), (train, test, n_cls)


def cmd_train(args) -> int:
    seed_everything(args.seed)
    train, test, n_cls = _data(args)
    model = _model(args, n_cls)
    Trainer(model, train, test, epochs=args.epochs, batch_size=args.batch_size,
            lr=args.lr, verbose=True).fit()
    acc = evaluate(model, test)
    save_checkpoint(model, args.out, accuracy=acc)
    print(f"fp32 accuracy {acc:.4f}; checkpoint -> {args.out}")
    return 0


def cmd_qat(args) -> int:
    seed_everything(args.seed)
    train, test, n_cls = _data(args)
    model = _model(args, n_cls)
    qcfg = QConfig(args.wbit, args.abit, wq=args.wq, aq=args.aq)
    trainer = QATTrainer(model, qcfg=qcfg, train_set=train, test_set=test,
                         epochs=args.epochs, batch_size=args.batch_size,
                         lr=args.lr, verbose=True)
    trainer.fit()
    acc = trainer.evaluate()
    save_checkpoint(trainer.qmodel, args.out, accuracy=acc)
    print(f"QAT W{args.wbit}/A{args.abit} accuracy {acc:.4f}; checkpoint -> {args.out}")
    return 0


def cmd_ptq(args) -> int:
    seed_everything(args.seed)
    train, test, n_cls = _data(args)
    model = _model(args, n_cls)
    load_checkpoint(model, args.ckpt)
    qcfg = QConfig(args.wbit, args.abit, wq=args.wq, aq=args.aq)
    qm = PTQTrainer(model, train, qcfg=qcfg, calib_batches=args.calib_batches,
                    batch_size=args.batch_size,
                    reconstruct=args.wq == "adaround").fit()
    acc = evaluate(qm, test)
    save_checkpoint(qm, args.out, accuracy=acc)
    print(f"PTQ W{args.wbit}/A{args.abit} accuracy {acc:.4f}; checkpoint -> {args.out}")
    return 0


def cmd_export(args) -> int:
    if getattr(args, "telemetry_out", None):
        with telemetry.TelemetrySession(out_dir=args.telemetry_out,
                                        label=f"export-{args.model}"):
            rc = _run_export(args)
        print(f"telemetry -> {args.telemetry_out}/manifest.json")
        return rc
    return _run_export(args)


def _run_export(args) -> int:
    seed_everything(args.seed)
    spec = DeploySpec.from_args(args)
    deployed, (_, test, _) = _build_deployed_model(args, spec)
    with telemetry.trace("evaluate_integer"):
        acc = evaluate(deployed.qnn, test)
    telemetry.emit("integer_accuracy", accuracy=acc)
    print(f"integer-only accuracy {acc:.4f}; exported -> {args.out_dir}/manifest.json")
    return 0


def cmd_inspect(args) -> int:
    """Run the full compress→fuse→export flow with telemetry on; write the
    trace, event log, per-layer profile and saturation audit to disk."""
    seed_everything(args.seed)
    out_dir = args.telemetry_out
    from repro.core.analysis import format_report, weight_quant_report
    from repro.core.profiling import profile_macs, summarize_profile
    from repro.tensor import no_grad
    from repro.tensor.tensor import Tensor

    with telemetry.TelemetrySession(out_dir=out_dir,
                                    label=f"inspect-{args.model}") as session:
        with telemetry.trace("inspect", model=args.model,
                             wbit=args.wbit, abit=args.abit):
            train, test, n_cls = _data(args)
            model = _model(args, n_cls)
            if args.epochs > 0:
                Trainer(model, train, test, epochs=args.epochs,
                        batch_size=args.batch_size, lr=args.lr,
                        verbose=True).fit()

            input_shape = tuple(train.images[0].shape)
            with telemetry.trace("profile_macs"):
                profile_rows = profile_macs(model, input_shape=input_shape)

            reports = {}

            def before_deploy(qm, train_, test_):
                reports["weight_rows"] = weight_quant_report(qm)
                # per-layer timing + activation stats over one batch
                with telemetry.trace("instrumented_eval"):
                    with telemetry.instrument(qm) as inst:
                        with no_grad():
                            qm.eval()
                            qm(Tensor(test_.images[:args.batch_size]))
                    reports["layer_rows"] = inst.report()

            # integer-only deploy path: this is where saturation counters fill
            spec = DeploySpec.from_args(args)
            deployed, _ = _build_deployed_model(
                args, spec, model=model, data=(train, test, n_cls),
                before_deploy=before_deploy)
            with telemetry.trace("evaluate_integer"):
                acc = evaluate(deployed.qnn, test)
            telemetry.emit("integer_accuracy", accuracy=acc)

        sat_rows = telemetry.saturation_report()
        _write_inspect_report(out_dir, profile_rows, reports["layer_rows"],
                              reports["weight_rows"], sat_rows,
                              summarize_profile(profile_rows), acc)

    print(f"integer-only accuracy {acc:.4f}")
    if sat_rows:
        worst = sat_rows[0]
        print(f"worst saturation: {worst['layer']} ({worst['kind']}) "
              f"{worst['clipped']}/{worst['total']} = {worst['rate']:.2%}")
    print(f"telemetry -> {out_dir}/ (manifest.json, trace.json, events.jsonl, "
          f"metrics.json, saturation.json, layer_report.json, report.txt)")
    return 0


def _write_inspect_report(out_dir, profile_rows, layer_rows, weight_rows,
                          sat_rows, summary, accuracy) -> None:
    from repro.core.analysis import format_report

    with open(os.path.join(out_dir, "layer_report.json"), "w") as f:
        json.dump({
            "summary": {**summary, "integer_accuracy": accuracy},
            "profile": profile_rows,
            "layers": layer_rows,
            "weight_quant": weight_rows,
            "saturation": sat_rows,
        }, f, indent=1, default=str)
    sections = [
        ("workload profile (MACs)", profile_rows),
        ("per-layer forward timing / activation stats", layer_rows),
        ("weight quantization", weight_rows),
        ("integer-datapath saturation audit", sat_rows),
    ]
    with open(os.path.join(out_dir, "report.txt"), "w") as f:
        f.write(f"integer-only accuracy: {accuracy:.4f}\n")
        for title, rows in sections:
            f.write(f"\n== {title} ==\n{format_report(rows)}\n")


def cmd_lint(args) -> int:
    """Static verification: interval engine + contracts (or --purity only).

    Exit code 2 when any ERROR-level finding survives, so CI can gate on it.
    """
    from repro.lint import lint_model, lint_sources

    if args.purity:
        rep = lint_sources()
    else:
        seed_everything(args.seed)
        spec = DeploySpec.from_args(args)
        deployed, _ = _build_deployed_model(args, spec)
        target = deployed.qnn if args.repacked else deployed.fused
        rep = lint_model(target, accum_bits=args.accum_bits)
    if args.json:
        print(json.dumps(rep.to_json(), indent=1))
    else:
        print(rep.render())
    return 0 if rep.ok else 2


def cmd_bench(args) -> int:
    """Throughput benchmark: compiled runtime plan vs the interpreted tree."""
    if args.telemetry_out:
        with telemetry.TelemetrySession(out_dir=args.telemetry_out,
                                        label=f"bench-{args.model}"):
            rc = _run_bench(args)
        print(f"telemetry -> {args.telemetry_out}/manifest.json")
        return rc
    return _run_bench(args)


def _run_bench(args) -> int:
    from repro.tensor import no_grad
    from repro.tensor.tensor import Tensor

    seed_everything(args.seed)
    spec = DeploySpec.from_args(args)
    deployed, (_, test, _) = _build_deployed_model(args, spec)
    plan, qnn = deployed.plan, deployed.qnn

    bs = args.batch_size
    pool = test.images
    if pool.shape[0] < bs:
        pool = np.concatenate([pool] * (-(-bs // pool.shape[0])))
    batch = np.ascontiguousarray(pool[:bs], dtype=np.float32)

    with no_grad():
        ref = qnn(Tensor(batch)).data
    exact = bool(np.array_equal(ref, plan(batch)))

    for _ in range(args.warmup):
        plan(batch)
    plan.reset_op_stats()
    t0 = time.perf_counter()
    if args.workers >= 2:
        for _ in plan.serve([batch] * args.batches, workers=args.workers):
            pass
    else:
        for _ in range(args.batches):
            plan(batch)
    plan_s = (time.perf_counter() - t0) / args.batches

    t0 = time.perf_counter()
    for _ in range(args.tree_batches):
        with no_grad():
            qnn(Tensor(batch))
    tree_s = (time.perf_counter() - t0) / max(1, args.tree_batches)

    per_op = [r for r in plan.op_report() if r["calls"]]
    result = {
        "model": args.model,
        "layout": plan.layout,
        "workers": args.workers,
        "batch_size": bs,
        "batches": args.batches,
        "bit_exact": exact,
        "plan_ms_per_batch": plan_s * 1e3,
        "tree_ms_per_batch": tree_s * 1e3,
        "imgs_per_sec": bs / plan_s,
        "speedup": tree_s / plan_s,
        "per_op": per_op,
        "spec": spec.to_json(),
    }
    with open(args.out, "w") as f:
        json.dump(result, f, indent=1)
    telemetry.emit("bench_runtime", model=args.model, layout=plan.layout,
                   imgs_per_sec=result["imgs_per_sec"],
                   speedup=result["speedup"], bit_exact=exact)
    print(f"bit-exact vs tree: {exact}")
    print(f"plan[{plan.layout}] {plan_s * 1e3:8.1f} ms/batch "
          f"({result['imgs_per_sec']:.1f} imgs/sec)")
    print(f"tree           {tree_s * 1e3:8.1f} ms/batch  "
          f"-> speedup {result['speedup']:.2f}x")
    print(f"results -> {args.out}")
    return 0 if exact else 1


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro.cli", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("train", help="supervised fp32 training")
    _common(p)
    p.add_argument("--epochs", type=int, default=6)
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--lr", type=float, default=0.1)
    p.add_argument("--out", default="fp32.npz")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("qat", help="quantization-aware training")
    _common(p)
    p.add_argument("--epochs", type=int, default=6)
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--lr", type=float, default=0.1)
    p.add_argument("--out", default="qat.npz")
    p.set_defaults(func=cmd_qat)

    p = sub.add_parser("ptq", help="post-training quantization of a checkpoint")
    _common(p)
    p.add_argument("--ckpt", required=True)
    p.add_argument("--calib-batches", type=int, default=8)
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--out", default="ptq.npz")
    p.set_defaults(func=cmd_ptq)

    p = sub.add_parser("export", help="fuse + integer-only export of a Q-model checkpoint")
    _common(p)
    _deploy_flags(p, calib_batches=8)
    p.add_argument("--ckpt", required=True)
    p.add_argument("--formats", nargs="+", default=["dec", "hex"],
                   choices=("dec", "hex", "bin", "qint"))
    p.add_argument("--out-dir", default="t2c_out")
    p.add_argument("--telemetry-out", default=None, metavar="DIR",
                   help="also capture a TelemetrySession (trace/events/"
                        "metrics/saturation) into DIR")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("lint", help="static integer-datapath verification "
                                    "(interval bounds + deploy contracts)")
    _common(p)
    _deploy_flags(p)
    p.add_argument("--purity", action="store_true",
                   help="AST purity lint over the deploy-path sources only "
                        "(no model is built; ideal for CI)")
    p.add_argument("--ckpt", default=None,
                   help="optional Q-model checkpoint to lint instead of "
                        "freshly calibrated weights")
    p.add_argument("--repacked", action="store_true",
                   help="lint the vanilla re-packed model instead of the "
                        "fused Q-model")
    p.add_argument("--accum-bits", type=int, default=32,
                   help="accumulator register width to verify against")
    p.add_argument("--json", action="store_true",
                   help="machine-readable findings on stdout")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("inspect", help="full observability run: trace + events "
                                       "+ per-layer profile + saturation audit")
    _common(p)
    _deploy_flags(p)
    p.add_argument("--epochs", type=int, default=1,
                   help="fp32 warm-up epochs before quantization (0 to skip)")
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--lr", type=float, default=0.1)
    p.add_argument("--ckpt", default=None,
                   help="optional Q-model checkpoint to load instead of "
                        "the warm-up weights")
    p.add_argument("--telemetry-out", default="telemetry_out", metavar="DIR")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("bench", help="compiled-runtime throughput benchmark "
                                     "(plan vs interpreted tree)")
    _common(p)
    _deploy_flags(p, calib_batches=2, runtime="auto")
    p.add_argument("--ckpt", default=None,
                   help="optional Q-model checkpoint to benchmark")
    p.add_argument("--runtime", choices=("auto", "channel", "batch"),
                   default="auto", help="plan register layout")
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--warmup", type=int, default=2,
                   help="untimed warm-up batches (binding + kernel build)")
    p.add_argument("--batches", type=int, default=5,
                   help="timed steady-state batches")
    p.add_argument("--tree-batches", type=int, default=2,
                   help="timed interpreted-baseline batches")
    p.add_argument("--workers", type=int, default=0,
                   help=">=2 shards batches across a shared-memory worker pool")
    p.add_argument("--out", default="BENCH_runtime.json")
    p.add_argument("--telemetry-out", default=None, metavar="DIR",
                   help="capture per-op spans into a TelemetrySession in DIR")
    p.set_defaults(func=cmd_bench)
    return ap


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
