"""Neural-network module system (the ``torch.nn`` substrate)."""
from repro.nn.module import Module, Parameter
from repro.nn.container import Sequential, ModuleList
from repro.nn.layers import Linear, Conv2d, BatchNorm2d, LayerNorm, Identity, Dropout, Embedding
from repro.nn.activations import ReLU, GELU, Sigmoid, Tanh, Softmax
from repro.nn.pooling import MaxPool2d, AvgPool2d, AdaptiveAvgPool2d, Flatten
from repro.nn.attention import MultiheadAttention
from repro.nn.losses import CrossEntropyLoss, MSELoss, SoftTargetKLLoss
from repro.nn import init
from repro.tensor import functional

__all__ = [
    "Module", "Parameter", "Sequential", "ModuleList",
    "Linear", "Conv2d", "BatchNorm2d", "LayerNorm", "Identity", "Dropout", "Embedding",
    "ReLU", "GELU", "Sigmoid", "Tanh", "Softmax",
    "MaxPool2d", "AvgPool2d", "AdaptiveAvgPool2d", "Flatten",
    "MultiheadAttention",
    "CrossEntropyLoss", "MSELoss", "SoftTargetKLLoss",
    "init", "functional",
]
