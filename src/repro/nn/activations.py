"""Activation modules."""
from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Softmax(Module):
    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return x.softmax(axis=self.axis)
