"""Weight initialization schemes (Kaiming / Xavier / constants)."""
from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.tensor.tensor import Tensor

_DEFAULT_RNG = np.random.default_rng(0)


def set_init_rng(seed: int) -> None:
    """Reseed the module-level RNG used by all initializers."""
    global _DEFAULT_RNG
    _DEFAULT_RNG = np.random.default_rng(seed)


def _fan(tensor: Tensor) -> tuple[int, int]:
    shape = tensor.shape
    if len(shape) == 2:
        fan_in, fan_out = shape[1], shape[0]
    elif len(shape) == 4:
        rf = shape[2] * shape[3]
        fan_in, fan_out = shape[1] * rf, shape[0] * rf
    else:
        n = int(np.prod(shape))
        fan_in = fan_out = max(n, 1)
    return fan_in, fan_out


def kaiming_normal_(tensor: Tensor, nonlinearity: str = "relu", rng: Optional[np.random.Generator] = None) -> Tensor:
    rng = rng or _DEFAULT_RNG
    fan_in, _ = _fan(tensor)
    gain = math.sqrt(2.0) if nonlinearity == "relu" else 1.0
    std = gain / math.sqrt(fan_in)
    tensor.data = rng.standard_normal(tensor.shape).astype(np.float32) * std
    return tensor


def kaiming_uniform_(tensor: Tensor, a: float = math.sqrt(5), rng: Optional[np.random.Generator] = None) -> Tensor:
    rng = rng or _DEFAULT_RNG
    fan_in, _ = _fan(tensor)
    gain = math.sqrt(2.0 / (1 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    tensor.data = rng.uniform(-bound, bound, tensor.shape).astype(np.float32)
    return tensor


def xavier_uniform_(tensor: Tensor, rng: Optional[np.random.Generator] = None) -> Tensor:
    rng = rng or _DEFAULT_RNG
    fan_in, fan_out = _fan(tensor)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    tensor.data = rng.uniform(-bound, bound, tensor.shape).astype(np.float32)
    return tensor


def normal_(tensor: Tensor, mean: float = 0.0, std: float = 1.0, rng: Optional[np.random.Generator] = None) -> Tensor:
    rng = rng or _DEFAULT_RNG
    tensor.data = (rng.standard_normal(tensor.shape) * std + mean).astype(np.float32)
    return tensor


def uniform_(tensor: Tensor, a: float = 0.0, b: float = 1.0, rng: Optional[np.random.Generator] = None) -> Tensor:
    rng = rng or _DEFAULT_RNG
    tensor.data = rng.uniform(a, b, tensor.shape).astype(np.float32)
    return tensor


def zeros_(tensor: Tensor) -> Tensor:
    tensor.data = np.zeros(tensor.shape, dtype=np.float32)
    return tensor


def ones_(tensor: Tensor) -> Tensor:
    tensor.data = np.ones(tensor.shape, dtype=np.float32)
    return tensor


def constant_(tensor: Tensor, value: float) -> Tensor:
    tensor.data = np.full(tensor.shape, value, dtype=np.float32)
    return tensor
