"""Multi-head self-attention (the float reference the quantized version mirrors)."""
from __future__ import annotations

import math

from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.tensor.tensor import Tensor


class MultiheadAttention(Module):
    """Standard multi-head self-attention over ``(N, L, D)`` sequences.

    Uses a fused QKV projection (like timm's ViT) so the Torch2Chip quantized
    attention can mirror the exact same parameter layout when swapping.
    """

    def __init__(self, embed_dim: int, num_heads: int, attn_drop: float = 0.0, proj_drop: float = 0.0):
        super().__init__()
        if embed_dim % num_heads:
            raise ValueError(f"embed_dim {embed_dim} not divisible by heads {num_heads}")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.scale = 1.0 / math.sqrt(self.head_dim)
        self.qkv = Linear(embed_dim, embed_dim * 3)
        self.proj = Linear(embed_dim, embed_dim)
        self.attn_drop = Dropout(attn_drop)
        self.proj_drop = Dropout(proj_drop)

    def forward(self, x: Tensor) -> Tensor:
        n, l, d = x.shape
        qkv = self.qkv(x)  # (N, L, 3D)
        qkv = qkv.reshape(n, l, 3, self.num_heads, self.head_dim).transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]  # (N, H, L, hd)
        attn = (q @ k.swapaxes(-1, -2)) * self.scale
        attn = attn.softmax(axis=-1)
        attn = self.attn_drop(attn)
        out = attn @ v  # (N, H, L, hd)
        out = out.transpose(0, 2, 1, 3).reshape(n, l, d)
        return self.proj_drop(self.proj(out))

    def extra_repr(self) -> str:
        return f"dim={self.embed_dim}, heads={self.num_heads}"
