"""Core trainable layers: Linear, Conv2d, BatchNorm2d, LayerNorm, Dropout."""
from __future__ import annotations

import math
from typing import Optional, Tuple, Union

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class Identity(Module):
    """Pass-through module."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(np.empty((out_features, in_features), dtype=np.float32))
        init.kaiming_uniform_(self.weight)
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(np.empty((out_features,), dtype=np.float32))
            init.uniform_(self.bias, -bound, bound)
        else:
            self.register_parameter("bias", None)

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def extra_repr(self) -> str:
        return f"in={self.in_features}, out={self.out_features}, bias={self.bias is not None}"


class Conv2d(Module):
    """2-D convolution (square kernels), supporting grouped/depthwise conv."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.weight = Parameter(
            np.empty((out_channels, in_channels // groups, kernel_size, kernel_size), dtype=np.float32)
        )
        init.kaiming_normal_(self.weight)
        if bias:
            self.bias = Parameter(np.zeros((out_channels,), dtype=np.float32))
        else:
            self.register_parameter("bias", None)

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding, self.groups)

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
                f"s={self.stride}, p={self.padding}, g={self.groups}, bias={self.bias is not None}")


class BatchNorm2d(Module):
    """Batch normalization over ``(N, C, H, W)`` with running statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1, affine: bool = True):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.affine = affine
        if affine:
            self.weight = Parameter(np.ones((num_features,), dtype=np.float32))
            self.bias = Parameter(np.zeros((num_features,), dtype=np.float32))
        else:
            self.register_parameter("weight", None)
            self.register_parameter("bias", None)
        self.register_buffer("running_mean", np.zeros((num_features,), dtype=np.float32))
        self.register_buffer("running_var", np.ones((num_features,), dtype=np.float32))
        self.register_buffer("num_batches_tracked", np.zeros((), dtype=np.int64))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            gamma = self.weight if self.affine else Tensor(np.ones(self.num_features, dtype=np.float32))
            beta = self.bias if self.affine else Tensor(np.zeros(self.num_features, dtype=np.float32))
            out, mean, var = F.batch_norm_train(x, gamma, beta, self.eps)
            n = x.shape[0] * x.shape[2] * x.shape[3]
            unbiased = var * (n / max(n - 1, 1))
            m = self.momentum
            self.running_mean.data = (1 - m) * self.running_mean.data + m * mean
            self.running_var.data = (1 - m) * self.running_var.data + m * unbiased
            self.num_batches_tracked.data = self.num_batches_tracked.data + 1
            return out
        mean = Tensor(self.running_mean.data.reshape(1, -1, 1, 1))
        var = Tensor(self.running_var.data.reshape(1, -1, 1, 1))
        xhat = (x - mean) / (var + self.eps).sqrt()
        if self.affine:
            xhat = xhat * self.weight.reshape(1, -1, 1, 1) + self.bias.reshape(1, -1, 1, 1)
        return xhat

    def extra_repr(self) -> str:
        return f"{self.num_features}, eps={self.eps}, momentum={self.momentum}"


class LayerNorm(Module):
    """Layer normalization over the last dimension(s).

    Torch2Chip extension: ``running_stats=True`` switches inference to use
    pre-computed running mean/var (EMA over training batches) instead of
    instant statistics, trading accuracy for hardware latency (the serialized
    on-the-fly mean/var in a ViT is expensive on an accelerator; see paper
    §3.2.2).  Statistics are tracked *per position* (batch-reduced, e.g. one
    mean/var per token for ``(N, L, D)`` inputs), which fuses into a
    per-position-per-channel affine — a plain SRAM table on hardware.
    """

    def __init__(self, normalized_shape: Union[int, Tuple[int, ...]], eps: float = 1e-5,
                 running_stats: bool = False, momentum: float = 0.1):
        super().__init__()
        if isinstance(normalized_shape, int):
            normalized_shape = (normalized_shape,)
        self.normalized_shape = tuple(normalized_shape)
        self.eps = eps
        self.running_stats = running_stats
        self.momentum = momentum
        self.weight = Parameter(np.ones(self.normalized_shape, dtype=np.float32))
        self.bias = Parameter(np.zeros(self.normalized_shape, dtype=np.float32))
        if running_stats:
            self.register_buffer("running_mean", np.zeros((), dtype=np.float32))
            self.register_buffer("running_var", np.ones((), dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        axes = tuple(range(x.ndim - len(self.normalized_shape), x.ndim))
        if self.running_stats and not self.training:
            mean = Tensor(self.running_mean.data.astype(np.float32))
            var = Tensor(self.running_var.data.astype(np.float32))
        else:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            if self.running_stats and self.training:
                # batch-reduce to per-position statistics (e.g. (L, 1) for
                # token streams); initialize the buffers' shape on first use
                m = self.momentum
                pos_mean = mean.data.mean(axis=0)
                pos_var = var.data.mean(axis=0)
                if self.running_mean.data.shape != pos_mean.shape:
                    self.running_mean.data = pos_mean.copy()
                    self.running_var.data = pos_var.copy()
                else:
                    self.running_mean.data = (1 - m) * self.running_mean.data + m * pos_mean
                    self.running_var.data = (1 - m) * self.running_var.data + m * pos_var
        xhat = (x - mean) / (var + self.eps).sqrt()
        return xhat * self.weight + self.bias

    def extra_repr(self) -> str:
        return f"{self.normalized_shape}, eps={self.eps}, running_stats={self.running_stats}"


class Dropout(Module):
    """Inverted dropout."""

    def __init__(self, p: float = 0.5, seed: Optional[int] = None):
        super().__init__()
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class Embedding(Module):
    """Lookup table of learnable vectors (used for ViT position embeddings)."""

    def __init__(self, num_embeddings: int, embedding_dim: int):
        super().__init__()
        self.weight = Parameter(np.empty((num_embeddings, embedding_dim), dtype=np.float32))
        init.normal_(self.weight, std=0.02)

    def forward(self, idx) -> Tensor:
        return self.weight[np.asarray(idx, dtype=np.int64)]
