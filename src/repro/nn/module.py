"""Module base class: parameter registration, buffers, state dicts, modes.

The surface mirrors ``torch.nn.Module`` closely because Torch2Chip's module
swapping (vanilla -> custom -> vanilla) relies on attribute-level replacement
of submodules and on ``state_dict`` round-trips.
"""
from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a Module."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(np.array(data.data if isinstance(data, Tensor) else data, dtype=np.float32, copy=True),
                         requires_grad=requires_grad)


class Module:
    """Base class for all network modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -------------------------------------------------------------- attrs
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._buffers.pop(name, None)
            self._modules.pop(name, None)
            object.__setattr__(self, name, value)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
            object.__setattr__(self, name, value)
        else:
            if name in self._parameters and not isinstance(value, Parameter):
                del self._parameters[name]
            if name in self._modules and not isinstance(value, Module):
                del self._modules[name]
            object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value) -> None:
        """Register a non-trainable tensor that is part of the state dict."""
        t = value if isinstance(value, Tensor) else Tensor(np.asarray(value))
        self._buffers[name] = t
        object.__setattr__(self, name, t)

    def register_parameter(self, name: str, value: Optional[Parameter]) -> None:
        if value is None:
            self._parameters.pop(name, None)
            object.__setattr__(self, name, None)
        else:
            setattr(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        setattr(self, name, module)

    # ------------------------------------------------------------ traversal
    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            if p is not None:
                yield prefix + name, p
        for mname, m in self._modules.items():
            yield from m.named_parameters(prefix + mname + ".")

    def buffers(self) -> Iterator[Tensor]:
        for _, b in self.named_buffers():
            yield b

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, b in self._buffers.items():
            yield prefix + name, b
        for mname, m in self._modules.items():
            yield from m.named_buffers(prefix + mname + ".")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        yield from self._modules.items()

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for mname, m in self._modules.items():
            sub = prefix + ("." if prefix else "") + mname
            yield from m.named_modules(sub)

    def get_submodule(self, target: str) -> "Module":
        mod: Module = self
        if target == "":
            return mod
        for part in target.split("."):
            mod = mod._modules[part]
        return mod

    def set_submodule(self, target: str, module: "Module") -> None:
        """Replace the submodule at dotted path ``target`` (used by T2C swaps)."""
        *parents, leaf = target.split(".")
        mod = self.get_submodule(".".join(parents)) if parents else self
        setattr(mod, leaf, module)

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        for m in self.children():
            m.apply(fn)
        fn(self)
        return self

    # ---------------------------------------------------------------- modes
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for m in self.children():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def requires_grad_(self, flag: bool = True) -> "Module":
        for p in self.parameters():
            p.requires_grad = flag
        return self

    # ------------------------------------------------------------- state io
    def state_dict(self, prefix: str = "", destination: Optional[Dict[str, np.ndarray]] = None) -> Dict[str, np.ndarray]:
        dest = destination if destination is not None else OrderedDict()
        for name, p in self._parameters.items():
            if p is not None:
                dest[prefix + name] = p.data.copy()
        for name, b in self._buffers.items():
            dest[prefix + name] = b.data.copy()
        for mname, m in self._modules.items():
            m.state_dict(prefix + mname + ".", dest)
        return dest

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self.named_parameters())
        own.update(dict(self.named_buffers()))
        missing = [k for k in own if k not in state]
        unexpected = [k for k in state if k not in own]
        if strict and (missing or unexpected):
            raise KeyError(f"state mismatch: missing={missing}, unexpected={unexpected}")
        params = dict(self.named_parameters())
        for k, t in own.items():
            if k in state:
                arr = np.asarray(state[k])
                if arr.shape != t.data.shape:
                    if k in params:
                        raise ValueError(f"shape mismatch for {k}: {arr.shape} vs {t.data.shape}")
                    # Buffers may be shaped lazily from data (e.g. LayerNorm
                    # per-position running statistics): adopt the stored shape.
                    t.data = arr.astype(t.data.dtype, copy=True)
                    continue
                t.data = arr.astype(t.data.dtype, copy=True)

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    # ----------------------------------------------------------------- call
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, m in self._modules.items():
            sub = repr(m).split("\n")
            lines.append(f"  ({name}): " + "\n  ".join(sub))
        return "\n".join(lines) + ")"
