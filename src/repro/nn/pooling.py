"""Pooling and flattening modules."""
from __future__ import annotations

from typing import Optional

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"k={self.kernel_size}, s={self.stride}"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"k={self.kernel_size}, s={self.stride}"


class AdaptiveAvgPool2d(Module):
    def __init__(self, output_size: int = 1):
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)


class Flatten(Module):
    def __init__(self, start_dim: int = 1, end_dim: int = -1):
        super().__init__()
        self.start_dim = start_dim
        self.end_dim = end_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim, self.end_dim)
