"""Module containers."""
from __future__ import annotations

from typing import Iterable, Iterator, Union

from repro.nn.module import Module


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        if len(modules) == 1 and isinstance(modules[0], (list, tuple)):
            modules = tuple(modules[0])
        for i, m in enumerate(modules):
            self.add_module(str(i), m)

    def forward(self, x):
        for m in self._modules.values():
            x = m(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: Union[int, slice]) -> Module:
        items = list(self._modules.values())
        if isinstance(idx, slice):
            return Sequential(*items[idx])
        return items[idx]

    def append(self, module: Module) -> "Sequential":
        self.add_module(str(len(self._modules)), module)
        return self


class ModuleList(Module):
    """List of modules that registers each element."""

    def __init__(self, modules: Iterable[Module] = ()):  # noqa: D401
        super().__init__()
        for i, m in enumerate(modules):
            self.add_module(str(i), m)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._modules)), module)
        return self

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is not callable")
