"""Loss modules."""
from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class CrossEntropyLoss(Module):
    """Cross entropy over integer class targets, with optional label smoothing."""

    def __init__(self, label_smoothing: float = 0.0):
        super().__init__()
        self.label_smoothing = label_smoothing

    def forward(self, logits: Tensor, targets) -> Tensor:
        t = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
        return F.cross_entropy(logits, t, self.label_smoothing)


class MSELoss(Module):
    def forward(self, pred: Tensor, target: Tensor) -> Tensor:
        return F.mse_loss(pred, target if isinstance(target, Tensor) else Tensor(target))


class SoftTargetKLLoss(Module):
    """KL divergence against teacher probabilities (knowledge distillation)."""

    def __init__(self, temperature: float = 1.0):
        super().__init__()
        self.temperature = temperature

    def forward(self, student_logits: Tensor, teacher_logits: Tensor) -> Tensor:
        t = self.temperature
        logp = (student_logits * (1.0 / t)).log_softmax(axis=-1)
        p = (teacher_logits.detach() * (1.0 / t)).softmax(axis=-1)
        return F.kl_div_loss(logp, p) * (t * t)
