"""Online serving gateway over the compiled integer runtime.

`plan.serve()` (PR 3) is the *offline* batch API: it shards a pre-formed
batch stream across a worker pool.  This package is the *online* layer the
ROADMAP's "heavy traffic" north star needs — it accepts individual samples
and turns them into well-packed batches without blowing latency:

* :class:`Server` — the gateway: per-model lanes with a deadline-aware
  dynamic micro-batcher, admission control with typed
  :class:`~repro.server.types.Overloaded` load shedding, worker-pool
  supervision (requeue-once + respawn on worker death), and atomic
  drain-and-cutover hot swap of model versions;
* :class:`ModelRegistry` — ``name@version``-keyed store of deployed models,
  built through :class:`repro.core.DeploySpec` / :func:`repro.core.deploy`
  (see :func:`repro.core.deploy_registry`);
* :mod:`~repro.server.types` — the typed result records (:class:`Ok`,
  :class:`Overloaded`, :class:`Failed`) behind
  :class:`~repro.server.types.PendingRequest` futures;
* :func:`run_poisson_load` — the open-loop Poisson load generator behind
  ``repro.cli serve-bench`` and ``BENCH_server.json``.

Quickstart::

    from repro.core import deploy
    from repro.server import ModelRegistry, Server

    registry = ModelRegistry()
    registry.register("resnet20", "1", deploy(calibrated_qmodel))
    with Server(registry, max_batch=16) as srv:
        resp = srv.submit("resnet20", sample, deadline_s=0.2).result()
        if resp.ok:
            logits = resp.logits
"""
from repro.server.loadgen import (LoadGenError, LoadReport, Tenant,
                                  run_poisson_load)
from repro.server.registry import (
    DuplicateVersionError,
    ModelEntry,
    ModelRegistry,
    split_key,
)
from repro.server.server import Server, ServerConfig
from repro.server.types import (
    Failed,
    Ok,
    Overloaded,
    PendingRequest,
    Response,
)

__all__ = [
    "Server", "ServerConfig",
    "ModelRegistry", "ModelEntry", "split_key", "DuplicateVersionError",
    "Response", "Ok", "Overloaded", "Failed", "PendingRequest",
    "LoadReport", "run_poisson_load", "Tenant", "LoadGenError",
]
