"""Multi-model registry keyed by ``name@version``.

The registry is the gateway's source of truth for *what* can be served:
each entry wraps a :class:`repro.core.deploy.Deployed` bundle (or any
batch-callable, for tests), every name carries an *active* version, and
activation flips are atomic under the registry lock.  The registry itself
never drains traffic — :meth:`repro.server.Server.swap` layers
drain-and-cutover on top so two plans never race on one arena.

Construction paths::

    reg = ModelRegistry()
    reg.register("resnet20", "1", deployed)          # pre-built bundle
    reg.build("vgg8", qmodel, spec, version="2")     # through deploy()
    reg.get("resnet20")          # active version
    reg.get("resnet20@2")        # exact version
"""
from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np


def split_key(key: str) -> Tuple[str, Optional[str]]:
    """``"name@version"`` -> ``(name, version)``; bare names give ``None``."""
    name, sep, version = key.partition("@")
    if not name or (sep and not version):
        raise ValueError(f"malformed model key {key!r}; expected "
                         f"'name' or 'name@version'")
    return name, (version if sep else None)


@dataclass
class ModelEntry:
    """One servable (model, version): the runner plus its deploy artifacts."""

    name: str
    version: str
    runner: Callable                 #: batch -> logits (Deployed, Plan, stub)
    plan: object = None              #: compiled Plan when available (pool mode)
    qnn: object = None               #: interpreted integer tree (exactness ref)
    deployed: object = None          #: full Deployed bundle when built via deploy()
    meta: Dict = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.name}@{self.version}"

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        return self.runner(batch)


class ModelRegistry:
    """Thread-safe ``name@version`` -> :class:`ModelEntry` store."""

    def __init__(self):
        self._lock = threading.RLock()
        self._entries: Dict[str, Dict[str, ModelEntry]] = {}
        self._active: Dict[str, str] = {}

    # ----------------------------------------------------------- population
    def register(self, name: str, version: str, deployed=None, *,
                 runner: Optional[Callable] = None,
                 activate: Optional[bool] = None, **meta) -> ModelEntry:
        """Add one entry; the first version of a name auto-activates.

        ``deployed`` is a :class:`~repro.core.deploy.Deployed` bundle (its
        plan/qnn are unpacked); ``runner`` registers any bare batch-callable
        instead (unit tests, external executors).
        """
        if "@" in name:
            raise ValueError(f"model name {name!r} must not contain '@'")
        if deployed is None and runner is None:
            raise ValueError("register() needs a Deployed bundle or a runner")
        entry = ModelEntry(
            name=name, version=str(version),
            runner=runner if runner is not None else deployed,
            plan=getattr(deployed, "plan", None) if deployed is not None
            else getattr(runner, "plan", None),
            qnn=getattr(deployed, "qnn", None),
            deployed=deployed, meta=meta)
        with self._lock:
            versions = self._entries.setdefault(name, {})
            if entry.version in versions:
                raise ValueError(f"{entry.key} already registered")
            versions[entry.version] = entry
            if activate or (activate is None and name not in self._active):
                self._active[name] = entry.version
        return entry

    def build(self, name: str, model, spec=None, version: str = "1",
              activate: Optional[bool] = None, **overrides) -> ModelEntry:
        """Deploy ``model`` under ``spec`` and register the result."""
        from repro.core import deploy

        return self.register(name, version, deploy(model, spec, **overrides),
                             activate=activate)

    # -------------------------------------------------------------- lookups
    def get(self, key: str) -> ModelEntry:
        """Resolve ``"name"`` (active version) or ``"name@version"`` (exact)."""
        name, version = split_key(key)
        with self._lock:
            versions = self._entries.get(name)
            if not versions:
                raise KeyError(f"model {name!r} not registered "
                               f"(have: {sorted(self._entries) or 'none'})")
            if version is None:
                version = self._active.get(name)
                if version is None:
                    raise KeyError(
                        f"model {name!r} has no active version (registered "
                        f"versions: {sorted(versions)}); activate one with "
                        f"set_active()")
            entry = versions.get(version)
            if entry is None:
                raise KeyError(f"{name}@{version} not registered "
                               f"(have versions: {sorted(versions)})")
            return entry

    def active_version(self, name: str) -> str:
        with self._lock:
            if name not in self._active:
                if name in self._entries:
                    raise KeyError(f"model {name!r} has no active version "
                                   f"(registered versions: "
                                   f"{sorted(self._entries[name])})")
                raise KeyError(f"model {name!r} not registered")
            return self._active[name]

    def set_active(self, name: str, version: str) -> ModelEntry:
        """Atomically flip the active version (must already be registered)."""
        entry = self.get(f"{name}@{version}")
        with self._lock:
            self._active[name] = entry.version
        return entry

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def versions(self, name: str) -> List[str]:
        with self._lock:
            return sorted(self._entries.get(name, {}))

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(e.key for vs in self._entries.values()
                          for e in vs.values())

    def __contains__(self, key: str) -> bool:
        try:
            self.get(key)
            return True
        except KeyError:
            return False

    def __len__(self) -> int:
        with self._lock:
            return sum(len(vs) for vs in self._entries.values())

    def __repr__(self) -> str:
        with self._lock:
            active = {n: f"{n}@{v}" for n, v in self._active.items()}
        return f"ModelRegistry({sorted(active.values())})"
