"""Multi-model registry keyed by ``name@version``.

The registry is the gateway's source of truth for *what* can be served:
each entry wraps a :class:`repro.core.deploy.Deployed` bundle (or any
batch-callable, for tests), every name carries an *active* version, and
activation flips are atomic under the registry lock.  The registry itself
never drains traffic — :meth:`repro.server.Server.swap` layers
drain-and-cutover on top so two plans never race on one arena.

Entries backed by on-disk artifacts (a bundle exported via
``DeploySpec.export_dir``, or an explicit ``artifacts=`` directory) are
*integrity-gated*: :meth:`ModelRegistry.register` and
:meth:`ModelRegistry.set_active` run
:func:`repro.export.integrity.verify_artifacts` first and refuse — with the
typed :class:`~repro.export.errors.ArtifactError` — to admit or activate a
version whose artifacts fail verification; the previous active version keeps
serving.  Re-registering an existing ``name@version`` with a different
callable raises :class:`DuplicateVersionError` unless ``replace=True``.

Construction paths::

    reg = ModelRegistry()
    reg.register("resnet20", "1", deployed)          # pre-built bundle
    reg.build("vgg8", qmodel, spec, version="2")     # through deploy()
    reg.get("resnet20")          # active version
    reg.get("resnet20@2")        # exact version
"""
from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import telemetry


class DuplicateVersionError(ValueError):
    """``name@version`` is already registered with a different callable."""


def split_key(key: str) -> Tuple[str, Optional[str]]:
    """``"name@version"`` -> ``(name, version)``; bare names give ``None``."""
    name, sep, version = key.partition("@")
    if not name or (sep and not version):
        raise ValueError(f"malformed model key {key!r}; expected "
                         f"'name' or 'name@version'")
    return name, (version if sep else None)


@dataclass
class ModelEntry:
    """One servable (model, version): the runner plus its deploy artifacts."""

    name: str
    version: str
    runner: Callable                 #: batch -> logits (Deployed, Plan, stub)
    plan: object = None              #: compiled Plan when available (pool mode)
    qnn: object = None               #: interpreted integer tree (exactness ref)
    deployed: object = None          #: full Deployed bundle when built via deploy()
    artifacts: Optional[str] = None  #: on-disk artifact dir backing this version
    meta: Dict = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.name}@{self.version}"

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        return self.runner(batch)


class ModelRegistry:
    """Thread-safe ``name@version`` -> :class:`ModelEntry` store."""

    def __init__(self):
        self._lock = threading.RLock()
        self._entries: Dict[str, Dict[str, ModelEntry]] = {}
        self._active: Dict[str, str] = {}

    # ----------------------------------------------------------- population
    def register(self, name: str, version: str, deployed=None, *,
                 runner: Optional[Callable] = None,
                 activate: Optional[bool] = None,
                 artifacts: Optional[str] = None,
                 replace: bool = False, **meta) -> ModelEntry:
        """Add one entry; the first version of a name auto-activates.

        ``deployed`` is a :class:`~repro.core.deploy.Deployed` bundle (its
        plan/qnn are unpacked); ``runner`` registers any bare batch-callable
        instead (unit tests, external executors).  ``artifacts`` names the
        on-disk export directory backing this version — explicitly, or
        derived from the bundle's ``spec.export_dir`` when it wrote one —
        and is *verified* before the entry is admitted: a directory that
        fails :func:`~repro.export.integrity.verify_artifacts` raises the
        typed :class:`~repro.export.errors.ArtifactError` and the registry
        is left untouched.  Re-registering an existing ``name@version``
        returns the existing entry when the callable is identical, raises
        :class:`DuplicateVersionError` when it differs, and overwrites only
        under ``replace=True``.
        """
        if "@" in name:
            raise ValueError(f"model name {name!r} must not contain '@'")
        if deployed is None and runner is None:
            raise ValueError("register() needs a Deployed bundle or a runner")
        if artifacts is None and deployed is not None \
                and getattr(deployed, "manifest", None) is not None:
            artifacts = getattr(getattr(deployed, "spec", None),
                                "export_dir", None)
        entry = ModelEntry(
            name=name, version=str(version),
            runner=runner if runner is not None else deployed,
            plan=getattr(deployed, "plan", None) if deployed is not None
            else getattr(runner, "plan", None),
            qnn=getattr(deployed, "qnn", None),
            deployed=deployed, artifacts=artifacts, meta=meta)
        self._verify_entry(entry, action="register")
        with self._lock:
            versions = self._entries.setdefault(name, {})
            existing = versions.get(entry.version)
            if existing is not None and not replace:
                if existing.runner is entry.runner:
                    return existing     # idempotent re-register
                raise DuplicateVersionError(
                    f"{entry.key} already registered with a different "
                    f"callable; pass replace=True to overwrite")
            versions[entry.version] = entry
            if activate or (activate is None and name not in self._active):
                self._active[name] = entry.version
        return entry

    def _verify_entry(self, entry: ModelEntry, action: str) -> None:
        """Integrity-gate an entry; typed raise on failure.

        Two gates: artifact integrity (skipped when the entry has no on-disk
        artifacts, or its deploy spec set ``verify_artifacts=False``) and
        plan verification (skipped when the entry carries no compiled plan,
        or its spec set ``verify_plan=False``).  A plan whose verification
        report has errors never enters the registry — and never activates.
        """
        spec = getattr(entry.deployed, "spec", None)
        if entry.artifacts is not None and (
                spec is None or getattr(spec, "verify_artifacts", True)):
            from repro.export.integrity import verify_artifacts

            report = verify_artifacts(entry.artifacts)
            if not report.ok:
                telemetry.emit("registry_rejected", level="error",
                               model=entry.key, action=action,
                               artifacts=entry.artifacts,
                               errors=report.to_json()["summary"]["errors"])
                report.raise_if_failed()
        plan = entry.plan
        if plan is not None and hasattr(plan, "verify") and (
                spec is None or getattr(spec, "verify_plan", True)):
            from repro.lint.plan import PlanVerificationError

            vreport = plan.verify()
            if not vreport.ok:
                telemetry.emit("registry_rejected", level="error",
                               model=entry.key, action=action, reason="plan",
                               errors=vreport.to_json()["summary"]["errors"])
                raise PlanVerificationError(vreport)

    def verify(self, key: str):
        """Run artifact verification for ``key`` now.

        Returns the :class:`~repro.export.integrity.IntegrityReport`, or
        ``None`` for entries with no on-disk artifacts.  Never raises for
        content problems — callers decide (``report.raise_if_failed()``).
        """
        entry = self.get(key)
        if entry.artifacts is None:
            return None
        from repro.export.integrity import verify_artifacts

        return verify_artifacts(entry.artifacts)

    def build(self, name: str, model, spec=None, version: str = "1",
              activate: Optional[bool] = None, **overrides) -> ModelEntry:
        """Deploy ``model`` under ``spec`` and register the result."""
        from repro.core import deploy

        return self.register(name, version, deploy(model, spec, **overrides),
                             activate=activate)

    # -------------------------------------------------------------- lookups
    def get(self, key: str) -> ModelEntry:
        """Resolve ``"name"`` (active version) or ``"name@version"`` (exact)."""
        name, version = split_key(key)
        with self._lock:
            versions = self._entries.get(name)
            if not versions:
                raise KeyError(f"model {name!r} not registered "
                               f"(have: {sorted(self._entries) or 'none'})")
            if version is None:
                version = self._active.get(name)
                if version is None:
                    raise KeyError(
                        f"model {name!r} has no active version (registered "
                        f"versions: {sorted(versions)}); activate one with "
                        f"set_active()")
            entry = versions.get(version)
            if entry is None:
                raise KeyError(f"{name}@{version} not registered "
                               f"(have versions: {sorted(versions)})")
            return entry

    def active_version(self, name: str) -> str:
        with self._lock:
            if name not in self._active:
                if name in self._entries:
                    raise KeyError(f"model {name!r} has no active version "
                                   f"(registered versions: "
                                   f"{sorted(self._entries[name])})")
                raise KeyError(f"model {name!r} not registered")
            return self._active[name]

    def set_active(self, name: str, version: str) -> ModelEntry:
        """Atomically flip the active version (must already be registered).

        An artifact-backed version is re-verified first; a directory that
        rotted since registration raises the typed
        :class:`~repro.export.errors.ArtifactError` and the previous active
        version keeps serving.
        """
        entry = self.get(f"{name}@{version}")
        self._verify_entry(entry, action="set_active")
        with self._lock:
            self._active[name] = entry.version
        return entry

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def versions(self, name: str) -> List[str]:
        with self._lock:
            return sorted(self._entries.get(name, {}))

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(e.key for vs in self._entries.values()
                          for e in vs.values())

    def __contains__(self, key: str) -> bool:
        try:
            self.get(key)
            return True
        except KeyError:
            return False

    def __len__(self) -> int:
        with self._lock:
            return sum(len(vs) for vs in self._entries.values())

    def __repr__(self) -> str:
        with self._lock:
            active = {n: f"{n}@{v}" for n, v in self._active.items()}
        return f"ModelRegistry({sorted(active.values())})"
