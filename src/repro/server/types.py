"""Typed request/response records for the online gateway.

Every accepted request resolves to exactly one concrete
:class:`Response` subclass — :class:`Ok`, :class:`Overloaded` or
:class:`Failed` — never an exception out of the scheduler and never
silence.  ``retryable`` encodes the degradation contract: load-shed and
worker-death results are safe to resubmit, a deterministic plan error is
not.
"""
from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import ClassVar, Optional

import numpy as np


@dataclass
class Response:
    """Base record: which request, and which ``name@version`` served it."""

    request_id: int
    model: str

    ok: ClassVar[bool] = False
    retryable: ClassVar[bool] = False


@dataclass
class Ok(Response):
    """Successful inference for one sample."""

    logits: np.ndarray = None
    queue_wait_s: float = 0.0     #: enqueue -> batch close
    latency_s: float = 0.0        #: enqueue -> response
    batch_size: int = 0           #: size of the micro-batch that carried it
    batch_id: int = 0

    ok: ClassVar[bool] = True


@dataclass
class Overloaded(Response):
    """Typed admission-control rejection (load shedding).

    Returned *immediately* at submit time when the bounded queue is full or
    the projected queue wait already exceeds the request's deadline — the
    gateway degrades by shedding early rather than accepting work it will
    miss the deadline on.
    """

    reason: str = "overloaded"        #: ``queue_full`` | ``deadline``
    projected_wait_s: float = 0.0
    deadline_s: float = 0.0

    retryable: ClassVar[bool] = True


@dataclass
class Failed(Response):
    """The request was accepted but could not be answered.

    ``retryable=True`` marks infrastructure failures (worker died twice,
    shutdown drain) where a resubmit is expected to succeed;
    ``retryable=False`` marks deterministic plan errors.
    """

    error: str = ""
    retryable: bool = False  # shadows the ClassVar with a per-instance flag


class PendingRequest:
    """Future-like handle returned by :meth:`repro.server.Server.submit`.

    ``result()`` blocks until the gateway resolves the request (which may be
    immediately, for an :class:`Overloaded` shed).  Timestamps use
    ``time.monotonic()`` — the scheduler's clock.
    """

    __slots__ = ("request_id", "model", "sample", "enqueue_t", "deadline_t",
                 "deadline_s", "ctx", "_event", "_response", "_callbacks")

    def __init__(self, request_id: int, model: str, sample: np.ndarray,
                 enqueue_t: float, deadline_s: float):
        self.request_id = request_id
        self.model = model
        self.sample = sample
        self.enqueue_t = enqueue_t
        self.deadline_s = deadline_s
        self.deadline_t = enqueue_t + deadline_s
        #: live-tracing context (set by the server when tracing is on)
        self.ctx = None
        self._event = threading.Event()
        self._response: Optional[Response] = None
        self._callbacks: list = []

    def done(self) -> bool:
        return self._event.is_set()

    def add_done_callback(self, fn) -> None:
        """Run ``fn(response)`` when the request resolves (immediately if it
        already has).  This is the replica-mode hook the fleet layer uses to
        fail requests over to another replica without a thread per request;
        callbacks run on the resolving thread (a lane thread, usually) and
        must not block.  Exceptions from ``fn`` are swallowed — a broken
        observer must never wedge a lane.
        """
        self._callbacks.append(fn)
        if self._event.is_set():
            self._drain_callbacks()

    def _drain_callbacks(self) -> None:
        # list.pop is atomic under the GIL, so a callback registered in a
        # race with _resolve() runs exactly once (on whichever side pops it)
        while self._callbacks:
            try:
                fn = self._callbacks.pop(0)
            except IndexError:
                return
            try:
                fn(self._response)
            except Exception:
                pass

    def result(self, timeout: Optional[float] = None) -> Response:
        """The resolved :class:`Response`; raises ``TimeoutError`` if unset."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} ({self.model}) unresolved "
                f"after {timeout}s")
        return self._response

    def _resolve(self, response: Response) -> None:
        if self._event.is_set():  # first resolution wins (e.g. retry races)
            return
        self._response = response
        self._event.set()
        self._drain_callbacks()

    def __repr__(self) -> str:
        state = type(self._response).__name__ if self.done() else "pending"
        return f"PendingRequest(#{self.request_id}, {self.model}, {state})"
