"""Online inference gateway: deadline-aware micro-batching over compiled plans.

:class:`Server` turns single-sample requests into well-packed batches for
the compiled runtime without blowing latency:

* **dynamic micro-batcher** — requests land in a bounded per-model queue
  with a deadline; the lane scheduler closes a batch when it reaches
  ``max_batch`` *or* when the oldest request's slack says it must flush
  (``deadline - estimated batch time``, additionally capped by
  ``max_linger_s``) — deadline-aware, not a fixed timeout;
* **admission control** — a full queue or a projected queue wait beyond the
  request's deadline sheds immediately with a typed
  :class:`~repro.server.types.Overloaded` result instead of accepting work
  the gateway would miss the deadline on; a sample whose shape disagrees
  with the model's expected input shape (declared via
  ``register(..., input_shape=...)`` or learned from the first request) is
  rejected with a typed :class:`~repro.server.types.Failed` at submit time,
  so one malformed request can never poison a batch;
* **supervised execution** — batches run inline on the lane thread
  (``workers < 2``) or on a :class:`~repro.runtime.serve.PlanPool`; a dead
  worker is detected (never a hang), its in-flight batches are requeued
  exactly once onto a respawned pool, and a second death resolves the
  affected requests as retryable :class:`~repro.server.types.Failed`;
* **hot swap** — :meth:`Server.swap` drains the lane's in-flight batches,
  atomically flips the registry's active version, rebuilds the pool, and
  only then resumes dispatch, so two plans never race on one arena and no
  in-flight request is lost;
* **observability** — queue-wait / batch-size / latency histograms and
  request counters in the process-global metrics registry, a
  ``server.request`` span per request linked under its ``server.batch``
  span, and structured events for sheds, swaps and worker deaths.

All timestamps use ``time.perf_counter()`` (monotonic), matching the span
clock so gateway spans align with the rest of a telemetry trace.
"""
from __future__ import annotations

import collections
import itertools
import json
import math
import os
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.integrity.errors import SDCDetected
from repro.runtime.serve import BatchFailed, PlanPool, WorkerDied, _can_fork
from repro.server.registry import ModelEntry, ModelRegistry
from repro.server.types import (Failed, Ok, Overloaded, PendingRequest,
                                Response)
from repro.telemetry import live as _live
from repro.telemetry import obs as _obs

#: tracer roots are appended from lane threads; the global tracer has no lock
_TRACE_LOCK = threading.Lock()

#: how long a pooled lane blocks on the pool between queue checks
_POOL_POLL_S = 0.02


@dataclass(frozen=True)
class ServerConfig:
    """Gateway tuning knobs (per-model overrides via ``per_model``)."""

    max_batch: int = 16              #: close a batch at this size
    max_queue: int = 256             #: bounded queue; beyond this -> Overloaded
    default_deadline_s: float = 0.25  #: per-request deadline when unspecified
    max_linger_s: float = 0.010      #: cap on how long a non-full batch waits
    shed_margin_s: float = 0.0       #: extra slack subtracted in admission
    workers: int = 0                 #: >= 2 -> PlanPool per lane (fork)
    max_inflight_batches: int = 2    #: per-model concurrency limit (pool mode)
    exec_time_init_s: float = 0.005  #: EWMA seed for batch service time
    ewma_alpha: float = 0.2          #: service-time EWMA weight
    # ------------------------------------------------------- observability
    #: request-scoped tracing: True/False, or None to follow the global
    #: telemetry switch
    tracing: Optional[bool] = None
    #: sample every N-th batch for per-op profiling (0 = off)
    profile_every: int = 0
    slo_target: float = 0.99         #: good-request ratio target
    obs_window_s: float = 60.0       #: rolling SLO/latency window
    flight_recorder_size: int = 512  #: per-lane post-mortem ring capacity
    #: directory for automatic flight-recorder dumps (None = in-memory only)
    dump_dir: Optional[str] = None
    dump_min_interval_s: float = 1.0  #: auto-dump cooldown (storm guard)
    #: keep only the newest N on-disk flight dumps per lane (0 = unlimited)
    max_dumps: int = 16
    trace_capacity: int = 2048       #: most-recent request trees kept
    # -------------------------------------------------------- SDC defense
    #: verify every N-th inline batch with the sampled ABFT checksum
    #: checker (0 = off; pooled lanes skip it — forked workers own
    #: copy-on-write plan copies the parent cannot corrupt or inspect)
    abft_every: int = 0
    #: background memory-scrub interval over active plans (0 = off)
    scrub_interval_s: float = 0.0
    #: ``{model_name: {field: value}}`` overrides, e.g. per-model max_batch /
    #: max_inflight_batches (the per-model concurrency limit)
    per_model: Optional[Dict[str, Dict]] = None

    def for_model(self, name: str) -> "ServerConfig":
        over = (self.per_model or {}).get(name)
        return replace(self, **over) if over else self


class _Batch:
    """One formed micro-batch on its way through execution."""

    __slots__ = ("bid", "requests", "x", "entry", "formed_t", "submit_t",
                 "retried", "trace")

    def __init__(self, bid: int, requests: List[PendingRequest],
                 x: np.ndarray, entry: ModelEntry, formed_t: float):
        self.bid = bid
        self.requests = requests
        self.x = x
        self.entry = entry
        self.formed_t = formed_t
        self.submit_t = formed_t
        self.retried = False
        #: per-request pre-minted "batch" span ids (None when untraced);
        #: minted at batch formation so the worker can parent under them
        self.trace: Optional[List[Optional[str]]] = None


class _LaneStats:
    """Always-on per-lane accounting (independent of the telemetry switch)."""

    __slots__ = ("requests", "ok", "shed", "failed", "retried_requests",
                 "batches", "latencies_s", "queue_waits_s", "batch_sizes",
                 "worker_deaths", "swaps", "deadline_miss")

    _CAP = 100_000  # keep percentile memory bounded under sustained load

    def __init__(self):
        self.requests = 0
        self.ok = 0
        self.shed = 0
        self.failed = 0
        self.retried_requests = 0
        self.batches = 0
        self.worker_deaths = 0
        self.swaps = 0
        self.deadline_miss = 0
        self.latencies_s: List[float] = []
        self.queue_waits_s: List[float] = []
        self.batch_sizes: List[int] = []

    def observe(self, latency_s: float, queue_wait_s: float) -> None:
        if len(self.latencies_s) < self._CAP:
            self.latencies_s.append(latency_s)
            self.queue_waits_s.append(queue_wait_s)


class _Lane:
    """One model name's queue + scheduler thread + (optional) worker pool."""

    def __init__(self, server: "Server", name: str):
        self.server = server
        self.name = name
        self.cfg = server.config.for_model(name)
        self.cond = threading.Condition()
        self.queue: collections.deque = collections.deque()
        self.closing = False
        self.dead = False                 # scheduler thread crashed and exited
        self.busy = False                 # inline batch executing right now
        self.est_batch_s = self.cfg.exec_time_init_s
        self.inflight: Dict[int, _Batch] = {}
        self.pool: Optional[PlanPool] = None
        self._pool_key: Optional[str] = None
        self._seq = itertools.count()
        self.swap_target: Optional[str] = None
        self.swap_done = threading.Event()
        self.stats = _LaneStats()
        # always-on observability (independent of the telemetry switch,
        # like _LaneStats): rolling SLO window, flight-recorder ring, and
        # the per-op profile fold point for worker-shipped samples
        self.window = _obs.RollingWindow(window_s=self.cfg.obs_window_s)
        self.flight = _obs.FlightRecorder(
            capacity=self.cfg.flight_recorder_size)
        self.profile = _obs.ProfileAggregator()
        self._last_dump_t = -math.inf
        self._dump_n = 0
        self._prof_key: Optional[str] = None
        self._abft_key: Optional[str] = None
        self.pooled = self.cfg.workers >= 2 and _can_fork()
        self.expected_shape = self._declared_shape()
        self.thread = threading.Thread(target=self._run, daemon=True,
                                       name=f"repro-server-{name}")
        self.thread.start()

    # ----------------------------------------------------------- admission
    def _declared_shape(self) -> Optional[tuple]:
        """The active entry's declared sample shape (``meta['input_shape']``
        at register time), if any; otherwise learned from the first request."""
        try:
            shape = self.server.registry.get(self.name).meta.get("input_shape")
        except KeyError:
            return None
        return tuple(shape) if shape is not None else None

    def projected_wait_s(self) -> float:
        """Estimated enqueue-to-answer time for one more request, now."""
        batches_ahead = (math.ceil((len(self.queue) + 1) / self.cfg.max_batch)
                         + len(self.inflight) + (1 if self.busy else 0))
        return batches_ahead * self.est_batch_s

    def admit(self, req: PendingRequest) -> Optional[Response]:
        """Append under the lane lock, or return the typed rejection.

        A closed or dead lane rejects with a retryable :class:`Failed`
        instead of enqueueing onto a scheduler that will never drain the
        queue; a sample whose shape disagrees with the lane's expected
        input shape rejects with a non-retryable :class:`Failed` (it could
        never be stacked into a batch with its peers).
        """
        with self.cond:
            if self.closing or self.dead:
                return Failed(req.request_id, self.name,
                              error="gateway lane is closed" if self.closing
                              else "gateway lane crashed", retryable=True)
            shape = tuple(req.sample.shape)
            if self.expected_shape is None:
                self.expected_shape = shape
            elif shape != self.expected_shape:
                return Failed(
                    req.request_id, self.name,
                    error=f"sample shape {shape} does not match this model's "
                          f"expected input shape {self.expected_shape}",
                    retryable=False)
            if len(self.queue) >= self.cfg.max_queue:
                return Overloaded(req.request_id, self.name,
                                  reason="queue_full",
                                  projected_wait_s=self.projected_wait_s(),
                                  deadline_s=req.deadline_s)
            projected = self.projected_wait_s()
            if projected + self.cfg.shed_margin_s > req.deadline_s:
                return Overloaded(req.request_id, self.name,
                                  reason="deadline",
                                  projected_wait_s=projected,
                                  deadline_s=req.deadline_s)
            self.queue.append(req)
            self.server.metrics["queue_depth"].labels(
                model=self.name).set(len(self.queue))
            self.cond.notify()
        return None

    # -------------------------------------------------------- observability
    def auto_dump(self, reason: str, force: bool = False,
                  **context) -> Optional[Dict]:
        """Freeze the flight-recorder ring for a post-mortem, rate-limited.

        Called on every anomaly (deadline miss, shed, worker death, lane
        abort); the ``dump_min_interval_s`` cooldown keeps an overload storm
        from turning into a dump storm.  ``force`` bypasses the cooldown for
        rare, high-signal events (worker death, lane abort) that must never
        be shadowed by a recent shed dump.  With ``dump_dir`` set the dump
        is also written as JSON; either way ``flight.last_dump`` records it.
        """
        now = time.monotonic()
        if not force and now - self._last_dump_t < self.cfg.dump_min_interval_s:
            return None
        self._last_dump_t = now
        path = None
        if self.cfg.dump_dir:
            os.makedirs(self.cfg.dump_dir, exist_ok=True)
            self._dump_n += 1
            path = os.path.join(
                self.cfg.dump_dir,
                f"flight_{self.name}_{self._dump_n:03d}_{reason}.json")
        dump = self.flight.dump(reason, path=path, model=self.name)
        if path is not None and self.cfg.max_dumps > 0:
            self._rotate_dumps()
        telemetry.emit("server_flight_dump", model=self.name, reason=reason,
                       events=len(dump["events"]), path=path)
        return dump

    def _rotate_dumps(self) -> None:
        """Prune this lane's on-disk dumps to the newest ``max_dumps``.

        Dump filenames embed a zero-padded per-lane counter, so a plain
        lexicographic sort is age order; an unbounded dump directory on a
        long-lived gateway is a disk-exhaustion incident waiting to happen.
        """
        prefix = f"flight_{self.name}_"
        try:
            names = sorted(n for n in os.listdir(self.cfg.dump_dir)
                           if n.startswith(prefix) and n.endswith(".json"))
        except OSError:
            return
        for stale in names[:-self.cfg.max_dumps]:
            try:
                os.remove(os.path.join(self.cfg.dump_dir, stale))
            except OSError:
                pass

    def _record_spans(self, records: List[Dict]) -> None:
        self.server.trace_store.add_many(records)

    # ----------------------------------------------------------- scheduling
    def _flush_at(self, oldest: PendingRequest) -> float:
        """When the oldest queued request forces the batch closed: its
        deadline minus the estimated service time (the deadline-aware part),
        never later than the linger cap."""
        return min(oldest.deadline_t - self.est_batch_s
                   - self.cfg.shed_margin_s,
                   oldest.enqueue_t + self.cfg.max_linger_s)

    def _capacity(self) -> bool:
        if self.swap_target is not None:      # draining for cutover
            return False
        if not self.pooled:
            return True
        return (len(self.inflight) < self.cfg.max_inflight_batches
                and (self.pool is None or self.pool.free_slots > 0))

    def _form_batch_locked(self) -> _Batch:
        take = min(self.cfg.max_batch, len(self.queue))
        requests = [self.queue.popleft() for _ in range(take)]
        entry = self.server.registry.get(self.name)
        x = np.ascontiguousarray(
            np.stack([r.sample for r in requests]), dtype=np.float32)
        self.server.metrics["queue_depth"].labels(
            model=self.name).set(len(self.queue))
        batch = _Batch(self.server.next_batch_id(), requests, x, entry,
                       time.perf_counter())
        if any(r.ctx is not None for r in requests):
            # pre-mint each request's "batch" span id so workers can parent
            # their exec spans under it across the process boundary
            batch.trace = [_live.new_span_id() if r.ctx is not None else None
                           for r in requests]
        self.flight.record("batch_formed", bid=batch.bid, size=take,
                           queued=len(self.queue))
        return batch

    def _run(self) -> None:
        try:
            self._run_loop()
        except BaseException as exc:  # pragma: no cover - defensive backstop
            # The scheduler must never die silently: a crash here would
            # strand every queued and in-flight request in result() forever.
            self._abort(f"lane scheduler crashed: "
                        f"{type(exc).__name__}: {exc}")

    def _abort(self, error: str) -> None:
        """Resolve everything this lane holds as retryable Failed, mark the
        lane dead (admit rejects from now on), release pool and swap waiters."""
        with self.cond:
            self.dead = True
            queued = list(self.queue)
            self.queue.clear()
            inflight = list(self.inflight.values())
            self.inflight.clear()
            if self.swap_target is not None:
                self.swap_target = None
                self.swap_done.set()
            pool, self.pool = self.pool, None
            self._pool_key = None
        telemetry.emit("server_lane_crashed", level="error", model=self.name,
                       error=error, queued=len(queued),
                       in_flight_batches=len(inflight))
        self.flight.record("lane_abort", error=error, queued=len(queued),
                           in_flight_batches=len(inflight))
        self.auto_dump("lane_abort", force=True, error=error)
        for req in queued:
            req._resolve(Failed(req.request_id, self.name, error=error,
                                retryable=True))
            self.stats.failed += 1
            self.window.observe_failed()
            self.server.metrics["requests"].labels(
                model=self.name, status="failed").inc()
        for batch in inflight:
            self._fail_batch(batch, error, retryable=True)
        if pool is not None:
            try:
                pool.close()
            except Exception:
                pass

    def _run_loop(self) -> None:
        while True:
            batch = None
            poll = False
            with self.cond:
                while True:
                    if (self.swap_target is not None and not self.inflight
                            and not self.busy):
                        self._cutover_locked()
                    if self.queue and self._capacity():
                        now = time.perf_counter()
                        full = len(self.queue) >= self.cfg.max_batch
                        flush_at = self._flush_at(self.queue[0])
                        if full or self.closing or now >= flush_at:
                            batch = self._form_batch_locked()
                            if not self.pooled:
                                self.busy = True
                            break
                        if self.inflight:
                            poll = True
                            break
                        self.cond.wait(timeout=max(flush_at - now, 0.0005))
                        continue
                    if self.inflight:
                        poll = True
                        break
                    if self.closing and not self.queue:
                        self._shutdown_pool_locked()
                        return
                    self.cond.wait()
            if batch is not None:
                self._dispatch(batch)
            if poll or self.inflight:
                self._poll_pool()

    # ------------------------------------------------------------ execution
    def _dispatch(self, batch: _Batch) -> None:
        if self.pooled and batch.entry.plan is not None:
            self._submit_to_pool(batch)
            return
        plan = batch.entry.plan
        if (self.cfg.profile_every and plan is not None
                and self._prof_key != batch.entry.key
                and hasattr(plan, "enable_profiling")):
            plan.enable_profiling(sample_every=self.cfg.profile_every)
            self._prof_key = batch.entry.key
        if (self.cfg.abft_every and plan is not None
                and self._abft_key != batch.entry.key
                and hasattr(plan, "enable_abft")):
            plan.enable_abft(sample_every=self.cfg.abft_every)
            self._abft_key = batch.entry.key
        t0 = time.perf_counter()
        try:
            y = batch.entry(batch.x)
        except SDCDetected as exc:
            # corruption, not workload: the requests themselves are fine —
            # fail them retryable so a fleet router re-runs them on a
            # healthy replica while this one gets quarantined
            self.server.record_sdc(self.name, exc, lane=self)
            self._fail_batch(batch, str(exc), retryable=True)
        except Exception as exc:
            self._fail_batch(batch, f"{type(exc).__name__}: {exc}",
                             retryable=False)
        else:
            t1 = time.perf_counter()
            if plan is not None and getattr(plan, "_profiler", None) is not None:
                sampled = plan._profiler.pop_last()
                if sampled is not None:
                    self.profile.add(*sampled)
            if batch.trace is not None:
                self._record_spans([
                    _live.span_record(req.ctx.trace_id, "exec", t0, t1,
                                      parent_id=batch.trace[i],
                                      attrs={"n": len(batch.requests)})
                    for i, req in enumerate(batch.requests)
                    if req.ctx is not None])
            self._complete(batch, np.asarray(y), t0, t1)
        finally:
            with self.cond:
                self.busy = False
                self.cond.notify()

    def _ensure_pool(self, batch: _Batch) -> None:
        if self.pool is not None and self._pool_key == batch.entry.key:
            return
        if self.pool is not None:       # stale pool from a previous version
            self.pool.close()
        slot_shape = (self.cfg.max_batch,) + tuple(batch.x.shape[1:])
        self.pool = PlanPool(batch.entry.plan, slot_shape,
                             self.cfg.workers,
                             slots=max(2, self.cfg.max_inflight_batches),
                             profile_every=self.cfg.profile_every)
        self._pool_key = batch.entry.key
        telemetry.emit("server_pool_start", model=batch.entry.key,
                       workers=self.cfg.workers,
                       slots=self.pool.nslots)

    def _submit_to_pool(self, batch: _Batch) -> None:
        try:
            self._ensure_pool(batch)
            seq = next(self._seq)
            batch.submit_t = time.perf_counter()
            wire = None
            if batch.trace is not None:
                wire = [(req.ctx.trace_id, batch.trace[i])
                        for i, req in enumerate(batch.requests)
                        if req.ctx is not None]
            self.pool.submit(seq, batch.x, trace=wire)
        except Exception as exc:
            self._fail_batch(batch, f"pool submit failed: {exc}",
                             retryable=True)
            return
        self.inflight[seq] = batch

    def _poll_pool(self) -> None:
        if self.pool is None or not self.inflight:
            return
        try:
            seq, y, extra = self.pool.wait_one_ex(timeout=_POOL_POLL_S)
        except TimeoutError:
            return
        except WorkerDied:
            self._supervise()
        except BatchFailed as exc:
            batch = self.inflight.pop(exc.seq, None)
            if batch is not None:
                self._fail_batch(batch, str(exc), retryable=False)
        else:
            if extra:
                spans = extra.get("spans")
                if spans:
                    self._record_spans(spans)
                profile = extra.get("profile")
                if profile:
                    self.profile.add([tuple(r) for r in profile["rows"]],
                                     profile["wall_s"])
            batch = self.inflight.pop(seq, None)
            if batch is not None:
                self._complete(batch, y, batch.submit_t, time.perf_counter())

    def _supervise(self) -> None:
        """A pool worker died: requeue each in-flight batch once, respawn."""
        died = list(self.inflight.values())
        self.inflight.clear()
        self.stats.worker_deaths += 1
        exitcodes = [p.exitcode for p in self.pool.procs if not p.is_alive()]
        telemetry.emit("server_worker_died", level="warning", model=self.name,
                       in_flight_batches=len(died), exitcodes=exitcodes)
        self.flight.record("worker_death", exitcodes=exitcodes,
                           in_flight_batches=[b.bid for b in died])
        self.auto_dump("worker_death", force=True, exitcodes=exitcodes)
        try:
            self.pool.respawn()
        except Exception as exc:
            # Respawn itself failed: fail everything that was in flight as
            # retryable, drop the pool, and let the next batch rebuild it.
            telemetry.emit("server_pool_respawn_failed", level="error",
                           model=self.name, error=str(exc))
            for batch in died:
                self._fail_batch(batch, f"pool respawn failed: {exc}",
                                 retryable=True)
            try:
                self.pool.close()
            except Exception:
                pass
            self.pool = None
            self._pool_key = None
            return
        retry, give_up = [], []
        for batch in died:
            (give_up if batch.retried else retry).append(batch)
        for batch in give_up:
            self._fail_batch(
                batch, "worker pool died twice while executing this batch",
                retryable=True)
        for batch in retry:
            batch.retried = True
            self.stats.retried_requests += len(batch.requests)
            self.server.metrics["retries"].labels(model=self.name).inc(
                len(batch.requests))
            self.flight.record("batch_retried", bid=batch.bid,
                               size=len(batch.requests))
            if batch.trace is not None:
                now = time.perf_counter()
                # instant marker under each request root: the tree records
                # that this request survived a worker death and was requeued
                self._record_spans([
                    _live.span_record(req.ctx.trace_id, "retry", now, now,
                                      parent_id=req.ctx.span_id,
                                      attrs={"bid": batch.bid})
                    for req in batch.requests if req.ctx is not None])
            self._submit_to_pool(batch)

    # ------------------------------------------------------------ hot swap
    def request_swap(self, version: str) -> None:
        with self.cond:
            if self.closing or self.dead:
                raise RuntimeError(
                    f"cannot swap model {self.name!r}: lane is "
                    + ("closed" if self.closing else "dead"))
            self.swap_target = version
            self.swap_done.clear()
            self.cond.notify()

    def _cutover_locked(self) -> None:
        version = self.swap_target
        entry = self.server.registry.set_active(self.name, version)
        if self.pool is not None:   # drained: safe to drop the old plan's pool
            self.pool.close()
            self.pool = None
            self._pool_key = None
        self.swap_target = None
        self._abft_key = None        # re-arm ABFT on the incoming plan
        declared = entry.meta.get("input_shape")
        if declared is not None:     # new version may take a different shape
            self.expected_shape = tuple(declared)
        self.stats.swaps += 1
        telemetry.emit("server_swap", model=self.name, active=entry.key)
        self.server._ensure_scrub(self.name)   # scrub the incoming plan
        self.swap_done.set()

    # ------------------------------------------------------------ resolution
    def _observe_exec(self, dt: float) -> None:
        a = self.cfg.ewma_alpha
        self.est_batch_s = (1 - a) * self.est_batch_s + a * dt

    def _complete(self, batch: _Batch, y: np.ndarray, t0: float,
                  t1: float) -> None:
        self._observe_exec(t1 - t0)
        self.stats.batches += 1
        if len(self.stats.batch_sizes) < _LaneStats._CAP:
            self.stats.batch_sizes.append(len(batch.requests))
        m = self.server.metrics
        m["batch_size"].labels(model=self.name).observe(len(batch.requests))
        missed = 0
        records: List[Dict] = []
        spans = []
        # bookkeeping first, _resolve() last: once a caller's result()
        # returns, the window/flight-recorder/trace state already reflects
        # that request (tests and pollers rely on this ordering).
        responses = []
        for i, req in enumerate(batch.requests):
            queue_wait = batch.formed_t - req.enqueue_t
            latency = t1 - req.enqueue_t
            miss = latency > req.deadline_s
            responses.append(Ok(req.request_id, batch.entry.key,
                               logits=y[i].copy(), queue_wait_s=queue_wait,
                               latency_s=latency,
                               batch_size=len(batch.requests),
                               batch_id=batch.bid))
            self.stats.ok += 1
            self.stats.observe(latency, queue_wait)
            self.window.observe_ok(latency, queue_wait, deadline_miss=miss)
            if miss:
                missed += 1
                self.stats.deadline_miss += 1
                m["deadline_miss"].labels(model=self.name).inc()
            m["requests"].labels(model=self.name, status="ok").inc()
            m["queue_wait"].labels(model=self.name).observe(queue_wait)
            m["latency"].labels(model=self.name).observe(latency)
            ctx = req.ctx
            if ctx is not None and batch.trace is not None:
                root = ctx.span_id
                records.append(_live.span_record(
                    ctx.trace_id, "queue.wait", req.enqueue_t, batch.formed_t,
                    parent_id=root))
                records.append(_live.span_record(
                    ctx.trace_id, "batch", batch.formed_t, t1,
                    parent_id=root, span_id=batch.trace[i],
                    attrs={"bid": batch.bid, "size": len(batch.requests),
                           "retried": batch.retried}))
                records.append(_live.span_record(
                    ctx.trace_id, "request", req.enqueue_t, t1, span_id=root,
                    attrs={"request_id": req.request_id,
                           "model": batch.entry.key, "status": "ok",
                           "deadline_miss": miss,
                           "latency_ms": round(latency * 1e3, 3)}))
            if telemetry.enabled():
                from repro.telemetry.tracing import Span

                s = Span("server.request",
                         {"request_id": req.request_id, "batch": batch.bid,
                          "queue_wait_ms": round(queue_wait * 1e3, 3)})
                s.t_start, s.t_end = req.enqueue_t, t1
                spans.append(s)
        if telemetry.enabled():
            from repro.telemetry.tracing import Span

            bspan = Span("server.batch",
                         {"model": batch.entry.key, "batch": batch.bid,
                          "size": len(batch.requests),
                          "retried": batch.retried})
            bspan.t_start, bspan.t_end = t0, t1
            bspan.children = spans       # request spans link to their batch
            with _TRACE_LOCK:
                telemetry.get_tracer().roots.append(bspan)
        if records:
            self._record_spans(records)
        self.flight.record("batch_complete", bid=batch.bid,
                           size=len(batch.requests),
                           exec_ms=round((t1 - t0) * 1e3, 3),
                           deadline_miss=missed, retried=batch.retried)
        if missed:
            self.auto_dump("deadline_miss", bid=batch.bid, missed=missed)
        for req, resp in zip(batch.requests, responses):
            req._resolve(resp)

    def _fail_batch(self, batch: _Batch, error: str, retryable: bool) -> None:
        telemetry.emit("server_batch_failed", level="error", model=self.name,
                       batch=batch.bid, error=error, retryable=retryable)
        self.flight.record("batch_failed", bid=batch.bid, error=error,
                           retryable=retryable, size=len(batch.requests))
        now = time.perf_counter()
        records: List[Dict] = []
        for req in batch.requests:
            req._resolve(Failed(req.request_id, batch.entry.key, error=error,
                                retryable=retryable))
            self.stats.failed += 1
            self.window.observe_failed()
            self.server.metrics["requests"].labels(
                model=self.name, status="failed").inc()
            if req.ctx is not None:
                records.append(_live.span_record(
                    req.ctx.trace_id, "request", req.enqueue_t, now,
                    span_id=req.ctx.span_id,
                    attrs={"request_id": req.request_id,
                           "model": batch.entry.key, "status": "failed",
                           "error": error}))
        if records:
            self._record_spans(records)

    # ------------------------------------------------------------- shutdown
    def _shutdown_pool_locked(self) -> None:
        if self.pool is not None:
            self.pool.close()
            self.pool = None
        if self.swap_target is not None:   # unblock a swap raced with close
            self.swap_target = None
            self.swap_done.set()

    def close(self) -> None:
        with self.cond:
            self.closing = True
            self.cond.notify()


class Server:
    """The gateway front-end: ``submit() -> PendingRequest -> Response``.

    ::

        registry = ModelRegistry()
        registry.register("resnet20", "1", deploy(qmodel))
        with Server(registry, max_batch=16) as srv:
            pending = srv.submit("resnet20", sample, deadline_s=0.2)
            response = pending.result()
            if response.ok:
                logits = response.logits
    """

    def __init__(self, registry: ModelRegistry,
                 config: Optional[ServerConfig] = None, **overrides):
        self.registry = registry
        self.config = replace(config or ServerConfig(), **overrides) \
            if overrides else (config or ServerConfig())
        self.pooled = self.config.workers >= 2 and _can_fork()
        self._lanes: Dict[str, _Lane] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._batch_ids = itertools.count(1)
        self.closing = False
        self.draining = False      #: intake off, queued work still completes
        self.killed = False        #: abrupt stop (replica-death simulation)
        self.drain_rejected = 0    #: submits bounced while draining
        self._t0 = time.time()
        self.sdc_events: List[Dict] = []   #: live SDC detections, in order
        self._scrubber = None              #: lazy shared MemoryScrubber
        self.trace_store = _live.TraceStore(
            capacity=self.config.trace_capacity)
        self._exporter: Optional[threading.Thread] = None
        self._exporter_stop = threading.Event()
        reg = telemetry.get_registry()
        self.metrics = {
            "requests": reg.counter(
                "server_requests_total",
                "requests by final status", labels=("model", "status")),
            "queue_wait": reg.histogram(
                "server_queue_wait_seconds",
                "enqueue to batch close", labels=("model",)),
            "latency": reg.histogram(
                "server_request_latency_seconds",
                "enqueue to response", labels=("model",)),
            "batch_size": reg.histogram(
                "server_batch_size", "formed micro-batch sizes",
                labels=("model",), buckets=(1, 2, 4, 8, 16, 32, 64, 128)),
            "retries": reg.counter(
                "server_retries_total",
                "requests requeued after a worker death", labels=("model",)),
            "queue_depth": reg.gauge(
                "server_queue_depth", "queued requests", labels=("model",)),
            "deadline_miss": reg.counter(
                "server_deadline_miss_total",
                "answered after the request's deadline", labels=("model",)),
            "sdc": reg.counter(
                "server_sdc_detected_total",
                "silent-data-corruption detections",
                labels=("model", "source")),
        }

    def tracing_active(self) -> bool:
        """Request tracing on? ``config.tracing`` pins it; ``None`` follows
        the global telemetry switch."""
        cfg = self.config.tracing
        return telemetry.enabled() if cfg is None else bool(cfg)

    # -------------------------------------------------------------- intake
    def _lane(self, name: str) -> _Lane:
        lane = self._lanes.get(name)
        if lane is None:
            with self._lock:
                lane = self._lanes.get(name)
                if lane is None:
                    lane = _Lane(self, name)
                    self._lanes[name] = lane
            self._ensure_scrub(name)
        return lane

    # ---------------------------------------------------------- SDC defense
    def record_sdc(self, model: str, exc, lane: Optional[_Lane] = None
                   ) -> None:
        """Account one live silent-data-corruption detection.

        Counter + structured event + forced flight-recorder dump, and the
        event lands in ``sdc_events`` — the flag a fleet health loop
        quarantines the whole replica on (see
        :meth:`repro.fleet.Fleet`).  Called from the lane on an ABFT
        miss, from the scrubber's fault callback, and from fleet golden
        probes; never from the pre-cutover swap gate (a refused *incoming*
        version says nothing about the serving one).
        """
        source = getattr(exc, "source", "unknown")
        self.sdc_events.append({
            "model": model, "source": source, "error": str(exc),
            "detail": getattr(exc, "detail", None) or {}, "t": time.time()})
        self.metrics["sdc"].labels(model=model, source=source).inc()
        telemetry.emit("server_sdc_detected", level="error", model=model,
                       source=source, error=str(exc))
        if lane is None:
            lane = self._lanes.get(model)
        if lane is not None:
            lane.flight.record("sdc_detected", source=source,
                               error=str(exc))
            lane.auto_dump("sdc", force=True, source=source)

    @property
    def sdc_detected(self) -> bool:
        """True once any live SDC (ABFT, scrub or golden) was recorded."""
        return bool(self.sdc_events)

    @staticmethod
    def _entry_golden(entry: ModelEntry):
        """The entry's deploy-time golden vectors: the ``Deployed`` bundle's
        :class:`~repro.integrity.GoldenSet`, or one rebuilt from the
        manifest-shaped dict registered under ``meta['golden']``."""
        golden = (getattr(entry.deployed, "golden", None)
                  if entry.deployed is not None else None)
        if golden is None and entry.meta.get("golden") is not None:
            from repro.integrity import GoldenSet

            golden = GoldenSet.from_json(entry.meta["golden"])
        return golden

    def _ensure_scrub(self, name: str) -> None:
        """Register ``name``'s active plan with the background scrubber
        (started lazily on the first plan-backed lane)."""
        if self.config.scrub_interval_s <= 0 or self.closing:
            return
        try:
            plan = self.registry.get(name).plan
        except KeyError:
            return
        if plan is None:
            return
        if self._scrubber is None:
            from repro.integrity import MemoryScrubber

            self._scrubber = MemoryScrubber(
                interval_s=self.config.scrub_interval_s,
                on_fault=self._on_scrub_fault, name="server").start()
        self._scrubber.add(name, plan)

    def _on_scrub_fault(self, name: str, report) -> None:
        try:
            report.raise_if_failed()
        except SDCDetected as exc:
            self.record_sdc(name, exc)

    def scrub_now(self) -> List:
        """One synchronous scrub pass over every registered plan (faults
        route through :meth:`record_sdc` like background scans)."""
        if self._scrubber is None:
            from repro.integrity import MemoryScrubber

            self._scrubber = MemoryScrubber(
                interval_s=max(self.config.scrub_interval_s, 1.0),
                on_fault=self._on_scrub_fault, name="server")
        # re-sync targets every pass: lanes appear lazily and swaps
        # replace the active plan object
        with self._lock:
            names = list(self._lanes)
        for name in names:
            try:
                plan = self.registry.get(name).plan
            except KeyError:
                continue
            if plan is not None:
                self._scrubber.add(name, plan)
        return self._scrubber.scan_once()

    def next_batch_id(self) -> int:
        return next(self._batch_ids)

    def submit(self, key: str, sample, deadline_s: Optional[float] = None
               ) -> PendingRequest:
        """Enqueue one *unbatched* sample for ``key`` (``name`` or
        ``name@version``); routing is by name, the active version serves.

        Always returns a handle: a shed request comes back as an already
        resolved :class:`Overloaded`, a sample whose shape disagrees with
        the model's expected input shape (or a submit that raced with
        :meth:`close`) as an already resolved :class:`Failed`.  Raises
        ``KeyError`` for unknown models and ``RuntimeError`` after
        :meth:`close`.
        """
        if self.closing:
            raise RuntimeError("server is closed")
        entry = self.registry.get(key)      # KeyError for unknown models
        x = np.ascontiguousarray(np.asarray(
            getattr(sample, "data", sample), dtype=np.float32))
        deadline = (self.config.for_model(entry.name).default_deadline_s
                    if deadline_s is None else float(deadline_s))
        req = PendingRequest(next(self._ids), entry.name, x,
                             time.perf_counter(), deadline)
        if self.draining:
            # drain protocol: intake is off but queued work still completes;
            # the typed retryable Failed tells a fleet router to resubmit
            # elsewhere without burning this request
            self.drain_rejected += 1
            req._resolve(Failed(req.request_id, entry.name,
                                error="server is draining", retryable=True))
            return req
        if self.tracing_active():
            # trace_id == request_id: one id to correlate logs/spans/results
            req.ctx = _live.TraceContext.mint(req.request_id,
                                              model=entry.name)
        lane = self._lane(entry.name)
        rejection = lane.admit(req)
        if rejection is None:
            lane.stats.requests += 1
        elif isinstance(rejection, Overloaded):
            lane.stats.shed += 1
            lane.window.observe_shed()
            self.metrics["requests"].labels(
                model=entry.name, status="shed").inc()
            telemetry.emit("server_shed", model=entry.name,
                           request=req.request_id, reason=rejection.reason,
                           projected_wait_s=rejection.projected_wait_s)
            lane.flight.record("shed", request=req.request_id,
                               reason=rejection.reason,
                               projected_wait_s=rejection.projected_wait_s)
            lane.auto_dump("shed", shed_reason=rejection.reason)
            if req.ctx is not None:
                self.trace_store.add(_live.span_record(
                    req.ctx.trace_id, "request", req.enqueue_t,
                    time.perf_counter(), span_id=req.ctx.span_id,
                    attrs={"request_id": req.request_id, "model": entry.name,
                           "status": "shed", "reason": rejection.reason}))
            req._resolve(rejection)
        else:                               # Failed: bad shape / closed lane
            lane.stats.failed += 1
            lane.window.observe_failed()
            self.metrics["requests"].labels(
                model=entry.name, status="failed").inc()
            telemetry.emit("server_rejected", model=entry.name,
                           request=req.request_id, error=rejection.error)
            lane.flight.record("rejected", request=req.request_id,
                               error=rejection.error)
            if req.ctx is not None:
                self.trace_store.add(_live.span_record(
                    req.ctx.trace_id, "request", req.enqueue_t,
                    time.perf_counter(), span_id=req.ctx.span_id,
                    attrs={"request_id": req.request_id, "model": entry.name,
                           "status": "rejected", "error": rejection.error}))
            req._resolve(rejection)
        return req

    # ------------------------------------------------------------- control
    def swap(self, name: str, version: str, timeout: float = 30.0) -> None:
        """Drain-and-cutover to ``name@version``: in-flight batches finish on
        the old plan, the active pointer flips atomically, the pool is
        rebuilt, then dispatch resumes.  Queued requests are never dropped.
        Raises ``RuntimeError`` when the server (or the model's lane) is
        already closed instead of waiting out the timeout.
        """
        if self.closing:
            raise RuntimeError("server is closed")
        entry = self.registry.get(f"{name}@{version}")  # validate before draining
        report = self.registry.verify(f"{name}@{version}")
        if report is not None and not report.ok:
            # refuse before draining a healthy lane: the old version keeps
            # serving and the corrupted one never becomes active
            telemetry.emit("server_swap_rejected", level="error", model=name,
                           version=version,
                           errors=report.to_json()["summary"]["errors"])
            report.raise_if_failed()
        plan = entry.plan
        if plan is not None and hasattr(plan, "verify"):
            vreport = plan.verify()
            if not vreport.ok:
                # same refusal for a plan that fails static verification:
                # no unverified program ever takes over a lane
                from repro.lint.plan import PlanVerificationError

                telemetry.emit("server_swap_rejected", level="error",
                               model=name, version=version, reason="plan",
                               errors=vreport.to_json()["summary"]["errors"])
                raise PlanVerificationError(vreport)
        golden = self._entry_golden(entry)
        if golden is not None:
            # pre-cutover self-test: replay the deploy-time golden vectors
            # through the incoming version; a mismatch refuses the swap
            # while the old version keeps serving
            try:
                golden.check(lambda x: np.asarray(entry(x)))
            except SDCDetected as exc:
                self.metrics["sdc"].labels(model=name,
                                           source=exc.source).inc()
                telemetry.emit("server_swap_rejected", level="error",
                               model=name, version=version, reason="golden",
                               error=str(exc))
                raise
        lane = self._lane(name)
        lane.request_swap(version)
        if not lane.swap_done.wait(timeout):
            raise TimeoutError(f"swap to {name}@{version} did not cut over "
                               f"within {timeout}s")

    def stats(self) -> Dict[str, Dict]:
        """Per-model accounting incl. p50/p95/p99 latency and queue wait."""
        from repro.telemetry.metrics import percentile_summary

        out = {}
        for name, lane in sorted(self._lanes.items()):
            s = lane.stats
            out[name] = {
                "requests": s.requests,
                "ok": s.ok,
                "shed": s.shed,
                "failed": s.failed,
                "deadline_miss": s.deadline_miss,
                "retried_requests": s.retried_requests,
                "batches": s.batches,
                "worker_deaths": s.worker_deaths,
                "swaps": s.swaps,
                "mean_batch_size": (sum(s.batch_sizes) / len(s.batch_sizes)
                                    if s.batch_sizes else 0.0),
                "est_batch_ms": lane.est_batch_s * 1e3,
                "latency_ms": {k: v * 1e3 for k, v in
                               percentile_summary(s.latencies_s).items()},
                "queue_wait_ms": {k: v * 1e3 for k, v in
                                  percentile_summary(s.queue_waits_s).items()},
            }
        return out

    # ------------------------------------------------------- observability
    def status(self) -> Dict:
        """One structured operational snapshot: per-model rolling SLO window
        (current p50/p95/p99, shed/miss rates, error-budget burn), cumulative
        counters, flight-recorder state, sampled per-op profile and trace
        store occupancy.  Always-on — works with telemetry off."""
        cumulative = self.stats()
        models: Dict[str, Dict] = {}
        with self._lock:
            lanes = dict(self._lanes)
        for name, lane in sorted(lanes.items()):
            prof = lane.profile.report(top=5)
            models[name] = {
                "window": lane.window.summary(
                    slo_target=lane.cfg.slo_target),
                "cumulative": cumulative.get(name, {}),
                "queue_depth": len(lane.queue),
                "inflight_batches": len(lane.inflight),
                "pooled": lane.pooled,
                "workers_alive": (sum(p.is_alive() for p in lane.pool.procs)
                                  if lane.pool is not None else 0),
                "flight_recorder": {
                    "events": len(lane.flight),
                    "dropped_events": lane.flight.dropped_events,
                    "last_dump": lane.flight.last_dump,
                },
                "profile": prof if prof["sampled_batches"] else None,
            }
        return {
            "ts": time.time(),
            "uptime_s": round(time.time() - self._t0, 3),
            "closing": self.closing,
            "tracing": self.tracing_active(),
            "traces_held": len(self.trace_store),
            "traces_evicted": self.trace_store.evicted,
            "sdc": {"events": len(self.sdc_events),
                    "last": self.sdc_events[-1] if self.sdc_events else None},
            "models": models,
        }

    def _obs_samples(self) -> List[Dict]:
        """Synthesized exposition samples from the always-on lane windows
        (registry metrics stay silent when telemetry is off; these do not)."""
        samples: List[Dict] = []
        with self._lock:
            lanes = dict(self._lanes)
        for name, lane in sorted(lanes.items()):
            w = lane.window.summary(slo_target=lane.cfg.slo_target)
            lab = {"model": name}
            for metric, value in (
                    ("server_window_requests", w["requests"]),
                    ("server_window_ok", w["ok"]),
                    ("server_window_shed", w["shed"]),
                    ("server_window_failed", w["failed"]),
                    ("server_window_deadline_miss", w["deadline_miss"]),
                    ("server_window_throughput_hz", w["throughput_hz"]),
                    ("server_window_latency_p50_ms", w["latency_ms"]["p50"]),
                    ("server_window_latency_p99_ms", w["latency_ms"]["p99"]),
                    ("server_slo_error_budget_burn",
                     w["slo"]["error_budget_burn"]),
                    ("server_queue_depth_now", len(lane.queue))):
                samples.append({"name": metric, "kind": "gauge",
                                "labels": lab, "value": value})
        # always present (the labeled sdc counter only renders once hit)
        samples.append({"name": "server_sdc_events", "kind": "gauge",
                        "labels": {}, "value": len(self.sdc_events)})
        return samples

    def render_exposition(self) -> str:
        """Prometheus text exposition: the process registry plus the
        always-on per-lane window gauges."""
        return _obs.exposition(telemetry.get_registry(),
                               extra_samples=self._obs_samples())

    def trace_tree(self, request_id: int):
        """``(roots, orphans)`` span tree for one traced request."""
        return self.trace_store.tree(int(request_id))

    def dump_traces(self, path: str) -> int:
        """Write every held span record as JSONL; returns spans written."""
        return self.trace_store.dump_jsonl(path)

    def dump_flight_recorder(self, model: Optional[str] = None,
                             path: Optional[str] = None) -> Dict:
        """On-demand post-mortem: freeze each lane's ring (or one model's).

        Returns ``{model: dump}``; with ``path`` the combined dict is also
        written as JSON."""
        with self._lock:
            lanes = dict(self._lanes)
        if model is not None:
            lanes = {model: lanes[model]}   # KeyError for unknown models
        dumps = {name: lane.flight.dump("manual", model=name)
                 for name, lane in sorted(lanes.items())}
        if path is not None:
            with open(path, "w") as f:
                json.dump(dumps, f, indent=1, default=str)
        return dumps

    def profile_report(self, model: str, top: Optional[int] = None) -> Dict:
        """The sampled per-op breakdown folded from workers/inline exec."""
        return self._lane(model).profile.report(top=top)

    def start_status_export(self, out_dir: str,
                            interval_s: float = 1.0) -> None:
        """Periodically write ``status.json`` + ``metrics.prom`` to a
        directory (atomic tmp+rename), the file-based stand-in for an HTTP
        endpoint that ``repro.cli top`` tails.  Stopped by :meth:`close`."""
        if self._exporter is not None:
            raise RuntimeError("status export already running")
        os.makedirs(out_dir, exist_ok=True)
        self._exporter_stop.clear()

        def _write() -> None:
            for fname, payload in (
                    ("status.json", json.dumps(self.status(), indent=1,
                                               default=str)),
                    ("metrics.prom", self.render_exposition())):
                tmp = os.path.join(out_dir, "." + fname + ".tmp")
                with open(tmp, "w") as f:
                    f.write(payload)
                os.replace(tmp, os.path.join(out_dir, fname))

        def _loop() -> None:
            while not self._exporter_stop.wait(interval_s):
                try:
                    _write()
                except Exception:   # an export glitch must not kill serving
                    pass
            try:
                _write()            # final snapshot on shutdown
            except Exception:
                pass

        self._exporter = threading.Thread(
            target=_loop, daemon=True, name="repro-server-status-export")
        self._exporter.start()

    def stop_status_export(self, timeout: float = 5.0) -> None:
        if self._exporter is None:
            return
        self._exporter_stop.set()
        self._exporter.join(timeout=timeout)
        self._exporter = None

    # ------------------------------------------------------- replica mode
    def drain(self) -> None:
        """Stop intake while letting every queued/in-flight request finish.

        The scale-in half of the fleet drain protocol: a draining server
        answers new :meth:`submit` calls with an already-resolved retryable
        :class:`~repro.server.types.Failed` (the router resubmits them on a
        peer replica) and keeps its lanes running until :meth:`drained`.
        Idempotent; finish with :meth:`close` once drained.
        """
        if not self.draining:
            self.draining = True
            telemetry.emit("server_draining",
                           pending=self.pending_count())

    def pending_count(self) -> int:
        """Requests this server still owes answers for: queued plus riding
        in-flight batches (an inline batch mid-execution counts as one —
        its exact size is not tracked outside the lane thread)."""
        total = 0
        with self._lock:
            lanes = list(self._lanes.values())
        for lane in lanes:
            with lane.cond:
                total += len(lane.queue)
                total += sum(len(b.requests)
                             for b in lane.inflight.values())
                total += 1 if lane.busy else 0
        return total

    def drained(self) -> bool:
        """True once no lane holds queued or in-flight work."""
        return self.pending_count() == 0

    def healthy(self) -> bool:
        """Liveness for fleet health checks: accepting work and no crashed
        lane scheduler."""
        if self.closing or self.killed or self.draining:
            return False
        with self._lock:
            lanes = list(self._lanes.values())
        return not any(lane.dead for lane in lanes)

    def kill(self) -> None:
        """Abrupt replica death (the in-process stand-in for SIGKILL of a
        whole gateway process): every queued and in-flight request resolves
        as a retryable :class:`~repro.server.types.Failed` *immediately* —
        no drain — so a fleet layer can requeue the lost work elsewhere,
        and the server refuses everything afterwards."""
        if self.killed:
            return
        self.killed = True
        self.closing = True
        with self._lock:
            lanes = list(self._lanes.values())
        telemetry.emit("server_killed", level="warning",
                       lanes=[lane.name for lane in lanes])
        for lane in lanes:
            lane._abort("replica killed")
            lane.close()        # wake the scheduler thread so it exits
        if self._scrubber is not None:
            self._scrubber.stop()
        self.stop_status_export()

    def close(self, timeout: float = 30.0) -> None:
        """Stop intake, drain every lane, shut down pools and threads."""
        self.closing = True
        with self._lock:
            lanes = list(self._lanes.values())
        for lane in lanes:
            lane.close()
        deadline = time.monotonic() + timeout
        for lane in lanes:
            lane.thread.join(timeout=max(0.0, deadline - time.monotonic()))
        if self._scrubber is not None:
            self._scrubber.stop()
        self.stop_status_export()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
