"""Synthetic open-loop load generator (Poisson arrivals) for the gateway.

Open-loop means arrival times are scheduled up front from the exponential
inter-arrival distribution and requests fire at those instants regardless of
how the server is keeping up — the generator never self-throttles, so
overload actually shows up as shed requests and tail latency instead of
being hidden by client backpressure.  :func:`run_poisson_load` drives a live
:class:`~repro.server.Server` (or a :class:`~repro.fleet.Fleet` — anything
with the same ``submit``/``config`` surface) and returns a
:class:`LoadReport`; the ``repro.cli serve-bench`` subcommand wraps it and
writes ``BENCH_server.json``.

Load traces are **reproducible**: pass an explicit ``seed`` (or a
pre-seeded ``rng``) and the arrival times, tenant draws and sample choices
replay byte-for-byte.  Multi-tenant traffic is described by a ``tenants=``
list of :class:`Tenant` records — each request is drawn from the tenant mix
by weight, targets that tenant's model key and deadline, and the report
carries a per-tenant breakdown.  Degenerate arguments (non-positive rates
or weights, empty sample sets) raise the typed :class:`LoadGenError`.
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.telemetry.metrics import percentile_summary


class LoadGenError(ValueError):
    """Typed rejection of a degenerate load description (non-positive rate
    or tenant weight, empty samples, conflicting seeds)."""


@dataclass(frozen=True)
class Tenant:
    """One traffic class in a multi-tenant load mix.

    ``weight`` is the tenant's share of the Poisson arrival stream (weights
    are normalized over the mix, they need not sum to 1).  ``key`` targets a
    model (``name`` or ``name@version``); ``deadline_s`` overrides the run's
    deadline for this tenant's requests.  ``collect_delay_s`` models a
    slow-loris client: the request fires on time but its *result is not
    collected* until that much later — the server must not let uncollected
    futures hold resources.
    """

    name: str
    key: Optional[str] = None         #: model key; None -> the run's key
    weight: float = 1.0
    deadline_s: Optional[float] = None
    collect_delay_s: float = 0.0


def _as_tenant(t: Union[Tenant, Dict]) -> Tenant:
    if isinstance(t, Tenant):
        return t
    return Tenant(**t)


@dataclass
class LoadReport:
    """Outcome of one open-loop run (latencies in seconds)."""

    model: str
    requests: int
    ok: int
    shed: int
    failed: int
    retryable_failed: int
    deadline_s: float
    offered_rate_hz: float
    duration_s: float
    latencies_s: List[float] = field(default_factory=list, repr=False)
    queue_waits_s: List[float] = field(default_factory=list, repr=False)
    batch_sizes: List[int] = field(default_factory=list, repr=False)
    bit_exact: Optional[bool] = None   #: None when no references were given
    mismatches: int = 0
    late: int = 0                      #: answered but past the deadline
    seed: Optional[int] = None         #: explicit seed, when one was given
    #: ``{tenant: {"requests", "ok", "shed", "failed", "latency_ms"}}``
    per_tenant: Dict[str, Dict] = field(default_factory=dict)

    @property
    def achieved_rate_hz(self) -> float:
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def drop_rate(self) -> float:
        return (self.shed + self.failed) / max(self.requests, 1)

    def latency_percentiles(self) -> Dict[str, float]:
        return percentile_summary(self.latencies_s)

    def to_json(self) -> Dict:
        lat = self.latency_percentiles()
        out = {
            "model": self.model,
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "failed": self.failed,
            "retryable_failed": self.retryable_failed,
            "late": self.late,
            "deadline_ms": self.deadline_s * 1e3,
            "offered_rate_hz": round(self.offered_rate_hz, 2),
            "achieved_rate_hz": round(self.achieved_rate_hz, 2),
            "duration_s": round(self.duration_s, 4),
            "drop_rate": round(self.drop_rate, 6),
            "latency_ms": {k: round(v * 1e3, 3) for k, v in lat.items()},
            "queue_wait_ms": {k: round(v * 1e3, 3) for k, v in
                              percentile_summary(self.queue_waits_s).items()},
            "mean_batch_size": (round(sum(self.batch_sizes)
                                      / len(self.batch_sizes), 2)
                                if self.batch_sizes else 0.0),
            "bit_exact": self.bit_exact,
            "mismatches": self.mismatches,
        }
        if self.seed is not None:
            out["seed"] = self.seed
        if self.per_tenant:
            out["per_tenant"] = self.per_tenant
        return out


class _TenantTally:
    __slots__ = ("requests", "ok", "shed", "failed", "latencies_s")

    def __init__(self):
        self.requests = 0
        self.ok = 0
        self.shed = 0
        self.failed = 0
        self.latencies_s: List[float] = []

    def to_json(self) -> Dict:
        return {"requests": self.requests, "ok": self.ok, "shed": self.shed,
                "failed": self.failed,
                "latency_ms": {k: round(v * 1e3, 3) for k, v in
                               percentile_summary(self.latencies_s).items()}}


def _default_deadline(server) -> float:
    cfg = getattr(server, "config", None)
    return getattr(cfg, "default_deadline_s", 0.25)


def run_poisson_load(server, key: Optional[str],
                     samples: Sequence[np.ndarray], *,
                     rate_hz: float, n_requests: int,
                     deadline_s: Optional[float] = None,
                     refs: Optional[Sequence[np.ndarray]] = None,
                     rng: Optional[np.random.Generator] = None,
                     seed: Optional[int] = None,
                     tenants: Optional[Sequence[Union[Tenant, Dict]]] = None,
                     result_grace_s: float = 10.0) -> LoadReport:
    """Fire ``n_requests`` Poisson arrivals at ``rate_hz`` and collect results.

    ``samples[i % len(samples)]`` is request *i*'s input; when ``refs`` is
    given (same indexing: the expected logits from *single-sample* execution
    on the interpreted tree), every ``Ok`` response is checked bitwise and
    the report carries ``bit_exact``/``mismatches``.

    ``seed`` makes the whole trace reproducible (pass either ``seed`` or a
    pre-seeded ``rng``, not both); ``tenants`` splits the stream into a
    weighted multi-tenant mix (see :class:`Tenant`) with a per-tenant
    breakdown in the report.  ``key`` may be ``None`` when every tenant
    names its own model key.
    """
    if rate_hz <= 0:
        raise LoadGenError(f"rate_hz must be positive, got {rate_hz}")
    if n_requests <= 0:
        raise LoadGenError(f"n_requests must be positive, got {n_requests}")
    if len(samples) == 0:
        raise LoadGenError("samples must be non-empty")
    if rng is not None and seed is not None:
        raise LoadGenError("pass either rng= or seed=, not both")
    mix: List[Tenant] = [_as_tenant(t) for t in (tenants or [])]
    for t in mix:
        if t.weight <= 0:
            raise LoadGenError(f"tenant {t.name!r} weight must be positive, "
                               f"got {t.weight}")
        if t.key is None and key is None:
            raise LoadGenError(f"tenant {t.name!r} has no key and no run "
                               f"key was given")
    if key is None and not mix:
        raise LoadGenError("a model key is required when no tenants are given")
    rng = rng if rng is not None else np.random.default_rng(
        0 if seed is None else seed)
    deadline = (deadline_s if deadline_s is not None
                else _default_deadline(server))
    gaps = rng.exponential(1.0 / rate_hz, size=n_requests)
    gaps[0] = 0.0
    if mix:
        weights = np.asarray([t.weight for t in mix], dtype=np.float64)
        draws = rng.choice(len(mix), size=n_requests,
                           p=weights / weights.sum())
    else:
        draws = None

    pendings = []
    t0 = time.perf_counter()
    arrival = t0
    for i in range(n_requests):
        arrival += gaps[i]
        delay = arrival - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        tenant = mix[draws[i]] if draws is not None else None
        req_key = (tenant.key if tenant is not None and tenant.key is not None
                   else key)
        req_deadline = (tenant.deadline_s
                        if tenant is not None and tenant.deadline_s is not None
                        else deadline)
        pendings.append(
            (server.submit(req_key, samples[i % len(samples)],
                           deadline_s=req_deadline),
             tenant, req_deadline))

    report = LoadReport(model=key if key is not None else "<tenants>",
                        requests=n_requests, ok=0, shed=0,
                        failed=0, retryable_failed=0, deadline_s=deadline,
                        offered_rate_hz=rate_hz, duration_s=0.0, seed=seed)
    tallies: Dict[str, _TenantTally] = {t.name: _TenantTally() for t in mix}
    collect_at = time.perf_counter()
    for i, (pending, tenant, req_deadline) in enumerate(pendings):
        if tenant is not None and tenant.collect_delay_s > 0:
            # slow-loris client: the result sits uncollected for a while
            wake = collect_at + tenant.collect_delay_s
            pause = wake - time.perf_counter()
            if pause > 0:
                time.sleep(pause)
        resp = pending.result(timeout=req_deadline + result_grace_s)
        tally = tallies.get(tenant.name) if tenant is not None else None
        if tally is not None:
            tally.requests += 1
        if resp.ok:
            report.ok += 1
            report.latencies_s.append(resp.latency_s)
            report.queue_waits_s.append(resp.queue_wait_s)
            report.batch_sizes.append(resp.batch_size)
            if tally is not None:
                tally.ok += 1
                tally.latencies_s.append(resp.latency_s)
            if resp.latency_s > req_deadline:
                report.late += 1
            if refs is not None and not np.array_equal(
                    resp.logits, refs[i % len(refs)]):
                report.mismatches += 1
        elif type(resp).__name__ == "Overloaded":
            report.shed += 1
            if tally is not None:
                tally.shed += 1
        else:
            report.failed += 1
            if tally is not None:
                tally.failed += 1
            if resp.retryable:
                report.retryable_failed += 1
    report.duration_s = time.perf_counter() - t0
    if refs is not None:
        report.bit_exact = report.mismatches == 0
    report.per_tenant = {name: tally.to_json()
                         for name, tally in tallies.items()}
    return report
