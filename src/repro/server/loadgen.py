"""Synthetic open-loop load generator (Poisson arrivals) for the gateway.

Open-loop means arrival times are scheduled up front from the exponential
inter-arrival distribution and requests fire at those instants regardless of
how the server is keeping up — the generator never self-throttles, so
overload actually shows up as shed requests and tail latency instead of
being hidden by client backpressure.  :func:`run_poisson_load` drives a live
:class:`~repro.server.Server` and returns a :class:`LoadReport`; the
``repro.cli serve-bench`` subcommand wraps it and writes
``BENCH_server.json``.
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.telemetry.metrics import percentile_summary


@dataclass
class LoadReport:
    """Outcome of one open-loop run (latencies in seconds)."""

    model: str
    requests: int
    ok: int
    shed: int
    failed: int
    retryable_failed: int
    deadline_s: float
    offered_rate_hz: float
    duration_s: float
    latencies_s: List[float] = field(default_factory=list, repr=False)
    queue_waits_s: List[float] = field(default_factory=list, repr=False)
    batch_sizes: List[int] = field(default_factory=list, repr=False)
    bit_exact: Optional[bool] = None   #: None when no references were given
    mismatches: int = 0
    late: int = 0                      #: answered but past the deadline

    @property
    def achieved_rate_hz(self) -> float:
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def drop_rate(self) -> float:
        return (self.shed + self.failed) / max(self.requests, 1)

    def latency_percentiles(self) -> Dict[str, float]:
        return percentile_summary(self.latencies_s)

    def to_json(self) -> Dict:
        lat = self.latency_percentiles()
        return {
            "model": self.model,
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "failed": self.failed,
            "retryable_failed": self.retryable_failed,
            "late": self.late,
            "deadline_ms": self.deadline_s * 1e3,
            "offered_rate_hz": round(self.offered_rate_hz, 2),
            "achieved_rate_hz": round(self.achieved_rate_hz, 2),
            "duration_s": round(self.duration_s, 4),
            "drop_rate": round(self.drop_rate, 6),
            "latency_ms": {k: round(v * 1e3, 3) for k, v in lat.items()},
            "queue_wait_ms": {k: round(v * 1e3, 3) for k, v in
                              percentile_summary(self.queue_waits_s).items()},
            "mean_batch_size": (round(sum(self.batch_sizes)
                                      / len(self.batch_sizes), 2)
                                if self.batch_sizes else 0.0),
            "bit_exact": self.bit_exact,
            "mismatches": self.mismatches,
        }


def run_poisson_load(server, key: str, samples: Sequence[np.ndarray], *,
                     rate_hz: float, n_requests: int,
                     deadline_s: Optional[float] = None,
                     refs: Optional[Sequence[np.ndarray]] = None,
                     rng: Optional[np.random.Generator] = None,
                     result_grace_s: float = 10.0) -> LoadReport:
    """Fire ``n_requests`` Poisson arrivals at ``rate_hz`` and collect results.

    ``samples[i % len(samples)]`` is request *i*'s input; when ``refs`` is
    given (same indexing: the expected logits from *single-sample* execution
    on the interpreted tree), every ``Ok`` response is checked bitwise and
    the report carries ``bit_exact``/``mismatches``.
    """
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    if n_requests <= 0:
        raise ValueError("n_requests must be positive")
    if len(samples) == 0:
        raise ValueError("samples must be non-empty")
    rng = rng or np.random.default_rng(0)
    deadline = (deadline_s if deadline_s is not None
                else server.config.default_deadline_s)
    gaps = rng.exponential(1.0 / rate_hz, size=n_requests)
    gaps[0] = 0.0

    pendings = []
    t0 = time.perf_counter()
    arrival = t0
    for i in range(n_requests):
        arrival += gaps[i]
        delay = arrival - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        pendings.append(
            server.submit(key, samples[i % len(samples)], deadline_s=deadline))

    report = LoadReport(model=key, requests=n_requests, ok=0, shed=0,
                        failed=0, retryable_failed=0, deadline_s=deadline,
                        offered_rate_hz=rate_hz, duration_s=0.0)
    for i, pending in enumerate(pendings):
        resp = pending.result(timeout=deadline + result_grace_s)
        if resp.ok:
            report.ok += 1
            report.latencies_s.append(resp.latency_s)
            report.queue_waits_s.append(resp.queue_wait_s)
            report.batch_sizes.append(resp.batch_size)
            if resp.latency_s > deadline:
                report.late += 1
            if refs is not None and not np.array_equal(
                    resp.logits, refs[i % len(refs)]):
                report.mismatches += 1
        elif type(resp).__name__ == "Overloaded":
            report.shed += 1
        else:
            report.failed += 1
            if resp.retryable:
                report.retryable_failed += 1
    report.duration_s = time.perf_counter() - t0
    if refs is not None:
        report.bit_exact = report.mismatches == 0
    return report
