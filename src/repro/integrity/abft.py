"""ABFT column-checksum verification for the compiled integer runtime.

Algorithm-based fault tolerance (Huang & Abraham) for the plan's conv ops:
at compile time :func:`attach_checksums` folds one *checksum row* per conv —
the per-group sum of the weight matrix over output channels — into the plan.
Because the runtime is exact integer arithmetic, the checksum identity

    sum_o acc[o] == conv(x, sum_o weight[o])

holds as a float64 *equality* whenever both sides stay below the 2^53
exact-integer limit (the width the ``plan.checksum-overflow`` lint rule
proves).  At execute time :class:`AbftChecker` runs an opt-in, 1-in-N
sampled check (the same piggyback cadence as
:class:`~repro.runtime.executor.OpProfiler`): after a sampled batch it reads
the still-live arena registers, recomputes one op's accumulator on the first
sample, and asserts two equalities —

* **column checksum**: the recomputed accumulator (live weights) against the
  checksum row captured at compile time — a flipped live weight breaks it;
* **output**: the requantized recomputation against the register the serving
  kernel actually wrote — a corrupted arena or mis-executed kernel breaks it.

Any mismatch raises the typed :class:`~repro.integrity.errors.SDCDetected`.
``mulquant`` ops carry no weight matrix, so their sampled check is the full
recompute-equality of the requant epilogue.
"""
from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.integrity.errors import SDCDetected
from repro.runtime import kernels
from repro.tensor.im2col import im2col

#: integer magnitudes below this are exactly representable in float64, so
#: checksum comparisons computed in float64 are equalities, not tolerances
EXACT_F64_LIMIT = kernels.EXACT_F64_LIMIT

#: op kinds the sampled checker covers
ABFT_KINDS = ("conv_mq", "conv_mq_res", "mulquant")


def checksum_row_bound(weight: np.ndarray, bound: float) -> float:
    """Worst-case magnitude of the column-checksum accumulator.

    ``bound`` is the compiler's certified per-channel accumulator bound
    (``max_o sum_k |w_ok| * max|x|``); scaling it by the ratio of the total
    to the maximum per-channel absolute weight sum gives the exact worst
    case of ``sum_o |acc_o|``, which dominates every partial sum on both
    sides of the checksum identity.
    """
    w2d = np.abs(weight.reshape(weight.shape[0], -1)).astype(np.float64)
    per_channel = w2d.sum(axis=1)
    peak = float(per_channel.max(initial=0.0))
    if peak <= 0.0:
        return 0.0
    return float(bound) * float(per_channel.sum()) / peak


def attach_checksums(plan) -> Dict[str, int]:
    """Fold per-group weight checksum rows into ``plan`` (idempotent).

    Only convs the compiler certified exactly-reassociable are eligible (a
    non-exact conv's float32 reference accumulator is not reproducible in
    float64), and only when the checksum accumulator provably stays under
    the 2^53 float64-exact limit.  Returns ``{"attached": n, "skipped": m}``
    and stores the rows on ``plan._abft_rows`` keyed by op index.
    """
    rows: Dict[int, np.ndarray] = {}
    skipped: List[Dict] = []
    for i, op in enumerate(plan.ops):
        if op.kind not in ("conv_mq", "conv_mq_res"):
            continue
        if not getattr(op, "exact_reassoc", False):
            skipped.append({"index": i, "name": op.name,
                            "reason": "not exact_reassoc"})
            continue
        ck_bound = checksum_row_bound(op.weight, op.bound)
        if ck_bound >= EXACT_F64_LIMIT:
            skipped.append({"index": i, "name": op.name,
                            "reason": f"checksum bound {ck_bound:.3g} "
                                      f"reaches 2^53"})
            continue
        o, cg, kh, kw = op.weight.shape
        g = op.groups
        wm = op.weight.reshape(o, cg * kh * kw).astype(np.float64)
        # one checksum row per conv group: (g, 1, cg*kh*kw)
        rows[i] = wm.reshape(g, o // g, cg * kh * kw).sum(
            axis=1, keepdims=True)
    plan._abft_rows = rows
    plan._abft_skipped = skipped
    return {"attached": len(rows), "skipped": len(skipped)}


def read_register(arena, reg: int, limit: Optional[int] = None):
    """A register's batch-major ``(N, ...)`` value, or None if unavailable.

    In the ``channel`` layout feature maps live in channel-major padded
    buffers; this transposes the valid center back.  ``limit`` slices the
    leading sample axis (the checker verifies one sample, not the batch).
    """
    if arena.layout == "channel" and reg in arena._cm_centers:
        c = arena._cm_centers[reg]
        if limit is not None:
            c = c[:, :limit]
        return np.ascontiguousarray(c.transpose(1, 0, 2, 3))
    v = arena.regs[reg] if reg < len(arena.regs) else None
    if v is None:
        return None
    return v if limit is None else v[:limit]


class AbftChecker:
    """Sampled post-batch checksum verifier attached to one Plan.

    ``tick()`` advances a batch counter and is True every ``sample_every``-th
    batch; ``check(binding)`` then verifies one eligible op (round-robin) on
    the first sample of the just-executed batch, raising
    :class:`SDCDetected` on any mismatch.  Registers are written once per
    execution, so they are still live when the check runs.
    """

    def __init__(self, plan, sample_every: int = 16):
        if getattr(plan, "_abft_rows", None) is None:
            attach_checksums(plan)
        self.plan = plan
        self.sample_every = max(1, int(sample_every))
        self._tick = 0
        self._cursor = 0
        self._targets = [
            i for i, op in enumerate(plan.ops)
            if (op.kind == "mulquant"
                or (op.kind in ("conv_mq", "conv_mq_res")
                    and i in plan._abft_rows))]
        self.checks = 0
        self.failures = 0

    def tick(self) -> bool:
        """Advance the batch counter; True when this batch is verified."""
        if not self._targets:
            return False
        self._tick += 1
        return self._tick % self.sample_every == 0

    def check(self, binding) -> Optional[int]:
        """Verify the next target op against the live arena; op index."""
        i = self._targets[self._cursor % len(self._targets)]
        self._cursor += 1
        op = self.plan.ops[i]
        try:
            if op.kind == "mulquant":
                self._check_mulquant(i, op, binding.arena)
            else:
                self._check_conv(i, op, binding.arena)
        except SDCDetected:
            self.failures += 1
            raise
        self.checks += 1
        return i

    # ------------------------------------------------------------- checks
    def _detail(self, i, op, check: str) -> Dict:
        return {"op_index": i, "op": op.name, "kind": op.kind,
                "check": check, "model": self.plan.model_name}

    def _check_conv(self, i, op, arena) -> None:
        x = read_register(arena, op.src[0], limit=1)
        served = read_register(arena, op.dst, limit=1)
        if x is None or served is None:
            return
        o, oh, ow = arena.shapes[op.dst]
        _, cg, kh, kw = op.weight.shape
        g, n, plane = op.groups, x.shape[0], oh * ow
        cols = im2col(x, kh, kw, op.stride, op.padding).astype(np.float64)
        wm = op.weight.reshape(o, cg * kh * kw).astype(np.float64)
        crow = self.plan._abft_rows[i]
        if g == 1:
            acc = np.matmul(wm, cols)                      # (n, o, plane)
            csum = np.matmul(crow[0], cols)                # (n, 1, plane)
            colsum = acc.sum(axis=1, keepdims=True)
        else:
            colsg = cols.reshape(n, g, cg * kh * kw, plane)
            accg = np.matmul(wm.reshape(g, o // g, -1)[None], colsg)
            csum = np.matmul(crow[None], colsg)            # (n, g, 1, plane)
            colsum = accg.sum(axis=2, keepdims=True)
            acc = accg.reshape(n, o, plane)
        if not np.array_equal(colsum, csum):
            raise SDCDetected(
                "abft", f"column checksum mismatch on {op.kind} op "
                        f"[{i}] {op.name} — live weights diverge from the "
                        f"compile-time checksum row",
                self._detail(i, op, "column-checksum"))
        acc32 = acc.reshape(n, o, oh, ow).astype(np.float32)
        if op.kind == "conv_mq":
            y = kernels.requant(acc32, op.mq)
        else:
            shortcut = read_register(arena, op.src[1], limit=1)
            if shortcut is None:
                return
            y = kernels.requant_residual(acc32, shortcut, op.mq,
                                         op.res_scale, op.res_lo,
                                         op.res_hi, op.smq)
        if not np.array_equal(y, served):
            raise SDCDetected(
                "abft", f"output mismatch on {op.kind} op [{i}] {op.name} "
                        f"— the served register diverges from the checked "
                        f"recomputation",
                self._detail(i, op, "output"))

    def _check_mulquant(self, i, op, arena) -> None:
        x = read_register(arena, op.src[0], limit=1)
        served = read_register(arena, op.dst, limit=1)
        if x is None or served is None:
            return
        if not np.array_equal(kernels.requant(x, op.mq), served):
            raise SDCDetected(
                "abft", f"output mismatch on mulquant op [{i}] {op.name} "
                        f"— the served register diverges from the requant "
                        f"recomputation",
                self._detail(i, op, "output"))
