"""Runtime-side silent-data-corruption defense.

:mod:`repro.export.integrity` protects artifacts *at rest* (SHA-256
manifests, atomic publication); this package protects the serving stack
*in memory*, where a bit flip in a live weight buffer or activation arena
would otherwise serve wrong logits forever while reporting healthy.  The
bit-exact integer runtime makes detection cheap and deterministic — every
detector asserts equalities, never tolerances:

* :mod:`~repro.integrity.abft` — ABFT column-checksum verification of
  ``conv_mq``/``conv_mq_res``/``mulquant`` ops: checksum rows folded into
  the plan at compile time (widths proven by the ``plan.checksum-overflow``
  lint rule), verified on 1-in-N sampled batches against the live arena;
* :mod:`~repro.integrity.scrub` — CRC32 scrubbing of resident packed
  weights/requant tables and the arena guard borders, as a synchronous
  scan or a rate-limited background :class:`MemoryScrubber` thread;
* :mod:`~repro.integrity.golden` — golden-vector self-tests recorded by
  ``deploy()``, replayed by ``Server.swap`` pre-cutover and by the fleet
  health loop per replica.

Every detection raises (or records) the typed :class:`SDCDetected`; the
fleet reacts by moving the replica to the ``QUARANTINED`` lifecycle state
and self-healing a replacement with zero lost requests.
"""
from repro.integrity.abft import (ABFT_KINDS, EXACT_F64_LIMIT, AbftChecker,
                                  attach_checksums, checksum_row_bound,
                                  read_register)
from repro.integrity.errors import SDCDetected
from repro.integrity.golden import GoldenSet
from repro.integrity.scrub import (MemoryScrubber, ScrubReport,
                                   arena_guard_faults, scrub_plan,
                                   snapshot_constants)

__all__ = [
    "SDCDetected",
    "AbftChecker", "attach_checksums", "checksum_row_bound",
    "read_register", "ABFT_KINDS", "EXACT_F64_LIMIT",
    "MemoryScrubber", "ScrubReport", "scrub_plan", "snapshot_constants",
    "arena_guard_faults",
    "GoldenSet",
]
