"""Background memory scrubbing for resident plan state.

A deployed plan's constants — packed weights, requant multiplier/bias
tables, LUTs — are written once at compile time and must never change;
the channel-layout arena's padded borders ("guard words") are zeroed once
at allocation and never written again.  :func:`snapshot_constants` captures
a CRC32 baseline of every constant at ``Plan.compile``; :func:`scrub_plan`
re-walks the live buffers against it and checks every arena guard border,
returning a :class:`ScrubReport` whose mismatches are silent data
corruption by definition.

:class:`MemoryScrubber` is the background driver: a daemon thread that
scans its registered plans on an interval, under a bytes-per-second rate
limiter so scrubbing never competes with serving, emitting one telemetry
event per scan and invoking an ``on_fault`` callback (the server/fleet
quarantine hook) whenever a scan is dirty.
"""
from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.integrity.errors import SDCDetected


def _crc(arr: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(arr).tobytes()) & 0xFFFFFFFF


def _constant_arrays(op):
    """``(path, ndarray)`` pairs of one op's immutable parameter arrays.

    Walks the op's attributes generically: plain ndarrays (weights, LUT
    tables) and MulQuant parameter snapshots (anything exposing ``m``/``b``
    arrays) — so new op types are covered without registration.
    """
    for name in sorted(vars(op)):
        val = getattr(op, name)
        if isinstance(val, np.ndarray):
            yield name, val
        elif (val is not None and hasattr(val, "m") and hasattr(val, "b")
                and isinstance(getattr(val, "m"), np.ndarray)):
            yield f"{name}.m", val.m
            yield f"{name}.b", val.b


def _resolve(op, path: str) -> Optional[np.ndarray]:
    obj = op
    for part in path.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return None
    return obj


def snapshot_constants(plan) -> List[Dict]:
    """CRC32 baseline of every constant array in the plan's ops."""
    baseline = []
    for i, op in enumerate(plan.ops):
        for path, arr in _constant_arrays(op):
            baseline.append({"op_index": i, "op": op.name, "field": path,
                             "crc32": _crc(arr), "nbytes": int(arr.nbytes)})
    return baseline


@dataclass
class ScrubReport:
    """Outcome of one scrub pass over a plan."""

    model: str
    entries: int = 0
    bytes_scanned: int = 0
    duration_s: float = 0.0
    mismatches: List[Dict] = field(default_factory=list)
    guard_faults: List[Dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.guard_faults

    def raise_if_failed(self) -> "ScrubReport":
        if not self.ok:
            first = (self.mismatches or self.guard_faults)[0]
            raise SDCDetected(
                "scrub", f"{len(self.mismatches)} constant and "
                         f"{len(self.guard_faults)} guard fault(s) in "
                         f"{self.model} (first: {first})",
                {"model": self.model, "mismatches": self.mismatches,
                 "guard_faults": self.guard_faults})
        return self

    def to_json(self) -> Dict:
        return {"model": self.model, "ok": self.ok, "entries": self.entries,
                "bytes_scanned": self.bytes_scanned,
                "duration_s": self.duration_s,
                "mismatches": self.mismatches,
                "guard_faults": self.guard_faults}


def arena_guard_faults(plan) -> List[Dict]:
    """Non-zero guard borders across the plan's live arena bindings.

    The channel layout zeroes each padded border once and relies on it
    staying zero (padding is free after the first batch) — any non-zero
    word there is corruption that silently feeds wrong taps to the conv
    kernels.
    """
    faults = []
    for key, binding in list(plan._bindings.items()):
        arena = binding.arena
        for reg, buf in arena._cm_bufs.items():
            p = arena.pads.get(reg, 0)
            if p <= 0:
                continue
            _, h, w = arena.shapes[reg]
            if (buf[:, :, :p, :].any() or buf[:, :, p + h:, :].any()
                    or buf[:, :, :, :p].any() or buf[:, :, :, p + w:].any()):
                faults.append({"binding": list(key), "register": int(reg)})
    return faults


def scrub_plan(plan) -> ScrubReport:
    """One full scan: every constant CRC plus every arena guard border."""
    t0 = time.perf_counter()
    baseline = getattr(plan, "_scrub_baseline", None)
    if baseline is None:
        baseline = snapshot_constants(plan)
        plan._scrub_baseline = baseline
    report = ScrubReport(model=plan.model_name)
    for entry in baseline:
        report.entries += 1
        arr = _resolve(plan.ops[entry["op_index"]], entry["field"])
        if arr is None:
            report.mismatches.append(dict(entry, reason="missing"))
            continue
        report.bytes_scanned += int(arr.nbytes)
        if _crc(arr) != entry["crc32"]:
            report.mismatches.append(dict(entry, reason="crc"))
    report.guard_faults = arena_guard_faults(plan)
    # list(): the lane thread may bind a new batch shape mid-scan
    for binding in list(plan._bindings.values()):
        arena = binding.arena
        for reg, buf in list(arena._cm_bufs.items()):
            center = arena._cm_centers.get(reg)
            if center is not None and buf.nbytes > center.nbytes:
                report.bytes_scanned += int(buf.nbytes - center.nbytes)
    report.duration_s = time.perf_counter() - t0
    return report


class MemoryScrubber:
    """Daemon thread scrubbing registered plans on an interval.

    ``rate_mb_s`` bounds throughput: after each scan the thread sleeps at
    least ``bytes_scanned / rate`` so a large model cannot monopolize
    memory bandwidth.  ``on_fault(name, report)`` fires once per dirty
    scan; scan stats land in ``last`` and one ``scrub_scan`` telemetry
    event per pass.
    """

    def __init__(self, interval_s: float = 1.0, rate_mb_s: float = 256.0,
                 on_fault: Optional[Callable] = None, name: str = "scrub"):
        self.interval_s = max(0.01, float(interval_s))
        self.rate_mb_s = max(1.0, float(rate_mb_s))
        self.on_fault = on_fault
        self.name = name
        self._targets: Dict[str, object] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.scans = 0
        self.faults = 0
        self.last: Optional[ScrubReport] = None

    # ------------------------------------------------------------ targets
    def add(self, name: str, plan) -> None:
        with self._lock:
            self._targets[name] = plan

    def remove(self, name: str) -> None:
        with self._lock:
            self._targets.pop(name, None)

    # ----------------------------------------------------------- scanning
    def scan_once(self) -> List[ScrubReport]:
        """One synchronous pass over every registered plan (rate-limited)."""
        with self._lock:
            targets = list(self._targets.items())
        reports = []
        for name, plan in targets:
            report = scrub_plan(plan)
            self.scans += 1
            self.last = report
            reports.append(report)
            telemetry.emit("scrub_scan", scrubber=self.name, plan=name,
                           ok=report.ok, entries=report.entries,
                           bytes=report.bytes_scanned,
                           seconds=round(report.duration_s, 6),
                           mismatches=len(report.mismatches),
                           guard_faults=len(report.guard_faults))
            if not report.ok:
                self.faults += 1
                if self.on_fault is not None:
                    self.on_fault(name, report)
            floor = report.bytes_scanned / (self.rate_mb_s * 1e6)
            if floor > report.duration_s:
                if self._stop.wait(floor - report.duration_s):
                    break
        return reports

    # ------------------------------------------------------------- thread
    def start(self) -> "MemoryScrubber":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name=f"scrubber-{self.name}", daemon=True)
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.scan_once()
            except Exception:
                # the scrubber must never take the server down; faults are
                # reported through on_fault/telemetry, not exceptions
                pass

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
