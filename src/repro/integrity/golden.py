"""Golden-vector self-test: K seeded input→output pairs per deployment.

The runtime is bit-exact, so a model's response to a fixed stimulus is a
*constant*: :meth:`GoldenSet.record` runs K deterministic inputs (seeded,
regenerated on demand — only the seed, shape and outputs are stored, so the
manifest stays small) through the deployed executor and pins the outputs.
:meth:`GoldenSet.verify` replays them with ``numpy.array_equal`` asserts —
any deviation on any replica, at any time, is silent data corruption.

Three call sites use one mechanism: :func:`repro.core.deploy` records the
set and embeds it in the export manifest; ``Server.swap`` replays it
against the incoming plan before cutover; the ``Fleet`` health loop replays
it periodically per replica and quarantines on mismatch.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.integrity.errors import SDCDetected

#: default stimulus count / seed / amplitude for recorded sets
DEFAULT_VECTORS = 4
DEFAULT_SEED = 20240
DEFAULT_SCALE = 1.0


@dataclass
class GoldenSet:
    """K pinned input→output pairs for one deployed model version."""

    seed: int
    input_shape: Tuple[int, ...]   #: per-sample shape (no batch axis)
    outputs: np.ndarray            #: (K, ...) float32 pinned responses
    scale: float = DEFAULT_SCALE

    @property
    def k(self) -> int:
        return int(self.outputs.shape[0])

    def inputs(self) -> np.ndarray:
        """Regenerate the K stimuli — a pure function of (seed, shape)."""
        rng = np.random.default_rng(self.seed)
        x = rng.standard_normal((self.k,) + tuple(self.input_shape))
        return (x * self.scale).astype(np.float32)

    @classmethod
    def record(cls, runner, input_shape, k: int = DEFAULT_VECTORS,
               seed: int = DEFAULT_SEED,
               scale: float = DEFAULT_SCALE) -> "GoldenSet":
        """Pin ``runner``'s responses to K seeded single-sample batches."""
        shape = tuple(int(d) for d in input_shape)
        rng = np.random.default_rng(seed)
        x = (rng.standard_normal((max(1, int(k)),) + shape)
             * scale).astype(np.float32)
        outs = [np.asarray(runner(x[i:i + 1]), dtype=np.float32)[0]
                for i in range(x.shape[0])]
        return cls(seed=int(seed), input_shape=shape,
                   outputs=np.stack(outs), scale=float(scale))

    # ---------------------------------------------------------- checking
    def verify(self, runner, limit: Optional[int] = None) -> List[Dict]:
        """Replay (up to ``limit``) vectors; list of mismatch records."""
        xs = self.inputs()
        n = self.k if limit is None else min(self.k, max(1, int(limit)))
        mismatches = []
        for i in range(n):
            got = np.asarray(runner(xs[i:i + 1]), dtype=np.float32)[0]
            if got.shape != self.outputs[i].shape \
                    or not np.array_equal(got, self.outputs[i]):
                bad = (int(np.sum(got != self.outputs[i]))
                       if got.shape == self.outputs[i].shape else -1)
                mismatches.append({"vector": i, "mismatched": bad})
        return mismatches

    def check(self, runner, limit: Optional[int] = None) -> None:
        """Replay vectors; raise :class:`SDCDetected` on any mismatch."""
        mismatches = self.verify(runner, limit=limit)
        if mismatches:
            raise SDCDetected(
                "golden", f"{len(mismatches)}/{self.k} golden vector(s) "
                          f"diverged from the recorded bit-exact response",
                {"mismatches": mismatches, "seed": self.seed})

    # ------------------------------------------------------ serialization
    def to_json(self) -> Dict:
        return {"seed": self.seed, "input_shape": list(self.input_shape),
                "scale": self.scale, "outputs": self.outputs.tolist(),
                "output_shape": list(self.outputs.shape)}

    @classmethod
    def from_json(cls, data: Dict) -> "GoldenSet":
        outputs = np.asarray(data["outputs"], dtype=np.float32).reshape(
            data["output_shape"])
        return cls(seed=int(data["seed"]),
                   input_shape=tuple(data["input_shape"]),
                   outputs=outputs, scale=float(data.get("scale", 1.0)))
