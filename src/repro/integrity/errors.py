"""Typed failure for runtime silent-data-corruption detection.

The at-rest store raises :class:`~repro.export.errors.ArtifactError` when a
*file* rots; :class:`SDCDetected` is its in-memory counterpart — raised when
a *live* buffer (packed weights, requant tables, activation arena, golden
reference) no longer matches what was proven at compile time.  Because the
runtime is bit-exact integer arithmetic, every detector in
:mod:`repro.integrity` asserts equalities, never tolerances: any mismatch is
corruption, not noise.
"""
from __future__ import annotations

from typing import Dict, Optional


class SDCDetected(RuntimeError):
    """Silent data corruption detected in a live serving structure.

    Attributes
    ----------
    source:
        Which detector fired: ``"abft"`` (sampled checksum verification),
        ``"scrub"`` (background CRC/guard-word scan) or ``"golden"``
        (golden-vector self-test).
    detail:
        Structured context — op index/name, mismatching field, binding key —
        for telemetry and quarantine records.
    """

    def __init__(self, source: str, message: str,
                 detail: Optional[Dict] = None):
        self.source = str(source)
        self.detail = dict(detail or {})
        super().__init__(f"SDC detected by {self.source}: {message}")
