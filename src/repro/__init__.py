"""repro: a from-scratch reproduction of Torch2Chip (MLSys 2024).

Layers of the package
---------------------
* :mod:`repro.tensor`, :mod:`repro.nn`, :mod:`repro.optim`, :mod:`repro.data`,
  :mod:`repro.models` — the substrate (a numpy autograd framework standing in
  for PyTorch/torchvision; see DESIGN.md).
* :mod:`repro.core` — the paper's contribution: dual-path quantizers,
  automatic normalization fusion, MulQuant fixed-point requantization,
  integer-only ViT attention with LUT non-linearities, and the top-level
  :class:`~repro.core.t2c.T2C` converter.
* :mod:`repro.pruning`, :mod:`repro.ssl`, :mod:`repro.trainer`,
  :mod:`repro.export` — sparsity, self-supervised pre-training, the TRAINER
  registry, and deployment-format export.
"""
__version__ = "0.1.0"
