"""im2col / col2im transforms for convolution.

Convolution is implemented as an im2col + matmul, the standard approach for
CPU reference implementations.  Both transforms are fully vectorized using
``numpy.lib.stride_tricks`` windows (im2col) and ``np.add.at`` scatter
(col2im).
"""
from __future__ import annotations

from typing import Tuple

import numpy as np


def conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x: ``(N, C, H, W)`` input.
    Returns
    -------
    ``(N, C * kh * kw, OH * OW)`` column matrix.
    """
    n, c, h, w = x.shape
    oh = conv_out_size(h, kh, stride, padding)
    ow = conv_out_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    s = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, oh, ow),
        strides=(s[0], s[1], s[2], s[3], s[2] * stride, s[3] * stride),
        writeable=False,
    )
    return np.ascontiguousarray(windows).reshape(n, c * kh * kw, oh * ow)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an image."""
    n, c, h, w = x_shape
    oh = conv_out_size(h, kh, stride, padding)
    ow = conv_out_size(w, kw, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    # Scatter each kernel offset's contribution with slice-strided adds,
    # avoiding a python loop over output positions.
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            out[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
    if padding > 0:
        out = out[:, :, padding:hp - padding, padding:wp - padding]
    return out
