"""Differentiable neural-network primitives on :class:`~repro.tensor.Tensor`.

Convolution (with groups, covering depthwise for MobileNet), pooling, GELU,
linear, dropout and the straight-through estimators used by the quantizers.
"""
from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.tensor.im2col import col2im, conv_out_size, im2col
from repro.tensor.tensor import Tensor, _make, _unary


def relu(x: Tensor) -> Tensor:
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    """GELU with the tanh approximation (matches common accelerator LUTs)."""
    c = math.sqrt(2.0 / math.pi)

    def fwd(v):
        return 0.5 * v * (1.0 + np.tanh(c * (v + 0.044715 * v ** 3)))

    def bwd(g, v, o):
        t = np.tanh(c * (v + 0.044715 * v ** 3))
        dt = (1 - t * t) * c * (1 + 3 * 0.044715 * v * v)
        return g * (0.5 * (1 + t) + 0.5 * v * dt)

    return _unary(x, fwd, bwd, "gelu")


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.log_softmax(axis=axis)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``y = x @ W^T + b`` with ``weight`` of shape ``(out, in)``."""
    y = x @ weight.transpose(*range(weight.ndim - 2), weight.ndim - 1, weight.ndim - 2)
    if bias is not None:
        y = y + bias
    return y


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)
    return x * Tensor(mask)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution via im2col + matmul.

    ``x``: ``(N, C, H, W)``; ``weight``: ``(O, C // groups, KH, KW)``.
    Supports grouped and depthwise convolution (``groups == C``).
    """
    n, c, h, w = x.shape
    o, cg, kh, kw = weight.shape
    if c % groups or o % groups:
        raise ValueError(f"channels {c}/{o} not divisible by groups {groups}")
    if cg != c // groups:
        raise ValueError(f"weight expects {cg} in-channels per group, input gives {c // groups}")
    oh = conv_out_size(h, kh, stride, padding)
    ow = conv_out_size(w, kw, stride, padding)
    og = o // groups

    cols = im2col(x.data, kh, kw, stride, padding)  # (N, C*kh*kw, L)
    wm = weight.data.reshape(o, cg * kh * kw)
    if groups == 1:
        out_data = np.matmul(wm, cols)  # (N, O, L)
    else:
        cols_g = cols.reshape(n, groups, cg * kh * kw, oh * ow)
        wm_g = wm.reshape(groups, og, cg * kh * kw)
        out_data = np.matmul(wm_g[None], cols_g).reshape(n, o, oh * ow)
    out_data = out_data.reshape(n, o, oh, ow).astype(np.float32)

    out = _make(out_data, (x, weight), "conv2d")
    if out.requires_grad:
        x_data = x.data  # keep the input, NOT the im2col matrix: columns are
        # ~k^2 times larger and would otherwise live as long as the graph —
        # recomputing them in the backward pass trades one memcpy-scale
        # gather for gigabytes of retained memory on deep models.

        def _bw(g):
            bw_cols = im2col(x_data, kh, kw, stride, padding)
            gl = g.reshape(n, o, oh * ow)
            if groups == 1:
                gw = np.einsum("nol,nkl->ok", gl, bw_cols).reshape(weight.shape)
                gcols = np.matmul(wm.T[None], gl)  # (N, C*kh*kw, L)
            else:
                gl_g = gl.reshape(n, groups, og, oh * ow)
                cols_g2 = bw_cols.reshape(n, groups, cg * kh * kw, oh * ow)
                gw = np.einsum("ngol,ngkl->gok", gl_g, cols_g2).reshape(weight.shape)
                gcols = np.matmul(np.swapaxes(wm.reshape(groups, og, cg * kh * kw), -1, -2)[None], gl_g)
                gcols = gcols.reshape(n, c * kh * kw, oh * ow)
            gx = col2im(gcols, (n, c, h, w), kh, kw, stride, padding)
            return ((x, gx.astype(np.float32)), (weight, gw.astype(np.float32)))
        out._backward = _bw

    if bias is not None:
        out = out + bias.reshape(1, o, 1, 1)
    return out


def batch_norm_train(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5):
    """Fused training-mode batch norm over ``(N, C, H, W)``.

    Returns ``(y, batch_mean, batch_var)`` (the statistics as plain arrays
    for the running-stat update).  A single graph node holding only ``xhat``
    and ``invstd`` — the op-by-op composition would retain ~6 full-size
    intermediates per layer, which dominates training memory on deep nets.
    """
    data = x.data
    axes = (0, 2, 3)
    n = data.shape[0] * data.shape[2] * data.shape[3]
    mean = data.mean(axis=axes, keepdims=True)
    var = data.var(axis=axes, keepdims=True)
    invstd = 1.0 / np.sqrt(var + eps)
    xhat = (data - mean) * invstd
    g = gamma.data.reshape(1, -1, 1, 1)
    b = beta.data.reshape(1, -1, 1, 1)
    out = _make((xhat * g + b).astype(np.float32), (x, gamma, beta), "batch_norm")
    if out.requires_grad:
        def _bw(grad):
            dgamma = (grad * xhat).sum(axis=axes)
            dbeta = grad.sum(axis=axes)
            dxhat = grad * g
            s1 = dxhat.sum(axis=axes, keepdims=True)
            s2 = (dxhat * xhat).sum(axis=axes, keepdims=True)
            dx = invstd / n * (n * dxhat - s1 - xhat * s2)
            return ((x, dx.astype(np.float32)),
                    (gamma, dgamma.astype(np.float32)),
                    (beta, dbeta.astype(np.float32)))
        out._backward = _bw
    return out, mean.reshape(-1), var.reshape(-1)


def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = conv_out_size(h, kernel, stride, 0)
    ow = conv_out_size(w, kernel, stride, 0)
    cols = im2col(x.data, kernel, kernel, stride, 0).reshape(n, c, kernel * kernel, oh * ow)
    idx = cols.argmax(axis=2)
    out_data = np.take_along_axis(cols, idx[:, :, None, :], axis=2)[:, :, 0, :].reshape(n, c, oh, ow)

    out = _make(out_data.astype(np.float32), (x,), "max_pool2d")
    if out.requires_grad:
        def _bw(g):
            gcols = np.zeros((n, c, kernel * kernel, oh * ow), dtype=np.float32)
            np.put_along_axis(gcols, idx[:, :, None, :], g.reshape(n, c, 1, oh * ow), axis=2)
            gx = col2im(gcols.reshape(n, c * kernel * kernel, oh * ow), (n, c, h, w), kernel, kernel, stride, 0)
            return ((x, gx),)
        out._backward = _bw
    return out


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = conv_out_size(h, kernel, stride, 0)
    ow = conv_out_size(w, kernel, stride, 0)
    cols = im2col(x.data, kernel, kernel, stride, 0).reshape(n, c, kernel * kernel, oh * ow)
    out_data = cols.mean(axis=2).reshape(n, c, oh, ow)

    out = _make(out_data.astype(np.float32), (x,), "avg_pool2d")
    if out.requires_grad:
        k2 = kernel * kernel

        def _bw(g):
            gcols = np.broadcast_to(g.reshape(n, c, 1, oh * ow) / k2, (n, c, k2, oh * ow))
            gx = col2im(np.ascontiguousarray(gcols).reshape(n, c * k2, oh * ow), (n, c, h, w), kernel, kernel, stride, 0)
            return ((x, gx.astype(np.float32)),)
        out._backward = _bw
    return out


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Global average pooling when ``output_size == 1`` (the only case used)."""
    if output_size != 1:
        raise NotImplementedError("only global average pooling is supported")
    return x.mean(axis=(2, 3), keepdims=True)


def cross_entropy(logits: Tensor, targets: np.ndarray, label_smoothing: float = 0.0) -> Tensor:
    """Mean cross-entropy over a batch of integer class targets."""
    n, k = logits.shape
    logp = logits.log_softmax(axis=-1)
    targets = np.asarray(targets).astype(np.int64).reshape(-1)
    onehot = np.zeros((n, k), dtype=np.float32)
    onehot[np.arange(n), targets] = 1.0
    if label_smoothing > 0:
        onehot = onehot * (1.0 - label_smoothing) + label_smoothing / k
    return -(logp * Tensor(onehot)).sum(axis=-1).mean()


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    d = pred - target
    return (d * d).mean()


def kl_div_loss(logp_student: Tensor, p_teacher: Tensor) -> Tensor:
    """KL(p_teacher || p_student) given student log-probs, teacher probs."""
    pt = p_teacher.detach()
    return (pt * (pt.clamp(1e-8).log() - logp_student)).sum(axis=-1).mean()
