"""Core reverse-mode autograd engine.

The :class:`Tensor` wraps a ``numpy.ndarray`` and records a dynamic
computation graph.  Calling :meth:`Tensor.backward` on a scalar (or with an
explicit upstream gradient) walks the graph in reverse topological order and
accumulates gradients into every reachable tensor with ``requires_grad=True``.

Design notes
------------
* All data is kept as ``float32`` unless the caller explicitly constructs an
  integer tensor (integer tensors never require grad; they exist to carry the
  integer-only inference path of the Torch2Chip dual-path design).
* Broadcasting follows numpy semantics; gradients of broadcast operands are
  reduced back to the operand shape with :func:`_unbroadcast`.
* Gradient mode is a process-global flag manipulated by :class:`no_grad`; when
  disabled, no graph is recorded (used for the inference path and evaluation).
"""
from __future__ import annotations

import contextlib
from typing import Optional, Sequence, Tuple, Union

import numpy as np

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


class no_grad(contextlib.ContextDecorator):
    """Context manager (and decorator) that disables graph recording."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value)
    if dtype is not None:
        return arr.astype(dtype, copy=False)
    if arr.dtype == np.float64:
        return arr.astype(np.float32)
    return arr


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dims added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dims that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload.  Floating payloads are stored as float32.
    requires_grad:
        Whether gradients should accumulate into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op")
    __array_priority__ = 100.0  # make numpy defer to Tensor in mixed ops

    def __init__(self, data: ArrayLike, requires_grad: bool = False, _prev: Tuple["Tensor", ...] = (), _op: str = ""):
        self.data = _as_array(data)
        if requires_grad and not np.issubdtype(self.data.dtype, np.floating):
            raise TypeError("only floating-point tensors can require grad")
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward = None
        self._prev: Tuple[Tensor, ...] = _prev if _GRAD_ENABLED else ()
        self._op = _op

    # ------------------------------------------------------------------ util
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return self.data.item()

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        out = _make(self.data.copy(), (self,), "clone")
        if out.requires_grad:
            def _bw(g):
                return ((self, g),)
            out._backward = _bw
        return out

    def copy_(self, other: ArrayLike) -> "Tensor":
        """In-place copy (not tracked by autograd)."""
        src = _as_array(other)
        np.copyto(self.data, src.astype(self.data.dtype, copy=False))
        return self

    def astype(self, dtype) -> "Tensor":
        return Tensor(self.data.astype(dtype))

    def float(self) -> "Tensor":
        out = _make(self.data.astype(np.float32), (self,), "float")
        if out.requires_grad:
            def _bw(g):
                return ((self, g),)
            out._backward = _bw
        return out

    def int(self) -> "Tensor":
        return Tensor(self.data.astype(np.int64))

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad})\n{self.data!r}"

    def __len__(self) -> int:
        return len(self.data)

    def __hash__(self) -> int:
        return id(self)

def _make(data: np.ndarray, prev: Tuple[Tensor, ...], op: str) -> Tensor:
    req = _GRAD_ENABLED and any(p.requires_grad for p in prev)
    out = Tensor(data, requires_grad=req, _prev=prev if req else (), _op=op)
    return out


def _tensor_backward(self: Tensor, grad: Optional[ArrayLike] = None) -> None:
    """Reverse-topological gradient propagation.

    Each op's ``_backward`` closure maps the upstream gradient to a tuple of
    ``(parent, parent_grad)`` pairs; gradients are staged per-node in
    ``pending`` and land in ``.grad`` only for leaf tensors that require grad.
    """
    if grad is None:
        if self.data.size != 1:
            raise RuntimeError("backward() on non-scalar tensor requires an explicit gradient")
        grad = np.ones_like(self.data, dtype=np.float32)
    else:
        grad = np.broadcast_to(_as_array(grad, np.float32), self.data.shape)

    topo: list[Tensor] = []
    visited = set()
    stack: list[tuple[Tensor, bool]] = [(self, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for p in node._prev:
            if id(p) not in visited:
                stack.append((p, False))

    # note: ascontiguousarray promotes 0-d arrays to (1,) on some numpy
    # versions; reshape pins the seed gradient to the output's exact shape
    seed = np.ascontiguousarray(grad, dtype=np.float32).reshape(self.data.shape)
    pending: dict[int, np.ndarray] = {id(self): seed}
    for node in reversed(topo):
        g = pending.pop(id(node), None)
        if g is None:
            continue
        if node.requires_grad and node._prev == ():
            # leaf
            if node.grad is None:
                node.grad = np.zeros(node.data.shape, dtype=np.float32)
            node.grad += g
            continue
        if node.requires_grad and node.grad is not None:
            # non-leaf with retained grad: still accumulate
            node.grad += g
        if node._backward is None:
            if node.requires_grad:
                if node.grad is None:
                    node.grad = g.copy()
            continue
        for parent, pg in node._backward(g):
            if pg is None or not (parent.requires_grad or parent._prev):
                continue
            key = id(parent)
            if key in pending:
                pending[key] = pending[key] + pg
            else:
                pending[key] = pg


Tensor.backward = _tensor_backward  # type: ignore[assignment]


# ------------------------------------------------------------------ factory
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    return Tensor(np.array(_as_array(data)), requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    shape = shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list)) else shape
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    shape = shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list)) else shape
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)


def full(shape, fill_value: float, requires_grad: bool = False) -> Tensor:
    return Tensor(np.full(shape, fill_value, dtype=np.float32), requires_grad=requires_grad)


def arange(*args, requires_grad: bool = False) -> Tensor:
    return Tensor(np.arange(*args, dtype=np.float32), requires_grad=requires_grad)


def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> Tensor:
    shape = shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list)) else shape
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape).astype(np.float32), requires_grad=requires_grad)


def rand(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> Tensor:
    shape = shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list)) else shape
    rng = rng or np.random.default_rng()
    return Tensor(rng.random(shape).astype(np.float32), requires_grad=requires_grad)


# ----------------------------------------------------------------- elementwise
def _binary(a: ArrayLike, b: ArrayLike, fwd, bwd_a, bwd_b, op: str) -> Tensor:
    ta = a if isinstance(a, Tensor) else Tensor(a)
    tb = b if isinstance(b, Tensor) else Tensor(b)
    out = _make(fwd(ta.data, tb.data), (ta, tb), op)
    if out.requires_grad:
        def _bw(g):
            ga = _unbroadcast(bwd_a(g, ta.data, tb.data, out.data), ta.shape) if (ta.requires_grad or ta._prev) else None
            gb = _unbroadcast(bwd_b(g, ta.data, tb.data, out.data), tb.shape) if (tb.requires_grad or tb._prev) else None
            return ((ta, ga), (tb, gb))
        out._backward = _bw
    return out


def _unary(a: Tensor, fwd, bwd, op: str) -> Tensor:
    out = _make(fwd(a.data), (a,), op)
    if out.requires_grad:
        def _bw(g):
            return ((a, bwd(g, a.data, out.data)),)
        out._backward = _bw
    return out


def _add(a, b):
    return _binary(a, b, lambda x, y: x + y, lambda g, x, y, o: g, lambda g, x, y, o: g, "add")


def _sub(a, b):
    return _binary(a, b, lambda x, y: x - y, lambda g, x, y, o: g, lambda g, x, y, o: -g, "sub")


def _mul(a, b):
    return _binary(a, b, lambda x, y: x * y, lambda g, x, y, o: g * y, lambda g, x, y, o: g * x, "mul")


def _div(a, b):
    return _binary(a, b, lambda x, y: x / y, lambda g, x, y, o: g / y, lambda g, x, y, o: -g * x / (y * y), "div")


def _pow(a, b):
    return _binary(
        a, b,
        lambda x, y: x ** y,
        lambda g, x, y, o: g * y * x ** (y - 1),
        lambda g, x, y, o: g * o * np.log(np.maximum(x, 1e-12)),
        "pow",
    )


Tensor.__add__ = lambda self, other: _add(self, other)
Tensor.__radd__ = lambda self, other: _add(other, self)
Tensor.__sub__ = lambda self, other: _sub(self, other)
Tensor.__rsub__ = lambda self, other: _sub(other, self)
Tensor.__mul__ = lambda self, other: _mul(self, other)
Tensor.__rmul__ = lambda self, other: _mul(other, self)
Tensor.__truediv__ = lambda self, other: _div(self, other)
Tensor.__rtruediv__ = lambda self, other: _div(other, self)
Tensor.__pow__ = lambda self, other: _pow(self, other)
Tensor.__neg__ = lambda self: _mul(self, -1.0)

Tensor.add = lambda self, other: _add(self, other)
Tensor.sub = lambda self, other: _sub(self, other)
Tensor.mul = lambda self, other: _mul(self, other)
Tensor.div = lambda self, other: _div(self, other)

# comparisons: non-differentiable, return plain bool arrays wrapped in Tensor
Tensor.__gt__ = lambda self, other: Tensor(self.data > _as_array(other))
Tensor.__lt__ = lambda self, other: Tensor(self.data < _as_array(other))
Tensor.__ge__ = lambda self, other: Tensor(self.data >= _as_array(other))
Tensor.__le__ = lambda self, other: Tensor(self.data <= _as_array(other))
Tensor.__eq__ = lambda self, other: Tensor(self.data == _as_array(other))  # type: ignore[assignment]
Tensor.__ne__ = lambda self, other: Tensor(self.data != _as_array(other))  # type: ignore[assignment]


def _exp(self: Tensor) -> Tensor:
    return _unary(self, np.exp, lambda g, x, o: g * o, "exp")


def _log(self: Tensor) -> Tensor:
    return _unary(self, lambda x: np.log(np.maximum(x, 1e-30)), lambda g, x, o: g / np.maximum(x, 1e-30), "log")


def _sqrt(self: Tensor) -> Tensor:
    return _unary(self, np.sqrt, lambda g, x, o: g * 0.5 / np.maximum(o, 1e-12), "sqrt")


def _abs(self: Tensor) -> Tensor:
    return _unary(self, np.abs, lambda g, x, o: g * np.sign(x), "abs")


def _tanh(self: Tensor) -> Tensor:
    return _unary(self, np.tanh, lambda g, x, o: g * (1 - o * o), "tanh")


def _sigmoid(self: Tensor) -> Tensor:
    def fwd(x):
        return 1.0 / (1.0 + np.exp(-x))
    return _unary(self, fwd, lambda g, x, o: g * o * (1 - o), "sigmoid")


def _relu(self: Tensor) -> Tensor:
    return _unary(self, lambda x: np.maximum(x, 0), lambda g, x, o: g * (x > 0), "relu")


def _sign(self: Tensor) -> Tensor:
    """Sign with zero gradient (use sign_ste for straight-through)."""
    return _unary(self, np.sign, lambda g, x, o: np.zeros_like(g), "sign")


Tensor.exp = _exp
Tensor.log = _log
Tensor.sqrt = _sqrt
Tensor.abs = _abs
Tensor.tanh = _tanh
Tensor.sigmoid = _sigmoid
Tensor.relu = _relu
Tensor.sign = _sign


def _clamp(self: Tensor, min_val=None, max_val=None) -> Tensor:
    lo = -np.inf if min_val is None else float(min_val)
    hi = np.inf if max_val is None else float(max_val)

    def fwd(x):
        return np.clip(x, lo, hi)

    def bwd(g, x, o):
        return g * ((x >= lo) & (x <= hi))

    return _unary(self, fwd, bwd, "clamp")


Tensor.clamp = _clamp


def _round_ste(self: Tensor) -> Tensor:
    """Round-to-nearest with straight-through gradient (identity)."""
    return _unary(self, np.round, lambda g, x, o: g, "round_ste")


def _floor_ste(self: Tensor) -> Tensor:
    return _unary(self, np.floor, lambda g, x, o: g, "floor_ste")


def _round(self: Tensor) -> Tensor:
    """Round with zero gradient (true discretization)."""
    return _unary(self, np.round, lambda g, x, o: np.zeros_like(g), "round")


Tensor.round_ste = _round_ste
Tensor.floor_ste = _floor_ste
Tensor.round = _round


def where(cond: ArrayLike, a: ArrayLike, b: ArrayLike) -> Tensor:
    c = _as_array(cond).astype(bool)
    ta = a if isinstance(a, Tensor) else Tensor(a)
    tb = b if isinstance(b, Tensor) else Tensor(b)
    out = _make(np.where(c, ta.data, tb.data), (ta, tb), "where")
    if out.requires_grad:
        def _bw(g):
            return ((ta, _unbroadcast(g * c, ta.shape)), (tb, _unbroadcast(g * ~c, tb.shape)))
        out._backward = _bw
    return out


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    return _binary(
        a, b,
        np.maximum,
        lambda g, x, y, o: g * (x >= y),
        lambda g, x, y, o: g * (y > x),
        "maximum",
    )


def minimum(a: ArrayLike, b: ArrayLike) -> Tensor:
    return _binary(
        a, b,
        np.minimum,
        lambda g, x, y, o: g * (x <= y),
        lambda g, x, y, o: g * (y < x),
        "minimum",
    )


# ------------------------------------------------------------------ reductions
def _norm_axis(axis, ndim):
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


def _sum(self: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    ax = _norm_axis(axis, self.ndim)
    out = _make(self.data.sum(axis=ax, keepdims=keepdims), (self,), "sum")
    if out.requires_grad:
        def _bw(g):
            if ax is not None and not keepdims:
                g = np.expand_dims(g, ax)
            return ((self, np.broadcast_to(g, self.shape).astype(np.float32)),)
        out._backward = _bw
    return out


def _mean(self: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    ax = _norm_axis(axis, self.ndim)
    n = self.size if ax is None else int(np.prod([self.shape[a] for a in ax]))
    out = _make(self.data.mean(axis=ax, keepdims=keepdims), (self,), "mean")
    if out.requires_grad:
        def _bw(g):
            if ax is not None and not keepdims:
                g = np.expand_dims(g, ax)
            return ((self, (np.broadcast_to(g, self.shape) / n).astype(np.float32)),)
        out._backward = _bw
    return out


def _var(self: Tensor, axis=None, keepdims: bool = False, unbiased: bool = False) -> Tensor:
    m = self.mean(axis=axis, keepdims=True)
    d = self - m
    v = (d * d).mean(axis=axis, keepdims=keepdims)
    if unbiased:
        ax = _norm_axis(axis, self.ndim)
        n = self.size if ax is None else int(np.prod([self.shape[a] for a in ax]))
        v = v * (n / max(n - 1, 1))
    return v


def _max(self: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    ax = _norm_axis(axis, self.ndim)
    out_data = self.data.max(axis=ax, keepdims=keepdims)
    out = _make(out_data, (self,), "max")
    if out.requires_grad:
        def _bw(g):
            full = self.data.max(axis=ax, keepdims=True)
            mask = (self.data == full)
            count = mask.sum(axis=ax, keepdims=True)
            gg = g if keepdims or ax is None else np.expand_dims(g, ax)
            return ((self, (np.broadcast_to(gg, self.shape) * mask / count).astype(np.float32)),)
        out._backward = _bw
    return out


def _min(self: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return -(-self).max(axis=axis, keepdims=keepdims)


Tensor.sum = _sum
Tensor.mean = _mean
Tensor.var = _var
Tensor.max = _max
Tensor.min = _min
Tensor.argmax = lambda self, axis=None: Tensor(np.argmax(self.data, axis=axis))
Tensor.argmin = lambda self, axis=None: Tensor(np.argmin(self.data, axis=axis))


# ------------------------------------------------------------------ shape ops
def _reshape(self: Tensor, *shape) -> Tensor:
    shape = shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list)) else shape
    old = self.shape
    out = _make(self.data.reshape(shape), (self,), "reshape")
    if out.requires_grad:
        def _bw(g):
            return ((self, g.reshape(old)),)
        out._backward = _bw
    return out


def _transpose(self: Tensor, *axes) -> Tensor:
    if len(axes) == 0:
        axes = tuple(reversed(range(self.ndim)))
    elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
        axes = tuple(axes[0])
    inv = np.argsort(axes)
    out = _make(self.data.transpose(axes), (self,), "transpose")
    if out.requires_grad:
        def _bw(g):
            return ((self, g.transpose(inv)),)
        out._backward = _bw
    return out


def _swapaxes(self: Tensor, a: int, b: int) -> Tensor:
    axes = list(range(self.ndim))
    axes[a], axes[b] = axes[b], axes[a]
    return self.transpose(*axes)


def _getitem(self: Tensor, idx) -> Tensor:
    if isinstance(idx, Tensor):
        idx = idx.data
    out = _make(self.data[idx], (self,), "getitem")
    if out.requires_grad:
        def _bw(g):
            full = np.zeros(self.shape, dtype=np.float32)
            np.add.at(full, idx, g)
            return ((self, full),)
        out._backward = _bw
    return out


def _pad(self: Tensor, pad_width) -> Tensor:
    out = _make(np.pad(self.data, pad_width), (self,), "pad")
    if out.requires_grad:
        slices = tuple(slice(p[0], p[0] + s) for p, s in zip(pad_width, self.shape))

        def _bw(g):
            return ((self, g[slices]),)
        out._backward = _bw
    return out


def _flatten(self: Tensor, start_dim: int = 0, end_dim: int = -1) -> Tensor:
    nd = self.ndim
    start = start_dim % nd
    end = end_dim % nd
    new_shape = self.shape[:start] + (-1,) + self.shape[end + 1:]
    return self.reshape(new_shape)


def _unsqueeze(self: Tensor, axis: int) -> Tensor:
    shape = list(self.shape)
    axis = axis if axis >= 0 else axis + self.ndim + 1
    shape.insert(axis, 1)
    return self.reshape(tuple(shape))


def _squeeze(self: Tensor, axis: Optional[int] = None) -> Tensor:
    if axis is None:
        return self.reshape(tuple(s for s in self.shape if s != 1) or (1,))
    shape = list(self.shape)
    if shape[axis] != 1:
        raise ValueError(f"cannot squeeze axis {axis} of shape {self.shape}")
    shape.pop(axis)
    return self.reshape(tuple(shape))


def _broadcast_to(self: Tensor, shape) -> Tensor:
    out = _make(np.broadcast_to(self.data, shape), (self,), "broadcast")
    if out.requires_grad:
        def _bw(g):
            return ((self, _unbroadcast(g, self.shape)),)
        out._backward = _bw
    return out


Tensor.reshape = _reshape
Tensor.transpose = _transpose
Tensor.swapaxes = _swapaxes
Tensor.__getitem__ = _getitem
Tensor.pad = _pad
Tensor.flatten = _flatten
Tensor.unsqueeze = _unsqueeze
Tensor.squeeze = _squeeze
Tensor.broadcast_to = _broadcast_to


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    ts = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out = _make(np.stack([t.data for t in ts], axis=axis), tuple(ts), "stack")
    if out.requires_grad:
        def _bw(g):
            parts = np.split(g, len(ts), axis=axis)
            return tuple((t, np.squeeze(p, axis=axis)) for t, p in zip(ts, parts))
        out._backward = _bw
    return out


def cat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    ts = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    sizes = [t.shape[axis] for t in ts]
    out = _make(np.concatenate([t.data for t in ts], axis=axis), tuple(ts), "cat")
    if out.requires_grad:
        splits = np.cumsum(sizes)[:-1]

        def _bw(g):
            parts = np.split(g, splits, axis=axis)
            return tuple((t, p) for t, p in zip(ts, parts))
        out._backward = _bw
    return out


# ------------------------------------------------------------------ matmul
def _matmul(self: Tensor, other: ArrayLike) -> Tensor:
    tb = other if isinstance(other, Tensor) else Tensor(other)
    out = _make(self.data @ tb.data, (self, tb), "matmul")
    if out.requires_grad:
        def _bw(g):
            a, b = self.data, tb.data
            if a.ndim == 1 and b.ndim == 1:
                ga, gb = g * b, g * a
            elif a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                ga = _unbroadcast(np.expand_dims(g, -2) @ np.swapaxes(b, -1, -2), (1, a.shape[0])).reshape(a.shape)
                gb = _unbroadcast(np.expand_dims(a, -1) @ np.expand_dims(g, -2), b.shape)
            elif b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                ga = _unbroadcast(np.expand_dims(g, -1) @ np.expand_dims(b, 0), a.shape)
                gb = _unbroadcast(np.swapaxes(a, -1, -2) @ np.expand_dims(g, -1), b.shape + (1,)).reshape(b.shape)
            else:
                ga = _unbroadcast(g @ np.swapaxes(b, -1, -2), a.shape)
                gb = _unbroadcast(np.swapaxes(a, -1, -2) @ g, b.shape)
            return ((self, ga.astype(np.float32)), (tb, gb.astype(np.float32)))
        out._backward = _bw
    return out


Tensor.__matmul__ = _matmul
Tensor.matmul = _matmul


def _softmax(self: Tensor, axis: int = -1) -> Tensor:
    def fwd(x):
        m = x.max(axis=axis, keepdims=True)
        e = np.exp(x - m)
        return e / e.sum(axis=axis, keepdims=True)

    def bwd(g, x, o):
        return o * (g - (g * o).sum(axis=axis, keepdims=True))

    return _unary(self, fwd, bwd, "softmax")


def _log_softmax(self: Tensor, axis: int = -1) -> Tensor:
    def fwd(x):
        m = x.max(axis=axis, keepdims=True)
        z = x - m
        return z - np.log(np.exp(z).sum(axis=axis, keepdims=True))

    def bwd(g, x, o):
        return g - np.exp(o) * g.sum(axis=axis, keepdims=True)

    return _unary(self, fwd, bwd, "log_softmax")


Tensor.softmax = _softmax
Tensor.log_softmax = _log_softmax
