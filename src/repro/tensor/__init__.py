"""Reverse-mode autograd tensor engine over numpy.

This subpackage is the substrate that replaces ``torch`` for the Torch2Chip
reproduction: a broadcast-aware :class:`Tensor` with reverse-mode automatic
differentiation, plus the neural-network primitives (convolution, pooling,
attention math, straight-through estimators) the toolkit needs.
"""
from repro.tensor.tensor import (
    Tensor,
    no_grad,
    is_grad_enabled,
    tensor,
    zeros,
    ones,
    full,
    arange,
    randn,
    rand,
    stack,
    cat,
    where,
    maximum,
    minimum,
)
from repro.tensor import functional

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "tensor",
    "zeros",
    "ones",
    "full",
    "arange",
    "randn",
    "rand",
    "stack",
    "cat",
    "where",
    "maximum",
    "minimum",
    "functional",
]
