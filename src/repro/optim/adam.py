"""Adam and AdamW optimizers."""
from __future__ import annotations

import numpy as np

from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction; L2 weight decay added to the gradient."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, dict(lr=lr, betas=betas, eps=eps, weight_decay=weight_decay))

    def _decay(self, p, g, lr, wd):
        return g + wd * p.data if wd else g

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            b1, b2 = group["betas"]
            eps = group["eps"]
            wd = group["weight_decay"]
            for p in group["params"]:
                if p.grad is None:
                    continue
                st = self.state.setdefault(id(p), {"step": 0,
                                                   "m": np.zeros_like(p.data),
                                                   "v": np.zeros_like(p.data)})
                st["step"] += 1
                g = self._decay(p, p.grad, lr, wd)
                st["m"] = b1 * st["m"] + (1 - b1) * g
                st["v"] = b2 * st["v"] + (1 - b2) * g * g
                mhat = st["m"] / (1 - b1 ** st["step"])
                vhat = st["v"] / (1 - b2 ** st["step"])
                p.data = p.data - lr * mhat / (np.sqrt(vhat) + eps)
                self._post(p, lr, wd)

    def _post(self, p, lr, wd):
        pass


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def _decay(self, p, g, lr, wd):
        return g

    def _post(self, p, lr, wd):
        if wd:
            p.data = p.data - lr * wd * p.data
