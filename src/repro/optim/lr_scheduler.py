"""Learning-rate schedulers."""
from __future__ import annotations

import math
from typing import Sequence

from repro.optim.optimizer import Optimizer


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch (or iteration)."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lrs = [g["lr"] for g in optimizer.param_groups]
        self.last_epoch = 0

    def get_lr(self, base_lr: float) -> float:
        raise NotImplementedError

    def step(self) -> None:
        self.last_epoch += 1
        for group, base in zip(self.optimizer.param_groups, self.base_lrs):
            group["lr"] = self.get_lr(base)

    @property
    def lr(self) -> float:
        return self.optimizer.param_groups[0]["lr"]


class StepLR(LRScheduler):
    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, base_lr: float) -> float:
        return base_lr * self.gamma ** (self.last_epoch // self.step_size)


class MultiStepLR(LRScheduler):
    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self, base_lr: float) -> float:
        k = sum(1 for m in self.milestones if self.last_epoch >= m)
        return base_lr * self.gamma ** k


class CosineAnnealingLR(LRScheduler):
    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        self.t_max = max(t_max, 1)
        self.eta_min = eta_min

    def get_lr(self, base_lr: float) -> float:
        t = min(self.last_epoch, self.t_max)
        return self.eta_min + 0.5 * (base_lr - self.eta_min) * (1 + math.cos(math.pi * t / self.t_max))


class WarmupCosineLR(LRScheduler):
    """Linear warmup followed by cosine annealing (SSL / ViT recipes)."""

    def __init__(self, optimizer: Optimizer, warmup: int, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        self.warmup = warmup
        self.t_max = max(t_max, warmup + 1)
        self.eta_min = eta_min

    def get_lr(self, base_lr: float) -> float:
        if self.last_epoch < self.warmup:
            return base_lr * (self.last_epoch + 1) / max(self.warmup, 1)
        t = min(self.last_epoch - self.warmup, self.t_max - self.warmup)
        span = self.t_max - self.warmup
        return self.eta_min + 0.5 * (base_lr - self.eta_min) * (1 + math.cos(math.pi * t / span))
