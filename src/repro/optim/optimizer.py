"""Optimizer base class with parameter groups."""
from __future__ import annotations

from typing import Dict, Iterable, List, Union

from repro.tensor.tensor import Tensor


class Optimizer:
    """Base optimizer.

    Accepts either an iterable of tensors or a list of param-group dicts
    (``{"params": [...], "lr": ..., ...}``) like torch.
    """

    def __init__(self, params: Union[Iterable[Tensor], List[Dict]], defaults: Dict):
        self.defaults = defaults
        params = list(params)
        if not params:
            raise ValueError("optimizer got an empty parameter list")
        if isinstance(params[0], dict):
            groups = params
        else:
            groups = [{"params": params}]
        self.param_groups: List[Dict] = []
        for g in groups:
            group = dict(defaults)
            group.update(g)
            group["params"] = list(group["params"])
            self.param_groups.append(group)
        self.state: Dict[int, Dict] = {}

    def zero_grad(self) -> None:
        for group in self.param_groups:
            for p in group["params"]:
                p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    @property
    def lr(self) -> float:
        return self.param_groups[0]["lr"]

    def set_lr(self, lr: float) -> None:
        for group in self.param_groups:
            group["lr"] = lr
