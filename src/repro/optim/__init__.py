"""Optimizers and learning-rate schedulers."""
from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam, AdamW
from repro.optim.lr_scheduler import (
    LRScheduler,
    StepLR,
    CosineAnnealingLR,
    WarmupCosineLR,
    MultiStepLR,
)

__all__ = [
    "Optimizer", "SGD", "Adam", "AdamW",
    "LRScheduler", "StepLR", "CosineAnnealingLR", "WarmupCosineLR", "MultiStepLR",
]
