"""SGD with momentum and (decoupled-from-grad) weight decay."""
from __future__ import annotations

import numpy as np

from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum.

    Weight decay is the standard L2 form (added to the gradient), matching the
    SGD recipes the paper's QAT experiments use.
    """

    def __init__(self, params, lr: float = 0.1, momentum: float = 0.0,
                 weight_decay: float = 0.0, nesterov: bool = False):
        super().__init__(params, dict(lr=lr, momentum=momentum, weight_decay=weight_decay, nesterov=nesterov))

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            mom = group["momentum"]
            wd = group["weight_decay"]
            nesterov = group["nesterov"]
            for p in group["params"]:
                if p.grad is None:
                    continue
                g = p.grad
                if wd:
                    g = g + wd * p.data
                if mom:
                    st = self.state.setdefault(id(p), {})
                    buf = st.get("momentum_buffer")
                    if buf is None:
                        buf = np.array(g, dtype=np.float32)
                    else:
                        buf = mom * buf + g
                    st["momentum_buffer"] = buf
                    g = g + mom * buf if nesterov else buf
                p.data = p.data - lr * g
