"""Deterministic fault-injection harness for the deploy/serve pipeline.

The integrity store (:mod:`repro.export.integrity`) promises that corrupted
or half-written artifacts are *detected, never served*.  This package is the
adversary that keeps the promise honest: seeded injectors damage artifact
directories and perturb a running gateway, and :class:`ChaosPlan` scores
whether every fault was detected by the defence layers and whether service
recovered on known-good state.

* :mod:`~repro.chaos.injectors` — the fault catalog: ``flip_bits``,
  ``truncate_file``, ``corrupt_header``, ``stale_manifest`` (artifact side),
  ``kill_worker``, ``stall_worker``, ``delay_clock`` (server side),
  ``kill_replica``, ``partition_replica`` (fleet side) and
  ``flip_live_weights``, ``flip_arena``, ``corrupt_golden`` (live
  silent-data-corruption side), all deterministic functions of an explicit
  ``numpy.random.Generator``;
* :class:`ChaosPlan` — a seeded schedule of faults; fault ``i`` draws from
  ``np.random.default_rng([seed, i])`` so runs replay exactly;
* :class:`ChaosReport` — injected / detected / recovered / missed
  scorecard, rendered by ``repro.cli chaos``.

Quickstart::

    from repro.chaos import ChaosPlan

    report = ChaosPlan.artifact_default(seed=7).run_artifacts(export_dir)
    assert report.ok            # zero missed faults
"""
from repro.chaos.injectors import (ARTIFACT_INJECTORS, FLEET_INJECTORS,
                                   INJECTORS, SDC_INJECTORS,
                                   SERVER_INJECTORS, corrupt_golden,
                                   corrupt_header, delay_clock, flip_arena,
                                   flip_bits, flip_live_weights,
                                   kill_replica, kill_worker,
                                   partition_replica, stale_manifest,
                                   stall_worker, truncate_file)
from repro.chaos.plan import ChaosPlan, ChaosReport, FaultRecord

__all__ = [
    "ChaosPlan", "ChaosReport", "FaultRecord",
    "ARTIFACT_INJECTORS", "SERVER_INJECTORS", "FLEET_INJECTORS",
    "SDC_INJECTORS", "INJECTORS",
    "flip_bits", "truncate_file", "corrupt_header", "stale_manifest",
    "kill_worker", "stall_worker", "delay_clock",
    "kill_replica", "partition_replica",
    "flip_live_weights", "flip_arena", "corrupt_golden",
]
