"""Deterministic, seeded fault injectors.

Every injector is a pure function of its target and an explicit
``numpy.random.Generator`` — same seed, same fault, byte for byte — so a
chaos run is a *reproducible experiment*, not a fuzzer.  Two families:

* **artifact injectors** mutate an exported artifact directory in place
  (``flip_bits``, ``truncate_file``, ``corrupt_header``, ``stale_manifest``)
  and return a details dict naming exactly what was damaged;
* **server injectors** perturb a running :class:`repro.server.Server`
  (``kill_worker``, ``stall_worker``, ``delay_clock``) and return details
  plus, where needed, an ``undo`` callable;
* **plan injectors** corrupt a compiled :class:`repro.runtime.executor.Plan`
  in place (``swap_register``, ``widen_scale``, ``drop_op``) — each is
  constructed to violate an invariant the plan verifier *proves*, so a
  silent miss means the static verifier has a hole;
* **fleet injectors** perturb a running :class:`repro.fleet.Fleet`
  (``kill_replica``, ``partition_replica``) — detection means the router
  ejects the victim and requests reroute, recovery means the group returns
  to its target replica count (or the healed replica rejoins);
* **SDC injectors** corrupt a replica's *live in-memory* state
  (``flip_live_weights``, ``flip_arena``, ``corrupt_golden``) — faults no
  at-rest gate can see; detection means the runtime SDC defense (ABFT,
  memory scrubbing, golden-vector probes) quarantines the victim and a
  clean replacement spawns, with zero lost requests.

``corrupt_header`` is deliberately the nastiest case: it rewrites a qint
JSON header *and* patches the file's manifest checksum *and* re-signs the
manifest digest, so every byte-level check passes and only the semantic
header-vs-payload validation in :func:`repro.export.qint.load_qint` can
catch it.
"""
from __future__ import annotations

import json
import os
import signal
import threading
from typing import Dict, List, Optional

import numpy as np


# ---------------------------------------------------------------- utilities
def _artifact_files(export_dir: str, suffix: Optional[str] = None) -> List[str]:
    """Sorted data files (manifest excluded) — the corruption targets."""
    names = [n for n in sorted(os.listdir(export_dir))
             if n != "manifest.json"
             and os.path.isfile(os.path.join(export_dir, n))]
    if suffix is not None:
        names = [n for n in names if n.endswith(suffix)]
    return names


def _pick(rng: np.random.Generator, items: List):
    if not items:
        raise ValueError("chaos injector has nothing to target")
    return items[int(rng.integers(len(items)))]


def _read_manifest(export_dir: str) -> Dict:
    with open(os.path.join(export_dir, "manifest.json")) as f:
        return json.load(f)


def _write_manifest(export_dir: str, manifest: Dict) -> None:
    with open(os.path.join(export_dir, "manifest.json"), "w") as f:
        json.dump(manifest, f, indent=2)


# --------------------------------------------------------- artifact faults
def flip_bits(export_dir: str, rng: np.random.Generator,
              n_bits: int = 8) -> Dict:
    """Flip ``n_bits`` distinct bits of one seeded-chosen artifact file."""
    fname = _pick(rng, _artifact_files(export_dir))
    path = os.path.join(export_dir, fname)
    with open(path, "rb") as f:
        data = bytearray(f.read())
    if not data:
        raise ValueError(f"cannot flip bits of empty file {fname}")
    n = min(n_bits, len(data) * 8)
    positions = rng.choice(len(data) * 8, size=n, replace=False)
    for pos in positions:
        data[int(pos) // 8] ^= 1 << (int(pos) % 8)
    with open(path, "wb") as f:
        f.write(bytes(data))
    return {"file": fname, "bits_flipped": sorted(int(p) for p in positions)}


def truncate_file(export_dir: str, rng: np.random.Generator,
                  keep_fraction: float = 0.5) -> Dict:
    """Cut one seeded-chosen artifact file short (crash-mid-write shape)."""
    fname = _pick(rng, _artifact_files(export_dir))
    path = os.path.join(export_dir, fname)
    size = os.path.getsize(path)
    keep = int(size * keep_fraction)
    if keep >= size:
        keep = max(0, size - 1)
    with open(path, "r+b") as f:
        f.truncate(keep)
    return {"file": fname, "bytes_before": size, "bytes_after": keep}


#: header mutations corrupt_header draws from (name -> header edit)
_HEADER_MUTATIONS = (
    ("grow_shape", lambda h: h.__setitem__(
        "shape", [int(h["shape"][0]) + 1] + [int(s) for s in h["shape"][1:]]
        if h["shape"] else [2])),
    ("shrink_container", lambda h: h.__setitem__("stored_bits", 12)),
    ("narrow_bits", lambda h: h.__setitem__("bits", 1)),
    ("byteorder", lambda h: h.__setitem__("byteorder", "big")),
    ("drop_shape", lambda h: h.pop("shape")),
)


def corrupt_header(export_dir: str, rng: np.random.Generator) -> Dict:
    """Rewrite a qint header to contradict its payload — with the
    bookkeeping (file checksum, manifest digest) patched to match, so only
    semantic header validation can reject it."""
    from repro.export.integrity import manifest_digest, sha256_file

    headers = _artifact_files(export_dir, suffix=".qint.json")
    if not headers:
        raise ValueError("corrupt_header needs a qint export "
                         "(no *.qint.json in the artifact dir)")
    fname = _pick(rng, headers)
    path = os.path.join(export_dir, fname)
    with open(path) as f:
        header = json.load(f)
    mutation, apply = _HEADER_MUTATIONS[
        int(rng.integers(len(_HEADER_MUTATIONS)))]
    apply(header)
    with open(path, "w") as f:
        json.dump(header, f, indent=2)
    manifest = _read_manifest(export_dir)
    sums = manifest.get("checksums", {})
    if fname in sums:
        sums[fname] = {"sha256": sha256_file(path),
                       "bytes": os.path.getsize(path)}
    manifest["digest"] = manifest_digest(manifest)
    _write_manifest(export_dir, manifest)
    return {"file": fname, "mutation": mutation}


#: manifest mutations stale_manifest draws from (digest NOT re-signed)
def _mut_bits(m, rng):
    name = _pick(rng, [n for n, e in m["tensors"].items() if e.get("integer")]
                 or list(m["tensors"]))
    m["tensors"][name]["bits"] = int(m["tensors"][name].get("bits", 8)) + 4
    return {"tensor": name, "edit": "bits"}


def _mut_checksum(m, rng):
    fname = _pick(rng, sorted(m.get("checksums", {})))
    sha = m["checksums"][fname]["sha256"]
    m["checksums"][fname]["sha256"] = ("0" if sha[0] != "0" else "1") + sha[1:]
    return {"file": fname, "edit": "checksum"}


def _mut_drop_digest(m, rng):
    m.pop("digest", None)
    return {"edit": "drop_digest"}


def _mut_schema(m, rng):
    m["schema"] = 1
    return {"edit": "schema_downgrade"}


_MANIFEST_MUTATIONS = (_mut_bits, _mut_checksum, _mut_drop_digest, _mut_schema)


def stale_manifest(export_dir: str, rng: np.random.Generator) -> Dict:
    """Edit the manifest after the fact without re-signing its digest —
    the tampered/stale-bookkeeping failure mode."""
    manifest = _read_manifest(export_dir)
    mut = _MANIFEST_MUTATIONS[int(rng.integers(len(_MANIFEST_MUTATIONS)))]
    details = mut(manifest, rng)
    _write_manifest(export_dir, manifest)
    return details


#: name -> callable, the artifact-fault catalog ChaosPlan schedules from
ARTIFACT_INJECTORS = {
    "flip_bits": flip_bits,
    "truncate_file": truncate_file,
    "corrupt_header": corrupt_header,
    "stale_manifest": stale_manifest,
}


# ----------------------------------------------------------- server faults
def _lane_procs(server, model: str):
    lane = server._lanes.get(model)
    pool = getattr(lane, "pool", None) if lane is not None else None
    procs = [p for p in getattr(pool, "procs", []) if p.is_alive()]
    return lane, procs


def kill_worker(server, model: str, rng: np.random.Generator) -> Dict:
    """SIGKILL one seeded-chosen pool worker of ``model``'s lane."""
    lane, procs = _lane_procs(server, model)
    if not procs:
        raise ValueError(f"kill_worker: no live pool workers for {model!r} "
                         f"(server must run with workers >= 2)")
    proc = _pick(rng, procs)
    os.kill(proc.pid, signal.SIGKILL)
    return {"pid": proc.pid, "signal": "SIGKILL"}


def stall_worker(server, model: str, rng: np.random.Generator,
                 stall_s: float = 0.3) -> Dict:
    """SIGSTOP one seeded-chosen worker, SIGCONT it after ``stall_s``."""
    lane, procs = _lane_procs(server, model)
    if not procs:
        raise ValueError(f"stall_worker: no live pool workers for {model!r}")
    proc = _pick(rng, procs)
    os.kill(proc.pid, signal.SIGSTOP)

    def resume():
        try:
            os.kill(proc.pid, signal.SIGCONT)
        except ProcessLookupError:
            pass

    timer = threading.Timer(stall_s, resume)
    timer.daemon = True
    timer.start()
    return {"pid": proc.pid, "signal": "SIGSTOP", "stall_s": stall_s,
            "undo": resume}


def delay_clock(server, model: str, rng: np.random.Generator,
                skew_s: float = 0.5) -> Dict:
    """Skew the lane's service-time clock: inflate the EWMA batch-time
    estimate by ``skew_s`` as if every batch suddenly took that much longer.
    Deadline-aware admission must respond by *shedding* (typed
    :class:`~repro.server.types.Overloaded`) requests whose deadline the
    skewed projection can no longer meet — never by silently missing
    deadlines.  Returns an ``undo`` that restores the estimate."""
    lane = server._lanes.get(model)
    if lane is None:
        raise ValueError(f"delay_clock: lane for {model!r} not started yet "
                         f"(submit one request first)")
    with lane.cond:
        original = lane.est_batch_s
        lane.est_batch_s = original + skew_s

    def undo():
        with lane.cond:
            lane.est_batch_s = original

    return {"skew_s": skew_s, "undo": undo}


SERVER_INJECTORS = {
    "kill_worker": kill_worker,
    "stall_worker": stall_worker,
    "delay_clock": delay_clock,
}


# ------------------------------------------------------------- plan faults
def _invalidate(plan) -> None:
    """Drop caches a mutation makes stale (bindings, verification report)."""
    plan._bindings = {}
    plan._verification = None


def swap_register(plan, rng: np.random.Generator) -> Dict:
    """Rewire one op's source to a register defined *later* in the program.

    A miswired fusion/buffer-sharing pass in its most detectable form: the
    read observes garbage (or a stale slot) at run time, and statically it
    is a use-before-def the dataflow pass must flag as ``plan.dead-read``.
    """
    candidates = [(i, op) for i, op in enumerate(plan.ops) if op.src]
    i, op = _pick(rng, candidates)
    later = [o.dst for o in plan.ops[i:]]  # >= i: op's own dst qualifies too
    slot = int(rng.integers(len(op.src)))
    old = op.src[slot]
    new = _pick(rng, [d for d in later if d != old] or later)
    src = list(op.src)
    src[slot] = int(new)
    op.src = tuple(src)
    _invalidate(plan)
    return {"op": i, "name": op.name, "slot": slot,
            "old_reg": int(old), "new_reg": int(new)}


def widen_scale(plan, rng: np.random.Generator,) -> Dict:
    """Multiply one requant's scale (and clamp grid) by 16-128x.

    Models a post-compile parameter patch that silently widens an
    activation range: every downstream accumulator bound the compiler
    certified is now stale, which the verifier's interval re-propagation
    must catch as ``plan.accum-overflow``.
    """
    fed = {op.src[0] for op in plan.ops
           if op.kind == "conv_mq" and op.src}
    convs = [(i, op) for i, op in enumerate(plan.ops)
             if op.kind == "conv_mq" and op.dst in fed]
    if not convs:  # no conv->conv edge (e.g. tiny test plans): any mq op
        convs = [(i, op) for i, op in enumerate(plan.ops)
                 if getattr(op, "mq", None) is not None]
    i, op = _pick(rng, convs)
    factor = float(2 ** int(rng.integers(4, 8)))
    op.mq.m = op.mq.m * factor
    op.mq.lo = op.mq.lo * factor
    op.mq.hi = op.mq.hi * factor
    _invalidate(plan)
    return {"op": i, "name": op.name, "factor": factor}


def drop_op(plan, rng: np.random.Generator) -> Dict:
    """Delete one op whose result is still consumed downstream.

    The over-eager dead-code-elimination failure: a later op (or the
    program output) reads a register that is now never written —
    ``plan.dead-read`` by construction.
    """
    consumed = {s for op in plan.ops for s in op.src} | {plan.output_reg}
    candidates = [i for i, op in enumerate(plan.ops) if op.dst in consumed]
    i = _pick(rng, candidates)
    op = plan.ops.pop(i)
    _invalidate(plan)
    return {"op": i, "name": op.name, "op_kind": op.kind, "dst": int(op.dst)}


def fuse_illegal(plan, rng: np.random.Generator) -> Dict:
    """Replace one conv with a fused conv+residual whose shortcut operand is
    a register defined *after* the op — the broken-fusion-pass failure mode.

    A legal fusion only ever merges a residual whose operands already exist
    at the fusion site; an illegal one (wrong legality oracle, off-by-one in
    the liveness query) manifests exactly like this: the fused op reads a
    forward register.  Structurally a use-before-def, so the dataflow pass
    must flag it as ``plan.dead-read`` — with no input shape needed.
    """
    from repro.runtime.program import ConvMQOp, ConvMQResOp

    convs = [(i, op) for i, op in enumerate(plan.ops)
             if isinstance(op, ConvMQOp)]
    if not convs:
        raise ValueError("fuse_illegal needs a conv_mq op in the plan")
    i, conv = _pick(rng, convs)
    shortcut = int(plan.ops[-1].dst)  # defined at the end — always forward
    fused = ConvMQResOp(
        conv.name, (conv.src[0], shortcut), conv.dst, conv.weight,
        conv.stride, conv.padding, conv.groups, conv.mq,
        conv.exact_reassoc, conv.bound, res_scale=1.0,
        res_lo=conv.mq.lo, res_hi=conv.mq.hi,
        res_name=f"{conv.name}.illegal_residual")
    plan.ops[i] = fused
    _invalidate(plan)
    return {"op": i, "name": conv.name, "shortcut_reg": shortcut}


#: compiled-plan fault catalog — every entry must be *caught* by verify()
PLAN_INJECTORS = {
    "swap_register": swap_register,
    "widen_scale": widen_scale,
    "drop_op": drop_op,
    "fuse_illegal": fuse_illegal,
}


# ------------------------------------------------------------ fleet faults
def _ready_replicas(fleet, model: str):
    from repro.fleet.replica import READY

    return [r for r in fleet.replicas(model)
            if r.state == READY and not r.partitioned]


def kill_replica(fleet, model: str, rng: np.random.Generator) -> Dict:
    """Kill one seeded-chosen READY replica of ``model``'s group outright.

    The in-process stand-in for SIGKILL of a whole gateway process: every
    request queued or in flight on the victim resolves as a retryable
    :class:`~repro.server.types.Failed` and the fleet must requeue them on
    surviving replicas (zero lost), eject the victim from the ring within
    one health interval, and self-heal back to the target replica count.
    """
    victims = _ready_replicas(fleet, model)
    if len(victims) < 2:
        raise ValueError(f"kill_replica: need >= 2 ready replicas of "
                         f"{model!r} to leave a survivor "
                         f"(have {len(victims)})")
    victim = _pick(rng, sorted(victims, key=lambda r: r.replica_id))
    pending_before = victim.pending_count()
    victim.kill()
    return {"replica": victim.replica_id,
            "pending_at_kill": pending_before}


def partition_replica(fleet, model: str, rng: np.random.Generator,
                      heal_s: float = 0.5) -> Dict:
    """Make one seeded-chosen READY replica unreachable without killing it
    (a network partition), healing it after ``heal_s``.

    The fleet must eject the partitioned replica and reroute its keys —
    but *not* replace it (it is alive behind the partition); after the
    heal, the health loop re-admits it to the ring.
    """
    victims = _ready_replicas(fleet, model)
    if len(victims) < 2:
        raise ValueError(f"partition_replica: need >= 2 ready replicas of "
                         f"{model!r} to leave a survivor "
                         f"(have {len(victims)})")
    victim = _pick(rng, sorted(victims, key=lambda r: r.replica_id))
    victim.partition()

    def heal():
        victim.heal()

    timer = threading.Timer(heal_s, heal)
    timer.daemon = True
    timer.start()
    return {"replica": victim.replica_id, "heal_s": heal_s, "undo": heal}


FLEET_INJECTORS = {
    "kill_replica": kill_replica,
    "partition_replica": partition_replica,
}


# -------------------------------------------------- silent-data-corruption
def _sdc_victim(fleet, model: str, rng: np.random.Generator):
    """Seeded-chosen READY victim, with at least one survivor left."""
    victims = _ready_replicas(fleet, model)
    if len(victims) < 2:
        raise ValueError(f"SDC injector: need >= 2 ready replicas of "
                         f"{model!r} to leave a survivor "
                         f"(have {len(victims)})")
    return _pick(rng, sorted(victims, key=lambda r: r.replica_id))


def flip_live_weights(fleet, model: str, rng: np.random.Generator,
                      delta: float = 8.0) -> Dict:
    """Corrupt one element of a victim replica's *live* packed weights.

    The in-memory bit-flip failure mode: the packed kernel matrices the
    conv loops read share memory with ``op.weight``, so the perturbation
    changes what the replica actually serves from the next batch on — no
    artifact, manifest or registry gate ever sees it.  Only the runtime
    defenses can: the scrubber's CRC baseline no longer matches, sampled
    ABFT checksum equality breaks, and golden-vector replays diverge.
    """
    victim = _sdc_victim(fleet, model, rng)
    plan = victim.registry.get(model).plan
    convs = [(i, op) for i, op in enumerate(plan.ops)
             if isinstance(getattr(op, "weight", None), np.ndarray)]
    i, op = _pick(rng, convs)
    idx = int(rng.integers(op.weight.size))
    op.weight.flat[idx] += delta
    return {"replica": victim.replica_id, "op": i, "name": op.name,
            "element": idx, "delta": delta}


def flip_arena(fleet, model: str, rng: np.random.Generator) -> Dict:
    """Write a non-zero word into a victim's arena guard border.

    The channel layout zeroes each padded border once and the conv kernels
    rely on it staying zero — a flipped guard word silently feeds a wrong
    tap to every edge pixel.  Needs live traffic first (bindings are
    lazy); the memory scrubber's guard sweep is the detection layer.
    """
    victim = _sdc_victim(fleet, model, rng)
    plan = victim.registry.get(model).plan
    targets = []
    for key, binding in sorted(plan._bindings.items()):
        arena = binding.arena
        for reg in sorted(arena._cm_bufs):
            if arena.pads.get(reg, 0) > 0:
                targets.append((key, reg))
    if not targets:
        raise ValueError("flip_arena: no padded arena bindings on "
                         f"{victim.replica_id} (drive traffic first)")
    key, reg = _pick(rng, targets)
    buf = plan._bindings[key].arena._cm_bufs[reg]
    buf[0, 0, 0, 0] = float(int(rng.integers(1, 128)))
    return {"replica": victim.replica_id, "binding": list(key),
            "register": int(reg)}


def corrupt_golden(fleet, model: str, rng: np.random.Generator,
                   delta: float = 1.0) -> Dict:
    """Tamper one output element of a victim's recorded golden vectors.

    Models corruption of the *reference* data rather than the serving
    path: the replica still computes correctly, but its self-test
    baseline lies.  The defense cannot tell which side rotted — golden
    divergence is SDC by definition and the conservative response is the
    same quarantine (the replacement replica re-materializes both plan
    and goldens from the fleet's source of truth).
    """
    victim = _sdc_victim(fleet, model, rng)
    entry = victim.registry.get(model)
    golden = getattr(getattr(entry, "deployed", None), "golden", None)
    outputs = getattr(golden, "outputs", None)
    if golden is None or outputs is None or len(outputs) == 0:
        raise ValueError(f"corrupt_golden: {victim.replica_id} has no "
                         "recorded golden vectors (DeploySpec.golden_vectors)")
    vec = int(rng.integers(len(golden.outputs)))
    out = golden.outputs[vec]
    idx = int(rng.integers(out.size))
    out.flat[idx] += delta
    return {"replica": victim.replica_id, "vector": vec, "element": idx,
            "delta": delta}


#: live in-memory corruption catalog — detection is the *runtime* SDC
#: defense (ABFT / scrubber / golden probes), never an at-rest gate.
#: Kept separate from FLEET_INJECTORS: those model crash/partition faults
#: whose contract is reroute-and-heal, these model corruption whose
#: contract is detect-quarantine-replace.
SDC_INJECTORS = {
    "flip_live_weights": flip_live_weights,
    "flip_arena": flip_arena,
    "corrupt_golden": corrupt_golden,
}

INJECTORS = {**ARTIFACT_INJECTORS, **SERVER_INJECTORS, **PLAN_INJECTORS,
             **FLEET_INJECTORS, **SDC_INJECTORS}
