"""ChaosPlan: a seeded fault schedule plus the detection scorecard.

A plan is a list of ``(injector, params)`` steps.  Fault ``i`` draws its
randomness from ``np.random.default_rng([seed, i])`` — each step has an
independent, reproducible stream, so reordering or extending the schedule
never changes what an existing step does.

Running a plan produces a :class:`ChaosReport` scoring every fault on two
axes:

* **detected** — the defence layers noticed the fault.  For artifact faults
  that means *all three* consumers reject the damaged directory
  (:func:`~repro.export.integrity.verify_artifacts` reports errors,
  :func:`~repro.export.integrity.load_state_dict` raises a typed
  :class:`~repro.export.errors.ArtifactError`, and
  :class:`~repro.server.ModelRegistry` refuses to admit it) — one silent
  acceptance anywhere marks the fault *missed*.  For server faults it means
  the gateway reacted with its typed degradation contract (supervised
  respawn, liveness under a stall, :class:`~repro.server.types.Overloaded`
  shedding under clock skew) instead of hanging or lying.  For compiled-plan
  faults it means the static verifier (:meth:`Plan.verify`) reports errors
  *and* the registry gate refuses to admit the mutant.
* **recovered** — service continued on known-good state afterwards: the
  registry still serves the previous active version / a post-fault probe
  request returns :class:`~repro.server.types.Ok`.

Every injected/detected/missed fault also lands in telemetry as
``chaos_inject`` / ``chaos_detected`` / ``chaos_missed`` events.
"""
from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.chaos.injectors import (ARTIFACT_INJECTORS, FLEET_INJECTORS,
                                   INJECTORS, PLAN_INJECTORS, SDC_INJECTORS,
                                   SERVER_INJECTORS)
from repro.export.errors import ArtifactError

#: how long server-fault detection probes the gateway before giving up
_PROBE_TIMEOUT_S = 10.0


class _PlanRunner:
    """Minimal registry-compatible runner wrapping a compiled plan.

    Exposes ``.plan`` so :meth:`~repro.server.ModelRegistry.register` picks
    it up and its verification gate applies — the path under test.
    """

    def __init__(self, plan):
        self.plan = plan

    def __call__(self, batch):
        return self.plan(batch)


@dataclass
class FaultRecord:
    """Scorecard line for one injected fault."""

    index: int
    injector: str
    params: Dict
    details: Dict = field(default_factory=dict)
    detected: bool = False
    recovered: bool = False
    layers: Dict[str, bool] = field(default_factory=dict)
    note: str = ""

    @property
    def missed(self) -> bool:
        return not self.detected

    def to_json(self) -> Dict:
        return {"index": self.index, "injector": self.injector,
                "params": self.params, "details": self.details,
                "detected": self.detected, "recovered": self.recovered,
                "layers": self.layers, "note": self.note}


class ChaosReport:
    """Aggregated outcome of one chaos run (or several, via :meth:`extend`)."""

    def __init__(self, seed: int):
        self.seed = seed
        self.records: List[FaultRecord] = []

    def add(self, record: FaultRecord) -> None:
        self.records.append(record)

    def extend(self, other: "ChaosReport") -> "ChaosReport":
        self.records.extend(other.records)
        return self

    @property
    def injected(self) -> int:
        return len(self.records)

    @property
    def detected(self) -> int:
        return sum(r.detected for r in self.records)

    @property
    def recovered(self) -> int:
        return sum(r.recovered for r in self.records)

    @property
    def missed(self) -> int:
        return sum(r.missed for r in self.records)

    @property
    def ok(self) -> bool:
        """Zero missed faults — every injected fault was detected."""
        return self.missed == 0

    def to_json(self) -> Dict:
        return {
            "seed": self.seed,
            "summary": {"injected": self.injected, "detected": self.detected,
                        "recovered": self.recovered, "missed": self.missed,
                        "ok": self.ok},
            "faults": [r.to_json() for r in self.records],
        }

    def render(self) -> str:
        lines = [f"chaos report (seed={self.seed}): "
                 f"{self.injected} injected, {self.detected} detected, "
                 f"{self.recovered} recovered, {self.missed} MISSED"]
        for r in self.records:
            status = "detected" if r.detected else "MISSED"
            rec = "recovered" if r.recovered else "not recovered"
            layers = "".join(
                f" {k}={'y' if v else 'N'}" for k, v in sorted(r.layers.items()))
            note = f" — {r.note}" if r.note else ""
            lines.append(f"  [{r.index:02d}] {r.injector:<16} {status:<8} "
                         f"{rec}{layers}{note}")
        return "\n".join(lines)


class ChaosPlan:
    """A seeded, ordered schedule of fault injections."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.schedule: List[Tuple[str, Dict]] = []

    def add(self, injector: str, **params) -> "ChaosPlan":
        if injector not in INJECTORS:
            raise ValueError(f"unknown injector {injector!r}; have "
                             f"{sorted(INJECTORS)}")
        self.schedule.append((injector, params))
        return self

    def rng_for(self, index: int) -> np.random.Generator:
        """Independent deterministic stream for fault ``index``."""
        return np.random.default_rng([self.seed, index])

    # ------------------------------------------------------------ factories
    @classmethod
    def artifact_default(cls, seed: int = 0, rounds: int = 1) -> "ChaosPlan":
        """One pass (or ``rounds``) over every artifact-fault class."""
        plan = cls(seed)
        for _ in range(rounds):
            for name in ARTIFACT_INJECTORS:
                plan.add(name)
        return plan

    @classmethod
    def server_default(cls, seed: int = 0) -> "ChaosPlan":
        """One pass over every server-fault class."""
        plan = cls(seed)
        for name in SERVER_INJECTORS:
            plan.add(name)
        return plan

    @classmethod
    def plan_default(cls, seed: int = 0, rounds: int = 1) -> "ChaosPlan":
        """One pass (or ``rounds``) over every compiled-plan fault class."""
        plan = cls(seed)
        for _ in range(rounds):
            for name in PLAN_INJECTORS:
                plan.add(name)
        return plan

    @classmethod
    def fleet_default(cls, seed: int = 0) -> "ChaosPlan":
        """One pass over every fleet-fault class."""
        plan = cls(seed)
        for name in FLEET_INJECTORS:
            plan.add(name)
        return plan

    @classmethod
    def sdc_default(cls, seed: int = 0) -> "ChaosPlan":
        """One pass over every silent-data-corruption fault class."""
        plan = cls(seed)
        for name in SDC_INJECTORS:
            plan.add(name)
        return plan

    # -------------------------------------------------------- artifact runs
    def run_artifacts(self, export_dir: str,
                      workdir: Optional[str] = None) -> ChaosReport:
        """Inject each scheduled artifact fault into a *copy* of
        ``export_dir`` and score detection across all three consumer layers
        (verify / load / registry).  ``export_dir`` itself is never touched.
        """
        report = ChaosReport(self.seed)
        own_workdir = workdir is None
        if own_workdir:
            workdir = tempfile.mkdtemp(prefix="repro-chaos-")
        try:
            for i, (name, params) in enumerate(self.schedule):
                if name not in ARTIFACT_INJECTORS:
                    raise ValueError(
                        f"run_artifacts() cannot run server injector {name!r}")
                copy = os.path.join(workdir, f"fault-{i:02d}-{name}")
                shutil.copytree(export_dir, copy)
                rec = FaultRecord(index=i, injector=name, params=dict(params))
                rec.details = ARTIFACT_INJECTORS[name](
                    copy, self.rng_for(i), **params)
                telemetry.emit("chaos_inject", injector=name, index=i,
                               target=copy, **rec.details)
                self._score_artifact_fault(rec, export_dir, copy)
                self._emit_outcome(rec)
                report.add(rec)
        finally:
            if own_workdir:
                shutil.rmtree(workdir, ignore_errors=True)
        return report

    @staticmethod
    def _score_artifact_fault(rec: FaultRecord, clean_dir: str,
                              damaged_dir: str) -> None:
        from repro.export.integrity import load_state_dict, verify_artifacts
        from repro.server.registry import ModelRegistry

        audit = verify_artifacts(damaged_dir)
        rec.layers["verify"] = not audit.ok
        try:
            load_state_dict(damaged_dir)
            rec.layers["load"] = False
        except ArtifactError:
            rec.layers["load"] = True

        registry = ModelRegistry()
        registry.register("chaos", "good", runner=lambda x: x,
                          artifacts=clean_dir)
        try:
            registry.register("chaos", "bad", runner=lambda x: x,
                              artifacts=damaged_dir, activate=True)
            rec.layers["registry"] = False
        except ArtifactError:
            rec.layers["registry"] = True
        rec.recovered = registry.active_version("chaos") == "good"
        rec.detected = all(rec.layers.values())
        if audit.findings:
            rec.note = ", ".join(sorted({f.rule for f in audit.findings}))

    # ------------------------------------------------------------ plan runs
    def run_plan(self, plan, input_shape=None, module_bits=None) -> ChaosReport:
        """Inject each scheduled plan fault into a *deep copy* of a compiled
        :class:`~repro.runtime.executor.Plan` and score whether the static
        verifier (and the registry gate built on it) refuses the mutant.
        The original plan is never touched and must still verify clean
        afterwards (the *recovered* axis)."""
        import copy as _copy

        report = ChaosReport(self.seed)
        for i, (name, params) in enumerate(self.schedule):
            if name not in PLAN_INJECTORS:
                raise ValueError(
                    f"run_plan() cannot run non-plan injector {name!r}")
            mutant = _copy.deepcopy(plan)
            mutant._bindings = {}
            mutant._verification = None
            rec = FaultRecord(index=i, injector=name, params=dict(params))
            rec.details = PLAN_INJECTORS[name](mutant, self.rng_for(i),
                                               **params)
            telemetry.emit("chaos_inject", injector=name, index=i,
                           model=plan.model_name, **rec.details)
            self._score_plan_fault(rec, plan, mutant, input_shape, module_bits)
            self._emit_outcome(rec)
            report.add(rec)
        return report

    @staticmethod
    def _score_plan_fault(rec: FaultRecord, clean, mutant,
                          input_shape, module_bits) -> None:
        from repro.lint.plan import PlanVerificationError
        from repro.server.registry import ModelRegistry

        vreport = mutant.verify(input_shape=input_shape,
                                module_bits=module_bits, refresh=True)
        rec.layers["verifier"] = not vreport.ok

        registry = ModelRegistry()
        registry.register("chaos", "good", runner=_PlanRunner(clean))
        try:
            registry.register("chaos", "bad", runner=_PlanRunner(mutant),
                              activate=True)
            rec.layers["registry"] = False
        except PlanVerificationError:
            rec.layers["registry"] = True
        rec.recovered = (registry.active_version("chaos") == "good"
                         and clean.verify(refresh=True).ok)
        rec.detected = all(rec.layers.values())
        if vreport.findings:
            rec.note = ", ".join(sorted({f.rule for f in vreport.findings
                                         if f.severity == "ERROR"}))

    # ---------------------------------------------------------- server runs
    def run_server(self, server, model: str, sample,
                   probe_deadline_s: float = 2.0) -> ChaosReport:
        """Inject each scheduled server fault into a *running* gateway and
        score whether its degradation contract held."""
        report = ChaosReport(self.seed)
        # warm the lane: injectors target live workers / the EWMA estimate
        resp = server.submit(model, sample,
                             deadline_s=probe_deadline_s).result(
                                 timeout=_PROBE_TIMEOUT_S)
        if not resp.ok:
            raise RuntimeError(f"chaos warm-up probe failed: {resp}")
        for i, (name, params) in enumerate(self.schedule):
            if name not in SERVER_INJECTORS:
                raise ValueError(
                    f"run_server() cannot run artifact injector {name!r}")
            rec = FaultRecord(index=i, injector=name, params=dict(params))
            lane = server._lanes.get(model)
            deaths_before = lane.stats.worker_deaths if lane else 0
            details = SERVER_INJECTORS[name](server, model,
                                             self.rng_for(i), **params)
            undo = details.pop("undo", None)
            rec.details = details
            telemetry.emit("chaos_inject", injector=name, index=i,
                           model=model, **details)
            try:
                if name == "kill_worker":
                    self._score_kill(rec, server, model, sample,
                                     probe_deadline_s, deaths_before)
                elif name == "stall_worker":
                    self._score_stall(rec, server, model, sample,
                                      details.get("stall_s", 0.3))
                elif name == "delay_clock":
                    self._score_delay(rec, server, model, sample,
                                      details.get("skew_s", 0.5))
            finally:
                if undo is not None:
                    undo()
            if not rec.recovered:
                rec.recovered = self._probe_ok(server, model, sample,
                                               probe_deadline_s)
            self._emit_outcome(rec)
            report.add(rec)
        return report

    @staticmethod
    def _emit_outcome(rec: FaultRecord) -> None:
        if rec.detected:
            telemetry.emit("chaos_detected", injector=rec.injector,
                           index=rec.index, recovered=rec.recovered,
                           layers=rec.layers)
        else:
            telemetry.emit("chaos_missed", level="error",
                           injector=rec.injector, index=rec.index,
                           recovered=rec.recovered, layers=rec.layers)

    @staticmethod
    def _probe_ok(server, model: str, sample,
                  deadline_s: float = 2.0) -> bool:
        try:
            resp = server.submit(model, sample, deadline_s=deadline_s).result(
                timeout=_PROBE_TIMEOUT_S)
        except TimeoutError:
            return False
        return bool(resp.ok)

    def _score_kill(self, rec: FaultRecord, server, model: str, sample,
                    probe_deadline_s: float, deaths_before: int) -> None:
        """Detected = the lane's supervisor counted the death (WorkerDied,
        never a hang); recovered = a probe request is served afterwards."""
        lane = server._lanes[model]
        deadline = time.monotonic() + _PROBE_TIMEOUT_S
        probe_ok = False
        while time.monotonic() < deadline:
            # drive traffic so the lane polls its pool and trips WorkerDied
            probe_ok = self._probe_ok(server, model, sample, probe_deadline_s)
            if lane.stats.worker_deaths > deaths_before:
                rec.detected = True
                break
            time.sleep(0.02)
        rec.layers["supervisor"] = rec.detected
        # a detected death must also leave a post-mortem: the lane's flight
        # recorder auto-dumps on worker_death (chaos kills become forensics,
        # not bare counters)
        last = lane.flight.last_dump
        rec.layers["flight_recorder"] = bool(
            last is not None and last.get("reason") == "worker_death")
        rec.detected = rec.detected and rec.layers["flight_recorder"]
        rec.recovered = rec.detected and (
            probe_ok or self._probe_ok(server, model, sample,
                                       probe_deadline_s))
        rec.note = (f"worker_deaths {deaths_before} -> "
                    f"{lane.stats.worker_deaths}")

    def _score_stall(self, rec: FaultRecord, server, model: str, sample,
                     stall_s: float) -> None:
        """Detected = the gateway stays live through the stall: a request
        submitted while one worker is frozen still resolves to a typed
        response (served by a peer worker, or after SIGCONT) instead of
        hanging past the stall window."""
        t0 = time.monotonic()
        try:
            resp = server.submit(model, sample,
                                 deadline_s=stall_s + 5.0).result(
                                     timeout=stall_s + _PROBE_TIMEOUT_S)
        except TimeoutError:
            rec.layers["liveness"] = False
            rec.note = "request hung through the stall"
            return
        rec.layers["liveness"] = True
        rec.detected = True
        rec.recovered = bool(resp.ok)
        rec.note = f"resolved {type(resp).__name__} in " \
                   f"{time.monotonic() - t0:.3f}s (stall {stall_s}s)"

    def _score_delay(self, rec: FaultRecord, server, model: str, sample,
                     skew_s: float) -> None:
        """Detected = admission control sheds (typed Overloaded) a request
        whose deadline the skewed service-clock projection cannot meet."""
        from repro.server.types import Overloaded

        resp = server.submit(model, sample,
                             deadline_s=skew_s / 4).result(
                                 timeout=_PROBE_TIMEOUT_S)
        rec.layers["admission"] = isinstance(resp, Overloaded)
        rec.detected = rec.layers["admission"]
        rec.note = (f"short-deadline probe -> {type(resp).__name__}"
                    + (f" ({resp.reason})" if isinstance(resp, Overloaded)
                       else ""))

    # ----------------------------------------------------------- fleet runs
    def run_fleet(self, fleet, model: str, sample,
                  probe_deadline_s: float = 2.0) -> ChaosReport:
        """Inject each scheduled fleet fault into a *running*
        :class:`~repro.fleet.Fleet` and score the fleet contract.

        For each fault a burst of requests is put in flight *before* the
        injection so the victim actually holds work when it dies or
        partitions — detection requires the router to eject it and every
        straddling request to reroute (zero lost); recovery means the
        group returns to its target replica count (kill) or the healed
        replica rejoins the ring (partition).
        """
        report = ChaosReport(self.seed)
        resp = fleet.submit(model, sample,
                            deadline_s=probe_deadline_s).result(
                                timeout=_PROBE_TIMEOUT_S)
        if not resp.ok:
            raise RuntimeError(f"chaos warm-up probe failed: {resp}")
        for i, (name, params) in enumerate(self.schedule):
            if name not in FLEET_INJECTORS:
                raise ValueError(
                    f"run_fleet() cannot run non-fleet injector {name!r}")
            rec = FaultRecord(index=i, injector=name, params=dict(params))
            lost_before = fleet.requests_lost
            target = fleet.status()["models"][model]["target_replicas"]
            burst = [fleet.submit(model, sample,
                                  deadline_s=probe_deadline_s)
                     for _ in range(16)]
            details = FLEET_INJECTORS[name](fleet, model,
                                            self.rng_for(i), **params)
            undo = details.pop("undo", None)
            rec.details = details
            telemetry.emit("chaos_inject", injector=name, index=i,
                           model=model, **details)
            try:
                if name == "kill_replica":
                    self._score_replica_kill(rec, fleet, model, sample,
                                             probe_deadline_s, burst,
                                             lost_before, target)
                elif name == "partition_replica":
                    self._score_replica_partition(rec, fleet, model, sample,
                                                  probe_deadline_s, burst,
                                                  lost_before, target)
            finally:
                if undo is not None:
                    undo()
            self._emit_outcome(rec)
            report.add(rec)
        return report

    @staticmethod
    def _fleet_members(fleet, model: str):
        from repro.fleet.router import ROLE_CANARY, ROLE_STABLE

        return (fleet.router.members(model, ROLE_STABLE)
                | fleet.router.members(model, ROLE_CANARY))

    def _await_ejection(self, fleet, model: str, victim: str) -> bool:
        """Poll (driving health ticks) until the victim leaves every ring —
        within one health interval, plus scheduling slack."""
        deadline = time.monotonic() + fleet.config.health_interval_s + 1.0
        while time.monotonic() < deadline:
            fleet.health_tick()
            if victim not in self._fleet_members(fleet, model):
                return True
            time.sleep(0.02)
        return victim not in self._fleet_members(fleet, model)

    def _score_replica_kill(self, rec: FaultRecord, fleet, model: str,
                            sample, probe_deadline_s: float, burst,
                            lost_before: int, target: int) -> None:
        """Detected = router ejection within one health interval + every
        straddling request rerouted (zero lost); recovered = the group
        self-heals back to its target replica count."""
        victim = rec.details["replica"]
        resolved = [p.result(timeout=_PROBE_TIMEOUT_S) for p in burst]
        rec.layers["requeued"] = (all(r.ok for r in resolved)
                                  and fleet.requests_lost == lost_before)
        rec.layers["ejected"] = self._await_ejection(fleet, model, victim)
        rec.layers["rerouted"] = self._probe_ok(fleet, model, sample,
                                                probe_deadline_s)
        rec.detected = all(rec.layers.values())
        deadline = time.monotonic() + _PROBE_TIMEOUT_S
        while time.monotonic() < deadline:
            fleet.health_tick()
            healthy = [r for r in fleet.replicas(model) if r.healthy()]
            if len(healthy) >= target and victim not in {
                    r.replica_id for r in healthy}:
                rec.recovered = True
                break
            time.sleep(0.02)
        rec.note = (f"killed {victim} with "
                    f"{rec.details.get('pending_at_kill', 0)} pending; "
                    f"{len([r for r in resolved if r.ok])}/{len(resolved)} "
                    f"straddling requests ok, "
                    f"lost {fleet.requests_lost - lost_before}")

    def _score_replica_partition(self, rec: FaultRecord, fleet, model: str,
                                 sample, probe_deadline_s: float, burst,
                                 lost_before: int, target: int) -> None:
        """Detected = ejection + reroute (as for a kill) *without* spawning
        a replacement — the replica is alive behind the partition;
        recovered = the healed replica rejoins the ring."""
        from repro.fleet.replica import PARTITIONED, READY, STARTING

        victim = rec.details["replica"]
        resolved = [p.result(timeout=_PROBE_TIMEOUT_S) for p in burst]
        rec.layers["requeued"] = (all(r.ok for r in resolved)
                                  and fleet.requests_lost == lost_before)
        rec.layers["ejected"] = self._await_ejection(fleet, model, victim)
        rec.layers["rerouted"] = self._probe_ok(fleet, model, sample,
                                                probe_deadline_s)
        live = [r for r in fleet.replicas(model)
                if r.state in (STARTING, READY, PARTITIONED)]
        rec.layers["not_replaced"] = len(live) <= target
        rec.detected = all(rec.layers.values())
        deadline = (time.monotonic() + rec.details.get("heal_s", 0.5)
                    + _PROBE_TIMEOUT_S)
        while time.monotonic() < deadline:
            fleet.health_tick()
            if victim in self._fleet_members(fleet, model):
                rec.recovered = True
                break
            time.sleep(0.02)
        rec.note = (f"partitioned {victim} for "
                    f"{rec.details.get('heal_s', 0.5)}s; rejoined="
                    f"{rec.recovered}, lost "
                    f"{fleet.requests_lost - lost_before}")

    # --------------------------------------------------------------- SDC runs
    def run_sdc(self, fleet, model: str, sample,
                probe_deadline_s: float = 2.0) -> ChaosReport:
        """Inject each scheduled live-corruption fault into one replica of a
        running :class:`~repro.fleet.Fleet` and score the SDC contract.

        * **detected** — a typed SDC event landed on the victim (ABFT,
          scrubber or golden probe — which one is in the note), the fleet
          quarantined it (``QUARANTINED`` tombstone, ejected from every
          ring) and no request was lost;
        * **recovered** — a clean replacement spawned (the group is back at
          target healthy replicas, victim excluded) and a post-fault probe
          returns :class:`~repro.server.types.Ok`.

        The fleet must actually run a defense layer
        (``FleetConfig.golden_every`` / ``scrub_every``, or per-server
        ``ServerConfig.abft_every`` / ``scrub_interval_s``) — with the
        defenses off every fault here is a guaranteed, and intended, miss.
        Requests served between the corruption and its detection may carry
        wrong values: SDC detection is sampled/periodic by design, and the
        scorecard measures time-bounded detection, not per-request
        correctness.
        """
        report = ChaosReport(self.seed)
        # warm every lane: arena faults need live bindings to target
        warm = [fleet.submit(model, sample, deadline_s=probe_deadline_s)
                for _ in range(8)]
        for p in warm:
            resp = p.result(timeout=_PROBE_TIMEOUT_S)
            if not resp.ok:
                raise RuntimeError(f"chaos warm-up probe failed: {resp}")
        for i, (name, params) in enumerate(self.schedule):
            if name not in SDC_INJECTORS:
                raise ValueError(
                    f"run_sdc() cannot run non-SDC injector {name!r}")
            rec = FaultRecord(index=i, injector=name, params=dict(params))
            lost_before = fleet.requests_lost
            target = fleet.status()["models"][model]["target_replicas"]
            rec.details = SDC_INJECTORS[name](fleet, model,
                                              self.rng_for(i), **params)
            telemetry.emit("chaos_inject", injector=name, index=i,
                           model=model, **rec.details)
            # straddling burst: some of these resolve around the quarantine
            # abort and must requeue on healthy peers, never be lost
            burst = [fleet.submit(model, sample,
                                  deadline_s=probe_deadline_s)
                     for _ in range(16)]
            self._score_sdc(rec, fleet, model, sample, probe_deadline_s,
                            burst, lost_before, target)
            self._emit_outcome(rec)
            report.add(rec)
        return report

    def _score_sdc(self, rec: FaultRecord, fleet, model: str, sample,
                   probe_deadline_s: float, burst, lost_before: int,
                   target: int) -> None:
        from repro.fleet.replica import QUARANTINED

        victim_id = rec.details["replica"]
        victim = next(r for r in fleet.replicas(model)
                      if r.replica_id == victim_id)
        deadline = time.monotonic() + _PROBE_TIMEOUT_S
        while time.monotonic() < deadline:
            fleet.health_tick()
            if victim.state == QUARANTINED:
                break
            time.sleep(0.02)
        resolved = [p.result(timeout=_PROBE_TIMEOUT_S) for p in burst]
        rec.layers["flagged"] = bool(victim.server.sdc_events)
        rec.layers["quarantined"] = (
            victim.state == QUARANTINED
            and victim_id not in self._fleet_members(fleet, model))
        rec.layers["no_loss"] = (all(r.ok for r in resolved)
                                 and fleet.requests_lost == lost_before)
        rec.detected = all(rec.layers.values())
        deadline = time.monotonic() + _PROBE_TIMEOUT_S
        while time.monotonic() < deadline:
            fleet.health_tick()
            healthy = [r for r in fleet.replicas(model) if r.healthy()]
            if (len(healthy) >= target
                    and victim_id not in {r.replica_id for r in healthy}
                    and self._probe_ok(fleet, model, sample,
                                       probe_deadline_s)):
                rec.recovered = True
                break
            time.sleep(0.02)
        events = victim.server.sdc_events
        source = events[0]["source"] if events else None
        rec.note = (f"{victim_id} flagged by "
                    f"{source if source else 'nothing'} "
                    f"({len(events)} event(s)); "
                    f"{len([r for r in resolved if r.ok])}/{len(resolved)} "
                    f"straddling requests ok, lost "
                    f"{fleet.requests_lost - lost_before}")
