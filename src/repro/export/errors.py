"""Typed failure hierarchy for the artifact lifecycle.

Every way a deploy artifact can be bad gets its own exception class so that
callers (``load_qint``, ``verify_artifacts``, ``ModelRegistry``, the CLI)
can reject corrupted tensors with a precise, catchable error instead of a
numpy reshape traceback.  Each class carries the stable ``integrity.*`` rule
id its finding is reported under, so exceptions and
:class:`~repro.lint.findings.Finding` rows stay in one vocabulary.
"""
from __future__ import annotations

from typing import Optional


class ArtifactError(Exception):
    """Base class: a deploy artifact failed verification.

    ``path`` names the offending file or directory when known.
    """

    rule = "integrity.invalid"

    def __init__(self, message: str, *, path: Optional[str] = None):
        super().__init__(message)
        self.path = path

    def __str__(self) -> str:
        base = super().__str__()
        return f"{base} [{self.path}]" if self.path else base


class TruncatedArtifact(ArtifactError):
    """A payload, header or manifest file is missing or shorter than its
    metadata says it must be (classic crash-mid-write signature)."""

    rule = "integrity.truncated"


class ChecksumMismatch(ArtifactError):
    """A file's bytes no longer hash to the digest recorded at export time
    (bit rot, tampering, or a concurrent writer)."""

    rule = "integrity.checksum-mismatch"


class HeaderMismatch(ArtifactError):
    """A header's declared shape/dtype/bit-width disagrees with the payload
    (element count, container dtype, or values outside the declared range)."""

    rule = "integrity.header-mismatch"


class StaleManifest(ArtifactError):
    """The manifest is unreadable, from an unknown schema, or its recorded
    digest no longer matches its content — it cannot vouch for anything."""

    rule = "integrity.stale-manifest"


#: rule id -> exception class, for turning findings back into typed raises
ERRORS_BY_RULE = {
    cls.rule: cls
    for cls in (TruncatedArtifact, ChecksumMismatch, HeaderMismatch,
                StaleManifest, ArtifactError)
}
#: rules with no 1:1 class map onto the closest parent
ERRORS_BY_RULE.setdefault("integrity.missing-file", TruncatedArtifact)
ERRORS_BY_RULE.setdefault("integrity.format-divergence", ChecksumMismatch)


def error_for_rule(rule: str) -> type:
    """The exception class a failed ``integrity.*`` rule raises as."""
    return ERRORS_BY_RULE.get(rule, ArtifactError)
