"""Raw integer tensor serialization: decimal / hexadecimal / binary text.

HDL memory initialization (``$readmemh`` / ``$readmemb``) expects one
fixed-width two's-complement word per line; decimal is the human-readable
debugging format.  All functions operate on flattened tensors; the writer
records shapes in the manifest.
"""
from __future__ import annotations

import math
import os
from typing import List

import numpy as np


def bits_needed(x: np.ndarray) -> int:
    """Smallest power-of-two word width (>= 4) holding all values signed."""
    lo, hi = float(x.min()), float(x.max())
    need = 1
    for v in (lo, hi):
        if v < 0:
            need = max(need, int(math.ceil(math.log2(-v))) + 1)
        elif v > 0:
            need = max(need, int(math.ceil(math.log2(v + 1))) + 1)
    width = 4
    while width < need:
        width *= 2
    return width


def to_twos_complement(x: np.ndarray, bits: int) -> np.ndarray:
    """Map signed integers onto their unsigned two's-complement words."""
    x = np.asarray(np.round(x), dtype=np.int64)
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if x.min() < lo or x.max() > hi:
        raise ValueError(f"values out of range for {bits}-bit two's complement")
    return np.where(x < 0, x + (1 << bits), x).astype(np.uint64)


def from_twos_complement(u: np.ndarray, bits: int) -> np.ndarray:
    """Inverse of :func:`to_twos_complement`."""
    u = np.asarray(u, dtype=np.int64)
    half = 1 << (bits - 1)
    return np.where(u >= half, u - (1 << bits), u)


def format_hex(x: np.ndarray, bits: int) -> List[str]:
    """One fixed-width hex word per element (row-major order)."""
    digits = (bits + 3) // 4
    words = to_twos_complement(x.reshape(-1), bits)
    return [format(int(w), f"0{digits}x") for w in words]


def format_bin(x: np.ndarray, bits: int) -> List[str]:
    """One fixed-width binary word per element (row-major order)."""
    words = to_twos_complement(x.reshape(-1), bits)
    return [format(int(w), f"0{bits}b") for w in words]


def parse_hex(lines: List[str], bits: int) -> np.ndarray:
    return from_twos_complement(np.array([int(s, 16) for s in lines], dtype=np.int64), bits)


def parse_bin(lines: List[str], bits: int) -> np.ndarray:
    return from_twos_complement(np.array([int(s, 2) for s in lines], dtype=np.int64), bits)


def save_tensor(path: str, x: np.ndarray, fmt: str, bits: int) -> None:
    """Write a flattened integer tensor in the requested text format."""
    flat = np.asarray(np.round(x), dtype=np.int64).reshape(-1)
    if fmt == "dec":
        lines = [str(int(v)) for v in flat]
    elif fmt == "hex":
        lines = format_hex(flat, bits)
    elif fmt == "bin":
        lines = format_bin(flat, bits)
    else:
        raise ValueError(f"unknown format {fmt!r} (want dec/hex/bin)")
    with open(path, "w") as f:
        f.write("\n".join(lines))
        f.write("\n")


def load_tensor(path: str, fmt: str, bits: int, shape=None) -> np.ndarray:
    """Read a tensor written by :func:`save_tensor`."""
    with open(path) as f:
        lines = [ln.strip() for ln in f if ln.strip()]
    if fmt == "dec":
        arr = np.array([int(v) for v in lines], dtype=np.int64)
    elif fmt == "hex":
        arr = parse_hex(lines, bits)
    elif fmt == "bin":
        arr = parse_bin(lines, bits)
    else:
        raise ValueError(f"unknown format {fmt!r}")
    return arr.reshape(shape) if shape is not None else arr
