"""Memory-bank weight unrolling for RTL verification (paper §1, Fig. 5).

Prototype accelerators read weights from on-chip SRAM banks whose word layout
matches the PE array: a conv weight ``(O, C, KH, KW)`` is flattened to the
im2col GEMM matrix ``(O, C*KH*KW)`` and tiled into ``rows x cols`` PE tiles;
each tile is emitted as one bank of fixed-width two's-complement hex words
(one word per line — ``$readmemh`` order: output-stationary row-major).

``unroll_matrix`` is layout-generic (any 2-D matrix), ``unroll_conv_weight``
adds the conv flattening, and ``write_banks`` dumps one ``.hex`` file per
bank plus an index JSON.
"""
from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.export.formats import format_hex


@dataclass(frozen=True)
class PEArraySpec:
    """Geometry of the target processing-element array."""

    rows: int = 8       # output channels per tile
    cols: int = 16      # flattened input taps per tile
    word_bits: int = 8  # memory word width


def unroll_matrix(w: np.ndarray, spec: PEArraySpec) -> List[Dict]:
    """Tile a 2-D integer matrix into PE-array banks.

    Returns a list of bank dicts: ``{"row", "col", "data"}`` where ``data``
    is the zero-padded ``(rows, cols)`` tile.
    """
    if w.ndim != 2:
        raise ValueError(f"expected 2-D matrix, got shape {w.shape}")
    o, k = w.shape
    banks = []
    for bi, r0 in enumerate(range(0, o, spec.rows)):
        for bj, c0 in enumerate(range(0, k, spec.cols)):
            tile = np.zeros((spec.rows, spec.cols), dtype=np.int64)
            block = w[r0:r0 + spec.rows, c0:c0 + spec.cols]
            tile[:block.shape[0], :block.shape[1]] = block
            banks.append({"row": bi, "col": bj, "data": tile})
    return banks


def unroll_conv_weight(w: np.ndarray, spec: PEArraySpec) -> List[Dict]:
    """Flatten a conv weight to its im2col GEMM matrix and tile it."""
    if w.ndim != 4:
        raise ValueError(f"expected conv weight (O,C,KH,KW), got shape {w.shape}")
    o = w.shape[0]
    return unroll_matrix(np.asarray(np.round(w), dtype=np.int64).reshape(o, -1), spec)


def write_banks(out_dir: str, name: str, banks: List[Dict], spec: PEArraySpec) -> Dict:
    """Write one ``.hex`` file per bank + an index JSON; returns the index."""
    os.makedirs(out_dir, exist_ok=True)
    index = {"name": name, "spec": asdict(spec), "banks": []}
    for bank in banks:
        fname = f"{name}_r{bank['row']}_c{bank['col']}.hex"
        lines = format_hex(bank["data"].reshape(-1), spec.word_bits)
        with open(os.path.join(out_dir, fname), "w") as f:
            f.write("\n".join(lines) + "\n")
        index["banks"].append({"row": bank["row"], "col": bank["col"], "file": fname})
    with open(os.path.join(out_dir, f"{name}_banks.json"), "w") as f:
        json.dump(index, f, indent=2)
    return index


def reassemble(banks: List[Dict], shape: Tuple[int, int], spec: PEArraySpec) -> np.ndarray:
    """Inverse of :func:`unroll_matrix` (drops the zero padding)."""
    o, k = shape
    out = np.zeros((((o + spec.rows - 1) // spec.rows) * spec.rows,
                    ((k + spec.cols - 1) // spec.cols) * spec.cols), dtype=np.int64)
    for bank in banks:
        r0, c0 = bank["row"] * spec.rows, bank["col"] * spec.cols
        out[r0:r0 + spec.rows, c0:c0 + spec.cols] = bank["data"]
    return out[:o, :k]
