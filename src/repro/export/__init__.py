"""Deployment-format export (paper §3.4, Fig. 5).

Integer tensors from the re-packed model are written in the formats RTL
verification consumes:

* ``dec`` — plain decimal integers, one per line;
* ``hex`` — two's-complement hexadecimal words (``$readmemh``-ready);
* ``bin`` — two's-complement binary words (``$readmemb``-ready);
* ``qint`` — packed little-endian int8/int16/int32 binary with a JSON side
  file carrying the scale metadata (the ``torch.qint`` analogue).
"""
from repro.export.formats import (
    to_twos_complement,
    from_twos_complement,
    format_hex,
    format_bin,
    parse_hex,
    parse_bin,
    save_tensor,
    load_tensor,
)
from repro.export.qint import pack_qint, unpack_qint, save_qint, load_qint
from repro.export.errors import (
    ArtifactError,
    ChecksumMismatch,
    HeaderMismatch,
    StaleManifest,
    TruncatedArtifact,
)
from repro.export.integrity import (
    IntegrityReport,
    MANIFEST_SCHEMA,
    load_state_dict,
    manifest_digest,
    read_manifest,
    sha256_file,
    verify_artifacts,
)
from repro.export.writer import export_model, export_state_dict
from repro.export.report import model_size_mb, compression_report
from repro.export.unroll import PEArraySpec, unroll_matrix, unroll_conv_weight, write_banks, reassemble

__all__ = [
    "to_twos_complement", "from_twos_complement",
    "format_hex", "format_bin", "parse_hex", "parse_bin",
    "save_tensor", "load_tensor",
    "pack_qint", "unpack_qint", "save_qint", "load_qint",
    "ArtifactError", "TruncatedArtifact", "ChecksumMismatch",
    "HeaderMismatch", "StaleManifest",
    "IntegrityReport", "MANIFEST_SCHEMA", "verify_artifacts",
    "load_state_dict", "read_manifest", "manifest_digest", "sha256_file",
    "export_model", "export_state_dict",
    "model_size_mb", "compression_report",
    "PEArraySpec", "unroll_matrix", "unroll_conv_weight", "write_banks", "reassemble",
]
