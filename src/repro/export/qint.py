"""Packed integer container: the ``torch.qint8`` analogue.

Integer tensors are stored as little-endian ``int8``/``int16``/``int32``
payloads with a JSON header carrying shape, dtype and scale metadata; a model
is a single ``.qint.npz``-style directory with one payload per tensor.

The load path is *hardened*: before any reshape, the header is validated
against the payload (element count, container dtype, declared bit range) and
every inconsistency raises a typed :class:`~repro.export.errors.ArtifactError`
subclass — :class:`HeaderMismatch` for metadata that disagrees with the
bytes, :class:`TruncatedArtifact` for missing/short files,
:class:`ChecksumMismatch` when an expected digest is supplied — never a
bare numpy ``ValueError`` from a blind reshape.
"""
from __future__ import annotations

import hashlib
import json
import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.export.errors import (ChecksumMismatch, HeaderMismatch,
                                 TruncatedArtifact)

_DTYPES = {8: np.int8, 16: np.int16, 32: np.int32}


def _dtype_for(bits: int):
    for b in sorted(_DTYPES):
        if bits <= b:
            return _DTYPES[b], b
    raise ValueError(f"no integer container for {bits} bits")


def pack_qint(x: np.ndarray, bits: int, scale: float = 1.0) -> Tuple[bytes, Dict]:
    """Pack an integer-valued array into raw bytes + metadata header."""
    dtype, stored_bits = _dtype_for(bits)
    vals = np.asarray(np.round(x), dtype=np.int64)
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if vals.min() < lo or vals.max() > hi:
        raise ValueError(f"values exceed declared {bits}-bit range")
    payload = vals.astype(dtype).tobytes()
    header = {
        "shape": list(x.shape),
        "bits": bits,
        "stored_bits": stored_bits,
        "scale": float(scale),
        "byteorder": "little",
    }
    return payload, header


def validate_header(header: Dict, payload_len: Optional[int] = None) -> Tuple:
    """Check a qint header for internal consistency (and, when given, against
    the payload length).  Returns ``(shape, bits, stored_bits, dtype)``;
    raises :class:`HeaderMismatch` / :class:`TruncatedArtifact`.
    """
    try:
        shape = tuple(int(s) for s in header["shape"])
        bits = int(header["bits"])
        stored_bits = int(header["stored_bits"])
    except (KeyError, TypeError, ValueError) as exc:
        raise HeaderMismatch(f"qint header missing or non-numeric field: {exc}")
    if any(s < 0 for s in shape):
        raise HeaderMismatch(f"qint header declares negative dimension in "
                             f"shape {list(shape)}")
    if stored_bits not in _DTYPES:
        raise HeaderMismatch(f"qint header declares unknown container width "
                             f"{stored_bits} (want one of {sorted(_DTYPES)})")
    if not 2 <= bits <= stored_bits:
        raise HeaderMismatch(f"declared {bits}-bit values do not fit the "
                             f"{stored_bits}-bit container")
    if header.get("byteorder", "little") != "little":
        raise HeaderMismatch(f"unsupported byteorder "
                             f"{header.get('byteorder')!r}")
    dtype = _DTYPES[stored_bits]
    if payload_len is not None:
        expected = int(math.prod(shape)) * np.dtype(dtype).itemsize
        if payload_len < expected:
            raise TruncatedArtifact(
                f"qint payload holds {payload_len} bytes but the header "
                f"shape {list(shape)} needs {expected}")
        if payload_len > expected:
            raise HeaderMismatch(
                f"qint payload holds {payload_len} bytes, more than the "
                f"{expected} its header shape {list(shape)} declares")
    return shape, bits, stored_bits, dtype


def unpack_qint(payload: bytes, header: Dict) -> np.ndarray:
    """Decode a payload; validates the header before touching numpy."""
    shape, bits, _, dtype = validate_header(header, payload_len=len(payload))
    arr = np.frombuffer(payload, dtype=dtype).astype(np.int64)
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if arr.size and (int(arr.min()) < lo or int(arr.max()) > hi):
        raise HeaderMismatch(
            f"payload values span [{int(arr.min())}, {int(arr.max())}], "
            f"outside the declared {bits}-bit range [{lo}, {hi}]")
    return arr.reshape(shape)


def save_qint(path: str, x: np.ndarray, bits: int, scale: float = 1.0) -> None:
    """Write ``<path>.bin`` + ``<path>.json``."""
    payload, header = pack_qint(x, bits, scale)
    with open(path + ".bin", "wb") as f:
        f.write(payload)
    with open(path + ".json", "w") as f:
        json.dump(header, f, indent=2)


def load_qint(path: str,
              payload_sha256: Optional[str] = None) -> Tuple[np.ndarray, Dict]:
    """Load and validate ``<path>.bin`` + ``<path>.json``.

    ``payload_sha256`` (when given, e.g. from a manifest) is checked against
    the payload bytes before decoding; every failure mode raises a typed
    :class:`~repro.export.errors.ArtifactError` subclass.
    """
    try:
        with open(path + ".json") as f:
            raw = f.read()
    except FileNotFoundError:
        raise TruncatedArtifact("qint header file missing",
                                path=path + ".json")
    try:
        header = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise HeaderMismatch(f"qint header is not valid JSON: {exc}",
                             path=path + ".json")
    if not isinstance(header, dict):
        raise HeaderMismatch("qint header is not a JSON object",
                             path=path + ".json")
    try:
        with open(path + ".bin", "rb") as f:
            payload = f.read()
    except FileNotFoundError:
        raise TruncatedArtifact("qint payload file missing",
                                path=path + ".bin")
    if payload_sha256 is not None:
        got = hashlib.sha256(payload).hexdigest()
        if got != payload_sha256:
            raise ChecksumMismatch(
                f"qint payload hashes to {got[:12]}…, manifest records "
                f"{payload_sha256[:12]}…", path=path + ".bin")
    try:
        return unpack_qint(payload, header), header
    except (HeaderMismatch, TruncatedArtifact) as exc:
        if exc.path is None:
            exc.path = path + ".bin"
        raise


def dequantize(x: np.ndarray, header: Dict) -> np.ndarray:
    """Recover float values from a qint payload via its scale metadata."""
    return (x * header["scale"]).astype(np.float32)
