"""Packed integer container: the ``torch.qint8`` analogue.

Integer tensors are stored as little-endian ``int8``/``int16``/``int32``
payloads with a JSON header carrying shape, dtype and scale metadata; a model
is a single ``.qint.npz``-style directory with one payload per tensor.
"""
from __future__ import annotations

import json
from typing import Dict, Tuple

import numpy as np

_DTYPES = {8: np.int8, 16: np.int16, 32: np.int32}


def _dtype_for(bits: int):
    for b in sorted(_DTYPES):
        if bits <= b:
            return _DTYPES[b], b
    raise ValueError(f"no integer container for {bits} bits")


def pack_qint(x: np.ndarray, bits: int, scale: float = 1.0) -> Tuple[bytes, Dict]:
    """Pack an integer-valued array into raw bytes + metadata header."""
    dtype, stored_bits = _dtype_for(bits)
    vals = np.asarray(np.round(x), dtype=np.int64)
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if vals.min() < lo or vals.max() > hi:
        raise ValueError(f"values exceed declared {bits}-bit range")
    payload = vals.astype(dtype).tobytes()
    header = {
        "shape": list(x.shape),
        "bits": bits,
        "stored_bits": stored_bits,
        "scale": float(scale),
        "byteorder": "little",
    }
    return payload, header


def unpack_qint(payload: bytes, header: Dict) -> np.ndarray:
    dtype = _DTYPES[header["stored_bits"]]
    arr = np.frombuffer(payload, dtype=dtype).astype(np.int64)
    return arr.reshape(header["shape"])


def save_qint(path: str, x: np.ndarray, bits: int, scale: float = 1.0) -> None:
    """Write ``<path>.bin`` + ``<path>.json``."""
    payload, header = pack_qint(x, bits, scale)
    with open(path + ".bin", "wb") as f:
        f.write(payload)
    with open(path + ".json", "w") as f:
        json.dump(header, f, indent=2)


def load_qint(path: str) -> Tuple[np.ndarray, Dict]:
    with open(path + ".json") as f:
        header = json.load(f)
    with open(path + ".bin", "rb") as f:
        payload = f.read()
    return unpack_qint(payload, header), header


def dequantize(x: np.ndarray, header: Dict) -> np.ndarray:
    """Recover float values from a qint payload via its scale metadata."""
    return (x * header["scale"]).astype(np.float32)
