"""Model-size and compression accounting (Table 2's "Model Size (MB)")."""
from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.nn.module import Module


def model_size_mb(model: Module, weight_bits: Optional[int] = None) -> float:
    """Storage of all parameters at the given precision (default float32).

    For a re-packed integer model pass the weight precision (the paper counts
    ``#params * wbit / 8`` bytes, e.g. ResNet-18 at 4-bit -> 5.59 MB).
    """
    n = sum(p.size for _, p in model.named_parameters())
    bits = weight_bits or 32
    return n * bits / 8 / 1e6


def compression_report(float_model: Module, wbit: int, abit: int,
                       extra_int16_params: int = 0) -> Dict:
    """Summary of the compression a deployment achieves.

    ``extra_int16_params`` counts MulQuant scale/bias words introduced by
    fusion (stored at INT16).
    """
    n = sum(p.size for _, p in float_model.named_parameters())
    fp_mb = n * 4 / 1e6
    int_mb = n * wbit / 8 / 1e6 + extra_int16_params * 2 / 1e6
    return {
        "num_params": int(n),
        "fp32_mb": fp_mb,
        "int_mb": int_mb,
        "ratio": fp_mb / int_mb if int_mb else float("inf"),
        "wbit": wbit,
        "abit": abit,
    }


def deployment_report(float_model: Module, wbit: int, abit: int,
                      lint_findings: Optional[Iterable] = None,
                      extra_int16_params: int = 0) -> Dict:
    """Compression report with the static-verification outcome embedded.

    ``lint_findings`` is an iterable of :class:`repro.lint.Finding` (e.g.
    ``LintReport.findings``); the summary and the per-finding records land
    under ``"lint"``, so one JSON document answers both "how small is it"
    and "is it provably safe to deploy".
    """
    from repro.lint.findings import findings_summary, findings_to_json, has_errors

    report = compression_report(float_model, wbit, abit,
                                extra_int16_params=extra_int16_params)
    findings = list(lint_findings) if lint_findings is not None else []
    report["lint"] = {
        "ok": not has_errors(findings),
        "summary": findings_summary(findings),
        "findings": findings_to_json(findings),
    }
    return report
