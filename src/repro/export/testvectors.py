"""Golden test-vector generation for RTL unit verification.

A chip designer verifying one fused unit (integer conv/linear + MulQuant)
against the Python golden model needs matched stimulus/response files:
input activations, weights, and the expected output integers, all in
``$readmemh``-ready hex.  :func:`generate_unit_vectors` runs the deploy-path
golden model over random in-grid stimuli and writes the triple.
"""
from __future__ import annotations

import json
import os
from typing import Dict, Optional

import numpy as np

from repro.core.qmodels import QConvBNReLU, QLinearUnit
from repro.export.formats import format_hex
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor


def _write_hex(path: str, arr: np.ndarray, bits: int) -> None:
    with open(path, "w") as f:
        f.write("\n".join(format_hex(np.asarray(np.round(arr), dtype=np.int64).reshape(-1), bits)))
        f.write("\n")


def generate_unit_vectors(
    unit,
    input_shape,
    out_dir: str,
    name: str,
    n_vectors: int = 4,
    input_bits: int = 8,
    output_bits: int = 32,
    weight_bits: int = 8,
    seed: int = 0,
) -> Dict:
    """Run the fused unit over random integer stimuli; dump hex triples.

    ``unit`` must be a fused, deploy-mode :class:`QConvBNReLU` or
    :class:`QLinearUnit`.  ``input_shape`` excludes the batch dimension.
    Returns the manifest (also written as ``<name>_vectors.json``).
    """
    if not isinstance(unit, (QConvBNReLU, QLinearUnit)):
        raise TypeError(f"unsupported unit type {type(unit).__name__}")
    if not unit.deploy or unit.mq is None:
        raise RuntimeError("unit must be fused and in deploy mode")
    os.makedirs(out_dir, exist_ok=True)

    layer = unit.conv if isinstance(unit, QConvBNReLU) else unit.linear
    aq = layer.aq
    lo, hi = aq.qlb, aq.qub
    rng = np.random.default_rng(seed)
    x = rng.integers(lo, hi + 1, size=(n_vectors,) + tuple(input_shape)).astype(np.float32)
    with no_grad():
        y = unit(Tensor(x)).data
    # word widths sized to the actual ranges (unsigned 8-bit activation codes
    # need 16-bit two's-complement words, accumulators may need 32)
    from repro.export.formats import bits_needed

    input_bits = max(input_bits, bits_needed(np.array([lo, hi])))
    weight_bits = max(weight_bits, bits_needed(layer.wint.data))
    output_bits = max(8, bits_needed(y))

    manifest = {
        "name": name,
        "input_shape": list(input_shape),
        "n_vectors": n_vectors,
        "input_range": [lo, hi],
        "files": {
            "input": f"{name}_input.hex",
            "weight": f"{name}_weight.hex",
            "expected": f"{name}_expected.hex",
        },
        "bits": {"input": input_bits, "weight": weight_bits, "output": output_bits},
        "mulquant": {
            "scale_raw": np.asarray(unit.mq.scale.data).reshape(-1).tolist()
            if not unit.mq.float_scale else "float",
            "bias_raw": np.asarray(unit.mq.bias.data).reshape(-1).tolist()
            if not unit.mq.float_scale else "float",
            "shift": getattr(unit.mq, "shift", 0),
            "out_range": [unit.mq.out_lo, unit.mq.out_hi],
        },
    }
    _write_hex(os.path.join(out_dir, manifest["files"]["input"]), x, input_bits)
    _write_hex(os.path.join(out_dir, manifest["files"]["weight"]), layer.wint.data, weight_bits)
    _write_hex(os.path.join(out_dir, manifest["files"]["expected"]), y, output_bits)
    with open(os.path.join(out_dir, f"{name}_vectors.json"), "w") as f:
        json.dump(manifest, f, indent=2)
    return manifest


def generate_model_vectors(qmodel, sample_input: np.ndarray, out_dir: str,
                           max_units: Optional[int] = None, seed: int = 0) -> Dict:
    """Test vectors for every fused conv unit of a deploy-mode model.

    Input shapes are discovered by tracing one sample through the network.
    """
    shapes = {}
    hooks = []
    units = [(n, m) for n, m in qmodel.named_modules() if isinstance(m, QConvBNReLU)]
    if max_units is not None:
        units = units[:max_units]

    for uname, unit in units:
        original = unit.forward

        def hooked(x, _unit=unit, _name=uname, _orig=None):
            shapes[_name] = tuple(x.shape[1:])
            return type(_unit).forward(_unit, x)

        object.__setattr__(unit, "forward", hooked)
        hooks.append(unit)
    try:
        with no_grad():
            qmodel(Tensor(np.asarray(sample_input, dtype=np.float32)))
    finally:
        for unit in hooks:
            object.__delattr__(unit, "forward")

    index = {"units": []}
    for i, (uname, unit) in enumerate(units):
        if uname not in shapes:
            continue
        safe = uname.replace(".", "_")
        manifest = generate_unit_vectors(unit, shapes[uname], out_dir, safe, seed=seed + i)
        index["units"].append({"unit": uname, "manifest": f"{safe}_vectors.json"})
    with open(os.path.join(out_dir, "vectors_index.json"), "w") as f:
        json.dump(index, f, indent=2)
    return index
