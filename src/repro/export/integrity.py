"""Artifact integrity: checksummed manifests and the verified load path.

The export writer stamps every artifact directory with a SHA-256 digest per
file plus a digest over the manifest's own canonical content (schema v2).
This module is the *read side* of that contract:

* :func:`verify_artifacts` — audit a directory end to end (manifest schema
  and digest, per-file checksums, payload-vs-header consistency for every
  format, cross-format agreement) and report typed ``integrity.*`` findings
  through the same :class:`~repro.lint.findings.Finding` model the static
  verifier uses;
* :func:`load_state_dict` — read the tensors back, verifying first by
  default, raising a typed :class:`~repro.export.errors.ArtifactError`
  instead of silently accepting corrupted bytes;
* the digest/checksum helpers shared with the writer.

A silently corrupted or half-written artifact defeats the "bit-exact from
training to chip" hand-off, so everything downstream — ``deploy()``,
:class:`~repro.server.ModelRegistry`, ``repro.cli verify-artifacts`` —
routes through :func:`verify_artifacts` before trusting a directory.
"""
from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.export.errors import (ArtifactError, HeaderMismatch,
                                 StaleManifest, TruncatedArtifact,
                                 error_for_rule)
from repro.lint.findings import (Finding, findings_summary, findings_to_json,
                                 has_errors, make_finding, render_findings,
                                 sort_findings)

#: current manifest schema; v1 manifests (pre-checksum) fail verification
MANIFEST_SCHEMA = 2

#: order in which load_state_dict picks a source format for a tensor
_PREFERRED_FORMATS = ("qint", "dec", "hex", "bin")


# --------------------------------------------------------------- primitives
def sha256_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: str, chunk: int = 1 << 20) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as f:
        while True:
            block = f.read(chunk)
            if not block:
                break
            h.update(block)
    return h.hexdigest()


def file_checksums(out_dir: str) -> Dict[str, Dict]:
    """``{filename: {"sha256": ..., "bytes": ...}}`` for every regular file
    in ``out_dir`` except the manifest itself (which carries the digest)."""
    sums: Dict[str, Dict] = {}
    for name in sorted(os.listdir(out_dir)):
        path = os.path.join(out_dir, name)
        if name == "manifest.json" or not os.path.isfile(path):
            continue
        sums[name] = {"sha256": sha256_file(path),
                      "bytes": os.path.getsize(path)}
    return sums


def manifest_digest(manifest: Dict) -> str:
    """Digest over the canonical manifest content, excluding the digest
    field itself — the writer's sign-off that the manifest is complete."""
    body = {k: v for k, v in manifest.items() if k != "digest"}
    canon = json.dumps(body, sort_keys=True, separators=(",", ":"),
                       default=str)
    return sha256_bytes(canon.encode())


# ------------------------------------------------------------------- report
@dataclass
class IntegrityReport:
    """Outcome of one :func:`verify_artifacts` audit."""

    out_dir: str
    findings: List[Finding] = field(default_factory=list)
    tensors_checked: int = 0
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not has_errors(self.findings)

    def to_json(self) -> Dict:
        return {
            "out_dir": self.out_dir,
            "ok": self.ok,
            "tensors_checked": self.tensors_checked,
            "files_checked": self.files_checked,
            "summary": findings_summary(self.findings),
            "findings": findings_to_json(self.findings),
        }

    def render(self) -> str:
        head = (f"artifact verification: {self.out_dir} — "
                f"{'OK' if self.ok else 'FAILED'} "
                f"({self.tensors_checked} tensors, "
                f"{self.files_checked} files)")
        return head + "\n" + render_findings(self.findings)

    def raise_if_failed(self) -> "IntegrityReport":
        """Raise the typed :class:`ArtifactError` for the worst finding."""
        for f in sort_findings(self.findings):
            if f.severity == "ERROR":
                raise error_for_rule(f.rule)(
                    f.message, path=os.path.join(self.out_dir, f.where)
                    if os.sep not in f.where else f.where)
        return self


# ----------------------------------------------------------------- manifest
def read_manifest(out_dir: str) -> Dict:
    """Load + structurally validate ``manifest.json``; typed raises only."""
    path = os.path.join(out_dir, "manifest.json")
    if not os.path.isdir(out_dir):
        raise TruncatedArtifact("artifact directory missing", path=out_dir)
    if not os.path.exists(path):
        raise TruncatedArtifact(
            "manifest.json missing — export incomplete or not an artifact "
            "directory", path=path)
    try:
        with open(path) as f:
            manifest = json.load(f)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StaleManifest(f"manifest.json is not valid JSON: {exc}",
                            path=path)
    if not isinstance(manifest, dict) or "tensors" not in manifest:
        raise StaleManifest("manifest.json has no tensor table", path=path)
    schema = manifest.get("schema")
    if schema != MANIFEST_SCHEMA:
        raise StaleManifest(
            f"manifest schema {schema!r} is not the checksummed schema "
            f"{MANIFEST_SCHEMA}; re-export the artifacts", path=path)
    recorded = manifest.get("digest")
    if not recorded:
        raise StaleManifest("manifest carries no digest sign-off", path=path)
    actual = manifest_digest(manifest)
    if actual != recorded:
        raise StaleManifest(
            f"manifest content hashes to {actual[:12]}… but records "
            f"{recorded[:12]}… — edited after export or torn write",
            path=path)
    return manifest


# ------------------------------------------------------------- verification
def verify_artifacts(out_dir: str, deep: bool = True) -> IntegrityReport:
    """Audit an export directory; never raises for content problems.

    Checks, in order: manifest presence/schema/digest; per-file existence,
    size and SHA-256 against the recorded checksums; (with ``deep``) every
    tensor decoded from every format — element count vs declared shape,
    values within the declared bit-width, qint header consistency — and
    cross-format agreement.  Returns an :class:`IntegrityReport` whose
    findings use stable ``integrity.*`` rule ids;
    ``report.raise_if_failed()`` converts the worst one into its typed
    :class:`~repro.export.errors.ArtifactError`.
    """
    report = IntegrityReport(out_dir=out_dir)
    try:
        manifest = read_manifest(out_dir)
    except ArtifactError as exc:
        report.findings.append(
            make_finding(exc.rule, "manifest.json", str(exc)))
        return report

    checksums = manifest.get("checksums", {})
    damaged = set()
    for fname, meta in checksums.items():
        report.files_checked += 1
        path = os.path.join(out_dir, fname)
        if not os.path.isfile(path):
            report.findings.append(make_finding(
                "integrity.missing-file", fname,
                "file listed in the manifest is missing on disk"))
            damaged.add(fname)
            continue
        size = os.path.getsize(path)
        if size != meta.get("bytes"):
            rule = ("integrity.truncated" if size < meta.get("bytes", 0)
                    else "integrity.checksum-mismatch")
            report.findings.append(make_finding(
                rule, fname,
                f"file holds {size} bytes, manifest records "
                f"{meta.get('bytes')}"))
            damaged.add(fname)
            continue
        actual = sha256_file(path)
        if actual != meta.get("sha256"):
            report.findings.append(make_finding(
                "integrity.checksum-mismatch", fname,
                f"file hashes to {actual[:12]}…, manifest records "
                f"{str(meta.get('sha256'))[:12]}…"))
            damaged.add(fname)

    listed = set(checksums) | {"manifest.json"}
    for fname in sorted(os.listdir(out_dir)):
        if fname not in listed and os.path.isfile(os.path.join(out_dir, fname)):
            report.findings.append(make_finding(
                "integrity.unlisted-file", fname,
                "file present on disk but not covered by the manifest"))

    if deep:
        for name, entry in manifest.get("tensors", {}).items():
            report.tensors_checked += 1
            report.findings.extend(
                _verify_tensor(out_dir, name, entry, damaged))
    else:
        report.tensors_checked = len(manifest.get("tensors", {}))
    report.findings = sort_findings(report.findings)
    return report


def _decode_one(out_dir: str, fmt: str, fname: str, bits: int
                ) -> Tuple[Optional[np.ndarray], Optional[Finding]]:
    """Decode one artifact file (unreshaped); returns (flat array, finding)."""
    from repro.export.formats import load_tensor
    from repro.export.qint import load_qint

    path = os.path.join(out_dir, fname)
    try:
        if fmt == "qint":
            arr, header = load_qint(path[:-len(".bin")])
            if int(header.get("bits", bits)) != bits:
                return None, make_finding(
                    "integrity.header-mismatch", fname,
                    f"qint header declares {header.get('bits')} bits, "
                    f"manifest declares {bits}")
            return arr.reshape(-1), None
        return load_tensor(path, fmt, bits), None
    except ArtifactError as exc:
        return None, make_finding(exc.rule, fname, str(exc))
    except FileNotFoundError:
        return None, make_finding("integrity.missing-file", fname,
                                  "artifact file missing on disk")
    except (ValueError, OSError) as exc:
        return None, make_finding("integrity.header-mismatch", fname,
                                  f"{fmt} artifact failed to decode: {exc}")


def _verify_tensor(out_dir: str, name: str, entry: Dict,
                   damaged: set) -> List[Finding]:
    """Semantic checks for one tensor across all of its exported formats."""
    findings: List[Finding] = []
    shape = tuple(int(s) for s in entry.get("shape", []))
    count = int(math.prod(shape)) if shape else 1
    if not entry.get("integer", False):
        fname = entry.get("files", {}).get("float")
        if fname and fname not in damaged:
            try:
                arr = np.loadtxt(os.path.join(out_dir, fname), ndmin=1)
            except (ValueError, OSError) as exc:
                findings.append(make_finding(
                    "integrity.header-mismatch", fname,
                    f"float artifact failed to parse: {exc}"))
            else:
                if arr.size != count:
                    findings.append(make_finding(
                        "integrity.header-mismatch", fname,
                        f"float artifact holds {arr.size} values, manifest "
                        f"shape {list(shape)} needs {count}"))
        return findings

    bits = int(entry.get("bits", 32))
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    decoded: Dict[str, np.ndarray] = {}
    for fmt, fname in entry.get("files", {}).items():
        if fname in damaged:
            continue        # byte-level finding already recorded
        arr, finding = _decode_one(out_dir, fmt, fname, bits)
        if finding is not None:
            findings.append(finding)
            continue
        if arr.size != count:
            findings.append(make_finding(
                "integrity.header-mismatch", fname,
                f"{fmt} artifact holds {arr.size} values, manifest shape "
                f"{list(shape)} needs {count}"))
            continue
        if arr.size and (int(arr.min()) < lo or int(arr.max()) > hi):
            findings.append(make_finding(
                "integrity.header-mismatch", fname,
                f"{fmt} values span [{int(arr.min())}, {int(arr.max())}], "
                f"outside the declared {bits}-bit range"))
            continue
        decoded[fmt] = arr
    if len(decoded) > 1:
        ref_fmt = next(iter(decoded))
        ref = decoded[ref_fmt]
        for fmt, arr in decoded.items():
            if fmt != ref_fmt and not np.array_equal(arr, ref):
                findings.append(make_finding(
                    "integrity.format-divergence", name,
                    f"{fmt} and {ref_fmt} artifacts decode to different "
                    f"values"))
    return findings


# -------------------------------------------------------------- load path
def load_state_dict(out_dir: str, verify: bool = True,
                    prefer: Sequence[str] = _PREFERRED_FORMATS
                    ) -> Dict[str, np.ndarray]:
    """Read an exported artifact directory back into ``{name: array}``.

    With ``verify`` (default), the directory is audited first and the worst
    finding raised as its typed :class:`ArtifactError` — a corrupted tensor
    can never be silently loaded.  Integer tensors come back as ``int64``
    in the first available format from ``prefer``; float tensors as
    ``float32``.
    """
    if verify:
        verify_artifacts(out_dir).raise_if_failed()
    manifest = read_manifest(out_dir)
    checksums = manifest.get("checksums", {})
    state: Dict[str, np.ndarray] = {}
    for name, entry in manifest["tensors"].items():
        shape = tuple(int(s) for s in entry["shape"])
        files = entry.get("files", {})
        if not entry.get("integer", False):
            arr = np.loadtxt(os.path.join(out_dir, files["float"]), ndmin=1)
            state[name] = arr.reshape(shape).astype(np.float32)
            continue
        fmt = next((f for f in prefer if f in files), None)
        if fmt is None:
            raise TruncatedArtifact(
                f"tensor {name!r} has no loadable format (have "
                f"{sorted(files)})", path=out_dir)
        fname = files[fmt]
        if fmt == "qint":
            from repro.export.qint import load_qint

            sha = checksums.get(fname, {}).get("sha256")
            arr, _ = load_qint(os.path.join(out_dir, fname)[:-len(".bin")],
                               payload_sha256=sha if verify else None)
        else:
            from repro.export.formats import load_tensor

            arr = load_tensor(os.path.join(out_dir, fname), fmt,
                              int(entry["bits"]))
        if arr.size != int(math.prod(shape) if shape else 1):
            raise HeaderMismatch(
                f"tensor {name!r} decodes to {arr.size} values, manifest "
                f"shape {list(shape)} needs {math.prod(shape)}",
                path=os.path.join(out_dir, fname))
        state[name] = arr.reshape(shape).astype(np.int64)
    return state
