"""Model-level export: one file per tensor + manifest (paper Fig. 5).

Every exported artifact is *validated*: the writer decodes each hex/bin/dec/
qint file straight back off disk and compares against the source tensor
(``export.roundtrip-mismatch`` on any difference), and a tensor whose values
need more bits than the ``bits_map`` declared produces an
``export.width-overflow`` WARN — plus a ``export_width_overflow`` telemetry
WARNING event and a ``widened_from`` manifest note — while the files are
widened to a safe word size.  The findings ride in the manifest under
``"lint"`` so downstream reports can embed them.

Exports are *atomic* and *checksummed* (manifest schema v2): everything is
written into a ``<out_dir>.tmp-<pid>`` staging directory, fsynced, and
published with a single ``rename`` — a crash at any point leaves either the
previous artifact set or nothing, never a partially-visible directory.  The
manifest records a SHA-256 digest per file plus a digest over its own
canonical content, which :func:`repro.export.integrity.verify_artifacts`
checks on the load side.
"""
from __future__ import annotations

import json
import os
import shutil
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.export.formats import bits_needed, load_tensor, save_tensor
from repro.export.integrity import (MANIFEST_SCHEMA, file_checksums,
                                    manifest_digest)
from repro.export.qint import load_qint, save_qint
from repro.lint.findings import Finding, findings_summary, findings_to_json, make_finding
from repro.nn.module import Module
from repro.telemetry import emit as _emit
from repro.telemetry import trace as _trace


def _fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on this fs
        pass
    finally:
        os.close(fd)


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. O_RDONLY dirs on odd platforms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def _publish(tmp_dir: str, out_dir: str) -> None:
    """Atomically move the fully-written staging dir onto ``out_dir``.

    Every file (and the staging dir itself) is fsynced first, so the rename
    is the single commit point: readers see the old artifact set, then the
    complete new one — never a mix, never a partial write.
    """
    for name in os.listdir(tmp_dir):
        _fsync_file(os.path.join(tmp_dir, name))
    _fsync_dir(tmp_dir)
    if os.path.isdir(out_dir) and not os.path.islink(out_dir):
        shutil.rmtree(out_dir)
    elif os.path.exists(out_dir) or os.path.islink(out_dir):
        os.remove(out_dir)
    os.rename(tmp_dir, out_dir)
    parent = os.path.dirname(os.path.abspath(out_dir))
    _fsync_dir(parent)


def export_state_dict(
    state: Dict[str, np.ndarray],
    out_dir: str,
    formats: Sequence[str] = ("dec",),
    bits_map: Optional[Dict[str, int]] = None,
    validate: bool = True,
    atomic: bool = True,
) -> Dict:
    """Export a dict of integer tensors; returns the manifest.

    Non-integer tensors (e.g. the input quantizer scale, float-scale-mode
    MulQuants) are recorded in the manifest and stored as decimal floats.
    With ``validate`` (default), every artifact is decoded back and compared
    to the source tensor; findings land in ``manifest["lint"]``.  With
    ``atomic`` (default), the whole directory is staged and published with a
    single rename (see :func:`_publish`); ``atomic=False`` writes in place
    for callers that manage their own staging.
    """
    out_dir = os.path.normpath(out_dir)
    work_dir = f"{out_dir}.tmp-{os.getpid()}" if atomic else out_dir
    if atomic and os.path.isdir(work_dir):   # stale staging from a past crash
        shutil.rmtree(work_dir)
    os.makedirs(work_dir, exist_ok=True)
    try:
        manifest = _write_tensors(state, work_dir, formats, bits_map, validate)
        manifest["checksums"] = file_checksums(work_dir)
        manifest["digest"] = manifest_digest(manifest)
        with open(os.path.join(work_dir, "manifest.json"), "w") as f:
            json.dump(manifest, f, indent=2)
            f.flush()
            os.fsync(f.fileno())
        if atomic:
            _publish(work_dir, out_dir)
    except BaseException:
        if atomic:
            shutil.rmtree(work_dir, ignore_errors=True)
        raise
    return manifest


def amend_manifest(out_dir: str, updates: Dict) -> Dict:
    """Merge ``updates`` into a published manifest and re-sign its digest.

    Used to embed post-export reports (e.g. the plan verification proof)
    without re-writing tensors.  The manifest is re-written atomically
    (tmp file + fsync + rename), so a crash leaves the old signed manifest.
    """
    path = os.path.join(os.path.normpath(out_dir), "manifest.json")
    with open(path) as f:
        manifest = json.load(f)
    manifest.update(updates)
    manifest["digest"] = manifest_digest(manifest)
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w") as f:
        json.dump(manifest, f, indent=2)
        f.flush()
        os.fsync(f.fileno())
    os.rename(tmp, path)
    _fsync_dir(os.path.dirname(path))
    return manifest


def _write_tensors(state: Dict[str, np.ndarray], out_dir: str,
                   formats: Sequence[str], bits_map: Optional[Dict[str, int]],
                   validate: bool) -> Dict:
    """Write every tensor's files into ``out_dir``; returns the manifest
    body (checksums/digest are stamped by the caller once all bytes exist)."""
    manifest = {"schema": MANIFEST_SCHEMA, "tensors": {},
                "formats": list(formats)}
    findings: List[Finding] = []
    for name, arr in state.items():
        arr = np.asarray(arr)
        safe = name.replace(".", "_")
        entry = {"shape": list(arr.shape), "files": {}}
        integral = bool(np.allclose(arr, np.round(arr))) and arr.size > 0
        entry["integer"] = integral
        if integral:
            declared = (bits_map or {}).get(name)
            needed = bits_needed(arr)
            bits = max(declared, needed) if declared else needed
            if declared and needed > declared:
                findings.append(make_finding(
                    "export.width-overflow", name,
                    f"values need {needed} bits but {declared} were declared; "
                    f"artifacts widened to {bits} bits"))
                entry["widened_from"] = declared
                _emit("export_width_overflow", level="warning", tensor=name,
                      declared_bits=declared, needed_bits=needed,
                      widened_to=bits)
            entry["bits"] = bits
            for fmt in formats:
                fname = f"{safe}.{fmt}"
                if fmt == "qint":
                    save_qint(os.path.join(out_dir, safe + ".qint"), arr, bits)
                    entry["files"][fmt] = safe + ".qint.bin"
                else:
                    save_tensor(os.path.join(out_dir, fname), arr, fmt, bits)
                    entry["files"][fmt] = fname
                if validate:
                    findings.extend(
                        _verify_roundtrip(out_dir, safe, name, fmt, arr, bits))
        else:
            fname = f"{safe}.float.txt"
            np.savetxt(os.path.join(out_dir, fname), arr.reshape(-1))
            entry["files"]["float"] = fname
        manifest["tensors"][name] = entry
    manifest["lint"] = {
        "summary": findings_summary(findings),
        "findings": findings_to_json(findings),
    }
    return manifest


def _verify_roundtrip(out_dir: str, safe: str, name: str, fmt: str,
                      arr: np.ndarray, bits: int) -> List[Finding]:
    """Decode one artifact back off disk and compare against the source."""
    from repro.export.errors import ArtifactError

    try:
        if fmt == "qint":
            decoded, _ = load_qint(os.path.join(out_dir, safe + ".qint"))
            decoded = decoded.reshape(arr.shape)
        else:
            decoded = load_tensor(os.path.join(out_dir, f"{safe}.{fmt}"),
                                  fmt, bits, shape=arr.shape)
    except (ValueError, OSError, ArtifactError) as exc:
        return [make_finding("export.roundtrip-mismatch", name,
                             f"{fmt} artifact failed to decode: {exc}")]
    src = np.asarray(np.round(arr), dtype=np.int64)
    if not np.array_equal(decoded, src):
        bad = int(np.count_nonzero(decoded != src))
        return [make_finding(
            "export.roundtrip-mismatch", name,
            f"{fmt} artifact decodes to {bad} differing value(s) of {src.size}")]
    return []


_UNSET = object()


def export_model(model: Module, out_dir: Optional[str] = None,
                 formats: Sequence[str] = _UNSET,
                 bits_map: Optional[Dict[str, int]] = None,
                 *, spec=None) -> Dict:
    """Export every parameter/buffer of a (re-packed) model.

    Preferred call shape is ``export_model(model, spec=DeploySpec(...))``
    (destination and formats come from ``spec.export_dir`` /
    ``spec.formats``); the legacy per-call kwargs still work but emit a
    :class:`DeprecationWarning` naming the
    :class:`~repro.core.deploy.DeploySpec` replacement field.
    """
    from repro.core.deploy import warn_deprecated_kwarg

    if spec is not None:
        if out_dir is None:
            out_dir = spec.export_dir or "t2c_out"
        if formats is _UNSET:
            formats = spec.formats
    else:
        if out_dir is None:
            raise TypeError("export_model() needs an out_dir or a spec=")
        warn_deprecated_kwarg("export_model", "out_dir", "export_dir")
        if formats is not _UNSET:
            warn_deprecated_kwarg("export_model", "formats", "formats")
    if formats is _UNSET:
        formats = ("dec",)
    with _trace("export_model", out_dir=out_dir, formats=",".join(formats)):
        state = model.state_dict()
        manifest = export_state_dict(state, out_dir, formats=formats,
                                     bits_map=bits_map)
        s = manifest["lint"]["summary"]
        _emit("export", out_dir=out_dir, formats=list(formats),
              tensors=len(manifest["tensors"]),
              lint_errors=s["errors"], lint_warnings=s["warnings"])
    return manifest
