"""Model-level export: one file per tensor + manifest (paper Fig. 5)."""
from __future__ import annotations

import json
import os
from typing import Dict, Optional, Sequence

import numpy as np

from repro.export.formats import bits_needed, save_tensor
from repro.export.qint import save_qint
from repro.nn.module import Module
from repro.telemetry import emit as _emit
from repro.telemetry import trace as _trace


def export_state_dict(
    state: Dict[str, np.ndarray],
    out_dir: str,
    formats: Sequence[str] = ("dec",),
    bits_map: Optional[Dict[str, int]] = None,
) -> Dict:
    """Export a dict of integer tensors; returns the manifest.

    Non-integer tensors (e.g. the input quantizer scale, float-scale-mode
    MulQuants) are recorded in the manifest and stored as decimal floats.
    """
    os.makedirs(out_dir, exist_ok=True)
    manifest = {"tensors": {}, "formats": list(formats)}
    for name, arr in state.items():
        arr = np.asarray(arr)
        safe = name.replace(".", "_")
        entry = {"shape": list(arr.shape), "files": {}}
        integral = bool(np.allclose(arr, np.round(arr))) and arr.size > 0
        entry["integer"] = integral
        if integral:
            bits = (bits_map or {}).get(name) or bits_needed(arr)
            entry["bits"] = bits
            for fmt in formats:
                fname = f"{safe}.{fmt}"
                if fmt == "qint":
                    save_qint(os.path.join(out_dir, safe + ".qint"), arr, bits)
                    entry["files"][fmt] = safe + ".qint.bin"
                else:
                    save_tensor(os.path.join(out_dir, fname), arr, fmt, bits)
                    entry["files"][fmt] = fname
        else:
            fname = f"{safe}.float.txt"
            np.savetxt(os.path.join(out_dir, fname), arr.reshape(-1))
            entry["files"]["float"] = fname
        manifest["tensors"][name] = entry
    with open(os.path.join(out_dir, "manifest.json"), "w") as f:
        json.dump(manifest, f, indent=2)
    return manifest


def export_model(model: Module, out_dir: str, formats: Sequence[str] = ("dec",)) -> Dict:
    """Export every parameter/buffer of a (re-packed) model."""
    with _trace("export_model", out_dir=out_dir, formats=",".join(formats)):
        state = model.state_dict()
        manifest = export_state_dict(state, out_dir, formats=formats)
        _emit("export", out_dir=out_dir, formats=list(formats),
              tensors=len(manifest["tensors"]))
    return manifest
