"""CIFAR-style ResNets (He et al., 2016).

``resnet20`` is the classic 3-stage CIFAR ResNet; ``resnet18``/``resnet50``
follow the ImageNet block layouts (BasicBlock x [2,2,2,2] and Bottleneck x
[3,4,6,3]) but with a CIFAR stem and a ``width`` knob so the CPU substrate can
train them.  At ``width=64`` the layouts match the paper's models exactly.
"""
from __future__ import annotations

from typing import List, Type, Union

from repro import nn
from repro.tensor.tensor import Tensor


class BasicBlock(nn.Module):
    """Two 3x3 convs with identity/projection shortcut."""

    expansion = 1

    def __init__(self, in_planes: int, planes: int, stride: int = 1):
        super().__init__()
        self.conv1 = nn.Conv2d(in_planes, planes, 3, stride=stride, padding=1, bias=False)
        self.bn1 = nn.BatchNorm2d(planes)
        self.relu1 = nn.ReLU()
        self.conv2 = nn.Conv2d(planes, planes, 3, stride=1, padding=1, bias=False)
        self.bn2 = nn.BatchNorm2d(planes)
        self.relu2 = nn.ReLU()
        if stride != 1 or in_planes != planes * self.expansion:
            self.downsample = nn.Sequential(
                nn.Conv2d(in_planes, planes * self.expansion, 1, stride=stride, bias=False),
                nn.BatchNorm2d(planes * self.expansion),
            )
        else:
            self.downsample = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu2(out + self.downsample(x))


class Bottleneck(nn.Module):
    """1x1 -> 3x3 -> 1x1 bottleneck block (ResNet-50 family)."""

    expansion = 4

    def __init__(self, in_planes: int, planes: int, stride: int = 1):
        super().__init__()
        self.conv1 = nn.Conv2d(in_planes, planes, 1, bias=False)
        self.bn1 = nn.BatchNorm2d(planes)
        self.relu1 = nn.ReLU()
        self.conv2 = nn.Conv2d(planes, planes, 3, stride=stride, padding=1, bias=False)
        self.bn2 = nn.BatchNorm2d(planes)
        self.relu2 = nn.ReLU()
        self.conv3 = nn.Conv2d(planes, planes * self.expansion, 1, bias=False)
        self.bn3 = nn.BatchNorm2d(planes * self.expansion)
        self.relu3 = nn.ReLU()
        if stride != 1 or in_planes != planes * self.expansion:
            self.downsample = nn.Sequential(
                nn.Conv2d(in_planes, planes * self.expansion, 1, stride=stride, bias=False),
                nn.BatchNorm2d(planes * self.expansion),
            )
        else:
            self.downsample = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.relu2(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        return self.relu3(out + self.downsample(x))


class ResNet(nn.Module):
    """Generic ResNet with CIFAR stem (3x3 conv, no max-pool)."""

    def __init__(
        self,
        block: Type[Union[BasicBlock, Bottleneck]],
        layers: List[int],
        num_classes: int = 10,
        width: int = 16,
    ):
        super().__init__()
        self.width = width
        self.in_planes = width
        self.conv1 = nn.Conv2d(3, width, 3, stride=1, padding=1, bias=False)
        self.bn1 = nn.BatchNorm2d(width)
        self.relu = nn.ReLU()
        stages = []
        planes = width
        for i, n_blocks in enumerate(layers):
            stages.append(self._make_stage(block, planes, n_blocks, stride=1 if i == 0 else 2))
            planes *= 2
        self.stages = nn.Sequential(*stages)
        self.pool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.fc = nn.Linear(self.in_planes, num_classes)

    def _make_stage(self, block, planes: int, n_blocks: int, stride: int) -> nn.Sequential:
        blocks = [block(self.in_planes, planes, stride)]
        self.in_planes = planes * block.expansion
        for _ in range(n_blocks - 1):
            blocks.append(block(self.in_planes, planes, 1))
        return nn.Sequential(*blocks)

    def features(self, x: Tensor) -> Tensor:
        """Encoder output before the classification head (used by SSL)."""
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.stages(out)
        return self.flatten(self.pool(out))

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(self.features(x))


def resnet20(num_classes: int = 10, width: int = 16) -> ResNet:
    """CIFAR ResNet-20: 3 stages x 3 BasicBlocks."""
    return ResNet(BasicBlock, [3, 3, 3], num_classes, width)


def resnet18(num_classes: int = 10, width: int = 16) -> ResNet:
    """ResNet-18 layout ([2,2,2,2] BasicBlocks) with CIFAR stem."""
    return ResNet(BasicBlock, [2, 2, 2, 2], num_classes, width)


def resnet50(num_classes: int = 10, width: int = 16) -> ResNet:
    """ResNet-50 layout ([3,4,6,3] Bottlenecks) with CIFAR stem."""
    return ResNet(Bottleneck, [3, 4, 6, 3], num_classes, width)
