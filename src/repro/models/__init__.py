"""Model zoo: ResNet, MobileNet-V1, ViT — the paper's evaluation backbones."""
from repro.models.resnet import ResNet, BasicBlock, Bottleneck, resnet20, resnet18, resnet50
from repro.models.mobilenet import MobileNetV1, mobilenet_v1
from repro.models.vit import VisionTransformer, vit_7
from repro.models.registry import MODELS, build_model

__all__ = [
    "ResNet", "BasicBlock", "Bottleneck", "resnet20", "resnet18", "resnet50",
    "MobileNetV1", "mobilenet_v1",
    "VisionTransformer", "vit_7",
    "MODELS", "build_model",
]
