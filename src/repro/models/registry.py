"""Name -> constructor registry for the model zoo."""
from __future__ import annotations

from typing import Callable, Dict

from repro.models.mobilenet import mobilenet_v1
from repro.models.resnet import resnet18, resnet20, resnet50
from repro.models.vgg import vgg8
from repro.models.vit import vit_7

MODELS: Dict[str, Callable] = {
    "resnet20": resnet20,
    "resnet18": resnet18,
    "resnet50": resnet50,
    "mobilenet-v1": mobilenet_v1,
    "vgg8": vgg8,
    "vit-7": vit_7,
}


def build_model(name: str, **kwargs):
    """Build a registered model by name.

    >>> model = build_model("resnet20", num_classes=10, width=8)
    """
    if name not in MODELS:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODELS)}")
    return MODELS[name](**kwargs)
