"""Compact VGG-style plain ConvNet.

A second CNN family (no residuals) exercising the generic chain fuser —
also the reference implementation for docs/customization.md §4.
"""
from __future__ import annotations

from typing import List, Union

from repro import nn
from repro.tensor.tensor import Tensor

#: per-stage channel counts; "M" = 2x2 max-pool
VGG8_CFG: List[Union[int, str]] = [16, 16, "M", 32, 32, "M", 64, 64, "M"]


class VGG(nn.Module):
    """Plain conv-BN-ReLU chain with max-pool downsampling."""

    def __init__(self, cfg=None, num_classes: int = 10, width_mult: float = 1.0):
        super().__init__()
        cfg = cfg or VGG8_CFG
        layers = []
        in_ch = 3
        for item in cfg:
            if item == "M":
                layers.append(nn.MaxPool2d(2))
            else:
                out_ch = max(int(item * width_mult), 4)
                layers += [nn.Conv2d(in_ch, out_ch, 3, padding=1, bias=False),
                           nn.BatchNorm2d(out_ch),
                           nn.ReLU()]
                in_ch = out_ch
        self.features = nn.Sequential(*layers)
        self.pool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.fc = nn.Linear(in_ch, num_classes)
        self.out_channels = in_ch

    def forward(self, x: Tensor) -> Tensor:
        out = self.features(x)
        return self.fc(self.flatten(self.pool(out)))


def vgg8(num_classes: int = 10, width_mult: float = 1.0) -> VGG:
    return VGG(VGG8_CFG, num_classes, width_mult)
