"""MobileNet-V1 (Howard et al., 2017): depthwise-separable convolutions.

The paper compresses MobileNet-V1 with PROFIT (QAT) and AdaRound (PTQ), and
uses it as the SSL encoder for Table 4.  ``width_mult`` scales every channel
count (paper uses 1x); the CIFAR variant keeps the stride schedule shallow so
32x32 inputs survive to the head.
"""
from __future__ import annotations

from typing import List, Tuple

from repro import nn
from repro.tensor.tensor import Tensor


def _dw_separable(in_ch: int, out_ch: int, stride: int) -> nn.Sequential:
    """Depthwise 3x3 + pointwise 1x1, each followed by BN + ReLU."""
    return nn.Sequential(
        nn.Conv2d(in_ch, in_ch, 3, stride=stride, padding=1, groups=in_ch, bias=False),
        nn.BatchNorm2d(in_ch),
        nn.ReLU(),
        nn.Conv2d(in_ch, out_ch, 1, bias=False),
        nn.BatchNorm2d(out_ch),
        nn.ReLU(),
    )


class MobileNetV1(nn.Module):
    """MobileNet-V1 with a CIFAR stem.

    ``config`` lists ``(out_channels, stride)`` for each separable block,
    scaled by ``width_mult``.
    """

    # (out_ch, stride) per depthwise-separable block; a compressed version of
    # the 13-block ImageNet layout adapted to 32x32 inputs.
    CIFAR_CONFIG: List[Tuple[int, int]] = [
        (16, 1), (32, 2), (32, 1), (64, 2), (64, 1), (128, 2), (128, 1),
    ]

    def __init__(self, num_classes: int = 10, width_mult: float = 1.0, config=None):
        super().__init__()
        cfg = config or self.CIFAR_CONFIG
        ch = max(int(8 * width_mult), 4)
        self.stem = nn.Sequential(
            nn.Conv2d(3, ch, 3, stride=1, padding=1, bias=False),
            nn.BatchNorm2d(ch),
            nn.ReLU(),
        )
        blocks = []
        for out_ch, stride in cfg:
            out_ch = max(int(out_ch * width_mult), 4)
            blocks.append(_dw_separable(ch, out_ch, stride))
            ch = out_ch
        self.blocks = nn.Sequential(*blocks)
        self.pool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.fc = nn.Linear(ch, num_classes)
        self.out_channels = ch

    def features(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        out = self.blocks(out)
        return self.flatten(self.pool(out))

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(self.features(x))


def mobilenet_v1(num_classes: int = 10, width_mult: float = 1.0) -> MobileNetV1:
    return MobileNetV1(num_classes=num_classes, width_mult=width_mult)
