"""Vision Transformer (Dosovitskiy et al., 2020).

``vit_7`` mirrors the paper's ViT-7 (7 transformer blocks) at CIFAR scale.
The block structure (LN -> MHA -> residual, LN -> MLP -> residual) and the
fused-QKV attention layout match what Torch2Chip's quantized attention swaps
in, so vanilla<->quantized conversion is weight-compatible.
"""
from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import init
from repro.nn.module import Parameter
from repro.tensor import cat
from repro.tensor.tensor import Tensor


class PatchEmbed(nn.Module):
    """Image-to-patch embedding via a strided convolution."""

    def __init__(self, image_size: int = 32, patch_size: int = 4, in_ch: int = 3, embed_dim: int = 96):
        super().__init__()
        if image_size % patch_size:
            raise ValueError("image size must divide by patch size")
        self.num_patches = (image_size // patch_size) ** 2
        self.proj = nn.Conv2d(in_ch, embed_dim, patch_size, stride=patch_size)

    def forward(self, x: Tensor) -> Tensor:
        out = self.proj(x)  # (N, D, H/ps, W/ps)
        n, d = out.shape[0], out.shape[1]
        return out.reshape(n, d, -1).transpose(0, 2, 1)  # (N, L, D)


class MLP(nn.Module):
    """Transformer feed-forward block."""

    def __init__(self, dim: int, hidden: int, drop: float = 0.0):
        super().__init__()
        self.fc1 = nn.Linear(dim, hidden)
        self.act = nn.GELU()
        self.fc2 = nn.Linear(hidden, dim)
        self.drop = nn.Dropout(drop)

    def forward(self, x: Tensor) -> Tensor:
        return self.drop(self.fc2(self.act(self.fc1(x))))


class Block(nn.Module):
    """Pre-norm transformer block."""

    def __init__(self, dim: int, heads: int, mlp_ratio: float = 2.0, drop: float = 0.0,
                 ln_running_stats: bool = False):
        super().__init__()
        self.norm1 = nn.LayerNorm(dim, running_stats=ln_running_stats)
        self.attn = nn.MultiheadAttention(dim, heads, attn_drop=drop, proj_drop=drop)
        self.norm2 = nn.LayerNorm(dim, running_stats=ln_running_stats)
        self.mlp = MLP(dim, int(dim * mlp_ratio), drop)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.norm1(x))
        return x + self.mlp(self.norm2(x))


class VisionTransformer(nn.Module):
    """ViT with learnable class token and position embeddings."""

    def __init__(
        self,
        image_size: int = 32,
        patch_size: int = 4,
        embed_dim: int = 96,
        depth: int = 7,
        heads: int = 4,
        mlp_ratio: float = 2.0,
        num_classes: int = 10,
        drop: float = 0.0,
        ln_running_stats: bool = False,
    ):
        super().__init__()
        self.patch_embed = PatchEmbed(image_size, patch_size, 3, embed_dim)
        self.cls_token = Parameter(np.zeros((1, 1, embed_dim), dtype=np.float32))
        self.pos_embed = Parameter(np.zeros((1, self.patch_embed.num_patches + 1, embed_dim), dtype=np.float32))
        init.normal_(self.pos_embed, std=0.02)
        init.normal_(self.cls_token, std=0.02)
        self.blocks = nn.Sequential(*[
            Block(embed_dim, heads, mlp_ratio, drop, ln_running_stats) for _ in range(depth)
        ])
        self.norm = nn.LayerNorm(embed_dim, running_stats=ln_running_stats)
        self.head = nn.Linear(embed_dim, num_classes)
        self.embed_dim = embed_dim

    def features(self, x: Tensor) -> Tensor:
        n = x.shape[0]
        tokens = self.patch_embed(x)  # (N, L, D)
        cls = self.cls_token.broadcast_to((n, 1, self.embed_dim))
        tokens = cat([cls, tokens], axis=1)
        tokens = tokens + self.pos_embed
        tokens = self.blocks(tokens)
        tokens = self.norm(tokens)
        return tokens[:, 0]  # class token

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.features(x))


def vit_7(num_classes: int = 10, image_size: int = 32, embed_dim: int = 96,
          heads: int = 4, ln_running_stats: bool = False) -> VisionTransformer:
    """The paper's ViT-7 (7 blocks) at CIFAR scale."""
    return VisionTransformer(image_size=image_size, embed_dim=embed_dim, depth=7,
                             heads=heads, num_classes=num_classes,
                             ln_running_stats=ln_running_stats)
