"""Structured pruners: filter-wise and block-wise sparsity (paper §2.2).

* :class:`FilterPruner` — removes entire output filters ranked by L2 norm
  (Shen et al., 2022 style granularity).  Zeroed filters survive deployment
  as all-zero rows of the integer weight tensor, which an accelerator can
  skip wholesale.
* :class:`BlockPruner` — hierarchical coarse-grain sparsity (Kadetotad et
  al., 2020): weights are pruned in contiguous ``block`` -sized groups along
  the input dimension, keeping the SRAM access pattern regular.
"""
from __future__ import annotations

import numpy as np

from repro.pruning.pruner import Pruner


class FilterPruner(Pruner):
    """Remove whole output filters by smallest L2 norm (per layer)."""

    def update_masks(self, sparsity: float, **_) -> None:
        if sparsity <= 0:
            for name in self.masks:
                self.masks[name][:] = 1.0
            return
        for name, p in self.targets:
            w = p.data.reshape(p.data.shape[0], -1)
            norms = np.linalg.norm(w, axis=1)
            k = int(sparsity * len(norms))
            mask = np.ones_like(p.data)
            if k > 0:
                drop = np.argsort(norms)[:k]
                mask[drop] = 0.0
            self.masks[name] = mask

    def filter_sparsity(self) -> float:
        """Fraction of fully-zero output filters across prunable layers."""
        zero, total = 0, 0
        for name, p in self.targets:
            m = self.masks[name].reshape(p.data.shape[0], -1)
            zero += int((m.sum(axis=1) == 0).sum())
            total += m.shape[0]
        return zero / max(total, 1)


class BlockPruner(Pruner):
    """Prune contiguous blocks of ``block`` weights along the input dim."""

    def __init__(self, model, sparsity: float, block: int = 8, **kwargs):
        super().__init__(model, sparsity, **kwargs)
        if block < 1:
            raise ValueError("block must be >= 1")
        self.block = block

    def update_masks(self, sparsity: float, **_) -> None:
        if sparsity <= 0:
            for name in self.masks:
                self.masks[name][:] = 1.0
            return
        for name, p in self.targets:
            flat = np.abs(p.data).reshape(p.data.shape[0], -1)
            o, k = flat.shape
            pad = (-k) % self.block
            if pad:
                flat = np.pad(flat, ((0, 0), (0, pad)))
            groups = flat.reshape(o, -1, self.block)
            scores = groups.sum(axis=-1)  # block saliency = L1 norm
            n_blocks = scores.size
            kth = int(sparsity * n_blocks)
            mask_blocks = np.ones_like(scores)
            if kth > 0:
                thresh = np.partition(scores.reshape(-1), kth - 1)[kth - 1]
                mask_blocks = (scores > thresh).astype(np.float32)
            mask = np.repeat(mask_blocks, self.block, axis=1)[:, :k]
            self.masks[name] = mask.reshape(p.data.shape).astype(np.float32)

    def verify_block_structure(self) -> bool:
        """Every block is fully kept or fully dropped."""
        for name, p in self.targets:
            m = self.masks[name].reshape(p.data.shape[0], -1)
            k = m.shape[1]
            pad = (-k) % self.block
            if pad:
                m = np.pad(m, ((0, 0), (0, pad)), constant_values=1.0)
            groups = m.reshape(m.shape[0], -1, self.block)
            sums = groups.sum(axis=-1)
            if not np.isin(sums, [0, self.block]).all():
                return False
        return True
