"""Element-wise magnitude pruning (Han et al., 2016)."""
from __future__ import annotations

import numpy as np

from repro.pruning.pruner import Pruner


class MagnitudePruner(Pruner):
    """Global magnitude pruning: remove the smallest-|w| weights everywhere.

    ``scope="global"`` ranks weights across all prunable tensors (a single
    threshold); ``scope="layer"`` prunes each tensor to the target sparsity
    independently.
    """

    def __init__(self, model, sparsity: float, scope: str = "global", **kwargs):
        super().__init__(model, sparsity, **kwargs)
        if scope not in ("global", "layer"):
            raise ValueError(f"unknown scope {scope!r}")
        self.scope = scope

    def update_masks(self, sparsity: float, **_) -> None:
        if sparsity <= 0:
            for name in self.masks:
                self.masks[name][:] = 1.0
            return
        if self.scope == "global":
            thresh = self._global_magnitude_threshold([p.data for _, p in self.targets], sparsity)
            for name, p in self.targets:
                self.masks[name] = (np.abs(p.data) > thresh).astype(np.float32)
        else:
            for name, p in self.targets:
                flat = np.abs(p.data).reshape(-1)
                k = int(sparsity * flat.size)
                if k <= 0:
                    self.masks[name] = np.ones_like(p.data)
                    continue
                thresh = np.partition(flat, k - 1)[k - 1]
                self.masks[name] = (np.abs(p.data) > thresh).astype(np.float32)
