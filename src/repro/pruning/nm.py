"""N:M structured fine-grained sparsity (Zhou et al., 2021).

In every group of ``m`` consecutive weights along the input dimension, only
the ``n`` largest-magnitude survive — the pattern NVIDIA sparse tensor cores
(and the paper's example custom pruner) accelerate.  2:4 gives 50% sparsity.
"""
from __future__ import annotations

import numpy as np

from repro.pruning.pruner import Pruner


class NMPruner(Pruner):
    """Keep the top-``n`` of every ``m`` consecutive weights."""

    def __init__(self, model, n: int = 2, m: int = 4, **kwargs):
        if not 0 < n <= m:
            raise ValueError(f"need 0 < n <= m, got {n}:{m}")
        super().__init__(model, sparsity=1.0 - n / m, **kwargs)
        self.n = n
        self.m = m

    def current_target(self, t: float) -> float:
        # N:M is a fixed pattern; the schedule ramps by keeping extra groups
        # dense early on (fraction of groups constrained follows the ramp).
        return super().current_target(t)

    def _nm_mask(self, w: np.ndarray, group_fraction: float, rng: np.random.Generator) -> np.ndarray:
        """Mask with the N:M pattern applied to ``group_fraction`` of groups."""
        flat = w.reshape(w.shape[0], -1)
        o, k = flat.shape
        pad = (-k) % self.m
        if pad:
            flat = np.pad(np.abs(flat), ((0, 0), (0, pad)), constant_values=np.inf)
        else:
            flat = np.abs(flat)
        groups = flat.reshape(o, -1, self.m)  # (O, G, m)
        order = np.argsort(groups, axis=-1)  # ascending |w|
        mask = np.ones_like(groups)
        drop = self.m - self.n
        np.put_along_axis(mask, order[..., :drop], 0.0, axis=-1)
        if group_fraction < 1.0:
            keep_dense = rng.random(mask.shape[:2]) >= group_fraction
            mask[keep_dense] = 1.0
        mask = mask.reshape(o, -1)[:, :k]
        return mask.reshape(w.shape).astype(np.float32)

    def update_masks(self, sparsity: float, **_) -> None:
        frac = 0.0 if self.final_sparsity == 0 else min(sparsity / self.final_sparsity, 1.0)
        rng = np.random.default_rng(0)  # deterministic ramp
        for name, p in self.targets:
            self.masks[name] = self._nm_mask(p.data, frac, rng)

    def verify_pattern(self) -> bool:
        """Check every fully-constrained group obeys the N:M budget."""
        for name, p in self.targets:
            m = self.masks[name].reshape(p.data.shape[0], -1)
            k = m.shape[1]
            pad = (-k) % self.m
            if pad:
                m = np.pad(m, ((0, 0), (0, pad)), constant_values=1.0)
            groups = m.reshape(m.shape[0], -1, self.m)
            if (groups.sum(-1) < self.n).any():
                return False
        return True
