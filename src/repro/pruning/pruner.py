"""Pruner base class: mask bookkeeping over a model's prunable weights."""
from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro import nn
from repro.nn.module import Module, Parameter


def prunable_weights(model: Module, skip_first_last: bool = True) -> List[Tuple[str, Parameter]]:
    """Collect the conv/linear weight parameters eligible for pruning.

    By convention the first conv (stem) and the classifier are kept dense
    (``skip_first_last``), matching common sparse-training practice.
    """
    convlin = [(name, m) for name, m in model.named_modules()
               if isinstance(m, (nn.Conv2d, nn.Linear)) and getattr(m, "weight", None) is not None]
    if skip_first_last and len(convlin) > 2:
        convlin = convlin[1:-1]
    return [(f"{name}.weight", m.weight) for name, m in convlin]


def cubic_schedule(t: float, final_sparsity: float, start: float = 0.0) -> float:
    """Zhu & Gupta cubic sparsity ramp: s(t) = s_f (1 - (1 - t)^3)."""
    t = min(max(t, 0.0), 1.0)
    return start + (final_sparsity - start) * (1.0 - (1.0 - t) ** 3)


class Pruner:
    """Base pruner: holds masks, applies them, reports sparsity.

    Subclasses implement :meth:`update_masks` which recomputes masks for a
    requested sparsity level.  The training loop calls :meth:`step` with the
    normalized training progress and :meth:`apply` after each optimizer step
    (so pruned weights stay zero).
    """

    def __init__(self, model: Module, sparsity: float, skip_first_last: bool = True):
        if not 0.0 <= sparsity < 1.0:
            raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
        self.model = model
        self.final_sparsity = sparsity
        self.targets = prunable_weights(model, skip_first_last)
        self.masks: Dict[str, np.ndarray] = {
            name: np.ones_like(p.data) for name, p in self.targets
        }

    # ------------------------------------------------------------- plumbing
    def apply(self) -> None:
        """Zero out pruned weights in place."""
        for name, p in self.targets:
            p.data *= self.masks[name]

    def sparsity(self) -> float:
        """Current fraction of pruned weights over all prunable tensors."""
        total = sum(m.size for m in self.masks.values())
        zeros = sum(int((m == 0).sum()) for m in self.masks.values())
        return zeros / max(total, 1)

    def current_target(self, t: float) -> float:
        """Scheduled sparsity at normalized progress ``t`` in [0, 1]."""
        return cubic_schedule(t, self.final_sparsity)

    def step(self, t: float, **kwargs) -> None:
        """Recompute masks for the scheduled sparsity, then enforce them."""
        self.update_masks(self.current_target(t), **kwargs)
        self.apply()

    # ------------------------------------------------------------ interface
    def update_masks(self, sparsity: float, **kwargs) -> None:
        raise NotImplementedError

    # -------------------------------------------------------------- helpers
    @staticmethod
    def _global_magnitude_threshold(tensors: List[np.ndarray], sparsity: float) -> float:
        """|w| threshold achieving the sparsity level across all tensors."""
        allw = np.concatenate([np.abs(t).reshape(-1) for t in tensors])
        k = int(sparsity * allw.size)
        if k <= 0:
            return -1.0
        return float(np.partition(allw, k - 1)[k - 1])
