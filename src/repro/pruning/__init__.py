"""Weight sparsification (paper §2.2, §4.3, Table 3).

Pruners operate on mask dictionaries over the prunable weights of a model and
are schedule-driven (gradual sparsification from scratch, as Table 3's
"Starting from scratch, the dense model is pruned with gradually increased
sparsity").  :class:`MagnitudePruner` is the element-wise baseline (Han et
al., 2016), :class:`NMPruner` implements N:M structured fine-grained sparsity
(Zhou et al., 2021), and :class:`GraNetPruner` adds gradient-based
neuroregeneration (Liu et al., 2021).
"""
from repro.pruning.pruner import Pruner, prunable_weights, cubic_schedule
from repro.pruning.magnitude import MagnitudePruner
from repro.pruning.nm import NMPruner
from repro.pruning.granet import GraNetPruner
from repro.pruning.structured import BlockPruner, FilterPruner

PRUNERS = {
    "magnitude": MagnitudePruner,
    "nm": NMPruner,
    "granet": GraNetPruner,
    "filter": FilterPruner,
    "block": BlockPruner,
}


def build_pruner(name: str, model, **kwargs) -> Pruner:
    """Instantiate a registered pruner by name."""
    if name not in PRUNERS:
        raise KeyError(f"unknown pruner {name!r}; known: {sorted(PRUNERS)}")
    return PRUNERS[name](model, **kwargs)


__all__ = [
    "Pruner", "prunable_weights", "cubic_schedule",
    "MagnitudePruner", "NMPruner", "GraNetPruner", "FilterPruner", "BlockPruner",
    "PRUNERS", "build_pruner",
]
