"""GraNet: gradual pruning with neuroregeneration (Liu et al., 2021).

On top of the cubic magnitude-pruning ramp, every mask update additionally
*regenerates* connections: it prunes an extra ``regrow_frac`` of the surviving
weights by magnitude and revives the same number of currently-dead weights
with the largest gradient magnitude ("boosting pruning plasticity").
"""
from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.pruning.pruner import Pruner


class GraNetPruner(Pruner):
    """Gradual magnitude pruning + gradient-based regrowth."""

    def __init__(self, model, sparsity: float, regrow_frac: float = 0.1, **kwargs):
        super().__init__(model, sparsity, **kwargs)
        self.regrow_frac = regrow_frac

    def update_masks(self, sparsity: float, grads: Optional[Dict[str, np.ndarray]] = None, **_) -> None:
        if sparsity <= 0:
            for name in self.masks:
                self.masks[name][:] = 1.0
            return
        # Phase 1: global magnitude pruning to the scheduled sparsity.
        thresh = self._global_magnitude_threshold([p.data for _, p in self.targets], sparsity)
        for name, p in self.targets:
            self.masks[name] = (np.abs(p.data) > thresh).astype(np.float32)

        # Phase 2: prune-and-regrow within each layer, gradient-guided.
        if grads is None or self.regrow_frac <= 0:
            return
        for name, p in self.targets:
            mask = self.masks[name]
            g = grads.get(name)
            if g is None:
                continue
            alive = np.flatnonzero(mask.reshape(-1))
            dead = np.flatnonzero(mask.reshape(-1) == 0)
            r = int(self.regrow_frac * alive.size)
            r = min(r, dead.size)
            if r <= 0:
                continue
            w = np.abs(p.data).reshape(-1)
            gmag = np.abs(g).reshape(-1)
            # kill the r weakest surviving weights...
            kill = alive[np.argsort(w[alive])[:r]]
            # ...and revive the r dead weights with the largest gradients.
            revive = dead[np.argsort(gmag[dead])[-r:]]
            flat = mask.reshape(-1)
            flat[kill] = 0.0
            flat[revive] = 1.0
            self.masks[name] = flat.reshape(mask.shape)

    def collect_grads(self) -> Dict[str, np.ndarray]:
        """Snapshot current gradients of the prunable weights (for regrowth)."""
        return {name: (p.grad.copy() if p.grad is not None else np.zeros_like(p.data))
                for name, p in self.targets}
