"""Request-scoped live tracing for the serving stack.

The PR-1 :class:`~repro.telemetry.tracing.Tracer` assumes one thread and one
process: spans nest through a stack and the whole tree lives in the session.
A gateway request is the opposite shape — it crosses the submitter thread,
the lane scheduler thread and (in pool mode) a forked worker process, and
thousands of requests are in flight at once.  This module provides the
distributed-tracing primitives that shape needs:

* :class:`TraceContext` — the identity minted at ``Server.submit``:
  a ``trace_id`` (the request id), the current parent ``span_id``, and a
  small ``baggage`` dict.  ``wire()`` flattens it to a picklable tuple that
  crosses the worker process boundary; the worker mints its own span ids
  under the received parent, so the finished tree is genuinely distributed.
* **span records** — flat dicts (``trace_id``/``span_id``/``parent_id``/
  ``name``/``t0``/``t1``/``proc``/``pid``/``attrs``) created *complete*
  (both timestamps known) rather than via enter/exit, because the code that
  knows a span ended (the lane scheduler) is rarely the code that opened it.
  All timestamps are ``time.perf_counter()`` — ``CLOCK_MONOTONIC`` on
  Linux, so gateway and worker clocks are directly comparable.
* :class:`TraceStore` — a bounded, thread-safe collector keyed by trace id
  with tree assembly (:func:`build_tree`), per-request Chrome trace export
  and JSONL dump/load for the ``repro.cli trace`` workflow.
"""
from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

_SPAN_IDS = itertools.count(1)


def new_span_id(prefix: str = "g") -> str:
    """Process-unique span id; workers prefix their pid (``w1234-7``)."""
    return f"{prefix}-{next(_SPAN_IDS)}"


def span_record(trace_id: int, name: str, t0: float, t1: float,
                parent_id: Optional[str] = None,
                span_id: Optional[str] = None, proc: str = "gateway",
                attrs: Optional[Dict] = None) -> Dict:
    """A completed span as a flat, JSON-able record."""
    return {
        "trace_id": int(trace_id),
        "span_id": span_id if span_id is not None else new_span_id(),
        "parent_id": parent_id,
        "name": name,
        "t0": float(t0),
        "t1": float(t1),
        "proc": proc,
        "pid": os.getpid(),
        "attrs": dict(attrs or {}),
    }


@dataclass
class TraceContext:
    """Identity of one traced request, carried on the request/batch.

    ``span_id`` is the *current parent*: spans created under this context
    become its children.  ``child()`` derives a context one level deeper.
    """

    trace_id: int
    span_id: str
    baggage: Dict = field(default_factory=dict)

    @classmethod
    def mint(cls, trace_id: int, **baggage) -> "TraceContext":
        return cls(trace_id=int(trace_id), span_id=new_span_id(),
                   baggage=dict(baggage))

    def child(self, span_id: Optional[str] = None) -> "TraceContext":
        return TraceContext(self.trace_id,
                            span_id if span_id is not None else new_span_id(),
                            dict(self.baggage))

    def wire(self) -> Tuple[int, str]:
        """The minimal picklable form that crosses the process boundary."""
        return (self.trace_id, self.span_id)

    @classmethod
    def from_wire(cls, wire: Tuple[int, str]) -> "TraceContext":
        trace_id, span_id = wire
        return cls(int(trace_id), str(span_id))


def build_tree(records: Iterable[Dict]) -> Tuple[List[Dict], List[Dict]]:
    """Assemble flat span records into ``(roots, orphans)``.

    Each node is ``{"span": record, "children": [...]}``; children are
    ordered by start time.  A record whose ``parent_id`` names no span in
    the input lands in ``orphans`` — an empty orphan list is the
    "single connected span tree" contract the serving tests assert.
    """
    records = sorted(records, key=lambda r: (r["t0"], r["span_id"]))
    nodes = {r["span_id"]: {"span": r, "children": []} for r in records}
    roots: List[Dict] = []
    orphans: List[Dict] = []
    for r in records:
        node = nodes[r["span_id"]]
        parent = r.get("parent_id")
        if parent is None:
            roots.append(node)
        elif parent in nodes:
            nodes[parent]["children"].append(node)
        else:
            orphans.append(r)
    return roots, orphans


def format_tree(roots: List[Dict]) -> str:
    """Aligned text rendering of an assembled span tree."""
    rows = []

    def rec(node, depth):
        span = node["span"]
        attrs = " ".join(f"{k}={v}" for k, v in span["attrs"].items())
        label = ("  " * depth + span["name"]
                 + (f" [{attrs}]" if attrs else "")
                 + (f" <{span['proc']}:{span['pid']}>"
                    if span["proc"] != "gateway" else ""))
        rows.append((label, f"{(span['t1'] - span['t0']) * 1e3:10.3f} ms"))
        for child in node["children"]:
            rec(child, depth + 1)

    for root in roots:
        rec(root, 0)
    if not rows:
        return "(no spans)"
    width = max(len(label) for label, _ in rows)
    return "\n".join(f"{label.ljust(width)}  {dur}" for label, dur in rows)


def to_chrome_trace(records: Iterable[Dict]) -> Dict:
    """Chrome ``trace_event`` JSON for a set of span records.

    ``pid``/``tid`` come from the records, so gateway and worker spans land
    on separate tracks in Perfetto, aligned on the shared monotonic clock.
    """
    records = list(records)
    t0 = min((r["t0"] for r in records), default=0.0)
    events = []
    for r in records:
        events.append({
            "name": r["name"],
            "ph": "X",
            "ts": round((r["t0"] - t0) * 1e6, 3),
            "dur": round((r["t1"] - r["t0"]) * 1e6, 3),
            "pid": r.get("pid", 0),
            "tid": 0 if r.get("proc") == "gateway" else 1,
            "args": {"trace_id": r["trace_id"], "span_id": r["span_id"],
                     **r["attrs"]},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


class TraceStore:
    """Bounded, thread-safe collection of span records keyed by trace id.

    Eviction is by trace insertion order (oldest whole trace first), so a
    long-running server holds the most recent ``capacity`` request trees.
    """

    def __init__(self, capacity: int = 2048):
        self.capacity = int(capacity)
        self._traces: "OrderedDict[int, List[Dict]]" = OrderedDict()
        self._lock = threading.Lock()
        self.evicted = 0

    def add(self, record: Dict) -> None:
        tid = record["trace_id"]
        with self._lock:
            spans = self._traces.get(tid)
            if spans is None:
                while len(self._traces) >= self.capacity:
                    self._traces.popitem(last=False)
                    self.evicted += 1
                spans = self._traces[tid] = []
            spans.append(record)

    def add_many(self, records: Iterable[Dict]) -> None:
        for r in records:
            self.add(r)

    def get(self, trace_id: int) -> List[Dict]:
        with self._lock:
            return list(self._traces.get(int(trace_id), ()))

    def trace_ids(self) -> List[int]:
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def tree(self, trace_id: int) -> Tuple[List[Dict], List[Dict]]:
        return build_tree(self.get(trace_id))

    def chrome(self, trace_id: int) -> Dict:
        return to_chrome_trace(self.get(trace_id))

    def dump_jsonl(self, path: str) -> int:
        """One span record per line; returns the number of spans written."""
        n = 0
        with self._lock:
            spans = [r for recs in self._traces.values() for r in recs]
        with open(path, "w") as f:
            for r in spans:
                f.write(json.dumps(r, default=str) + "\n")
                n += 1
        return n


def load_jsonl(path: str, trace_id: Optional[int] = None) -> List[Dict]:
    """Read span records back from a :meth:`TraceStore.dump_jsonl` file."""
    out = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            r = json.loads(line)
            if trace_id is None or int(r["trace_id"]) == int(trace_id):
                out.append(r)
    return out
