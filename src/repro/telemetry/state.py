"""Global telemetry switch.

Every telemetry hot-path guard reduces to one module-level boolean read, so
the instrumented code (``MulQuant.forward``, quantizer deploy paths, the
training loop) pays nothing measurable when telemetry is off.  The switch is
process-global on purpose: instrumentation is wired permanently into the
pipeline and a single flag turns the whole subsystem on for a run.
"""
from __future__ import annotations

from contextlib import contextmanager

_ENABLED = False


def enable() -> None:
    """Turn telemetry collection on (metrics, spans, events, saturation)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn telemetry collection off; all hooks short-circuit."""
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Set the switch; returns the previous value (for save/restore)."""
    global _ENABLED
    prev = _ENABLED
    _ENABLED = bool(flag)
    return prev


@contextmanager
def suppressed():
    """Telemetry off inside the block, previous state restored on exit.

    The save/restore matters when the block runs in the *parent* process —
    e.g. ``plan.serve()`` falling back to inline execution after a worker
    helper ran in the same interpreter — where a bare ``disable()`` would
    leak and silently kill the rest of the run's telemetry.
    """
    prev = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(prev)
