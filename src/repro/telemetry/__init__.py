"""Telemetry: tracing spans, metrics, per-layer probes, saturation auditing.

The observability subsystem of the toolkit ("fully customizable, fully
observable").  Four pieces, all wired through the compress→fuse→export
pipeline and all zero-cost when the global switch is off:

* :mod:`~repro.telemetry.metrics` — process-global
  :class:`~repro.telemetry.metrics.MetricsRegistry` with labeled
  ``Counter``/``Gauge``/``Histogram`` primitives;
* :mod:`~repro.telemetry.tracing` — nested wall-clock spans, exportable as
  Chrome ``trace_event`` JSON or an aligned text tree;
* :mod:`~repro.telemetry.hooks` — non-invasive per-layer forward-timing and
  activation-statistics instrumentation (:func:`instrument`);
* :mod:`~repro.telemetry.saturation` — clamp counters on every integer
  deploy-path saturation site (MulQuant, quantizers, input quant);
* :mod:`~repro.telemetry.report` — JSONL events and the run-level
  :class:`TelemetrySession` manifest writer.

Typical use::

    from repro import telemetry

    with telemetry.TelemetrySession(out_dir="telemetry_out"):
        qm = calibrate_model(quantize_model(model, qcfg), batches)
        qnn = T2C(qm).nn2chip()
        evaluate(qnn, test)
    # -> trace.json / events.jsonl / metrics.json / saturation.json

Hot paths guard on :func:`enabled`, so leaving telemetry off (the default)
keeps training and inference at seed speed.
"""
from repro.telemetry.state import disable, enable, enabled, set_enabled, suppressed
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile_summary,
)
from repro.telemetry.tracing import NULL_SPAN, Span, Tracer, get_tracer
from repro.telemetry.hooks import (
    ForwardPatchSet,
    Instrumentation,
    attach_names,
    instrument,
    patch_forward,
    telemetry_name,
)
from repro.telemetry.saturation import record as record_saturation
from repro.telemetry.saturation import saturation_report
from repro.telemetry.report import (
    EventLog,
    TelemetrySession,
    emit_event,
    set_event_sink,
)
from repro.telemetry.live import (
    TraceContext,
    TraceStore,
    build_tree,
    format_tree,
    load_jsonl,
    new_span_id,
    span_record,
    to_chrome_trace,
)
from repro.telemetry.obs import (
    FlightRecorder,
    ProfileAggregator,
    RollingWindow,
    exposition,
    parse_prometheus,
    render_prometheus,
)

__all__ = [
    "enable", "disable", "enabled", "set_enabled", "suppressed",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry",
    "percentile_summary",
    "Span", "Tracer", "NULL_SPAN", "get_tracer", "trace",
    "ForwardPatchSet", "Instrumentation", "attach_names", "instrument",
    "patch_forward", "telemetry_name",
    "record_saturation", "saturation_report",
    "EventLog", "TelemetrySession", "emit_event", "set_event_sink", "emit",
    "TraceContext", "TraceStore", "build_tree", "format_tree", "load_jsonl",
    "new_span_id", "span_record", "to_chrome_trace",
    "FlightRecorder", "ProfileAggregator", "RollingWindow",
    "exposition", "parse_prometheus", "render_prometheus",
]


def trace(name: str, **attrs):
    """Open a span on the global tracer (no-op context when disabled)."""
    return get_tracer().span(name, **attrs)


def emit(kind: str, **fields) -> None:
    """Emit a structured event to the active sink (no-op when disabled)."""
    emit_event(kind, **fields)
