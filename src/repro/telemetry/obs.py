"""Operational observability primitives: rolling SLO windows, the flight
recorder, per-op profile aggregation and Prometheus-style text exposition.

Everything here is *always-on capable*: none of these classes consult the
global telemetry switch, because a live gateway needs its SLO arithmetic and
its crash post-mortems whether or not a :class:`TelemetrySession` is active.
They are deliberately cheap — a ring append, a bucket increment — so the
caller can leave them enabled in production paths.

* :class:`RollingWindow` — time-bucketed counts and latency samples over a
  sliding window (cumulative totals hide regressions; a 60 s window shows
  the *current* p99 and shed rate).  ``summary(slo_target=...)`` folds in
  the SLO view: deadline-hit ratio and error-budget burn rate, where burn
  ``1.0`` means the window consumes budget exactly as fast as the target
  allows and ``> 1.0`` means the budget is being eaten.
* :class:`FlightRecorder` — a bounded ring of recent structured events per
  lane.  On a deadline miss, shed storm, worker death or lane abort the
  server dumps the ring, turning a bare exit code into a post-mortem.
* :class:`ProfileAggregator` — folds sampled per-op timing rows (from the
  plan executor or shipped back by pool workers) into a per-op / per-kind
  breakdown with an *attributed fraction*: how much of sampled wall time the
  named ops account for.
* :func:`render_prometheus` — the ``text/plain; version=0.0.4`` exposition
  of metric samples (registry buckets are per-bin; the renderer emits the
  cumulative ``le`` form Prometheus expects, ``+Inf`` included).
"""
from __future__ import annotations

import collections
import json
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import MetricsRegistry, percentile_summary


class _Bucket:
    __slots__ = ("epoch", "counts", "latencies", "queue_waits")

    def __init__(self, epoch: int):
        self.epoch = epoch
        self.counts = collections.Counter()
        self.latencies: List[float] = []
        self.queue_waits: List[float] = []


class RollingWindow:
    """Sliding-window request accounting (counts + latency reservoirs).

    The window is a ring of ``window_s / bucket_s`` one-``bucket_s`` bins; a
    bin is lazily reset when the clock laps it, so there is no background
    thread.  All mutation happens under one lock — observations come from
    lane threads, submitters and the status exporter concurrently.
    """

    def __init__(self, window_s: float = 60.0, bucket_s: float = 1.0,
                 max_samples_per_bucket: int = 512,
                 clock: Callable[[], float] = time.monotonic):
        if window_s <= 0 or bucket_s <= 0:
            raise ValueError("window_s and bucket_s must be positive")
        self.window_s = float(window_s)
        self.bucket_s = float(bucket_s)
        self.max_samples = int(max_samples_per_bucket)
        self._clock = clock
        self._n = max(1, int(round(window_s / bucket_s)))
        self._ring: List[Optional[_Bucket]] = [None] * self._n
        self._lock = threading.Lock()

    def _bucket(self) -> _Bucket:
        epoch = int(self._clock() // self.bucket_s)
        slot = epoch % self._n
        b = self._ring[slot]
        if b is None or b.epoch != epoch:
            b = self._ring[slot] = _Bucket(epoch)
        return b

    # ------------------------------------------------------------- recording
    def observe_ok(self, latency_s: float, queue_wait_s: float = 0.0,
                   deadline_miss: bool = False) -> None:
        with self._lock:
            b = self._bucket()
            b.counts["requests"] += 1
            b.counts["ok"] += 1
            if deadline_miss:
                b.counts["deadline_miss"] += 1
            if len(b.latencies) < self.max_samples:
                b.latencies.append(float(latency_s))
                b.queue_waits.append(float(queue_wait_s))

    def observe_shed(self) -> None:
        with self._lock:
            b = self._bucket()
            b.counts["requests"] += 1
            b.counts["shed"] += 1

    def observe_failed(self) -> None:
        with self._lock:
            b = self._bucket()
            b.counts["requests"] += 1
            b.counts["failed"] += 1

    # ------------------------------------------------------------- reporting
    def summary(self, slo_target: Optional[float] = None) -> Dict:
        """Aggregate the live buckets; optionally fold in the SLO view."""
        with self._lock:
            now = self._clock()
            floor = int((now - self.window_s) // self.bucket_s)
            live = [b for b in self._ring
                    if b is not None and b.epoch > floor]
            counts = collections.Counter()
            latencies: List[float] = []
            queue_waits: List[float] = []
            for b in live:
                counts.update(b.counts)
                latencies.extend(b.latencies)
                queue_waits.extend(b.queue_waits)
            span = (now - min(b.epoch for b in live) * self.bucket_s
                    if live else self.bucket_s)
        span = max(min(span, self.window_s), self.bucket_s)
        total = counts["requests"]
        out = {
            "window_s": self.window_s,
            "span_s": round(span, 3),
            "requests": total,
            "ok": counts["ok"],
            "shed": counts["shed"],
            "failed": counts["failed"],
            "deadline_miss": counts["deadline_miss"],
            "rate_hz": round(total / span, 3),
            "throughput_hz": round(counts["ok"] / span, 3),
            "latency_ms": {k: round(v * 1e3, 3) for k, v in
                           percentile_summary(latencies).items()},
            "queue_wait_ms": {k: round(v * 1e3, 3) for k, v in
                              percentile_summary(queue_waits).items()},
        }
        if slo_target is not None:
            bad = counts["shed"] + counts["failed"] + counts["deadline_miss"]
            bad_rate = bad / total if total else 0.0
            budget = max(1.0 - float(slo_target), 1e-9)
            out["slo"] = {
                "target": float(slo_target),
                "good_rate": round(1.0 - bad_rate, 6),
                "bad_rate": round(bad_rate, 6),
                "error_budget_burn": round(bad_rate / budget, 3),
            }
        return out


class FlightRecorder:
    """Bounded ring of recent structured events, dumpable on demand.

    ``record`` is safe from any thread; events carry both a wall clock
    (``ts``, human-readable) and the monotonic span clock (``t``, joinable
    with trace timestamps).  The ring never blocks and never grows: once
    full, the oldest event is dropped and ``dropped_events`` counts it.
    """

    def __init__(self, capacity: int = 512):
        self.capacity = int(capacity)
        self._events: collections.deque = collections.deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.dropped_events = 0
        self.last_dump: Optional[Dict] = None

    def record(self, kind: str, **fields) -> None:
        event = {"seq": 0, "ts": time.time(), "t": time.perf_counter(),
                 "kind": kind}
        event.update(fields)
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            if len(self._events) == self.capacity:
                self.dropped_events += 1
            self._events.append(event)

    def snapshot(self) -> List[Dict]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def dump(self, reason: str, path: Optional[str] = None,
             **context) -> Dict:
        """Freeze the ring into a post-mortem dict; optionally write JSON."""
        dump = {"reason": reason, "ts": time.time(),
                "dropped_events": self.dropped_events,
                **context,
                "events": self.snapshot()}
        self.last_dump = {k: v for k, v in dump.items() if k != "events"}
        self.last_dump["num_events"] = len(dump["events"])
        if path is not None:
            with open(path, "w") as f:
                json.dump(dump, f, indent=1, default=str)
            self.last_dump["path"] = path
        return dump


class ProfileAggregator:
    """Fold sampled ``(kind, name, seconds)`` op rows into a breakdown."""

    def __init__(self):
        self._lock = threading.Lock()
        self._ops: Dict[Tuple[str, str], List[float]] = {}
        self.wall_seconds = 0.0
        self.sampled_batches = 0

    def add(self, rows: Iterable[Tuple[str, str, float]],
            wall_s: float) -> None:
        with self._lock:
            self.sampled_batches += 1
            self.wall_seconds += float(wall_s)
            for kind, name, dt in rows:
                cell = self._ops.get((kind, name))
                if cell is None:
                    cell = self._ops[(kind, name)] = [0.0, 0]
                cell[0] += float(dt)
                cell[1] += 1

    def report(self, top: Optional[int] = None) -> Dict:
        """Per-op and per-kind rows (hottest first) + attribution."""
        with self._lock:
            ops = {k: list(v) for k, v in self._ops.items()}
            wall = self.wall_seconds
            batches = self.sampled_batches
        attributed = sum(sec for sec, _ in ops.values())
        total = attributed or 1.0
        per_op = sorted(
            ({"kind": kind, "name": name, "seconds": round(sec, 6),
              "calls": calls, "share": round(sec / total, 4)}
             for (kind, name), (sec, calls) in ops.items()),
            key=lambda r: -r["seconds"])
        kinds = collections.Counter()
        for (kind, _), (sec, _c) in ops.items():
            kinds[kind] += sec
        per_kind = sorted(
            ({"kind": kind, "seconds": round(sec, 6),
              "share": round(sec / total, 4)}
             for kind, sec in kinds.items()),
            key=lambda r: -r["seconds"])
        return {
            "sampled_batches": batches,
            "wall_seconds": round(wall, 6),
            "attributed_seconds": round(attributed, 6),
            "attributed_fraction": round(attributed / wall, 4) if wall else 0.0,
            "per_kind": per_kind,
            "per_op": per_op if top is None else per_op[:top],
        }


# --------------------------------------------------------------- exposition
def _fmt_labels(labels: Dict[str, str], extra: Sequence[Tuple[str, str]] = ()
                ) -> str:
    items = [(k, str(v)) for k, v in labels.items()] + list(extra)
    if not items:
        return ""
    body = ",".join(
        '%s="%s"' % (k, v.replace("\\", r"\\").replace('"', r'\"'))
        for k, v in items)
    return "{" + body + "}"


def _fmt_value(v) -> str:
    f = float(v)
    return str(int(f)) if f.is_integer() else repr(f)


def render_prometheus(samples: Iterable[Dict]) -> str:
    """Render ``MetricsRegistry.collect()``-shaped samples as the Prometheus
    text format.  Histogram bins (stored per-bucket) become the cumulative
    ``_bucket{le=...}`` series with a trailing ``+Inf``, plus ``_sum`` and
    ``_count``."""
    by_name: "collections.OrderedDict[str, List[Dict]]" = collections.OrderedDict()
    for s in samples:
        by_name.setdefault(s["name"], []).append(s)
    lines: List[str] = []
    for name, group in by_name.items():
        kind = group[0].get("kind", "gauge")
        ptype = {"counter": "counter", "gauge": "gauge",
                 "histogram": "histogram"}.get(kind, "untyped")
        lines.append(f"# TYPE {name} {ptype}")
        for s in group:
            labels = s.get("labels", {})
            if kind == "histogram":
                cum = 0
                for le_key, count in s.get("buckets", {}).items():
                    ub = le_key.split("=", 1)[1]
                    cum += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_fmt_labels(labels, [('le', ub)])} {cum}")
                cum += s.get("overflow", 0)
                lines.append(
                    f"{name}_bucket{_fmt_labels(labels, [('le', '+Inf')])}"
                    f" {cum}")
                lines.append(f"{name}_sum{_fmt_labels(labels)}"
                             f" {_fmt_value(s.get('sum', 0.0))}")
                lines.append(f"{name}_count{_fmt_labels(labels)}"
                             f" {int(s.get('count', 0))}")
            else:
                lines.append(f"{name}{_fmt_labels(labels)}"
                             f" {_fmt_value(s.get('value', 0.0))}")
    return "\n".join(lines) + ("\n" if lines else "")


def exposition(registry: MetricsRegistry,
               extra_samples: Iterable[Dict] = ()) -> str:
    """Text exposition of a registry plus caller-synthesized samples (the
    server injects its always-on counters this way, so the endpoint is
    useful even when the global telemetry switch is off)."""
    return render_prometheus(list(registry.collect()) + list(extra_samples))


def parse_prometheus(text: str) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Minimal parser for the exposition format (round-trip testing and the
    smoke stage's "does it parse" gate).  Returns
    ``{series_name: [(labels, value), ...]}``."""
    out: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        metric, _, value = line.rpartition(" ")
        if not metric:
            raise ValueError(f"malformed exposition line: {line!r}")
        labels: Dict[str, str] = {}
        if "{" in metric:
            name, _, rest = metric.partition("{")
            body = rest.rstrip("}")
            if body:
                for item in body.split('",'):
                    k, _, v = item.partition("=")
                    labels[k.strip()] = v.strip().strip('"')
        else:
            name = metric
        out.setdefault(name, []).append((labels, float(value)))
    return out
