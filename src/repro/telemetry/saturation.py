"""Integer-datapath saturation auditing.

A requantizer that silently clamps a meaningful fraction of its accumulator
values is the classic silent accuracy killer on silicon: the fake-quant model
looks fine, the deployed integer model does not, and nothing in the usual
reports says why.  This module gives every clamp site on the deploy path —
:class:`~repro.core.mulquant.MulQuant`, the quantizer integer path, and the
model-input quantizer — a counter pair (clamped elements / total elements) in
the global metrics registry, keyed by the layer's dotted path.

The recording helpers are called from the hot forward paths, so they are
guarded by the global telemetry switch at the call site and do almost nothing
when telemetry is off.
"""
from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry import metrics
from repro.telemetry.hooks import telemetry_name

CLIPPED = "saturation_clipped_total"
TOTAL = "saturation_elements_total"
_LABELS = ("layer", "kind")


def record(module, kind: str, clipped: int, total: int,
           registry: Optional[metrics.MetricsRegistry] = None) -> None:
    """Count ``clipped`` out of ``total`` elements clamped at ``module``.

    ``kind`` names the clamp site class: ``"mulquant"`` (fixed-point
    requantizer), ``"quantizer"`` (integer quantizer deploy path) or
    ``"input"`` (the deployed model's input/ADC quantizer).
    """
    reg = registry or metrics.get_registry()
    name = telemetry_name(module)
    reg.counter(CLIPPED, "elements clamped to the output range",
                labels=_LABELS).labels(layer=name, kind=kind).inc(clipped)
    reg.counter(TOTAL, "elements that passed through the clamp site",
                labels=_LABELS).labels(layer=name, kind=kind).inc(total)


def saturation_report(registry: Optional[metrics.MetricsRegistry] = None) -> List[Dict]:
    """Per-clamp-site rows: ``layer``, ``kind``, ``clipped``, ``total``, ``rate``.

    Sorted by descending saturation rate, so the first row is the layer most
    likely to be eating accuracy on hardware.
    """
    reg = registry or metrics.get_registry()
    clipped_m = reg.get(CLIPPED)
    total_m = reg.get(TOTAL)
    if clipped_m is None or total_m is None:
        return []
    clipped = {tuple(sorted(s["labels"].items())): s["value"] for s in clipped_m.samples()}
    totals = {tuple(sorted(s["labels"].items())): s["value"] for s in total_m.samples()}
    rows = []
    for key, total in totals.items():
        labels = dict(key)
        n_clip = clipped.get(key, 0)
        rows.append({
            "layer": labels.get("layer", "?"),
            "kind": labels.get("kind", "?"),
            "clipped": int(n_clip),
            "total": int(total),
            "rate": (n_clip / total) if total else 0.0,
        })
    rows.sort(key=lambda r: (-r["rate"], r["layer"]))
    return rows
