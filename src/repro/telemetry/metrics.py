"""Metrics primitives: a process-global registry of counters/gauges/histograms.

The design follows the Prometheus client model — named metrics with optional
label dimensions, children addressed via :meth:`~Metric.labels` — shrunk to
what an offline compression toolkit needs: everything lives in-process and is
snapshotted to JSON at the end of a run instead of being scraped.

Zero-cost-when-off: every mutation (``inc``/``set``/``observe``) first checks
the registry's ``enabled`` property, which by default follows the global
telemetry switch in :mod:`repro.telemetry.state`.
"""
from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.telemetry import state

LabelKey = Tuple[str, ...]


def percentile_summary(samples: Sequence[float],
                       pcts: Sequence[float] = (50, 95, 99)) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` over raw samples.

    The shared tail-latency summary used by both benchmark writers
    (``BENCH_runtime.json`` and ``BENCH_server.json``) so raw-plan and
    gateway numbers stay directly comparable.  Empty input yields zeros.
    """
    import numpy as np

    keys = [f"p{int(p) if float(p).is_integer() else p}" for p in pcts]
    if not len(samples):
        return {k: 0.0 for k in keys}
    values = np.percentile(np.asarray(samples, dtype=np.float64), list(pcts))
    return {k: float(v) for k, v in zip(keys, values)}


def _label_key(label_names: Sequence[str], labels: Dict[str, str]) -> LabelKey:
    if set(labels) != set(label_names):
        raise ValueError(f"expected labels {tuple(label_names)}, got {tuple(labels)}")
    return tuple(str(labels[n]) for n in label_names)


class Metric:
    """Base metric: a family of children keyed by label values."""

    kind = "metric"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = (),
                 registry: Optional["MetricsRegistry"] = None):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._registry = registry
        self._children: Dict[LabelKey, "Metric"] = {}
        # mutation is read-modify-write (`self.sum += v`) and callers span
        # lane threads, the status exporter and the main thread — every
        # mutator and the child factory serialize on this per-metric lock
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._registry.enabled if self._registry is not None else state.enabled()

    def labels(self, **labels: str) -> "Metric":
        """Return (creating on first use) the child for these label values."""
        if not self.label_names:
            raise ValueError(f"metric {self.name!r} has no labels")
        key = _label_key(self.label_names, labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = type(self)(self.name, self.help,
                                       registry=self._registry,
                                       **self._child_kwargs())
                    self._children[key] = child
        return child

    def _child_kwargs(self) -> Dict:
        return {}

    def _value_dict(self) -> Dict:
        raise NotImplementedError

    def samples(self) -> List[Dict]:
        """Flatten this family into JSON-able sample dicts."""
        if not self.label_names:
            return [{"name": self.name, "kind": self.kind, "labels": {},
                     **self._value_dict()}]
        out = []
        for key, child in sorted(self._children.items()):
            out.append({"name": self.name, "kind": self.kind,
                        "labels": dict(zip(self.label_names, key)),
                        **child._value_dict()})
        return out

    def reset(self) -> None:
        self._children.clear()


class Counter(Metric):
    """Monotonically increasing count (events, saturated elements, ...)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = (),
                 registry: Optional["MetricsRegistry"] = None):
        super().__init__(name, help, label_names, registry)
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if not self.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def _value_dict(self) -> Dict:
        return {"value": self.value}

    def reset(self) -> None:
        super().reset()
        self.value = 0


class Gauge(Metric):
    """Point-in-time value (learning rate, queue depth, last epoch loss)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = (),
                 registry: Optional["MetricsRegistry"] = None):
        super().__init__(name, help, label_names, registry)
        self.value = 0.0

    def set(self, value: float) -> None:
        if self.enabled:
            with self._lock:
                self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self.enabled:
            with self._lock:
                self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def _value_dict(self) -> Dict:
        return {"value": self.value}

    def reset(self) -> None:
        super().reset()
        self.value = 0.0


#: default histogram buckets: wide log-spaced range that covers both
#: sub-millisecond layer timings and multi-second epoch durations
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)


class Histogram(Metric):
    """Cumulative-bucket histogram of observed values."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = (),
                 registry: Optional["MetricsRegistry"] = None,
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, label_names, registry)
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # + overflow
        self.sum = 0.0
        self.count = 0

    def _child_kwargs(self) -> Dict:
        return {"buckets": self.buckets}

    def observe(self, value: float) -> None:
        if not self.enabled:
            return
        value = float(value)
        with self._lock:
            self.sum += value
            self.count += 1
            for i, ub in enumerate(self.buckets):
                if value <= ub:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    def _value_dict(self) -> Dict:
        return {"sum": self.sum, "count": self.count,
                "buckets": {("le=%g" % ub): c
                            for ub, c in zip(self.buckets, self.bucket_counts)},
                "overflow": self.bucket_counts[-1]}

    @property
    def mean(self) -> float:
        return self.sum / max(self.count, 1)

    def reset(self) -> None:
        super().reset()
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0


class MetricsRegistry:
    """Create-or-get factory and snapshot point for all metrics of a run.

    ``enabled=None`` (the default) defers to the global telemetry switch;
    pass ``True``/``False`` to pin a registry on or off regardless of it
    (useful for tests and for always-on ad-hoc measurement).
    """

    def __init__(self, enabled: Optional[bool] = None):
        self._enabled = enabled
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return state.enabled() if self._enabled is None else self._enabled

    # ------------------------------------------------------------ factories
    def _get_or_create(self, cls, name: str, help: str, labels: Sequence[str],
                       **kwargs) -> Metric:
        m = self._metrics.get(name)
        if m is None:
            with self._lock:
                m = self._metrics.get(name)
                if m is None:
                    m = cls(name, help, label_names=labels, registry=self,
                            **kwargs)
                    self._metrics[name] = m
        if not isinstance(m, cls) or m.label_names != tuple(labels):
            raise ValueError(
                f"metric {name!r} already registered as {m.kind} with labels "
                f"{m.label_names}")
        return m

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "", labels: Sequence[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    # ------------------------------------------------------------- querying
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def collect(self) -> List[Dict]:
        """All samples of all metric families, flattened."""
        out: List[Dict] = []
        for name in sorted(self._metrics):
            out.extend(self._metrics[name].samples())
        return out

    def snapshot(self) -> Dict:
        """JSON-able dump of the whole registry."""
        return {"metrics": self.collect()}

    def reset(self) -> None:
        for m in self._metrics.values():
            m.reset()

    def clear(self) -> None:
        self._metrics.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry all built-in instrumentation writes to."""
    return _REGISTRY
