"""Non-invasive model instrumentation: forward patching + per-layer probes.

The substrate's :class:`~repro.nn.module.Module` has no hook registry, so the
only way to observe a layer from outside is to shadow its bound ``forward``
with an instance attribute.  Done ad hoc (as the old MAC profiler did) that is
fragile: a raised exception or a double patch leaves the model permanently
wrapped.  This module centralizes the pattern:

* :func:`patch_forward` — wrap one module's forward; returns an undo callable
  that restores the exact previous state (including a pre-existing instance
  override).
* :class:`ForwardPatchSet` — a context manager collecting many patches and
  guaranteeing restoration on exit, even on error.
* :func:`instrument` — the user-facing API: attach per-layer forward timing
  and activation statistics (min/max/mean/sparsity) to any model, read the
  rows, detach.
"""
from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.nn.module import Module
from repro.telemetry import metrics

_MISSING = object()


def patch_forward(module: Module, make_wrapper: Callable) -> Callable[[], None]:
    """Shadow ``module.forward`` with ``make_wrapper(original_forward)``.

    Returns a zero-argument ``restore`` callable.  Restoration is exact: if
    the module already carried an instance-level forward (e.g. an outer patch
    set), that override is reinstated instead of being dropped.
    """
    prior = module.__dict__.get("forward", _MISSING)
    wrapped = make_wrapper(module.forward)
    object.__setattr__(module, "forward", wrapped)

    def restore() -> None:
        if prior is _MISSING:
            if module.__dict__.get("forward") is wrapped:
                object.__delattr__(module, "forward")
        else:
            object.__setattr__(module, "forward", prior)

    return restore


class ForwardPatchSet:
    """A batch of forward patches with guaranteed (context-managed) undo."""

    def __init__(self):
        self._restores: List[Callable[[], None]] = []

    def patch(self, module: Module, make_wrapper: Callable) -> None:
        self._restores.append(patch_forward(module, make_wrapper))

    def restore_all(self) -> None:
        # undo in reverse so stacked patches unwind correctly
        while self._restores:
            self._restores.pop()()

    def __enter__(self) -> "ForwardPatchSet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.restore_all()


def attach_names(model: Module, prefix: str = "") -> None:
    """Stamp every submodule with its dotted path as ``_telemetry_name``.

    Saturation counters and layer probes use this name to label metrics; it is
    refreshed cheaply whenever the module tree is rearranged (fusion, repack).
    """
    for name, m in model.named_modules(prefix):
        object.__setattr__(m, "_telemetry_name", name or "<root>")


def telemetry_name(module: Module) -> str:
    """The stamped dotted path, falling back to a type-based identity."""
    name = getattr(module, "_telemetry_name", None)
    return name if name else f"{type(module).__name__}@{id(module):x}"


class LayerProbe:
    """Accumulated observations for one instrumented layer."""

    def __init__(self, name: str, type_name: str):
        self.name = name
        self.type = type_name
        self.calls = 0
        self.total_time = 0.0
        self.out_min = np.inf
        self.out_max = -np.inf
        self._sum = 0.0
        self._zeros = 0
        self._count = 0

    def update(self, elapsed: float, out_data: Optional[np.ndarray]) -> None:
        self.calls += 1
        self.total_time += elapsed
        if out_data is None:
            return
        self.out_min = min(self.out_min, float(out_data.min()))
        self.out_max = max(self.out_max, float(out_data.max()))
        self._sum += float(out_data.sum())
        self._zeros += int(np.count_nonzero(out_data == 0))
        self._count += out_data.size

    def row(self) -> Dict:
        seen = self._count > 0
        return {
            "layer": self.name,
            "type": self.type,
            "calls": self.calls,
            "time_ms": self.total_time * 1e3,
            "out_min": self.out_min if seen else 0.0,
            "out_max": self.out_max if seen else 0.0,
            "out_mean": (self._sum / self._count) if seen else 0.0,
            "out_sparsity": (self._zeros / self._count) if seen else 0.0,
        }


class Instrumentation:
    """Handle returned by :func:`instrument`; detach restores the model."""

    def __init__(self, model: Module, probes: Dict[int, LayerProbe],
                 patches: ForwardPatchSet):
        self.model = model
        self._probes = probes
        self._patches = patches
        self._attached = True

    def detach(self) -> None:
        if self._attached:
            self._patches.restore_all()
            self._attached = False

    def report(self) -> List[Dict]:
        """Per-layer rows in model traversal order."""
        return [p.row() for p in self._probes.values()]

    def __enter__(self) -> "Instrumentation":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()


def _default_selector(module: Module) -> bool:
    # leaves only: instrumenting containers double-counts their children
    return next(module.children(), None) is None


def instrument(
    model: Module,
    selector: Optional[Callable[[Module], bool]] = None,
    types: Optional[Sequence[type]] = None,
    stats: bool = True,
    timing: bool = True,
    registry: Optional[metrics.MetricsRegistry] = None,
) -> Instrumentation:
    """Attach forward-timing and activation-statistics probes to a model.

    Parameters
    ----------
    selector:
        Predicate choosing which modules to probe (default: leaf modules).
    types:
        Alternative to ``selector``: probe every instance of these classes.
    stats:
        Collect output min/max/mean/sparsity per layer.
    timing:
        Feed per-call latency into the ``layer_forward_seconds`` histogram of
        ``registry`` (default: the process-global one) in addition to the
        per-probe totals.

    Returns an :class:`Instrumentation` handle (also a context manager); call
    :meth:`~Instrumentation.detach` (or leave the ``with`` block) to restore
    the model to its un-instrumented state.
    """
    if types is not None:
        selector = lambda m: isinstance(m, tuple(types))  # noqa: E731
    elif selector is None:
        selector = _default_selector
    reg = registry or metrics.get_registry()
    hist = reg.histogram("layer_forward_seconds",
                         "per-layer forward latency", labels=("layer",))
    attach_names(model)

    probes: Dict[int, LayerProbe] = {}
    patches = ForwardPatchSet()
    try:
        for name, mod in model.named_modules():
            if mod is model or not selector(mod):
                continue
            probe = LayerProbe(name or "<root>", type(mod).__name__)
            probes[id(mod)] = probe

            def make_wrapper(orig, _probe=probe):
                def wrapper(*args, **kwargs):
                    t0 = time.perf_counter()
                    out = orig(*args, **kwargs)
                    elapsed = time.perf_counter() - t0
                    data = getattr(out, "data", None) if stats else None
                    _probe.update(elapsed, data if isinstance(data, np.ndarray) else None)
                    if timing:
                        hist.labels(layer=_probe.name).observe(elapsed)
                    return out
                return wrapper

            patches.patch(mod, make_wrapper)
    except Exception:
        patches.restore_all()
        raise
    return Instrumentation(model, probes, patches)
