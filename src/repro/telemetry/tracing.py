"""Wall-clock tracing: nested spans, Chrome trace export, text tree.

A :class:`Span` measures one region of the pipeline (an epoch, a fusion pass,
an export).  Spans nest naturally through the context-manager protocol and the
finished tree renders two ways:

* ``to_chrome_trace()`` — the Chrome ``trace_event`` JSON format, loadable in
  ``chrome://tracing`` / Perfetto for a flame view of the run;
* ``format_tree()`` — an aligned text tree for terminals and logs.

Disabled tracers short-circuit: ``span()`` returns a shared no-op context
manager, so a traced hot path costs one attribute read + one call when
telemetry is off.
"""
from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from repro.telemetry import state


class Span:
    """One timed region.  Use via ``with tracer.span(name): ...``."""

    __slots__ = ("name", "attrs", "t_start", "t_end", "children", "_tracer")

    def __init__(self, name: str, attrs: Optional[Dict] = None, tracer: Optional["Tracer"] = None):
        self.name = name
        self.attrs = dict(attrs or {})
        self.t_start: float = 0.0
        self.t_end: Optional[float] = None
        self.children: List["Span"] = []
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Seconds; 0.0 while the span is still open."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def annotate(self, **attrs) -> "Span":
        """Attach key/value metadata (shows up in both export formats)."""
        self.attrs.update(attrs)
        return self

    # -------------------------------------------------------- ctx protocol
    def __enter__(self) -> "Span":
        self.t_start = time.perf_counter()
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.t_end = time.perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._pop(self)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1e3:.2f} ms)"


class _NullSpan:
    """Shared no-op span for the disabled path."""

    __slots__ = ()
    name = "<disabled>"
    attrs: Dict = {}
    children: List = []
    duration = 0.0

    def annotate(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Span factory + collector.

    ``enabled=None`` follows the global telemetry switch (the default for the
    process-global tracer); ``True``/``False`` pins it for standalone use.
    """

    def __init__(self, enabled: Optional[bool] = None):
        self._enabled = enabled
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @property
    def enabled(self) -> bool:
        return state.enabled() if self._enabled is None else self._enabled

    def span(self, name: str, **attrs):
        """Open a (nested) span; no-op when the tracer is disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(name, attrs, tracer=self)

    # ------------------------------------------------------ stack handling
    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # tolerate interleaved/foreign exits rather than corrupting the tree
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            if self._stack:
                self._stack.pop()

    def reset(self) -> None:
        self.roots = []
        self._stack = []

    # ------------------------------------------------------------- exports
    def _walk(self):
        def rec(span, depth):
            yield span, depth
            for c in span.children:
                yield from rec(c, depth + 1)
        for root in self.roots:
            yield from rec(root, 0)

    def to_chrome_trace(self) -> Dict:
        """Chrome ``trace_event`` JSON (complete "X" events, µs timebase)."""
        if self.roots:
            t0 = min(r.t_start for r in self.roots)
        else:
            t0 = 0.0
        events = []
        for span, _ in self._walk():
            end = span.t_end if span.t_end is not None else span.t_start
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": round((span.t_start - t0) * 1e6, 3),
                "dur": round((end - span.t_start) * 1e6, 3),
                "pid": 0,
                "tid": 0,
                "args": {k: v for k, v in span.attrs.items()},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save_chrome_trace(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_chrome_trace(), f, indent=1, default=str)

    def format_tree(self) -> str:
        """Aligned text rendering of the span tree with durations."""
        rows = []
        for span, depth in self._walk():
            attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
            label = "  " * depth + span.name + (f" [{attrs}]" if attrs else "")
            rows.append((label, f"{span.duration * 1e3:10.2f} ms"))
        if not rows:
            return "(no spans recorded)"
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label.ljust(width)}  {dur}" for label, dur in rows)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer all built-in spans report to."""
    return _TRACER
