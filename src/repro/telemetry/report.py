"""Structured emission: JSONL event log and the run-level TelemetrySession.

Events are flat JSON objects (``{"ts": ..., "kind": ..., **fields}``) — one
per line when streamed to disk — covering things spans do not: training steps,
epoch summaries, export records.  :class:`TelemetrySession` bundles the whole
subsystem for one run: it flips the global switch on, captures a fresh
registry/tracer/event view, and snapshots everything to a machine-readable
manifest directory on exit::

    with TelemetrySession(out_dir="telemetry_out") as session:
        trainer.fit()
        ...
    # telemetry_out/{manifest.json, trace.json, trace.txt,
    #                events.jsonl, metrics.json, saturation.json}
"""
from __future__ import annotations

import collections
import json
import os
import threading
import time
from typing import Dict, List, Optional

from repro.telemetry import metrics, state, tracing
from repro.telemetry.saturation import saturation_report


def _jsonable(value):
    """Best-effort conversion of numpy scalars/arrays for json.dump."""
    if hasattr(value, "item") and getattr(value, "size", 1) == 1:
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return value


class EventLog:
    """Append-only structured event buffer, optionally streamed as JSONL.

    ``max_events`` bounds the in-memory buffer for long-running servers: a
    full ring drops the *oldest* event (counted in ``dropped_events``) so
    the log always holds the most recent history.  ``None`` keeps the
    buffer unbounded — the right choice for finite sessions whose events
    are snapshotted to disk.  ``emit`` is thread-safe: concurrent lane
    threads can never interleave partial JSONL lines in the stream.
    """

    #: generous default ring — hours of gateway events, bounded memory
    DEFAULT_MAX_EVENTS = 100_000

    def __init__(self, path: Optional[str] = None, append: bool = False,
                 max_events: Optional[int] = DEFAULT_MAX_EVENTS):
        self.max_events = max_events
        self.events: collections.deque = collections.deque(maxlen=max_events)
        self.dropped_events = 0
        self._lock = threading.Lock()
        self._path = path
        self._fh = open(path, "a" if append else "w") if path else None

    def emit(self, kind: str, **fields) -> Dict:
        event = {"ts": time.time(), "kind": kind}
        event.update({k: _jsonable(v) for k, v in fields.items()})
        line = json.dumps(event, default=str) + "\n"
        with self._lock:
            if (self.max_events is not None
                    and len(self.events) == self.max_events):
                self.dropped_events += 1
            self.events.append(event)
            if self._fh is not None:
                self._fh.write(line)
                self._fh.flush()
        return event

    def save(self, path: str) -> None:
        with self._lock:
            events = list(self.events)
        with open(path, "w") as f:
            for event in events:
                f.write(json.dumps(event, default=str) + "\n")

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __len__(self) -> int:
        return len(self.events)


# The process-global event sink: `repro.telemetry.emit(...)` lands here when a
# session (or an explicit log) is installed and telemetry is enabled.
_SINK: Optional[EventLog] = None


def set_event_sink(log: Optional[EventLog]) -> Optional[EventLog]:
    """Install the global event sink; returns the previous one."""
    global _SINK
    prev = _SINK
    _SINK = log
    return prev


def emit_event(kind: str, **fields) -> None:
    """Route an event to the active sink; no-op when telemetry is off."""
    if _SINK is not None and state.enabled():
        _SINK.emit(kind, **fields)


class TelemetrySession:
    """Capture one run's telemetry and snapshot it to a manifest directory.

    Entering the session enables the global switch, resets the process-global
    registry and tracer (unless ``fresh=False``), and installs a JSONL event
    sink.  Leaving restores the previous switch/sink state and — when
    ``out_dir`` is set — writes the full snapshot.
    """

    def __init__(self, out_dir: Optional[str] = None, label: str = "run",
                 fresh: bool = True):
        self.out_dir = out_dir
        self.label = label
        self.fresh = fresh
        self.registry = metrics.get_registry()
        self.tracer = tracing.get_tracer()
        self.events: Optional[EventLog] = None
        self._prev_enabled = False
        self._prev_sink: Optional[EventLog] = None
        self._t0 = 0.0

    def __enter__(self) -> "TelemetrySession":
        self._t0 = time.time()
        if self.out_dir:
            os.makedirs(self.out_dir, exist_ok=True)
            self.events = EventLog(os.path.join(self.out_dir, "events.jsonl"))
        else:
            self.events = EventLog()
        if self.fresh:
            self.registry.clear()
            self.tracer.reset()
        self._prev_enabled = state.set_enabled(True)
        self._prev_sink = set_event_sink(self.events)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        state.set_enabled(self._prev_enabled)
        set_event_sink(self._prev_sink)
        if self.out_dir:
            self.write(self.out_dir)
        if self.events is not None:
            self.events.close()

    # -------------------------------------------------------------- output
    def write(self, out_dir: str, extra: Optional[Dict] = None) -> Dict:
        """Write the snapshot files; returns the manifest dict."""
        os.makedirs(out_dir, exist_ok=True)
        self.tracer.save_chrome_trace(os.path.join(out_dir, "trace.json"))
        with open(os.path.join(out_dir, "trace.txt"), "w") as f:
            f.write(self.tracer.format_tree() + "\n")
        with open(os.path.join(out_dir, "metrics.json"), "w") as f:
            json.dump(self.registry.snapshot(), f, indent=1, default=str)
        sat_rows = saturation_report(self.registry)
        with open(os.path.join(out_dir, "saturation.json"), "w") as f:
            json.dump(sat_rows, f, indent=1)
        if self.events is not None and self.events._path is None:
            self.events.save(os.path.join(out_dir, "events.jsonl"))
        manifest = {
            "label": self.label,
            "wall_time_s": time.time() - self._t0,
            "files": {
                "trace": "trace.json",
                "trace_text": "trace.txt",
                "events": "events.jsonl",
                "metrics": "metrics.json",
                "saturation": "saturation.json",
            },
            "num_events": len(self.events) if self.events is not None else 0,
            "num_spans": len(list(self.tracer._walk())),
            "num_saturation_sites": len(sat_rows),
        }
        if extra:
            manifest.update(extra)
        with open(os.path.join(out_dir, "manifest.json"), "w") as f:
            json.dump(manifest, f, indent=1, default=str)
        return manifest
