"""Shadow and canary traffic splitting over ``name@version``.

The :class:`TrafficSplitter` is pure rollout *state* — which version is
stable, which is the candidate, what fraction of keys it owns, whether
traffic is mirrored — plus the deterministic per-request assignment.  The
:class:`~repro.fleet.fleet.Fleet` enacts its decisions (placing canary
replicas, swapping versions, requeuing traffic); keeping the state machine
side-effect free makes it unit-testable and its history auditable.

Rollout state machine (per model)::

    idle ──begin_shadow──> shadow ──begin_canary──┐
    idle ──begin_canary───────────────────────────┤
                                                  v
                      ┌─────────── canary (fraction f) ───────────┐
          advance(f') │                  │ rollback()             │ promote()
                      └──> canary        v                        v
                                    rolled_back                promoted
                                         │                        │
                                         └──────> idle <──────────┘

* **shadow**: 0% of primary traffic; a mirror fraction of requests is
  *copied* to the candidate version and the copies' results are discarded.
  Shadow responses never touch primary SLO accounting — they land in a
  separate window.
* **canary**: a deterministic ``hash01(route_key)`` draw assigns each
  request to the candidate iff it falls below ``fraction``; the assignment
  is sticky per key (the same user/key always sees the same version while
  the fraction holds).
* **rollback** is terminal for the candidate: the fraction drops to zero
  and the fleet swaps every canary replica back to the stable version.
  ``promoted`` makes the candidate the new stable.
"""
from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.fleet.router import ROLE_CANARY, ROLE_STABLE, hash01

#: rollout states
IDLE = "idle"
SHADOW = "shadow"
CANARY = "canary"
PROMOTED = "promoted"
ROLLED_BACK = "rolled_back"

#: the default promote ladder a supervised rollout walks (1% -> 100%)
DEFAULT_LADDER = (0.01, 0.1, 0.5, 1.0)


@dataclass
class Rollout:
    """Rollout state for one model."""

    model: str
    stable_version: str
    canary_version: Optional[str] = None
    fraction: float = 0.0          #: share of primary keys on the candidate
    mirror_fraction: float = 0.0   #: share of stable keys shadow-copied
    state: str = IDLE
    reason: str = ""
    history: List[Dict] = field(default_factory=list)

    def _log(self, event: str, **fields) -> None:
        entry = {"ts": time.time(), "event": event, "state": self.state,
                 "fraction": self.fraction, **fields}
        self.history.append(entry)
        payload = {"model": self.model, "state": self.state,
                   "fraction": self.fraction, "canary": self.canary_version,
                   "stable": self.stable_version, **fields}
        telemetry.emit(f"fleet_rollout_{event}", **payload)

    # ----------------------------------------------------------- assignment
    def assign(self, route_key: str) -> Tuple[str, bool]:
        """``(role, mirror)`` for one request.

        ``role`` is :data:`~repro.fleet.router.ROLE_CANARY` when the key's
        deterministic draw falls inside the canary fraction, else
        :data:`~repro.fleet.router.ROLE_STABLE`; ``mirror`` asks the fleet
        to also shadow-copy the request to the candidate.
        """
        if self.state == CANARY and self.canary_version is not None:
            if hash01(route_key, salt="canary") < self.fraction:
                return ROLE_CANARY, False
        if self.state == SHADOW and self.canary_version is not None:
            if hash01(route_key, salt="shadow") < self.mirror_fraction:
                return ROLE_STABLE, True
        return ROLE_STABLE, False

    def serving_version(self, role: str) -> str:
        if role == ROLE_CANARY and self.canary_version is not None:
            return self.canary_version
        return self.stable_version

    def active(self) -> bool:
        return self.state in (SHADOW, CANARY)

    def to_json(self) -> Dict:
        return {"model": self.model, "state": self.state,
                "stable_version": self.stable_version,
                "canary_version": self.canary_version,
                "fraction": self.fraction,
                "mirror_fraction": self.mirror_fraction,
                "reason": self.reason,
                "history": list(self.history)}


class TrafficSplitter:
    """Per-model rollout registry with guarded transitions."""

    def __init__(self):
        self._lock = threading.Lock()
        self._rollouts: Dict[str, Rollout] = {}

    def ensure(self, model: str, stable_version: str) -> Rollout:
        with self._lock:
            ro = self._rollouts.get(model)
            if ro is None:
                ro = self._rollouts[model] = Rollout(model, stable_version)
            return ro

    def get(self, model: str) -> Optional[Rollout]:
        with self._lock:
            return self._rollouts.get(model)

    # ---------------------------------------------------------- transitions
    def begin_shadow(self, model: str, version: str,
                     mirror_fraction: float = 0.2) -> Rollout:
        """Mirror ``mirror_fraction`` of traffic to ``version`` silently."""
        if not 0.0 < mirror_fraction <= 1.0:
            raise ValueError(f"mirror_fraction must be in (0, 1], got "
                             f"{mirror_fraction}")
        with self._lock:
            ro = self._require(model)
            self._require_idle(ro, "begin_shadow")
            if version == ro.stable_version:
                raise ValueError(f"{model}: shadow version {version!r} is "
                                 f"already the stable version")
            ro.canary_version = version
            ro.mirror_fraction = float(mirror_fraction)
            ro.fraction = 0.0
            ro.state = SHADOW
            ro.reason = ""
            ro._log("shadow", mirror_fraction=ro.mirror_fraction)
            return ro

    def begin_canary(self, model: str, version: str,
                     fraction: float = DEFAULT_LADDER[0]) -> Rollout:
        """Put ``fraction`` of primary keys on ``version``.

        Legal from ``idle`` or from an active shadow of the same version
        (the shadow graduates to taking real traffic).
        """
        self._check_fraction(fraction)
        with self._lock:
            ro = self._require(model)
            if ro.state == SHADOW and ro.canary_version == version:
                pass                        # shadow -> canary graduation
            else:
                self._require_idle(ro, "begin_canary")
                if version == ro.stable_version:
                    raise ValueError(f"{model}: canary version {version!r} "
                                     f"is already the stable version")
            ro.canary_version = version
            ro.mirror_fraction = 0.0
            ro.fraction = float(fraction)
            ro.state = CANARY
            ro.reason = ""
            ro._log("canary", fraction=ro.fraction)
            return ro

    def advance(self, model: str, fraction: float) -> Rollout:
        """Move an active canary to a larger fraction (the promote ladder)."""
        self._check_fraction(fraction)
        with self._lock:
            ro = self._require(model)
            if ro.state != CANARY:
                raise RuntimeError(f"{model}: no active canary to advance "
                                   f"(state={ro.state})")
            if fraction < ro.fraction:
                raise ValueError(f"{model}: advance() only moves forward "
                                 f"({fraction} < {ro.fraction}); use "
                                 f"rollback() to retreat")
            ro.fraction = float(fraction)
            ro._log("advance")
            return ro

    def promote(self, model: str) -> Rollout:
        """The candidate becomes the stable version (fraction -> 100%)."""
        with self._lock:
            ro = self._require(model)
            if ro.state != CANARY or ro.canary_version is None:
                raise RuntimeError(f"{model}: no active canary to promote "
                                   f"(state={ro.state})")
            ro.stable_version = ro.canary_version
            ro.canary_version = None
            ro.fraction = 0.0
            ro.mirror_fraction = 0.0
            ro.state = PROMOTED
            ro._log("promote", stable=ro.stable_version)
            return ro

    def rollback(self, model: str, reason: str = "") -> Rollout:
        """Abort the rollout: all keys back on stable, candidate retired."""
        with self._lock:
            ro = self._require(model)
            if ro.state not in (SHADOW, CANARY):
                raise RuntimeError(f"{model}: no active rollout to roll "
                                   f"back (state={ro.state})")
            retired = ro.canary_version
            ro.canary_version = None
            ro.fraction = 0.0
            ro.mirror_fraction = 0.0
            ro.state = ROLLED_BACK
            ro.reason = reason
            ro._log("rollback", retired=retired, reason=reason)
            return ro

    def reset(self, model: str) -> Rollout:
        """``promoted``/``rolled_back`` -> ``idle`` (ready for a new
        candidate); the history is preserved."""
        with self._lock:
            ro = self._require(model)
            if ro.state in (SHADOW, CANARY):
                raise RuntimeError(f"{model}: cannot reset an active "
                                   f"rollout; promote or roll back first")
            ro.state = IDLE
            ro.reason = ""
            return ro

    # ------------------------------------------------------------- helpers
    def _require(self, model: str) -> Rollout:
        ro = self._rollouts.get(model)
        if ro is None:
            raise KeyError(f"no rollout state for model {model!r}; the "
                           f"fleet registers models via add_model()")
        return ro

    @staticmethod
    def _require_idle(ro: Rollout, action: str) -> None:
        if ro.state in (SHADOW, CANARY):
            raise RuntimeError(
                f"{ro.model}: {action} refused — a rollout of "
                f"{ro.canary_version!r} is active (state={ro.state}); "
                f"promote or roll back first")
        if ro.state in (PROMOTED, ROLLED_BACK):
            ro.state = IDLE         # implicit reset on a fresh candidate

    @staticmethod
    def _check_fraction(fraction: float) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"canary fraction must be in (0, 1], got "
                             f"{fraction}")

    def to_json(self) -> Dict:
        with self._lock:
            return {m: ro.to_json() for m, ro in sorted(self._rollouts.items())}
