"""Replicated, sharded serving on top of the single-process gateway.

``repro.fleet`` composes N :class:`~repro.server.Server` replicas into one
serving surface: consistent-hash routing with health-aware failover
(:mod:`~repro.fleet.router`), supervised replica lifecycles
(:mod:`~repro.fleet.replica`), SLO-driven autoscaling
(:mod:`~repro.fleet.autoscaler`), shadow/canary rollouts
(:mod:`~repro.fleet.splitter`) and shaped multi-tenant load
(:mod:`~repro.fleet.scenarios`) — all supervised by
:class:`~repro.fleet.fleet.Fleet`.  See ``docs/fleet.md``.
"""
from repro.fleet.autoscaler import (Autoscaler, AutoscalePolicy, Decision,
                                    HOLD, SCALE_IN, SCALE_OUT)
from repro.fleet.fleet import Fleet, FleetConfig, FleetRequest
from repro.fleet.replica import (CLOSED, DEAD, DRAINING, PARTITIONED,
                                 QUARANTINED, READY, STARTING, Replica)
from repro.fleet.router import (HashRing, ROLE_CANARY, ROLE_STABLE, Router,
                                hash01, hash64)
from repro.fleet.scenarios import (Scenario, diurnal_wave, flash_crowd,
                                   mixed_sizes, run_scenario, slow_loris,
                                   standard_suite)
from repro.fleet.splitter import (CANARY, DEFAULT_LADDER, IDLE, PROMOTED,
                                  ROLLED_BACK, Rollout, SHADOW,
                                  TrafficSplitter)

__all__ = [
    "Fleet", "FleetConfig", "FleetRequest",
    "Replica", "STARTING", "READY", "DRAINING", "PARTITIONED",
    "QUARANTINED", "DEAD", "CLOSED",
    "Router", "HashRing", "hash64", "hash01", "ROLE_STABLE", "ROLE_CANARY",
    "Autoscaler", "AutoscalePolicy", "Decision", "HOLD", "SCALE_OUT",
    "SCALE_IN",
    "TrafficSplitter", "Rollout", "DEFAULT_LADDER", "IDLE", "SHADOW",
    "CANARY", "PROMOTED", "ROLLED_BACK",
    "Scenario", "run_scenario", "standard_suite", "diurnal_wave",
    "flash_crowd", "slow_loris", "mixed_sizes",
]
