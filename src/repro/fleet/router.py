"""Consistent-hash request routing with health-aware failover.

:class:`HashRing` is classic consistent hashing: every member owns
``vnodes`` pseudo-random points on a 64-bit ring, and a key routes to the
first member point at or clockwise of the key's hash.  The property the
fleet (and the property tests) rely on: adding or removing one member of
*N* moves only ~``K/N`` of *K* keys — every other key keeps its replica,
so replica-local caches and in-flight affinity survive topology churn.

:class:`Router` layers fleet semantics on top: one ring per
``(model, role)`` traffic class (``stable`` / ``canary``), membership set
atomically from the fleet's health view — a dead or draining replica is
simply absent from the ring, so it can receive no new keys — and lookups
can exclude replicas a request already failed over from.
"""
from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: traffic classes a router distinguishes per model
ROLE_STABLE = "stable"
ROLE_CANARY = "canary"


def hash64(key: str, salt: str = "") -> int:
    """Stable 64-bit hash of ``key`` (BLAKE2b, seeded by ``salt``).

    Python's builtin ``hash`` is randomized per process — useless for a
    ring that must agree across replicas, test runs and recorded traces.
    """
    h = hashlib.blake2b((salt + key).encode("utf-8"), digest_size=8)
    return int.from_bytes(h.digest(), "big")


def hash01(key: str, salt: str = "split") -> float:
    """``key`` -> deterministic float in ``[0, 1)`` (for traffic splits).

    Uses a different salt domain than ring placement so the canary draw is
    independent of which replica a key happens to land on.
    """
    return hash64(key, salt=salt) / 2.0 ** 64


class HashRing:
    """A consistent-hash ring of string member ids.

    Not thread-safe on its own — :class:`Router` serializes access.
    """

    def __init__(self, members: Iterable[str] = (), vnodes: int = 64):
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = int(vnodes)
        self._points: List[Tuple[int, str]] = []
        self._hashes: List[int] = []
        self._members: Set[str] = set()
        for m in members:
            self.add(m)

    def _rebuild(self) -> None:
        self._points.sort()
        self._hashes = [p[0] for p in self._points]

    def add(self, member: str) -> None:
        if member in self._members:
            return
        self._members.add(member)
        self._points.extend(
            (hash64(f"{member}#{i}", salt="ring"), member)
            for i in range(self.vnodes))
        self._rebuild()

    def remove(self, member: str) -> None:
        if member not in self._members:
            return
        self._members.discard(member)
        self._points = [p for p in self._points if p[1] != member]
        self._hashes = [p[0] for p in self._points]

    def members(self) -> Set[str]:
        return set(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def lookup(self, key: str,
               exclude: Optional[Set[str]] = None) -> Optional[str]:
        """The member owning ``key``; walk clockwise past ``exclude``\\ d
        members (failover order is deterministic for a given topology)."""
        if not self._points:
            return None
        if exclude and self._members <= exclude:
            return None
        h = hash64(key, salt="key")
        start = bisect.bisect_left(self._hashes, h) % len(self._points)
        for off in range(len(self._points)):
            member = self._points[(start + off) % len(self._points)][1]
            if exclude and member in exclude:
                continue
            return member
        return None


class Router:
    """Health-aware per-``(model, role)`` consistent routing.

    The fleet owns the authoritative replica states; it pushes eligibility
    into the router with :meth:`set_members` whenever health, drain or
    rollout role changes.  A replica absent from a ring receives no new
    keys — ejection *is* membership removal, and the removed member's keys
    redistribute to the survivors per the ring property.
    """

    def __init__(self, vnodes: int = 64):
        self.vnodes = int(vnodes)
        self._lock = threading.Lock()
        self._rings: Dict[Tuple[str, str], HashRing] = {}

    def _ring(self, model: str, role: str) -> HashRing:
        ring = self._rings.get((model, role))
        if ring is None:
            ring = self._rings[(model, role)] = HashRing(vnodes=self.vnodes)
        return ring

    def set_members(self, model: str, role: str,
                    members: Sequence[str]) -> None:
        """Atomically reconcile the ``(model, role)`` ring to ``members``."""
        with self._lock:
            ring = self._ring(model, role)
            want = set(members)
            for gone in ring.members() - want:
                ring.remove(gone)
            for new in want - ring.members():
                ring.add(new)

    def eject(self, model: str, replica_id: str) -> None:
        """Remove a replica from every ring of ``model`` (death, drain)."""
        with self._lock:
            for (m, _role), ring in self._rings.items():
                if m == model:
                    ring.remove(replica_id)

    def members(self, model: str, role: str) -> Set[str]:
        with self._lock:
            return self._ring(model, role).members()

    def route(self, model: str, key: str, role: str = ROLE_STABLE,
              exclude: Optional[Set[str]] = None) -> Optional[str]:
        """The replica id serving ``key`` for ``(model, role)``.

        Falls back to the other role's ring when the requested ring is
        empty or fully excluded (a canary-assigned request outliving the
        last canary replica is served by a stable one, and vice versa at
        100% rollout), so a request is only unroutable when the whole
        group is down.
        """
        with self._lock:
            member = self._ring(model, role).lookup(key, exclude=exclude)
            if member is None:
                other = ROLE_CANARY if role == ROLE_STABLE else ROLE_STABLE
                member = self._ring(model, other).lookup(key, exclude=exclude)
            return member
