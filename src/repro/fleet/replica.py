"""One fleet replica: a supervised :class:`~repro.server.Server` plus its
own :class:`~repro.server.ModelRegistry` and a lifecycle state machine.

Every replica owns a *private* registry — replicas of one group share the
same verified model sources (the checksummed artifact store / deployed
bundles), but each holds its own active-version pointer, which is what
makes per-replica canary placement possible: a canary replica runs the new
version while its peers keep the stable one, and promotion/rollback is a
per-replica :meth:`~repro.server.Server.swap` (drain-and-cutover, so no
in-flight request is ever dropped by a version flip).

Lifecycle::

    READY ──drain()──> DRAINING ──drained──> CLOSED
      │ ├──kill()───────────────────────────> DEAD
      │ ├──quarantine()─────────────────────> QUARANTINED
      │ └──partition()──> PARTITIONED ──heal()──> READY

A killed replica resolves all queued and in-flight requests as retryable
:class:`~repro.server.types.Failed` (the fleet requeues them elsewhere); a
partitioned replica is unreachable — submissions bounce with a retryable
``Failed`` and health probes fail — but keeps its state, modelling a
network partition rather than a crash.  A *quarantined* replica is one the
SDC defense caught corrupting data (ABFT checksum miss, scrub CRC
mismatch, or a golden-vector divergence): it aborts exactly like a kill —
so the fleet requeues its work on healthy peers and loses nothing — but
the replica object is kept as a tombstone for forensics (its flight
recorder, ``sdc_events`` and metrics survive) instead of being deleted.
"""
from __future__ import annotations

import time
from typing import Dict, Optional

from repro import telemetry
from repro.server import ModelRegistry, Server, ServerConfig
from repro.server.types import Failed, PendingRequest

#: replica lifecycle states
STARTING = "starting"
READY = "ready"
DRAINING = "draining"
PARTITIONED = "partitioned"
QUARANTINED = "quarantined"   #: ejected for silent data corruption
DEAD = "dead"
CLOSED = "closed"


class Replica:
    """A single gateway replica in a fleet group."""

    def __init__(self, replica_id: str, model: str,
                 server_config: Optional[ServerConfig] = None,
                 role: str = "stable"):
        self.replica_id = replica_id
        self.model = model
        self.role = role                  #: ``stable`` | ``canary``
        self.state = STARTING
        self.partitioned = False
        self.created_t = time.monotonic()
        self.registry = ModelRegistry()
        self.server = Server(self.registry,
                             config=server_config or ServerConfig())
        self._fail_ids = 0

    # ------------------------------------------------------------- serving
    def submit(self, key: str, sample, deadline_s: Optional[float] = None
               ) -> PendingRequest:
        """Submit to this replica's gateway; unreachable/killed replicas
        answer with an already-resolved retryable
        :class:`~repro.server.types.Failed` instead of raising, so the
        fleet's failover path is uniform."""
        if self.partitioned or self.state in (DEAD, CLOSED, QUARANTINED):
            return self._unreachable(key, "replica is "
                                     + ("partitioned" if self.partitioned
                                        else self.state))
        try:
            return self.server.submit(key, sample, deadline_s=deadline_s)
        except RuntimeError as exc:     # closed under us (kill race)
            return self._unreachable(key, str(exc))

    def _unreachable(self, key: str, why: str) -> PendingRequest:
        self._fail_ids -= 1
        req = PendingRequest(self._fail_ids, key, None,
                             time.perf_counter(), 0.0)
        req._resolve(Failed(req.request_id, key,
                            error=f"{self.replica_id}: {why}",
                            retryable=True))
        return req

    # ----------------------------------------------------------- lifecycle
    def mark_ready(self) -> None:
        self.state = READY

    def drain(self) -> None:
        """Begin the drain protocol: no new keys, queued work completes."""
        if self.state == READY:
            self.state = DRAINING
            self.server.drain()

    def drained(self) -> bool:
        return self.server.drained()

    def kill(self) -> None:
        """Abrupt replica death; in-flight work resolves retryable-Failed."""
        self.state = DEAD
        self.server.kill()

    def quarantine(self) -> None:
        """Eject a replica caught serving corrupted state (terminal).

        Same abort semantics as :meth:`kill` — every queued and in-flight
        request resolves as a retryable
        :class:`~repro.server.types.Failed` so the fleet re-runs it on a
        healthy peer and no request is lost — but the state is
        ``QUARANTINED``, a tombstone the fleet keeps (never self-heals
        back, never deletes) so the corrupted server's flight-recorder
        dumps and ``sdc_events`` stay inspectable.
        """
        if self.state in (QUARANTINED, DEAD, CLOSED):
            return
        self.state = QUARANTINED
        self.server.kill()

    def partition(self) -> None:
        """Make the replica unreachable without killing it."""
        self.partitioned = True

    def heal(self) -> None:
        """End a partition; the health loop re-admits the replica."""
        self.partitioned = False

    def close(self, timeout: float = 30.0) -> None:
        if self.state not in (DEAD, QUARANTINED):
            self.state = CLOSED
        self.server.close(timeout=timeout)

    # -------------------------------------------------------------- health
    def healthy(self) -> bool:
        """Reachable and serving: the fleet health loop's probe."""
        return (not self.partitioned and self.state in (STARTING, READY)
                and self.server.healthy())

    def active_version(self) -> Optional[str]:
        try:
            return self.registry.active_version(self.model)
        except KeyError:
            return None

    def set_version(self, version: str, timeout: float = 30.0) -> None:
        """Drain-and-cutover this replica to ``model@version`` (the
        per-replica half of canary placement / promotion / rollback).
        Refuses — typed, with the previous version still serving — when the
        target fails the artifact-integrity or plan-verification gate."""
        if self.active_version() == version:
            return
        self.server.swap(self.model, version, timeout=timeout)
        telemetry.emit("fleet_replica_version", replica=self.replica_id,
                       model=self.model, version=version, role=self.role)

    def pending_count(self) -> int:
        return self.server.pending_count()

    def status(self) -> Dict:
        """Flat operational summary for the fleet status surface."""
        window = {}
        lane = self.server._lanes.get(self.model)
        if lane is not None:
            window = lane.window.summary(slo_target=lane.cfg.slo_target)
        return {
            "replica": self.replica_id,
            "model": self.model,
            "role": self.role,
            "state": self.state,
            "partitioned": self.partitioned,
            "active_version": self.active_version(),
            "healthy": self.healthy(),
            "sdc_events": len(self.server.sdc_events),
            "pending": (self.pending_count()
                        if self.state not in (DEAD, CLOSED, QUARANTINED)
                        else 0),
            "uptime_s": round(time.monotonic() - self.created_t, 3),
            "window": window,
        }

    def __repr__(self) -> str:
        return (f"Replica({self.replica_id}, {self.model}, {self.state}, "
                f"role={self.role}, v={self.active_version()})")
