"""SLO-driven replica autoscaling.

The autoscaler is a pure policy: given the fleet's live primary SLO window
for one model (the :meth:`~repro.telemetry.obs.RollingWindow.summary` dict)
and the current target replica count, it returns a scaling
:class:`Decision`.  The :class:`~repro.fleet.fleet.Fleet` enacts decisions
— spawning or draining replicas — on its health-loop tick, so the policy
itself is deterministic and unit-testable without any threads.

The two signals, both derived from the window rather than raw utilisation
(utilisation lies under batching; the SLO is what the operator promised):

* **error-budget burn** — ``bad_rate / (1 - slo_target)``.  Burn > 1 means
  the window is eating budget faster than the SLO allows; sustained burn
  above ``scale_out_burn`` adds a replica.  Burn below ``scale_in_burn``
  with p99 comfortably inside the deadline removes one.
* **p99 vs deadline** — scale-in is additionally gated on
  ``p99 <= p99_budget_fraction * deadline`` so a fleet that is meeting its
  budget only because traffic is light does not shrink into a latency
  cliff the moment load returns.

Cooldowns (separate for out and in, in is slower) prevent flapping, and
``min_replicas``/``max_replicas`` bound the group.  Scale-out is
deliberately twitchier than scale-in: adding a replica is cheap, a
brown-out is not.
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import telemetry

#: decision kinds
HOLD = "hold"
SCALE_OUT = "scale_out"
SCALE_IN = "scale_in"


@dataclass(frozen=True)
class AutoscalePolicy:
    """Bounds and thresholds for one replica group."""

    min_replicas: int = 1
    max_replicas: int = 8
    scale_out_burn: float = 1.0    #: burn >= this -> add a replica
    scale_in_burn: float = 0.2    #: burn <= this (and p99 ok) -> remove one
    #: scale-in also requires ``p99 <= this fraction * deadline``
    p99_budget_fraction: float = 0.5
    scale_out_cooldown_s: float = 5.0
    scale_in_cooldown_s: float = 15.0
    #: ignore windows with fewer observations than this (cold start / lull)
    min_window_requests: int = 20

    def __post_init__(self):
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.scale_in_burn >= self.scale_out_burn:
            raise ValueError("scale_in_burn must be < scale_out_burn "
                             "(hysteresis band)")


@dataclass
class Decision:
    """One autoscaler verdict (kept in the fleet's scaling history)."""

    model: str
    action: str                    #: ``hold`` | ``scale_out`` | ``scale_in``
    current: int
    target: int
    reason: str
    burn: float = 0.0
    p99_ms: float = 0.0
    requests: int = 0
    ts: float = field(default_factory=time.time)

    def to_json(self) -> Dict:
        return {"model": self.model, "action": self.action,
                "current": self.current, "target": self.target,
                "reason": self.reason, "burn": self.burn,
                "p99_ms": self.p99_ms, "requests": self.requests,
                "ts": self.ts}


class Autoscaler:
    """Stateful wrapper: policy + cooldown clocks + decision history."""

    def __init__(self, policy: Optional[AutoscalePolicy] = None,
                 clock=time.monotonic, history_size: int = 256):
        self.policy = policy or AutoscalePolicy()
        self._clock = clock
        self._last_out: Dict[str, float] = {}
        self._last_in: Dict[str, float] = {}
        self._history: List[Decision] = []
        self._history_size = int(history_size)

    def history(self, model: Optional[str] = None) -> List[Decision]:
        if model is None:
            return list(self._history)
        return [d for d in self._history if d.model == model]

    def tick(self, model: str, summary: Dict, current: int,
             deadline_s: float) -> Decision:
        """Evaluate one model's window; returns the (clamped) decision.

        ``summary`` is the fleet's *primary* window summary — shadow and
        canary accounting never feed scaling, so a misbehaving candidate
        cannot stampede the stable group.
        """
        pol = self.policy
        now = self._clock()
        slo = summary.get("slo") or {}
        burn = float(slo.get("error_budget_burn", 0.0))
        p99_ms = float((summary.get("latency_ms") or {}).get("p99", 0.0))
        requests = int(summary.get("requests", 0))

        def decide(action: str, target: int, reason: str) -> Decision:
            target = max(pol.min_replicas, min(pol.max_replicas, target))
            if target == current:
                action = HOLD
            d = Decision(model=model, action=action, current=current,
                         target=target, reason=reason, burn=burn,
                         p99_ms=p99_ms, requests=requests)
            self._history.append(d)
            del self._history[:-self._history_size]
            if action != HOLD:
                telemetry.emit("fleet_autoscale", model=model, action=action,
                               current=current, target=target, burn=burn,
                               p99_ms=p99_ms, reason=reason)
            return d

        if current < pol.min_replicas:
            return decide(SCALE_OUT, pol.min_replicas, "below min_replicas")
        if current > pol.max_replicas:
            return decide(SCALE_IN, pol.max_replicas, "above max_replicas")
        if requests < pol.min_window_requests:
            return decide(HOLD, current,
                          f"window too thin ({requests} < "
                          f"{pol.min_window_requests} requests)")

        if burn >= pol.scale_out_burn:
            since = now - self._last_out.get(model, -1e18)
            if since < pol.scale_out_cooldown_s:
                return decide(HOLD, current,
                              f"burn {burn:.2f} but in scale-out cooldown "
                              f"({since:.1f}s < {pol.scale_out_cooldown_s}s)")
            d = decide(SCALE_OUT, current + 1,
                       f"error-budget burn {burn:.2f} >= "
                       f"{pol.scale_out_burn}")
            if d.action == SCALE_OUT:
                self._last_out[model] = now
            return d

        p99_gate_ms = pol.p99_budget_fraction * deadline_s * 1e3
        if burn <= pol.scale_in_burn and p99_ms <= p99_gate_ms:
            since = now - self._last_in.get(model, -1e18)
            if since < pol.scale_in_cooldown_s:
                return decide(HOLD, current,
                              f"idle but in scale-in cooldown "
                              f"({since:.1f}s < {pol.scale_in_cooldown_s}s)")
            d = decide(SCALE_IN, current - 1,
                       f"burn {burn:.2f} <= {pol.scale_in_burn} and p99 "
                       f"{p99_ms:.1f}ms <= {p99_gate_ms:.1f}ms")
            if d.action == SCALE_IN:
                self._last_in[model] = now
            return d

        return decide(HOLD, current,
                      f"burn {burn:.2f} inside hysteresis band")
