"""Multi-tenant load scenario suite for fleet benchmarking.

A :class:`Scenario` is a named, seeded description of *shaped* open-loop
traffic: a tenant mix (see :class:`~repro.server.loadgen.Tenant`) plus a
rate envelope over time.  Arrival times come from a non-homogeneous
Poisson process sampled by thinning — draw candidate arrivals at the peak
rate, keep each with probability ``rate(t) / peak`` — so a given
``(scenario, seed)`` pair replays the identical trace against a single
:class:`~repro.server.Server` or a whole :class:`~repro.fleet.Fleet`.

The four stock shapes cover the serving failure modes the fleet layer is
supposed to absorb:

* :func:`diurnal_wave` — a slow sinusoid between trough and peak; the
  autoscaler should track it without flapping.
* :func:`flash_crowd` — baseline load with a step to a multiple of it;
  admission control sheds, the autoscaler reacts, nothing already admitted
  is lost.
* :func:`slow_loris` — a tenant that submits on time but collects results
  late; uncollected futures must not pin server resources.
* :func:`mixed_sizes` — small- and large-input tenants sharing one fleet;
  per-tenant breakdowns show cross-tenant interference.
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.server.loadgen import (LoadGenError, LoadReport, Tenant,
                                  _TenantTally, _default_deadline)


@dataclass(frozen=True)
class Scenario:
    """A named, reproducible shaped-load description."""

    name: str
    tenants: Sequence[Tenant]
    duration_s: float
    #: offered rate (Hz) as a function of ``t`` in ``[0, duration_s)``
    rate_fn: Callable[[float], float] = field(repr=False)
    peak_rate_hz: float = 0.0      #: must upper-bound ``rate_fn`` everywhere

    def __post_init__(self):
        if self.duration_s <= 0:
            raise LoadGenError(f"duration_s must be positive, "
                               f"got {self.duration_s}")
        if self.peak_rate_hz <= 0:
            raise LoadGenError(f"peak_rate_hz must be positive, "
                               f"got {self.peak_rate_hz}")

    def arrivals(self, rng: np.random.Generator) -> np.ndarray:
        """Sample arrival offsets (seconds) by Poisson thinning."""
        t, out = 0.0, []
        while True:
            t += rng.exponential(1.0 / self.peak_rate_hz)
            if t >= self.duration_s:
                break
            if rng.random() < self.rate_fn(t) / self.peak_rate_hz:
                out.append(t)
        return np.asarray(out, dtype=np.float64)


def diurnal_wave(key: str, *, trough_hz: float = 20.0, peak_hz: float = 80.0,
                 duration_s: float = 4.0, deadline_s: Optional[float] = None
                 ) -> Scenario:
    """One full sine period between trough and peak offered rate."""
    mid = (trough_hz + peak_hz) / 2.0
    amp = (peak_hz - trough_hz) / 2.0
    return Scenario(
        name="diurnal_wave",
        tenants=[Tenant("diurnal", key=key, deadline_s=deadline_s)],
        duration_s=duration_s,
        rate_fn=lambda t: mid + amp * np.sin(2 * np.pi * t / duration_s),
        peak_rate_hz=peak_hz)


def flash_crowd(key: str, *, base_hz: float = 30.0, spike_mult: float = 4.0,
                duration_s: float = 3.0, spike_at: float = 0.4,
                spike_len: float = 0.3,
                deadline_s: Optional[float] = None) -> Scenario:
    """Steady baseline with a step spike (fractions of the duration)."""
    t0, t1 = spike_at * duration_s, (spike_at + spike_len) * duration_s
    return Scenario(
        name="flash_crowd",
        tenants=[Tenant("crowd", key=key, deadline_s=deadline_s)],
        duration_s=duration_s,
        rate_fn=lambda t: base_hz * (spike_mult if t0 <= t < t1 else 1.0),
        peak_rate_hz=base_hz * spike_mult)


def slow_loris(key: str, *, rate_hz: float = 40.0, duration_s: float = 2.0,
               loris_share: float = 0.25, collect_delay_s: float = 0.5,
               deadline_s: Optional[float] = None) -> Scenario:
    """A well-behaved tenant sharing the fleet with one that collects its
    results ``collect_delay_s`` late."""
    return Scenario(
        name="slow_loris",
        tenants=[
            Tenant("fast", key=key, weight=1.0 - loris_share,
                   deadline_s=deadline_s),
            Tenant("loris", key=key, weight=loris_share,
                   deadline_s=deadline_s,
                   collect_delay_s=collect_delay_s),
        ],
        duration_s=duration_s,
        rate_fn=lambda t: rate_hz,
        peak_rate_hz=rate_hz)


def mixed_sizes(small_key: str, large_key: str, *, rate_hz: float = 40.0,
                duration_s: float = 2.0, large_share: float = 0.3,
                deadline_s: Optional[float] = None,
                large_deadline_s: Optional[float] = None) -> Scenario:
    """Small- and large-model tenants multiplexed onto one fleet."""
    return Scenario(
        name="mixed_sizes",
        tenants=[
            Tenant("small", key=small_key, weight=1.0 - large_share,
                   deadline_s=deadline_s),
            Tenant("large", key=large_key, weight=large_share,
                   deadline_s=large_deadline_s or deadline_s),
        ],
        duration_s=duration_s,
        rate_fn=lambda t: rate_hz,
        peak_rate_hz=rate_hz)


def standard_suite(key: str, **kwargs) -> List[Scenario]:
    """The stock single-model scenario set (mixed-sizes needs two keys, so
    it is not included here)."""
    return [diurnal_wave(key, **kwargs.get("diurnal", {})),
            flash_crowd(key, **kwargs.get("flash", {})),
            slow_loris(key, **kwargs.get("loris", {}))]


def run_scenario(server, scenario: Scenario,
                 samples: Dict[Optional[str], Sequence[np.ndarray]], *,
                 seed: int = 0, result_grace_s: float = 10.0) -> LoadReport:
    """Replay ``scenario`` against ``server`` (a
    :class:`~repro.server.Server` or :class:`~repro.fleet.Fleet`).

    ``samples`` maps each tenant key to its input pool (use the key ``None``
    as a catch-all).  Fully reproducible for a given ``(scenario, seed)``.
    """
    mix = list(scenario.tenants)
    if not mix:
        raise LoadGenError("scenario has no tenants")
    for t in mix:
        if t.key is None:
            raise LoadGenError(f"scenario tenant {t.name!r} must name a key")
        if t.weight <= 0:
            raise LoadGenError(f"tenant {t.name!r} weight must be positive, "
                               f"got {t.weight}")
        if t.key not in samples and None not in samples:
            raise LoadGenError(f"no samples for tenant key {t.key!r}")
    rng = np.random.default_rng(seed)
    offsets = scenario.arrivals(rng)
    if len(offsets) == 0:
        raise LoadGenError(f"scenario {scenario.name!r} produced no "
                           f"arrivals; raise duration or rate")
    weights = np.asarray([t.weight for t in mix], dtype=np.float64)
    draws = rng.choice(len(mix), size=len(offsets),
                       p=weights / weights.sum())
    default_deadline = _default_deadline(server)

    pendings = []
    t0 = time.perf_counter()
    for i, off in enumerate(offsets):
        delay = (t0 + off) - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        tenant = mix[draws[i]]
        pool = samples.get(tenant.key, samples.get(None))
        deadline = (tenant.deadline_s if tenant.deadline_s is not None
                    else default_deadline)
        pendings.append(
            (server.submit(tenant.key, pool[i % len(pool)],
                           deadline_s=deadline), tenant, deadline))

    report = LoadReport(model=f"<scenario:{scenario.name}>",
                        requests=len(pendings), ok=0, shed=0, failed=0,
                        retryable_failed=0, deadline_s=default_deadline,
                        offered_rate_hz=len(offsets) / scenario.duration_s,
                        duration_s=0.0, seed=seed)
    tallies: Dict[str, _TenantTally] = {t.name: _TenantTally() for t in mix}
    collect_at = time.perf_counter()
    for pending, tenant, deadline in pendings:
        if tenant.collect_delay_s > 0:
            wake = collect_at + tenant.collect_delay_s
            pause = wake - time.perf_counter()
            if pause > 0:
                time.sleep(pause)
        resp = pending.result(timeout=deadline + result_grace_s)
        tally = tallies[tenant.name]
        tally.requests += 1
        if resp.ok:
            report.ok += 1
            report.latencies_s.append(resp.latency_s)
            report.queue_waits_s.append(resp.queue_wait_s)
            report.batch_sizes.append(resp.batch_size)
            tally.ok += 1
            tally.latencies_s.append(resp.latency_s)
            if resp.latency_s > deadline:
                report.late += 1
        elif type(resp).__name__ == "Overloaded":
            report.shed += 1
            tally.shed += 1
        else:
            report.failed += 1
            tally.failed += 1
            if resp.retryable:
                report.retryable_failed += 1
    report.duration_s = time.perf_counter() - t0
    report.per_tenant = {name: tally.to_json()
                         for name, tally in tallies.items()}
    return report
