"""The fleet supervisor: replica groups, routed serving, failover,
autoscaling and rollout enactment in one place.

A :class:`Fleet` supervises N :class:`~repro.fleet.replica.Replica`\\ s per
model (a *replica group*), routes every request through the
:class:`~repro.fleet.router.Router`'s consistent-hash rings, and fails
retryable responses over to surviving replicas — a killed replica's
in-flight requests resolve as retryable ``Failed`` and are requeued
elsewhere, so a seeded replica kill loses zero requests.  The
:class:`~repro.fleet.autoscaler.Autoscaler` (when a policy is configured)
reads the group's live primary SLO window and grows or drains the group;
the :class:`~repro.fleet.splitter.TrafficSplitter` layers shadow mirrors
and canary fractions over ``name@version``, and the fleet enacts them as
per-replica drain-and-cutover swaps behind the artifact-integrity and
plan-verification gates.

The fleet mirrors the single-process :class:`~repro.server.Server` API
(``submit(key, sample, deadline_s) -> future``, ``status()``,
``render_exposition()``), so the load generator, chaos harness and CLI
drive either interchangeably.  ``Server`` remains the single-process
serving surface; the fleet composes servers, it does not replace them.

::

    fleet = Fleet(FleetConfig(replicas=3))
    fleet.add_model("resnet20")
    fleet.register_version("resnet20", "1", deployed)
    with fleet:                      # starts the health loop
        resp = fleet.submit("resnet20", x).result()
        fleet.begin_canary("resnet20", "2", fraction=0.1)
        ...
        fleet.promote("resnet20")
"""
from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set

import numpy as np

from repro import telemetry
from repro.fleet.autoscaler import (SCALE_IN, SCALE_OUT, Autoscaler,
                                    AutoscalePolicy)
from repro.fleet.replica import (CLOSED, DEAD, DRAINING, PARTITIONED,
                                 QUARANTINED, READY, STARTING, Replica)
from repro.integrity.errors import SDCDetected
from repro.fleet.router import ROLE_CANARY, ROLE_STABLE, Router
from repro.fleet.splitter import CANARY, TrafficSplitter
from repro.server.registry import split_key
from repro.server.server import ServerConfig
from repro.server.types import Failed, Response
from repro.telemetry import obs as _obs
from repro.telemetry.obs import RollingWindow


@dataclass
class FleetConfig:
    """Fleet-level knobs (per-replica server tuning rides in ``server``)."""

    replicas: int = 2                #: target replicas per model group
    vnodes: int = 64                 #: ring points per replica
    health_interval_s: float = 0.25  #: health/reconcile loop period
    default_deadline_s: float = 0.25
    max_attempts: int = 3            #: dispatch tries per request (failover)
    self_heal: bool = True           #: replace DEAD replicas automatically
    server: Optional[ServerConfig] = None
    window_s: float = 60.0           #: fleet-level SLO window span
    slo_target: float = 0.99
    auto_rollback: bool = True       #: watch the canary window for burn
    rollback_burn: float = 1.0       #: canary burn >= this -> rollback
    rollback_min_requests: int = 20  #: canary window floor before judging
    #: autoscaling policy; ``None`` holds every group at ``replicas``
    autoscale: Optional[AutoscalePolicy] = None
    # -------------------------------------------------------- SDC defense
    #: replay each replica's golden vectors every N health ticks (0 = off);
    #: probes ride the normal submit path with a generous deadline, and
    #: an inconclusive answer (shed/drain/close race) is never SDC
    golden_every: int = 0
    #: vectors replayed per golden probe (None = the full recorded set)
    golden_limit: Optional[int] = None
    golden_timeout_s: float = 2.0    #: per-vector probe result wait
    #: synchronous memory scrub of every replica's plans every N health
    #: ticks (0 = off; per-replica background scrubbing can run instead
    #: via ``server.scrub_interval_s``)
    scrub_every: int = 0

    def __post_init__(self):
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


class FleetRequest:
    """Future-like handle for one fleet request (mirrors
    :class:`~repro.server.types.PendingRequest`); additionally records the
    failover path the request took through the fleet."""

    __slots__ = ("request_id", "model", "route_key", "deadline_s", "role",
                 "shadow", "t0", "attempts", "path", "_event", "_response")

    def __init__(self, request_id: int, model: str, route_key: str,
                 deadline_s: float, role: str, shadow: bool = False):
        self.request_id = request_id
        self.model = model
        self.route_key = route_key
        self.deadline_s = deadline_s
        self.role = role              #: ``stable`` | ``canary``
        self.shadow = shadow          #: mirrored copy; result is discarded
        self.t0 = time.perf_counter()
        self.attempts = 0
        self.path: List[str] = []     #: replica ids tried, in order
        self._event = threading.Event()
        self._response: Optional[Response] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Response:
        if not self._event.wait(timeout):
            raise TimeoutError(f"fleet request {self.request_id} "
                               f"({self.model}) unresolved after {timeout}s")
        return self._response

    def _resolve(self, response: Response) -> None:
        if self._event.is_set():
            return
        self._response = response
        self._event.set()

    def __repr__(self) -> str:
        state = type(self._response).__name__ if self.done() else "pending"
        return (f"FleetRequest(#{self.request_id}, {self.model}, {state}, "
                f"path={self.path})")


@dataclass
class _VersionSource:
    """Everything needed to replay one model version into a fresh replica's
    private registry (the shared, checksummed source of truth)."""

    version: str
    deployed: object = None
    runner: object = None
    artifacts: Optional[str] = None
    meta: Dict = field(default_factory=dict)

    def materialize(self):
        """A per-replica copy of the deployed bundle.

        Replicas of a real fleet are separate processes; in-process
        replication must not share mutable executor state either — a
        compiled plan carries scratch buffers (bindings, im2col caches)
        that race when two lane threads execute it concurrently.  Bare
        ``runner`` callables are shared as-is (they are declared
        stateless by contract, like every registry runner).
        """
        import copy as _copy

        return (_copy.deepcopy(self.deployed)
                if self.deployed is not None else None)


class _Group:
    """One model's replica group plus its fleet-level SLO windows."""

    def __init__(self, name: str, target: int, window_s: float):
        self.name = name
        self.target = target
        self.sources: Dict[str, _VersionSource] = {}
        self.replicas: Dict[str, Replica] = {}
        self.next_id = 0
        # primary = every non-shadow request (canary traffic is user traffic
        # and counts); canary = the canary-assigned subset (rollback signal);
        # shadow = mirrored copies only — never in the primary SLO.
        self.window_primary = RollingWindow(window_s=window_s)
        self.window_canary = RollingWindow(window_s=window_s)
        self.window_shadow = RollingWindow(window_s=window_s)
        self.ticks = 0                #: health ticks seen (probe cadence)
        self.quarantined_total = 0    #: replicas ejected for SDC, ever

    def live(self) -> List[Replica]:
        """Replicas that count toward the target (a PARTITIONED replica is
        alive behind its partition, so it is *not* replaced; a QUARANTINED
        one is corrupted and *is* — self-heal spawns its replacement)."""
        return [r for r in self.replicas.values()
                if r.state in (STARTING, READY, PARTITIONED)]

    def ready(self, role: Optional[str] = None) -> List[Replica]:
        return [r for r in self.replicas.values()
                if r.state == READY and not r.partitioned
                and (role is None or r.role == role)]


class Fleet:
    """Supervisor for replicated, sharded serving (see module docstring)."""

    def __init__(self, config: Optional[FleetConfig] = None, **overrides):
        self.config = replace(config or FleetConfig(), **overrides) \
            if overrides else (config or FleetConfig())
        self.router = Router(vnodes=self.config.vnodes)
        self.splitter = TrafficSplitter()
        self.autoscaler = (Autoscaler(self.config.autoscale)
                           if self.config.autoscale is not None else None)
        self._groups: Dict[str, _Group] = {}
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._mirror_ids = itertools.count(-1, -1)
        self.closing = False
        self._health_thread: Optional[threading.Thread] = None
        self._health_stop = threading.Event()
        self.requests_lost = 0        #: requests that ran out of failovers

    # ---------------------------------------------------------- population
    def add_model(self, name: str, *, replicas: Optional[int] = None
                  ) -> None:
        """Create the (empty) replica group for ``name``; versions are added
        with :meth:`register_version` and replicas spawn on the first
        reconcile."""
        with self._lock:
            if name in self._groups:
                raise ValueError(f"model {name!r} already added")
            self._groups[name] = _Group(
                name, replicas if replicas is not None
                else self.config.replicas, self.config.window_s)

    def register_version(self, name: str, version: str, deployed=None, *,
                         runner=None, artifacts: Optional[str] = None,
                         **meta) -> None:
        """Register ``name@version`` fleet-wide.

        The first version of a model becomes its stable serving version and
        spawns the group to target size; later versions are candidates —
        available on every replica's private registry (inactive) so shadow
        and canary placement is a per-replica activation, not a data copy.
        Artifact integrity is checked per replica at registration, exactly
        as on a single server.
        """
        with self._lock:
            group = self._require(name)
            if version in group.sources:
                raise ValueError(f"{name}@{version} already registered "
                                 f"with the fleet")
            src = _VersionSource(version, deployed=deployed, runner=runner,
                                 artifacts=artifacts, meta=dict(meta))
            group.sources[version] = src
            first = len(group.sources) == 1
            if first:
                self.splitter.ensure(name, version)
            for rep in group.replicas.values():
                if rep.state in (DEAD, CLOSED):
                    continue
                rep.registry.register(name, version, src.materialize(),
                                      runner=runner, activate=False,
                                      artifacts=artifacts, **meta)
            if first:
                self._tick_group(group)

    def _require(self, name: str) -> _Group:
        group = self._groups.get(name)
        if group is None:
            raise KeyError(f"model {name!r} not added to the fleet "
                           f"(have: {sorted(self._groups) or 'none'})")
        return group

    def _spawn(self, group: _Group, role: str = ROLE_STABLE,
               version: Optional[str] = None) -> Replica:
        """Bring up one replica, replay every version source, activate the
        requested (default: stable) version."""
        rid = f"{group.name}-r{group.next_id}"
        group.next_id += 1
        rep = Replica(rid, group.name, server_config=self.config.server,
                      role=role)
        for src in group.sources.values():
            rep.registry.register(group.name, src.version, src.materialize(),
                                  runner=src.runner, activate=False,
                                  artifacts=src.artifacts, **src.meta)
        ro = self.splitter.get(group.name)
        active = version or (ro.stable_version if ro else None)
        if active is not None:
            rep.registry.set_active(group.name, active)
        rep.mark_ready()
        group.replicas[rid] = rep
        telemetry.emit("fleet_replica_spawned", replica=rid,
                       model=group.name, role=role, version=active)
        return rep

    # ------------------------------------------------------------- serving
    def submit(self, key: str, sample, deadline_s: Optional[float] = None,
               route_key: Optional[str] = None) -> FleetRequest:
        """Route one request into the fleet; same contract as
        :meth:`repro.server.Server.submit` (always returns a handle that
        resolves to a typed :class:`~repro.server.types.Response`).

        ``route_key`` is the consistent-hashing affinity key (a session or
        user id); it defaults to the fleet request id, which spreads
        requests across the ring uniformly and deterministically.
        """
        if self.closing:
            raise RuntimeError("fleet is closed")
        name, _version = split_key(key)
        group = self._require(name)
        ro = self.splitter.get(name)
        if ro is None:
            raise KeyError(f"model {name!r} has no registered versions")
        rid = next(self._ids)
        rkey = route_key if route_key is not None else f"req-{rid}"
        role, mirror = ro.assign(rkey)
        deadline = (self.config.default_deadline_s if deadline_s is None
                    else float(deadline_s))
        freq = FleetRequest(rid, name, rkey, deadline, role)
        self._dispatch(freq, group, key, sample, exclude=set())
        if mirror:
            self._mirror(group, key, sample, rkey, deadline)
        return freq

    def _dispatch(self, freq: FleetRequest, group: _Group, key: str,
                  sample, exclude: Set[str]) -> None:
        """Place (or re-place, on failover) one request on a replica."""
        while True:
            if freq.attempts >= self.config.max_attempts:
                self._finish(freq, group, Failed(
                    -freq.request_id, freq.model, retryable=True,
                    error=f"failover budget exhausted after "
                          f"{freq.attempts} attempts "
                          f"(path: {'>'.join(freq.path)})"))
                return
            target = self.router.route(freq.model, freq.route_key,
                                       role=freq.role, exclude=exclude)
            if target is None:
                self._finish(freq, group, Failed(
                    -freq.request_id, freq.model, retryable=True,
                    error=f"no reachable replica for {freq.model!r}"))
                return
            rep = group.replicas.get(target)
            if rep is None:           # removed between route and lookup
                exclude.add(target)
                continue
            freq.attempts += 1
            freq.path.append(target)
            pending = rep.submit(key, sample, deadline_s=freq.deadline_s)
            pending.add_done_callback(
                lambda resp, _rep=target: self._on_response(
                    freq, group, key, sample, _rep, resp))
            return

    def _on_response(self, freq: FleetRequest, group: _Group, key: str,
                     sample, replica_id: str, resp: Response) -> None:
        """Resolution hook (runs on the resolving replica's lane thread):
        fail retryable responses over to the next replica on the ring,
        otherwise resolve the fleet request and account it."""
        if (not resp.ok and resp.retryable
                and freq.attempts < self.config.max_attempts
                and not self.closing):
            self._dispatch(freq, group, key, sample, exclude=set(freq.path))
            return
        self._finish(freq, group, resp)

    def _finish(self, freq: FleetRequest, group: _Group,
                resp: Response) -> None:
        latency = time.perf_counter() - freq.t0
        if resp.ok:
            # rewrite latency to the fleet-level number (includes failover
            # hops), so reports measure what the client experienced
            resp = replace(resp, latency_s=latency)
        freq._resolve(resp)
        windows = ([group.window_shadow] if freq.shadow
                   else [group.window_primary]
                   + ([group.window_canary] if freq.role == ROLE_CANARY
                      else []))
        miss = resp.ok and latency > freq.deadline_s
        for w in windows:
            if resp.ok:
                w.observe_ok(latency, getattr(resp, "queue_wait_s", 0.0),
                             deadline_miss=miss)
            elif type(resp).__name__ == "Overloaded":
                w.observe_shed()
            else:
                w.observe_failed()
        if not resp.ok and not freq.shadow and resp.retryable \
                and freq.attempts >= self.config.max_attempts:
            self.requests_lost += 1

    def _mirror(self, group: _Group, key: str, sample, route_key: str,
                deadline_s: float) -> None:
        """Fire-and-forget shadow copy to a canary-role replica; the result
        lands in the shadow window only and the response is discarded."""
        ro = self.splitter.get(group.name)
        if ro is None or ro.canary_version is None:
            return
        target = self.router.route(group.name, route_key, role=ROLE_CANARY)
        if target is None:
            return
        rep = group.replicas.get(target)
        if rep is None:
            return
        freq = FleetRequest(next(self._mirror_ids), group.name, route_key,
                            deadline_s, ROLE_CANARY, shadow=True)
        freq.attempts = self.config.max_attempts    # shadows never fail over
        freq.path.append(target)
        pending = rep.submit(group.name, sample, deadline_s=deadline_s)
        pending.add_done_callback(
            lambda resp: self._finish(freq, group, resp))

    # ------------------------------------------------------------ rollouts
    def begin_shadow(self, name: str, version: str,
                     mirror_fraction: float = 0.2) -> None:
        """Mirror a fraction of ``name``'s traffic to ``version`` on a
        dedicated canary-role replica; responses are compared offline and
        never count toward the primary SLO."""
        with self._lock:
            group = self._require(name)
            self._require_version(group, version)
            self.splitter.begin_shadow(name, version,
                                       mirror_fraction=mirror_fraction)
            self._place_canaries(group, version, count=1)

    def begin_canary(self, name: str, version: str,
                     fraction: float = 0.01) -> None:
        """Start serving ``fraction`` of primary keys from ``version``."""
        with self._lock:
            group = self._require(name)
            self._require_version(group, version)
            self.splitter.begin_canary(name, version, fraction=fraction)
            self._place_canaries(group, version,
                                 count=self._canary_count(group, fraction))

    def advance_canary(self, name: str, fraction: float) -> None:
        """Walk the promote ladder: a larger key fraction, and
        proportionally more canary-role replicas."""
        with self._lock:
            group = self._require(name)
            ro = self.splitter.advance(name, fraction)
            self._place_canaries(group, ro.canary_version,
                                 count=self._canary_count(group, fraction))

    def promote(self, name: str) -> None:
        """The candidate becomes stable fleet-wide: every replica cuts over
        (drain-and-swap, gated on artifact + plan verification)."""
        with self._lock:
            group = self._require(name)
            ro = self.splitter.promote(name)
            for rep in group.ready():
                rep.set_version(ro.stable_version)
                rep.role = ROLE_STABLE
            self._rebuild_rings(group)
            telemetry.emit("fleet_promoted", model=name,
                           version=ro.stable_version)

    def rollback(self, name: str, reason: str = "operator") -> None:
        """Abort the rollout: every canary-role replica swaps back to the
        stable version and rejoins the stable ring."""
        with self._lock:
            group = self._require(name)
            ro = self.splitter.rollback(name, reason=reason)
            for rep in group.ready(ROLE_CANARY):
                rep.set_version(ro.stable_version)
                rep.role = ROLE_STABLE
            self._rebuild_rings(group)
            telemetry.emit("fleet_rolled_back", level="warning", model=name,
                           version=ro.stable_version, reason=reason)

    def _require_version(self, group: _Group, version: str) -> None:
        if version not in group.sources:
            raise KeyError(f"{group.name}@{version} is not registered with "
                           f"the fleet (have: {sorted(group.sources)})")

    def _canary_count(self, group: _Group, fraction: float) -> int:
        """Canary replicas for a key fraction: proportional, at least one,
        and always leaving one stable replica until 100%."""
        if fraction >= 1.0:
            return max(1, group.target)
        want = max(1, round(fraction * group.target))
        return min(want, max(1, group.target - 1))

    def _place_canaries(self, group: _Group, version: str,
                        count: int) -> None:
        """Converge the number of canary-role replicas to ``count`` by
        converting stable replicas (drain-and-cutover swap) or reverting
        surplus canaries.  A swap refused by the verification gates
        propagates — with the previous version still serving everywhere."""
        ro = self.splitter.get(group.name)
        stable_version = ro.stable_version if ro else None
        canaries = sorted(group.ready(ROLE_CANARY),
                          key=lambda r: r.replica_id)
        stables = sorted(group.ready(ROLE_STABLE),
                         key=lambda r: r.replica_id, reverse=True)
        for rep in canaries[count:]:                    # surplus -> stable
            rep.set_version(stable_version)
            rep.role = ROLE_STABLE
        for rep in canaries[:count]:                    # keep, re-version
            rep.set_version(version)
        need = count - len(canaries)
        for rep in stables[:max(0, need)]:
            try:
                rep.set_version(version)
            except Exception:
                # the gate refused the candidate: revert what we placed and
                # retire the rollout so no further traffic is assigned
                for done in canaries[:count]:
                    done.set_version(stable_version)
                self.splitter.rollback(group.name,
                                       reason="version swap refused")
                self._rebuild_rings(group)
                raise
            rep.role = ROLE_CANARY
        self._rebuild_rings(group)

    # ------------------------------------------------------ health loop
    def health_tick(self) -> None:
        """One synchronous reconcile pass (the health loop calls this every
        ``health_interval_s``; tests and the chaos harness call it
        directly for determinism): probe replica health, transition
        lifecycles, self-heal, autoscale, judge the canary, rebuild rings."""
        with self._lock:
            for group in list(self._groups.values()):
                self._tick_group(group)

    def _tick_group(self, group: _Group) -> None:
        cfg = self.config
        group.ticks += 1
        for rid, rep in list(group.replicas.items()):
            if rep.state not in (QUARANTINED, DEAD, CLOSED):
                self._sdc_tick(group, rep)
            if rep.state == QUARANTINED:
                continue    # tombstone: ejected, kept for forensics
            if rep.state == STARTING:
                rep.mark_ready()
            elif rep.state == READY and not rep.healthy():
                if rep.partitioned:
                    rep.state = PARTITIONED
                    self.router.eject(group.name, rid)
                    telemetry.emit("fleet_replica_partitioned",
                                   level="warning", replica=rid,
                                   model=group.name)
                elif rep.server.killed or not rep.server.healthy():
                    rep.state = DEAD
            elif (rep.state == PARTITIONED and not rep.partitioned
                    and rep.server.healthy()):
                rep.state = READY       # partition healed: rejoin
                telemetry.emit("fleet_replica_healed", replica=rid,
                               model=group.name)
            if rep.state == DEAD:
                self.router.eject(group.name, rid)
                del group.replicas[rid]
                telemetry.emit("fleet_replica_dead", level="warning",
                               replica=rid, model=group.name)
            elif rep.state == DRAINING and rep.drained():
                self.router.eject(group.name, rid)
                rep.close()
                del group.replicas[rid]
                telemetry.emit("fleet_replica_drained", replica=rid,
                               model=group.name)

        if self.autoscaler is not None and group.sources:
            summary = group.window_primary.summary(
                slo_target=cfg.slo_target)
            decision = self.autoscaler.tick(group.name, summary,
                                            group.target,
                                            cfg.default_deadline_s)
            if decision.action in (SCALE_OUT, SCALE_IN):
                group.target = decision.target
                if decision.action == SCALE_IN:
                    self._drain_one(group)

        if cfg.self_heal and group.sources:
            while len(group.live()) < group.target:
                self._spawn(group)
        while len(group.live()) > group.target and self._drain_one(group):
            pass

        ro = self.splitter.get(group.name)
        if (ro is not None and ro.state == CANARY and cfg.auto_rollback):
            s = group.window_canary.summary(slo_target=cfg.slo_target)
            burn = s.get("slo", {}).get("error_budget_burn", 0.0)
            if (s["requests"] >= cfg.rollback_min_requests
                    and burn >= cfg.rollback_burn):
                self.rollback(group.name,
                              reason=f"canary error-budget burn "
                                     f"{burn:.2f} >= {cfg.rollback_burn} "
                                     f"over {s['requests']} requests")
        self._rebuild_rings(group)

    # ------------------------------------------------------- SDC defense
    def _sdc_tick(self, group: _Group, rep: Replica) -> None:
        """Per-replica SDC defense pass: scheduled memory scrub, scheduled
        golden probe, then quarantine if anything — including the replica's
        own inline ABFT checker or background scrubber — flagged
        corruption since the last tick."""
        cfg = self.config
        if cfg.scrub_every and group.ticks % cfg.scrub_every == 0:
            try:
                rep.server.scrub_now()
            except Exception:   # a scrub glitch must not stall the loop
                pass
        if (cfg.golden_every and rep.state == READY and not rep.partitioned
                and group.ticks % cfg.golden_every == 0):
            self._golden_probe(group, rep)
        if rep.server.sdc_detected:
            self._quarantine(group, rep)

    def _golden_probe(self, group: _Group, rep: Replica) -> None:
        """Replay the replica's recorded golden vectors through its gateway.

        Probes ride the normal submit path — a compiled plan is not
        thread-safe against its own lane thread, so the health loop must
        queue like any client.  Only a *successful* response with wrong
        values is SDC; sheds, drains, kills and close races are
        inconclusive and skipped.  Every wait is bounded and re-checks
        ``closing`` so a fleet shutdown mid-probe cannot deadlock.
        """
        cfg = self.config
        try:
            entry = rep.registry.get(group.name)
        except KeyError:
            return
        golden = rep.server._entry_golden(entry)
        if golden is None:
            return
        n = (golden.k if cfg.golden_limit is None
             else min(golden.k, max(1, int(cfg.golden_limit))))
        xs = golden.inputs()
        deadline = max(1.0, 4 * cfg.default_deadline_s)
        for i in range(n):
            if self.closing or not rep.healthy():
                return
            pending = rep.submit(group.name, xs[i], deadline_s=deadline)
            try:
                resp = pending.result(timeout=cfg.golden_timeout_s)
            except TimeoutError:
                return
            if not resp.ok:
                return                     # inconclusive, not SDC
            want = golden.outputs[i]
            got = np.asarray(resp.logits, dtype=np.float32)
            if got.shape != want.shape or not np.array_equal(got, want):
                bad = (int(np.sum(got != want))
                       if got.shape == want.shape else -1)
                rep.server.record_sdc(group.name, SDCDetected(
                    "golden", f"golden vector {i} diverged on "
                              f"{rep.replica_id} ({bad} element(s))",
                    {"replica": rep.replica_id, "vector": i,
                     "mismatched": bad, "seed": golden.seed}))
                return

    def _quarantine(self, group: _Group, rep: Replica) -> None:
        """Eject a corrupted replica: quarantine aborts like a kill (its
        queued and in-flight work requeues on healthy peers — never
        ``requests_lost``), the ring drops it, and the tombstone stays in
        the group for forensics; self-heal spawns the replacement in this
        same tick because :meth:`_Group.live` no longer counts it."""
        events = list(rep.server.sdc_events)
        rep.quarantine()
        self.router.eject(group.name, rep.replica_id)
        group.quarantined_total += 1
        telemetry.emit("fleet_replica_quarantined", level="error",
                       replica=rep.replica_id, model=group.name,
                       source=events[0]["source"] if events else None,
                       events=len(events))

    @property
    def sdc_quarantined(self) -> int:
        """Replicas ejected for silent data corruption, fleet-wide."""
        with self._lock:
            return sum(g.quarantined_total for g in self._groups.values())

    def _drain_one(self, group: _Group) -> bool:
        """Start draining one replica (scale-in): prefer the youngest
        stable replica, never the last ready one."""
        ready = group.ready()
        if len(ready) <= 1:
            return False
        stables = sorted(group.ready(ROLE_STABLE),
                         key=lambda r: r.replica_id)
        victim = (stables[-1] if stables else
                  sorted(ready, key=lambda r: r.replica_id)[-1])
        victim.drain()
        self.router.eject(group.name, victim.replica_id)
        return True

    def _rebuild_rings(self, group: _Group) -> None:
        self.router.set_members(
            group.name, ROLE_STABLE,
            [r.replica_id for r in group.ready(ROLE_STABLE)])
        self.router.set_members(
            group.name, ROLE_CANARY,
            [r.replica_id for r in group.ready(ROLE_CANARY)])

    def start(self) -> "Fleet":
        """Run :meth:`health_tick` on a background thread."""
        if self._health_thread is not None:
            return self
        self.health_tick()             # serve immediately, not one tick late
        self._health_stop.clear()

        def _loop() -> None:
            while not self._health_stop.wait(self.config.health_interval_s):
                try:
                    self.health_tick()
                except Exception:      # the loop must outlive one bad tick
                    pass

        self._health_thread = threading.Thread(
            target=_loop, name="fleet-health", daemon=True)
        self._health_thread.start()
        return self

    def close(self, timeout: float = 30.0) -> None:
        self.closing = True
        self._health_stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
            self._health_thread = None
        with self._lock:
            reps = [r for g in self._groups.values()
                    for r in g.replicas.values()]
        for rep in reps:
            rep.close(timeout=timeout)

    def __enter__(self) -> "Fleet":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------ introspection
    def replicas(self, name: str) -> List[Replica]:
        with self._lock:
            return list(self._require(name).replicas.values())

    def status(self) -> Dict:
        """Fleet-wide operational snapshot: per-group replica states, the
        three SLO windows, rollout state and recent scaling decisions."""
        cfg = self.config
        out: Dict = {"models": {}, "requests_lost": self.requests_lost}
        with self._lock:
            groups = list(self._groups.values())
        out["sdc_quarantined"] = sum(g.quarantined_total for g in groups)
        for group in groups:
            ro = self.splitter.get(group.name)
            out["models"][group.name] = {
                "target_replicas": group.target,
                "sdc_quarantined": group.quarantined_total,
                "replicas": [r.status() for r in sorted(
                    group.replicas.values(), key=lambda r: r.replica_id)],
                "window": {
                    "primary": group.window_primary.summary(
                        slo_target=cfg.slo_target),
                    "canary": group.window_canary.summary(
                        slo_target=cfg.slo_target),
                    "shadow": group.window_shadow.summary(
                        slo_target=cfg.slo_target),
                },
                "rollout": ro.to_json() if ro is not None else None,
                "autoscale": ([d.to_json() for d in
                               self.autoscaler.history(group.name)[-5:]]
                              if self.autoscaler is not None else None),
                "routing": {
                    "stable": sorted(self.router.members(
                        group.name, ROLE_STABLE)),
                    "canary": sorted(self.router.members(
                        group.name, ROLE_CANARY)),
                },
            }
        return out

    def _obs_samples(self) -> List[Dict]:
        """Fleet exposition samples: every replica's always-on gauges
        namespaced with a ``replica`` label (so N replicas of one model
        yield N distinct series, not one colliding series), plus
        fleet-level aggregates per traffic class."""
        samples: List[Dict] = []
        cfg = self.config
        with self._lock:
            groups = list(self._groups.values())
        for group in groups:
            for rid, rep in sorted(group.replicas.items()):
                if rep.state in (DEAD, CLOSED):
                    continue
                for s in rep.server._obs_samples():
                    samples.append({**s,
                                    "labels": {**s["labels"],
                                               "replica": rid}})
                samples.append({"name": "fleet_replica_up", "kind": "gauge",
                                "labels": {"model": group.name,
                                           "replica": rid,
                                           "state": rep.state},
                                "value": 1.0 if rep.healthy() else 0.0})
            for cls, window in (("primary", group.window_primary),
                                ("canary", group.window_canary),
                                ("shadow", group.window_shadow)):
                w = window.summary(slo_target=cfg.slo_target)
                lab = {"model": group.name, "class": cls}
                for metric, value in (
                        ("fleet_window_requests", w["requests"]),
                        ("fleet_window_ok", w["ok"]),
                        ("fleet_window_shed", w["shed"]),
                        ("fleet_window_failed", w["failed"]),
                        ("fleet_window_deadline_miss", w["deadline_miss"]),
                        ("fleet_window_latency_p99_ms",
                         w["latency_ms"]["p99"]),
                        ("fleet_slo_error_budget_burn",
                         w["slo"]["error_budget_burn"])):
                    samples.append({"name": metric, "kind": "gauge",
                                    "labels": lab, "value": value})
            samples.append({"name": "fleet_replicas_target", "kind": "gauge",
                            "labels": {"model": group.name},
                            "value": group.target})
            samples.append({"name": "fleet_requests_lost", "kind": "counter",
                            "labels": {"model": group.name},
                            "value": self.requests_lost})
            samples.append({"name": "fleet_sdc_quarantined_total",
                            "kind": "counter",
                            "labels": {"model": group.name},
                            "value": group.quarantined_total})
        return samples

    def render_exposition(self) -> str:
        """Prometheus text exposition for the whole fleet: the process
        registry once, plus per-replica gauges disambiguated by the
        ``replica`` label and the fleet-level aggregates."""
        return _obs.exposition(telemetry.get_registry(),
                               extra_samples=self._obs_samples())
